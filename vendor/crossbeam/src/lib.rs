//! Offline vendored stand-in for `crossbeam`, providing just the
//! `crossbeam::channel` unbounded-channel API this workspace uses, mapped
//! onto `std::sync::mpsc`.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// Every sender hung up.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender hung up.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; never blocks (the channel is unbounded).
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.inner.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender hangs up.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, every sender hangs up, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(42).unwrap();
            assert_eq!(rx.recv(), Ok(42));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_reports_timeout_and_disconnect() {
            let (tx, rx) = unbounded();
            let short = std::time::Duration::from_millis(5);
            assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Timeout));
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(short), Ok(7));
            drop(tx);
            assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Disconnected));
        }
    }
}
