//! Offline vendored stand-in for `parking_lot`, wrapping `std::sync`
//! primitives behind parking_lot's poison-free API (`lock()` returns the
//! guard directly; a poisoned std lock is recovered, matching parking_lot's
//! behavior of not propagating panics through locks).

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Wraps the std guard in an `Option` so [`Condvar`]
/// can temporarily take ownership during a wait.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(t: T) -> Self {
        Mutex { inner: sync::Mutex::new(t) }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside of condvar wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside of condvar wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically releases the guard's lock and waits; re-acquires before
    /// returning. Spurious wakeups are possible, as with std/parking_lot.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// [`Condvar::wait`] with a timeout: returns once notified, on a
    /// spurious wakeup, or after `timeout` elapses — whichever comes first.
    /// The returned [`WaitTimeoutResult`] says whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed (the predicate
    /// must still be re-checked — notification and timeout can race).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(t: T) -> Self {
        RwLock { inner: sync::RwLock::new(t) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate_threads() {
        let state = Arc::new((Mutex::new(0usize), Condvar::new()));
        let worker = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let (m, cv) = &*state;
                let mut guard = m.lock();
                *guard = 1;
                cv.notify_all();
                while *guard != 2 {
                    cv.wait(&mut guard);
                }
            })
        };
        {
            let (m, cv) = &*state;
            let mut guard = m.lock();
            while *guard != 1 {
                cv.wait(&mut guard);
            }
            *guard = 2;
            cv.notify_all();
        }
        worker.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(0usize);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard must be usable again after the timed-out wait.
        *guard += 1;
        assert_eq!(*guard, 1);
    }
}
