//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are equally unavailable offline). Supports the shapes this
//! workspace actually derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (serde's externally-tagged
//!   representation: `"Variant"` / `{"Variant": ...}`).
//!
//! Generics and `#[serde(...)]` attributes are not supported; the macro
//! panics with a clear message if it meets them, rather than silently
//! producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct NamedField {
    name: String,
    optional: bool,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("derive(Serialize): generated code must parse")
}

/// Derives `serde::Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("derive(Deserialize): generated code must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Advances past attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...`, detecting `Option<...>` fields so missing JSON
/// keys can default to `None` the way serde's `Option` handling behaves.
fn parse_named_fields(body: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other}"),
        }
        // The field type: consume until a comma at angle-bracket depth 0.
        let mut optional = false;
        let mut first_type_token = true;
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Ident(id) if first_type_token && id.to_string() == "Option" => {
                    optional = true;
                }
                _ => {}
            }
            first_type_token = false;
            i += 1;
        }
        fields.push(NamedField { name, optional });
    }
    Fields::Named(fields)
}

/// Counts tuple-struct fields: top-level commas at angle depth 0, plus one
/// for a trailing non-empty segment.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut segment_empty = true;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                segment_empty = true;
                continue;
            }
            _ => {}
        }
        segment_empty = false;
    }
    if segment_empty {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip to the next variant (past the separating comma).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_named_fields(prefix: &str, fields: &[NamedField]) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(\"{n}\".to_string(), ::serde::Serialize::to_value(&{prefix}{n}))", n = f.name)
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fs) => serialize_named_fields("self.", fs),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fs) => {
            let inits: Vec<String> = fs.iter().map(|f| named_field_init(name, f)).collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"{name}: expected object, found {{v:?}}\")))?;\n\
                 let _ = &obj;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"{name}: expected array, found {{v:?}}\")))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError::new(format!(\
                         \"{name}: expected {n} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Fields::Unit => format!("let _ = v; Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// `field: <lookup + from_value>` for one named field. Missing keys become
/// `Null`, which deserializes to `None` for `Option` fields and errors (with
/// the field name) for everything else.
fn named_field_init(type_name: &str, f: &NamedField) -> String {
    let n = &f.name;
    if f.optional {
        format!(
            "{n}: ::serde::Deserialize::from_value(\
                 v.get(\"{n}\").unwrap_or(&::serde::Value::Null))?"
        )
    } else {
        format!(
            "{n}: ::serde::Deserialize::from_value(v.get(\"{n}\").ok_or_else(|| \
                 ::serde::DeError::new(\"{type_name}: missing field `{n}`\"))?)?"
        )
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|var| {
            let v = &var.name;
            match &var.fields {
                Fields::Unit => format!(
                    "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                        .collect();
                    format!(
                        "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{items}]))]),",
                        binds = binds.join(", "),
                        items = items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                    let obj = serialize_named_fields("", fs);
                    format!(
                        "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), {obj})]),",
                        binds = binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as plain strings; data-carrying variants as
    // single-key objects (serde's externally-tagged encoding).
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|var| {
            let v = &var.name;
            match &var.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                )),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{v}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"{name}::{v}: expected array payload\"))?;\n\
                             if items.len() != {n} {{\n\
                                 return Err(::serde::DeError::new(\"{name}::{v}: wrong arity\"));\n\
                             }}\n\
                             return Ok({name}::{v}({items}));\n\
                         }}",
                        items = items.join(", ")
                    ))
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            let field = NamedField { name: f.name.clone(), optional: f.optional };
                            named_field_init(name, &field).replace("v.get(", "payload.get(")
                        })
                        .collect();
                    Some(format!(
                        "\"{v}\" => return Ok({name}::{v} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if let Some(s) = v.as_str() {{\n\
                     match s {{\n{units}\n_ => {{}}\n}}\n\
                 }}\n\
                 if let Some(pairs) = v.as_object() {{\n\
                     if pairs.len() == 1 {{\n\
                         let (tag, payload) = (&pairs[0].0, &pairs[0].1);\n\
                         let _ = &payload;\n\
                         match tag.as_str() {{\n{tagged}\n_ => {{}}\n}}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::new(format!(\"{name}: unrecognized value {{v:?}}\")))\n\
             }}\n\
         }}",
        units = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n")
    )
}
