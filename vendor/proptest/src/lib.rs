//! Offline vendored stand-in for `proptest`.
//!
//! Keeps the subset of the API this workspace's property tests use — the
//! `proptest!` macro, `prop_assert*` / `prop_assume!`, the [`Strategy`]
//! trait with `prop_map`, numeric range strategies, and
//! `proptest::collection::vec` — on top of a deterministic SplitMix64
//! sampler. No shrinking: failures report the seed case index and the
//! sampled arguments instead.

use std::ops::Range;

/// Number of cases each property runs (the real proptest default is 256;
/// 64 keeps the suite fast on the CPU tensor engine).
pub const DEFAULT_CASES: u64 = 64;

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
    }

    /// Seeds deterministically from a test name, so every property has an
    /// independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator: the vendored analogue of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Samples a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy, TestRng,
    };
}

/// Defines property tests. Each function body runs [`DEFAULT_CASES`] times
/// with deterministically sampled arguments; a failing case panics with the
/// case index and the sampled arguments.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..$crate::DEFAULT_CASES {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        $crate::DEFAULT_CASES,
                        msg
                    );
                }
            }
        }
    )*};
}

/// Asserts inside a `proptest!` body; failure aborts only the current case
/// with a message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {} ({}:{})",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+), file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?}) ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        /// Ranges stay in bounds and maps apply.
        #[test]
        fn ranges_and_maps_work(
            x in 3u64..10,
            v in collection::vec(0u32..5, 2usize..6),
            f in -1.0f32..1.0,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!((-1.0..1.0).contains(&f));
            let doubled = (0u32..4).prop_map(|n| n * 2).generate(&mut TestRng::new(x));
            prop_assert!(doubled % 2 == 0);
            prop_assert_eq!(x, x);
        }
    }
}
