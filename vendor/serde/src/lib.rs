//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal replacement. It keeps the public surface the repository
//! actually uses — `Serialize`/`Deserialize` traits, `#[derive(Serialize,
//! Deserialize)]`, and enough of the data model for `serde_json` — while
//! swapping serde's visitor architecture for a simple self-describing
//! [`Value`] tree: `Serialize` lowers a type *to* a `Value`, `Deserialize`
//! raises one *from* it. That is all a JSON round-trip needs.

mod value;

pub use value::{render, Value};

// The derive macros live in the companion proc-macro crate. Re-exporting
// them next to the traits lets `#[derive(Serialize, Deserialize)]` and
// `use serde::{Serialize, Deserialize}` both resolve, exactly as with the
// real serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced when a [`Value`] cannot be raised into a target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lowers `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be raised from a [`Value`].
pub trait Deserialize: Sized {
    /// Raises an instance from the serde data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize implementations
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

/// Map keys follow serde_json's convention: string keys pass through,
/// integer-like keys are stringified.
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        other => panic!("unsupported map key in serialization: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (key_string(k.to_value()), v.to_value())).collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_string(k.to_value()), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    // Integer map keys round-trip through strings in JSON.
                    Value::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| DeError::new(format!("cannot parse {s:?} as {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                out
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single char, found {s:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!("expected 2-element array, found {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!("expected 3-element array, found {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 4 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
                D::from_value(&items[3])?,
            )),
            other => Err(DeError::new(format!("expected 4-element array, found {other:?}"))),
        }
    }
}

/// `&'static str` fields (used by the model zoo's display names) round-trip
/// by leaking the parsed string. Acceptable for config-sized data; matches
/// the spirit of serde's borrowed-str deserialization without input
/// lifetimes.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}
