//! The self-describing data model shared by the vendored `serde` and
//! `serde_json`: a JSON-shaped tree with distinct integer variants so `u64`
//! counters survive round trips without drifting through `f64`.

use std::fmt;
use std::ops::Index;

/// A dynamically typed serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers without a fraction).
    Int(i64),
    /// Unsigned integer (non-negative JSON numbers without a fraction).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` out of bounds or for non-arrays.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::value::render(self, false))
    }
}

/// Renders a value as JSON text; `pretty` adds two-space indentation.
pub fn render(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let mut s = format!("{f}");
                // `{}` prints integral floats without a fraction; keep the
                // value re-parseable as a float-typed field regardless.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                // serde_json writes null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                write_value(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                write_string(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
