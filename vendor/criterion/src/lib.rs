//! Offline vendored stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, [`Bencher::iter`], and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! median-of-samples wall clock; `--test` (as passed by
//! `cargo bench -- --test`) runs each benchmark body once and reports
//! nothing, which is what CI uses as a smoke check.

use std::time::{Duration, Instant};

/// Top-level harness state, passed to each registered bench function.
pub struct Criterion {
    test_mode: bool,
    default_samples: usize,
}

impl Criterion {
    /// Builds a harness from process arguments. Unknown flags (e.g. the
    /// `--bench` cargo appends) are ignored; `--test` switches to
    /// run-once smoke mode.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, default_samples: 10 }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, self.default_samples, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.parent.default_samples);
        run_one(&full, self.parent.test_mode, samples, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the body.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Median time per iteration, filled by `iter`.
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `body`, storing the median per-iteration wall time across the
    /// configured samples. In `--test` mode the body runs exactly once.
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(body());
            return;
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(body());
            times.push(start.elapsed());
        }
        times.sort();
        self.elapsed = Some(times[times.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, samples: usize, f: &mut F) {
    let mut b = Bencher { test_mode, samples: samples.max(1), elapsed: None };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
    } else {
        match b.elapsed {
            Some(d) => println!("bench {name:<48} median {d:>12.3?} ({samples} samples)"),
            None => println!("bench {name:<48} (no iter() call)"),
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run_bodies() {
        let mut calls = 0usize;
        let mut c = Criterion { test_mode: true, default_samples: 3 };
        c.bench_function("unit", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| {
            b.iter(|| 2 * 2);
        });
        g.finish();
        calls += 1;
        assert_eq!(calls, 1);
    }

    #[test]
    fn timed_mode_records_median() {
        let mut b = Bencher { test_mode: false, samples: 3, elapsed: None };
        b.iter(|| std::hint::black_box(42));
        assert!(b.elapsed.is_some());
    }
}
