//! Offline vendored stand-in for `serde_json`, backed by the vendored
//! `serde`'s [`Value`] data model: render to JSON text, parse JSON text, and
//! a reduced `json!` macro covering flat object/array literals.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization / deserialization / IO error.
#[derive(Debug)]
pub enum Error {
    /// JSON text could not be parsed or mapped onto the target type.
    De(DeError),
    /// Parse error with byte position.
    Syntax {
        /// Explanation of the failure.
        msg: String,
        /// Byte offset in the input.
        pos: usize,
    },
    /// An underlying reader/writer failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::De(e) => write!(f, "{e}"),
            Error::Syntax { msg, pos } => write!(f, "JSON syntax error at byte {pos}: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::De(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Lowers any serializable value into a [`Value`] (used by `json!`).
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

/// Raises a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::De)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    Ok(serde::render(&t.to_value(), false))
}

/// Serializes to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    Ok(serde::render(&t.to_value(), true))
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    t: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(t)?.as_bytes())?;
    Ok(())
}

/// Serializes pretty JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    t: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(t)?.as_bytes())?;
    Ok(())
}

/// Parses a typed value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::De)
}

/// Parses a typed value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::Syntax { msg: format!("invalid utf-8: {e}"), pos: 0 })?;
    from_str(s)
}

/// Parses a typed value from a reader.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Builds a [`Value`] from a literal. Reduced grammar compared to the real
/// `serde_json::json!`: object values and array elements must be plain
/// expressions (hoist nested `{...}` literals into a `let` first).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($k:literal : $v:expr),+ $(,)? }) => {
        $crate::Value::Object(vec![$(($k.to_string(), $crate::to_value(&$v))),+])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$v)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::Syntax { msg: "trailing characters".into(), pos });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(msg: impl Into<String>, pos: usize) -> Error {
    Error::Syntax { msg: msg.into(), pos }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err("expected `:` after object key", *pos));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(err("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(err(format!("expected `{kw}`"), *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| err("bad \\u escape", *pos))?;
                        // Surrogate pairs are not needed for this workspace's
                        // ASCII-dominated payloads; map lone surrogates to
                        // the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| err("invalid utf-8 in string", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err("bad number", start))?;
    if text.is_empty() || text == "-" {
        return Err(err("expected value", start));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| err(format!("invalid number `{text}`"), start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = json!({
            "a": 1u64,
            "b": -2i64,
            "c": 1.5f64,
            "d": "text with \"quotes\" and \\slashes",
            "e": true,
            "f": [1u64, 2u64, 3u64],
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_reparse_as_numbers() {
        let v = Value::Float(1234.0);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "1234.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.as_f64(), Some(1234.0));
    }

    #[test]
    fn indexing_and_comparisons() {
        let v: Value = from_str(r#"[{"ph": "X", "ts": 3}]"#).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 1);
        assert_eq!(v[0]["ph"], "X");
        assert_eq!(v[0]["ts"].as_u64(), Some(3));
        assert!(v[0]["missing"].is_null());
    }
}
