//! End-to-end user journey: tokenize a corpus (`mt-data`), train with the
//! harness (`mt-model::trainer`) under the paper's recipe, checkpoint,
//! evaluate, and generate — the full downstream-adopter path through the
//! public API.

use megatron_repro::data::{CharVocab, MicrobatchSampler, PackedDataset};
use megatron_repro::memory::Recompute;
use megatron_repro::model::gpt::Gpt;
use megatron_repro::model::trainer::{LrSchedule, Trainer, TrainerConfig};
use megatron_repro::model::{ActivationLedger, ExecMode, TransformerConfig};
use megatron_repro::tensor::ops;

const CORPUS: &str = "abcabcabcabcabcabcabcabcabcabcabcabcabcabcabcabcabcabc";

fn setup() -> (TransformerConfig, CharVocab, PackedDataset) {
    let vocab = CharVocab::from_corpus(CORPUS);
    let tokens = vocab.encode(CORPUS);
    let cfg = TransformerConfig {
        hidden: 16,
        heads: 2,
        seq: 6,
        micro_batch: 2,
        layers: 2,
        vocab: vocab.len(),
        dropout_p: 0.0,
        causal: true,
    };
    let ds = PackedDataset::new(tokens, cfg.seq);
    (cfg, vocab, ds)
}

fn train(cfg: TransformerConfig, ds: &PackedDataset, steps: usize) -> Trainer {
    let gpt = Gpt::init(cfg, Recompute::Selective, 321);
    let mut trainer = Trainer::new(
        gpt,
        TrainerConfig::builder()
            .lr(1e-2)
            .warmup_steps(5)
            .decay_steps(200)
            .min_lr(1e-3)
            .weight_decay(0.0)
            .clip_norm(Some(1.0))
            .build(),
    );
    let mut sampler = MicrobatchSampler::new(ds, cfg.micro_batch, 3);
    for _ in 0..steps {
        let (tokens, targets) = ds.microbatch(&sampler.next_indices());
        // `step` takes the mode by value or by reference; pass by value here.
        trainer.step(&tokens, &targets, ExecMode::Serial);
    }
    trainer
}

/// Mean loss over every dataset window (batched), on an eval (dropout-off)
/// copy.
fn eval_loss(gpt: &Gpt, cfg: &TransformerConfig, ds: &PackedDataset) -> f32 {
    let model = gpt.eval();
    let mut total = 0.0_f64;
    let mut batches = 0;
    let mut i = 0;
    while i + cfg.micro_batch <= ds.len() {
        let indices: Vec<usize> = (i..i + cfg.micro_batch).collect();
        let (tokens, targets) = ds.microbatch(&indices);
        let logits = model.logits(&tokens, 0);
        total += ops::cross_entropy(&logits, &targets).loss as f64;
        batches += 1;
        i += cfg.micro_batch;
    }
    (total / batches as f64) as f32
}

#[test]
fn the_abc_model_learns_its_corpus() {
    let (cfg, _, ds) = setup();
    let fresh = Gpt::init(cfg, Recompute::Selective, 321);
    let before = eval_loss(&fresh, &cfg, &ds);
    let trained = train(cfg, &ds, 120).into_model();
    let after = eval_loss(&trained, &cfg, &ds);
    assert!(
        after < before * 0.25,
        "eval loss should collapse on a 3-periodic corpus: {before} -> {after}"
    );
    // On a perfectly periodic corpus the model should get close to zero.
    assert!(after < 0.5, "eval loss {after}");
}

#[test]
fn the_trained_model_generates_the_period() {
    let (cfg, vocab, ds) = setup();
    let trained = train(cfg, &ds, 120).into_model();
    // Rebuild at micro_batch 1 for generation via checkpoint surgery.
    let mut ckpt = trained.to_checkpoint();
    ckpt.cfg.micro_batch = 1;
    let gen_model = Gpt::from_checkpoint(ckpt);
    let out = gen_model.generate(&vocab.encode("ab"), 9);
    let text = vocab.decode(&out);
    assert_eq!(text, "abcabcabcab", "greedy generation should lock onto the period");
}

#[test]
fn checkpoint_preserves_training_progress() {
    let (cfg, _, ds) = setup();
    let trained = train(cfg, &ds, 60).into_model();
    let mut buf = Vec::new();
    trained.save_json(&mut buf).expect("serialize");
    let restored = Gpt::load_json(buf.as_slice()).expect("deserialize");
    assert_eq!(eval_loss(&trained, &cfg, &ds), eval_loss(&restored, &cfg, &ds));
}

#[test]
fn trainer_works_under_tensor_parallelism() {
    use megatron_repro::collectives::World;
    let (cfg, _, ds) = setup();
    // Serial trajectory.
    // Clipping uses the rank-local norm, so disable it on both sides for an
    // exact trajectory comparison (a sharding-exact clip would all-reduce
    // the squared norms first, as `clip_grad_norm`'s docs describe).
    let mut serial = Trainer::new(
        Gpt::init(cfg, Recompute::None, 321),
        TrainerConfig::builder()
            .schedule(LrSchedule::constant(5e-3))
            .weight_decay(0.01)
            .clip_norm(None)
            .build(),
    );
    let mut sampler = MicrobatchSampler::new(&ds, cfg.micro_batch, 4);
    let batches: Vec<(Vec<usize>, Vec<usize>)> =
        (0..6).map(|_| ds.microbatch(&sampler.next_indices())).collect();
    let serial_losses: Vec<f32> =
        batches.iter().map(|(t, g)| serial.step(t, g, ExecMode::Serial).loss).collect();

    let template = Gpt::init(cfg, Recompute::None, 321);
    let parallel_losses = World::run(2, |comm| {
        let mut trainer = Trainer::new(
            template.shard(2, comm.rank(), Recompute::None),
            TrainerConfig::builder()
                .schedule(LrSchedule::constant(5e-3))
                .weight_decay(0.01)
                .clip_norm(None)
                .build(),
        );
        batches
            .iter()
            .map(|(t, g)| trainer.step(t, g, ExecMode::TensorParallel(&comm)).loss)
            .collect::<Vec<f32>>()
    });
    for rank_losses in &parallel_losses {
        for (a, b) in serial_losses.iter().zip(rank_losses) {
            assert!((a - b).abs() < 1e-3, "serial {a} vs parallel {b}");
        }
    }
}

#[test]
fn ledger_is_populated_through_the_trainer_path() {
    // The trainer internally records activations; verify the underlying
    // model path still reports Table 2-consistent bytes via a direct call.
    let (cfg, _, ds) = setup();
    let gpt = Gpt::init(cfg, Recompute::Selective, 321);
    let (tokens, targets) = ds.microbatch(&[0, 1]);
    let mut ledger = ActivationLedger::new();
    let _ = gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut ledger);
    let per_layer = 34 * cfg.sbh();
    assert!(ledger.paper_bytes() >= per_layer * cfg.layers as u64);
}
