//! The paper's headline quantitative claims, checked end-to-end against the
//! reproduction (abstract, Sections 5–6, Appendices A–C).

use megatron_repro::core::{Estimator, ModelZoo, TrainingPlanner};
use megatron_repro::flops::FlopsModel;
use megatron_repro::memory::{ActivationMemoryModel, Strategy, A100_80GB_BYTES};

/// Abstract: "our method reduces activation memory by 5×".
#[test]
fn five_x_activation_memory_reduction() {
    for model in ModelZoo::all() {
        let act = ActivationMemoryModel::new(model.shape, model.batch.micro, 8);
        let reduction =
            act.per_layer_bytes(Strategy::tp()) / act.per_layer_bytes(Strategy::tp_sp_selective());
        assert!(
            (4.0..7.0).contains(&reduction),
            "{}: reduction {reduction:.2}x (paper ~5x)",
            model.name
        );
    }
}

/// Abstract: "reducing execution time overhead from activation recomputation
/// by over 90%" — the present work's overhead over the no-recompute baseline
/// is less than 10% of full recomputation's overhead (for the larger
/// models; the 22B pays a slightly larger share, per Figure 8).
#[test]
fn ninety_percent_of_recompute_overhead_eliminated() {
    for model in [ModelZoo::mtnlg_530b(), ModelZoo::gpt_1t()] {
        let layer = megatron_repro::perf::LayerTimeModel::new(
            megatron_repro::perf::GpuSpec::a100(),
            model.shape,
            model.batch.micro,
            model.parallel.tensor,
        );
        let base = layer.times(Strategy::tp());
        let full_overhead = layer.times(Strategy::full_recompute()).overhead_pct(&base);
        let present_overhead = layer.times(Strategy::tp_sp_selective()).overhead_pct(&base);
        let eliminated = 1.0 - present_overhead.max(0.0) / full_overhead;
        assert!(
            eliminated > 0.9,
            "{}: eliminated {:.0}% of the overhead (paper >90%)",
            model.name,
            100.0 * eliminated
        );
    }
}

/// Section 6.3 / abstract: ~30% throughput increase for every Table 3 model.
#[test]
fn throughput_increase_close_to_thirty_percent() {
    for model in ModelZoo::all() {
        let est = Estimator::for_paper_model(&model);
        let full = est.time_report(Strategy::full_recompute()).iteration_s;
        let present = est.time_report(Strategy::tp_sp_selective()).iteration_s;
        let gain = 100.0 * (full / present - 1.0);
        assert!((22.0..45.0).contains(&gain), "{}: {gain:.1}% (paper 29.0–32.1%)", model.name);
    }
}

/// Abstract: the 530B model at 8-way DP (2240 GPUs) reaches an MFU in the
/// mid-50s, a small drop from the non-DP MFU.
#[test]
fn dp_extension_mfu_stays_high() {
    let model = ModelZoo::mtnlg_530b();
    let est = Estimator::for_paper_model(&model);
    let base = est.time_report(Strategy::tp_sp_selective());
    let new_iter = base.iteration_s + est.data_parallel_overhead_s(8);
    let new_mfu = base.mfu * base.iteration_s / new_iter;
    assert!(new_mfu > 0.45, "DP MFU {:.3} (paper 0.542)", new_mfu);
    assert!(base.mfu - new_mfu < 0.05, "drop {:.3} should be modest", base.mfu - new_mfu);
}

/// Section 1: "we observe 30-40% execution time overhead when full
/// activation recomputation is used".
#[test]
fn full_recompute_costs_thirty_to_forty_percent() {
    for model in ModelZoo::all() {
        let layer = megatron_repro::perf::LayerTimeModel::new(
            megatron_repro::perf::GpuSpec::a100(),
            model.shape,
            model.batch.micro,
            model.parallel.tensor,
        );
        let overhead =
            layer.times(Strategy::full_recompute()).overhead_pct(&layer.times(Strategy::tp()));
        assert!((30.0..45.0).contains(&overhead), "{}: {overhead:.1}%", model.name);
    }
}

/// Appendix A: hardware/model FLOPs ratio ≈ 1 + s/6h for every model.
#[test]
fn hardware_model_ratio_approximation() {
    for model in ModelZoo::all() {
        let f = FlopsModel::new(model.shape, model.batch.global);
        let exact =
            f.hardware_flops(megatron_repro::memory::Recompute::Selective) / f.model_flops();
        let approx = f.selective_ratio_approx();
        assert!(
            (exact - approx).abs() / approx < 0.01,
            "{}: exact {exact:.4} vs approx {approx:.4}",
            model.name
        );
    }
}

/// Section 5: "without the memory savings provided by sequence parallelism
/// and selective recompute together, none of these models will fit into
/// memory" — and the planner picks exactly that combination.
#[test]
fn planner_requires_both_techniques_at_80gb() {
    for model in ModelZoo::all() {
        let plan = TrainingPlanner::new(Estimator::for_paper_model(&model), A100_80GB_BYTES).plan();
        assert_eq!(
            plan.strategy,
            Some(Strategy::tp_sp_selective()),
            "{}: planner chose {:?}",
            model.name,
            plan.strategy
        );
        // For the larger models neither technique alone fits (the 22B sits
        // close enough to the line that selective alone squeezes in under
        // our 16 B/param optimizer accounting).
        let fits = |s: Strategy| plan.candidates.iter().find(|c| c.0 == s).unwrap().3;
        assert!(!fits(Strategy::tp()), "{}: the TP baseline must not fit", model.name);
        if model.name != "22B" {
            assert!(!fits(Strategy::tp_sp()), "{}: SP alone must not fit", model.name);
            assert!(
                !fits(Strategy::tp_selective()),
                "{}: selective alone must not fit",
                model.name
            );
        }
        assert!(fits(Strategy::full_recompute()), "{}: full recompute is the fallback", model.name);
    }
}

/// Table 5's MFU trend: utilization improves with model size and tops out
/// in the mid-to-high 50s.
#[test]
fn mfu_trend_matches_table5() {
    let mfus: Vec<(String, f64)> = ModelZoo::all()
        .iter()
        .map(|m| {
            let est = Estimator::for_paper_model(m);
            (m.name.to_string(), est.time_report(Strategy::tp_sp_selective()).mfu)
        })
        .collect();
    assert!(mfus[0].1 > 0.37 && mfus[0].1 < 0.50, "22B MFU {:.3} (paper 0.415)", mfus[0].1);
    for (name, mfu) in &mfus[1..] {
        assert!((0.45..0.66).contains(mfu), "{name} MFU {mfu:.3} (paper 0.51–0.56)");
    }
    assert!(mfus[2].1 > mfus[0].1, "bigger models reach higher MFU");
}
