//! The central verification of the reproduction: the *measured* byte counts
//! of the executing system (mt-model's activation ledger, mt-collectives'
//! wire counters, mt-pipeline's in-flight tracking) must equal the *paper's
//! closed forms* (mt-memory, Table 2, Appendix B) exactly.

use megatron_repro::collectives::World;
use megatron_repro::memory::{ActivationMemoryModel, ModelShape, Recompute, Strategy};
use megatron_repro::model::weights::LayerWeights;
use megatron_repro::model::{ActivationLedger, ExecMode, TransformerConfig, TransformerLayer};
use megatron_repro::pipeline::{PipelineSim, StageCosts};
use megatron_repro::tensor::rng::{CounterRng, SplitMix64};
use megatron_repro::tensor::Tensor;

/// Runs one layer forward on `t` ranks and returns rank 0's ledger.
fn measure_ledger(
    cfg: TransformerConfig,
    t: usize,
    sp: bool,
    policy: Recompute,
) -> ActivationLedger {
    let mut rng = SplitMix64::new(7);
    let full = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    if t == 1 {
        let layer = TransformerLayer::new(cfg, full, 0, policy, CounterRng::new(3));
        let mut ledger = ActivationLedger::new();
        let _ = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
        ledger
    } else {
        World::run(t, |comm| {
            let layer = TransformerLayer::new(
                cfg,
                full.shard(t, comm.rank()),
                0,
                policy,
                CounterRng::new(3),
            );
            let mode = if sp {
                ExecMode::TensorSequenceParallel(&comm)
            } else {
                ExecMode::TensorParallel(&comm)
            };
            let x_local =
                if sp { x.chunk_axis0(t).unwrap()[comm.rank()].clone() } else { x.clone() };
            let mut ledger = ActivationLedger::new();
            let _ = layer.forward(&x_local, 0, mode, &mut ledger);
            ledger
        })
        .remove(0)
    }
}

/// Sweeps shapes × parallelism × strategy and checks measured == formula.
#[test]
fn ledger_equals_table2_across_a_config_sweep() {
    let configs = [
        TransformerConfig {
            hidden: 16,
            heads: 2,
            seq: 4,
            micro_batch: 1,
            layers: 1,
            vocab: 32,
            dropout_p: 0.1,
            causal: true,
        },
        TransformerConfig {
            hidden: 32,
            heads: 4,
            seq: 8,
            micro_batch: 2,
            layers: 1,
            vocab: 32,
            dropout_p: 0.1,
            causal: true,
        },
        TransformerConfig {
            hidden: 48,
            heads: 6,
            seq: 6,
            micro_batch: 3,
            layers: 1,
            vocab: 32,
            dropout_p: 0.0,
            causal: false,
        },
        TransformerConfig {
            hidden: 64,
            heads: 8,
            seq: 16,
            micro_batch: 1,
            layers: 1,
            vocab: 32,
            dropout_p: 0.2,
            causal: true,
        },
    ];
    for cfg in configs {
        for t in [1usize, 2] {
            if cfg.heads % t != 0 || cfg.seq % t != 0 {
                continue;
            }
            for sp in [false, true] {
                if sp && t == 1 {
                    continue;
                }
                for policy in [Recompute::None, Recompute::Selective, Recompute::Full] {
                    let measured = measure_ledger(cfg, t, sp, policy).paper_bytes();
                    let analytical = ActivationMemoryModel::new(
                        cfg.to_shape(),
                        cfg.micro_batch as u64,
                        t as u64,
                    )
                    .per_layer_bytes(Strategy { sequence_parallel: sp, recompute: policy });
                    assert_eq!(
                        measured as f64, analytical,
                        "cfg {cfg:?} t={t} sp={sp} policy={policy:?}"
                    );
                }
            }
        }
    }
}

/// The wire counters of the executing collectives must match the analytical
/// ring model used by the performance layer for the *same* logical traffic.
#[test]
fn runtime_wire_bytes_match_analytical_ring_model() {
    use megatron_repro::collectives::CollectiveKind;
    let elems = 1024u64;
    let n = 4u64;
    let stats = World::run(n as usize, |comm| {
        let x = Tensor::zeros(&[elems as usize]);
        let _ = comm.all_reduce(&x);
        let shard = Tensor::zeros(&[(elems / n) as usize, 1]);
        let _ = comm.all_gather(&shard);
        comm.stats()
    });
    let bytes = elems * 2; // fp16 accounting
    for s in &stats {
        assert_eq!(
            s.kind(CollectiveKind::AllReduce).wire_bytes,
            CollectiveKind::AllReduce.ring_wire_bytes(bytes, n)
        );
        assert_eq!(
            s.kind(CollectiveKind::AllGather).wire_bytes,
            CollectiveKind::AllGather.ring_wire_bytes(bytes, n)
        );
    }
}

/// The pipeline simulator's peak in-flight microbatch counts must equal the
/// `min(p − stage, n)` assumption the memory model's Figure 9 profile uses.
#[test]
fn simulated_in_flight_matches_memory_model_assumption() {
    use megatron_repro::memory::{Parallelism, PipelineMemoryProfile};
    for (p, n) in [(4usize, 16u64), (8, 8), (8, 4), (2, 1)] {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), p, n, 0.1);
        let result = sim.simulate_1f1b(None);
        let shape = ModelShape { heads: 8, hidden: 64, layers: p as u64 * 2, seq: 16, vocab: 128 };
        let act = ActivationMemoryModel::new(shape, 1, 2);
        let parallel = Parallelism { tensor: 2, pipeline: p as u64, interleave: None };
        let profile = PipelineMemoryProfile::new(act, parallel, n);
        for rank in 0..p as u64 {
            assert_eq!(
                result.peak_in_flight[rank as usize],
                profile.in_flight_microbatches(rank),
                "p={p} n={n} rank={rank}"
            );
        }
    }
}

/// Full recomputation's execution cost shows up in the executing system too:
/// the backward pass with `Recompute::Full` repeats the forward work, while
/// selective repeats only the attention core. Wall-clock on our CPU tensor
/// engine is noisy, so this asserts the *ordering* over several repetitions.
#[test]
fn recompute_cost_ordering_on_real_execution() {
    let cfg = TransformerConfig {
        hidden: 128,
        heads: 8,
        seq: 64,
        micro_batch: 2,
        layers: 1,
        vocab: 128,
        dropout_p: 0.0,
        causal: true,
    };
    let mut rng = SplitMix64::new(11);
    let w = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let time_policy = |policy: Recompute| -> f64 {
        let layer = TransformerLayer::new(cfg, w.clone(), 0, policy, CounterRng::new(5));
        // Warm up, then measure only the backward (where recompute happens).
        let mut ledger = ActivationLedger::new();
        let (_, st) = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
        let _ = layer.backward(&dy, st, ExecMode::Serial);
        let reps = 12;
        let mut total = 0.0;
        for _ in 0..reps {
            let mut ledger = ActivationLedger::new();
            let (_, st) = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
            let start = std::time::Instant::now();
            let _ = layer.backward(&dy, st, ExecMode::Serial);
            total += start.elapsed().as_secs_f64();
        }
        total / reps as f64
    };
    let none = time_policy(Recompute::None);
    let full = time_policy(Recompute::Full);
    assert!(
        full > none * 1.2,
        "full-recompute backward ({full:.4}s) should clearly exceed store-all ({none:.4}s)"
    );
    let selective = time_policy(Recompute::Selective);
    assert!(
        selective < full,
        "selective backward ({selective:.4}s) should beat full recompute ({full:.4}s)"
    );
}
