//! Property-based tests over the analytical models and the schedule
//! simulator: the paper's algebraic identities must hold for *arbitrary*
//! valid configurations, not just the Table 3 presets.

use megatron_repro::flops::FlopsModel;
use megatron_repro::memory::{
    ActivationMemoryModel, ModelShape, Parallelism, PipelineMemoryProfile, Recompute, Strategy,
};
use megatron_repro::pipeline::{PipelineSim, StageCosts};
use proptest::prelude::*;

proptest! {
    /// Equation 4 == Equation 1 / t, for any shape.
    #[test]
    fn sequence_parallelism_divides_exactly_by_t(
        t_pow in 0u32..4,
        heads_mult in 1u64..8,
        head_dim in 1u64..64,
        seq_mult in 1u64..32,
        batch in 1u64..8,
        layers in 1u64..32,
    ) {
        let t = 1u64 << t_pow;
        let heads = heads_mult * t;
        let hidden = heads * head_dim;
        let seq = seq_mult * t;
        let shape = ModelShape { heads, hidden, layers, seq, vocab: 1000 };
        let act = ActivationMemoryModel::new(shape, batch, t);
        let serial = act.per_layer_bytes_serial();
        let tpsp = act.per_layer_bytes(Strategy::tp_sp());
        prop_assert!((tpsp - serial / t as f64).abs() < 1e-6 * serial.max(1.0));
    }

    /// Table 2 ordering holds for any shape: adding a technique never
    /// increases memory, and full recomputation is the floor.
    #[test]
    fn table2_ordering_is_universal(
        t_pow in 0u32..4,
        heads_mult in 1u64..8,
        head_dim in 1u64..64,
        seq_mult in 1u64..32,
        batch in 1u64..8,
    ) {
        let t = 1u64 << t_pow;
        let heads = heads_mult * t;
        let shape = ModelShape {
            heads,
            hidden: heads * head_dim,
            layers: 4,
            seq: seq_mult * t,
            vocab: 1000,
        };
        let act = ActivationMemoryModel::new(shape, batch, t);
        let tp = act.per_layer_bytes(Strategy::tp());
        let tpsp = act.per_layer_bytes(Strategy::tp_sp());
        let tpsel = act.per_layer_bytes(Strategy::tp_selective());
        let both = act.per_layer_bytes(Strategy::tp_sp_selective());
        let full = act.per_layer_bytes(Strategy::full_recompute());
        prop_assert!(tp >= tpsp);
        prop_assert!(tp >= tpsel);
        prop_assert!(tpsp >= both);
        prop_assert!(tpsel >= both);
        // 34/t >= 2 holds whenever t <= 17.
        if t <= 8 {
            prop_assert!(both >= full);
        }
    }

    /// Model FLOPs are implementation-independent lower bounds: hardware
    /// FLOPs dominate them for every policy, and selective ≤ full.
    #[test]
    fn hardware_flops_dominate_model_flops(
        heads in 1u64..64,
        head_dim in 8u64..64,
        layers in 1u64..64,
        seq in 64u64..4096,
        batch in 1u64..64,
    ) {
        let hidden = heads * head_dim;
        // Equation 8 charges the selective replay at 3× a single forward
        // (see mt-flops docs); `full > selective` then requires the
        // realistic transformer regime 3h > s, which every published model
        // satisfies (GPT-3: 3h/s = 18).
        prop_assume!(3 * hidden > seq);
        let shape = ModelShape { heads, hidden, layers, seq, vocab: 32000 };
        let f = FlopsModel::new(shape, batch);
        let model = f.model_flops();
        let sel = f.hardware_flops(Recompute::Selective);
        let full = f.hardware_flops(Recompute::Full);
        prop_assert!(f.hardware_flops(Recompute::None) == model);
        prop_assert!(sel > model);
        prop_assert!(full > sel);
        prop_assert!(full <= model * 4.0 / 3.0 + 1.0);
    }

    /// 1F1B invariants for arbitrary pipelines: the makespan is bounded
    /// below by both the busiest stage and the pipeline depth, the bubble
    /// fraction is in [0, 1), and peak in-flight equals min(p − i, n).
    #[test]
    fn one_f_one_b_invariants(
        p in 1usize..10,
        n in 1u64..24,
        f_ms in 0.1f64..5.0,
        b_ratio in 1.0f64..3.0,
        p2p in 0.0f64..0.5,
    ) {
        let b_ms = f_ms * b_ratio;
        let sim = PipelineSim::uniform(StageCosts::new(f_ms, b_ms, 0.0), p, n, p2p);
        let r = sim.simulate_1f1b(None);
        let per_stage_work = n as f64 * (f_ms + b_ms);
        prop_assert!(r.makespan_ms >= per_stage_work - 1e-9, "work lower bound");
        let depth = (p as f64 - 1.0) * (f_ms + p2p) + f_ms + b_ms;
        prop_assert!(r.makespan_ms >= depth - 1e-9, "depth lower bound");
        let bubble = r.bubble_fraction();
        prop_assert!((-1e-9..1.0).contains(&bubble), "bubble {bubble}");
        for (i, &peak) in r.peak_in_flight.iter().enumerate() {
            prop_assert_eq!(peak, ((p - i) as u64).min(n), "stage {}", i);
        }
    }

    /// Appendix C monotonicity: a larger storage budget never slows the
    /// pipeline down, and the extremes match the closed cases.
    #[test]
    fn storage_budget_is_monotone(
        p in 1usize..6,
        n in 1u64..16,
        recompute in 0.0f64..2.0,
    ) {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, recompute), p, n, 0.05);
        let mut prev = f64::INFINITY;
        for k in 0..=n {
            let budget = vec![k; p];
            let mk = sim.simulate_1f1b(Some(&budget)).makespan_ms;
            prop_assert!(mk <= prev + 1e-9, "budget {k}: {mk} > {prev}");
            prev = mk;
        }
        let no_recompute = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), p, n, 0.05)
            .simulate_1f1b(None)
            .makespan_ms;
        prop_assert!((prev - no_recompute).abs() < 1e-9, "full budget equals recompute-free");
    }

    /// The first-stage activation profile is the maximum over ranks, and the
    /// output-deallocation saving equals 2·sbh·in_flight everywhere.
    #[test]
    fn figure9_profile_invariants(
        p in 1u64..12,
        layers_per_stage in 1u64..4,
        batch in 1u64..4,
        n_extra in 0u64..16,
    ) {
        let shape = ModelShape {
            heads: 8,
            hidden: 64,
            layers: p * layers_per_stage,
            seq: 32,
            vocab: 256,
        };
        let act = ActivationMemoryModel::new(shape, batch, 2);
        let parallel = Parallelism { tensor: 2, pipeline: p, interleave: None };
        let profile = PipelineMemoryProfile::new(act, parallel, p + n_extra);
        let series = profile.profile(Strategy::tp_sp_selective(), true);
        let max = series.iter().cloned().fold(0.0_f64, f64::max);
        prop_assert!(series[0] >= max - 1e-9, "rank 0 must hold the peak");
        for rank in 0..p {
            let with = profile.activation_bytes(Strategy::tp_sp_selective(), rank, true);
            let without = profile.activation_bytes(Strategy::tp_sp_selective(), rank, false);
            let expect = 2.0 * act.sbh() * profile.in_flight_microbatches(rank) as f64;
            prop_assert!((without - with - expect).abs() < 1e-6);
        }
    }
}
