//! Multi-step distributed training equivalence: a tiny GPT trained with Adam
//! follows the same loss trajectory whether executed serially, 2-way or
//! 4-way tensor-parallel, or tensor+sequence-parallel, under every
//! recomputation policy — with dropout active.

use megatron_repro::collectives::World;
use megatron_repro::memory::Recompute;
use megatron_repro::model::gpt::Gpt;
use megatron_repro::model::optim::Adam;
use megatron_repro::model::{ActivationLedger, ExecMode, TransformerConfig};
use megatron_repro::tensor::rng::SplitMix64;

const SEED: u64 = 2024;
const STEPS: usize = 8;

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 2,
        layers: 2,
        vocab: 48,
        dropout_p: 0.1,
        causal: true,
    }
}

fn data(c: &TransformerConfig) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(55);
    let n = c.tokens();
    (
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
    )
}

fn train_serial(policy: Recompute) -> Vec<f32> {
    let c = cfg();
    let (tokens, targets) = data(&c);
    let mut gpt = Gpt::init(c, policy, SEED);
    let mut adam = Adam::new(1e-3);
    (0..STEPS)
        .map(|step| {
            let mut ledger = ActivationLedger::new();
            let (loss, grads) =
                gpt.loss_and_grads(&tokens, &targets, step as u64, ExecMode::Serial, &mut ledger);
            adam.update(gpt.param_tensors_mut(), &grads.tensors());
            loss
        })
        .collect()
}

fn train_parallel(t: usize, sp: bool, policy: Recompute) -> Vec<Vec<f32>> {
    let c = cfg();
    let (tokens, targets) = data(&c);
    let template = Gpt::init(c, policy, SEED);
    World::run(t, |comm| {
        let mut gpt = template.shard(t, comm.rank(), policy);
        let mut adam = Adam::new(1e-3);
        (0..STEPS)
            .map(|step| {
                let mode = if sp {
                    ExecMode::TensorSequenceParallel(&comm)
                } else {
                    ExecMode::TensorParallel(&comm)
                };
                let mut ledger = ActivationLedger::new();
                let (loss, grads) =
                    gpt.loss_and_grads(&tokens, &targets, step as u64, mode, &mut ledger);
                adam.update(gpt.param_tensors_mut(), &grads.tensors());
                loss
            })
            .collect()
    })
}

fn assert_curves_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    for (step, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < tol, "{what}: step {step} diverged: {x} vs {y}");
    }
}

#[test]
fn tensor_parallel_training_follows_serial_curve() {
    let serial = train_serial(Recompute::None);
    for t in [2, 4] {
        let curves = train_parallel(t, false, Recompute::None);
        for (rank, curve) in curves.iter().enumerate() {
            assert_curves_close(&serial, curve, 1e-3, &format!("TP t={t} rank={rank}"));
        }
    }
}

#[test]
fn sequence_parallel_training_follows_serial_curve() {
    let serial = train_serial(Recompute::None);
    for t in [2, 4] {
        let curves = train_parallel(t, true, Recompute::None);
        for (rank, curve) in curves.iter().enumerate() {
            assert_curves_close(&serial, curve, 1e-3, &format!("TP+SP t={t} rank={rank}"));
        }
    }
}

#[test]
fn recompute_policies_train_identically_in_parallel() {
    let baseline = train_parallel(2, true, Recompute::None);
    for policy in [Recompute::Selective, Recompute::Full] {
        let other = train_parallel(2, true, policy);
        // Recomputation must be *exactly* invisible, not just close.
        assert_eq!(baseline, other, "policy {policy:?} changed the training trajectory");
    }
}

#[test]
fn all_ranks_agree_on_the_loss() {
    let curves = train_parallel(4, true, Recompute::Selective);
    for rank_curve in &curves[1..] {
        for (a, b) in curves[0].iter().zip(rank_curve) {
            assert!((a - b).abs() < 1e-6, "ranks disagree: {a} vs {b}");
        }
    }
}

#[test]
fn training_actually_learns() {
    let losses = train_serial(Recompute::Selective);
    assert!(
        losses[STEPS - 1] < losses[0],
        "loss should fall: {} -> {}",
        losses[0],
        losses[STEPS - 1]
    );
}
