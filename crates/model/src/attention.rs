//! The attention core: `QKᵀ → softmax → dropout → ·V`.
//!
//! This is exactly the region the paper's Figure 3 marks in red — the part of
//! the layer that *selective activation recomputation* (Section 5) chooses to
//! recompute: its saved tensors scale as `as²b` (large) while its FLOPs per
//! element are low.
//!
//! The functions here operate on **packed** Q/K/V of shape
//! `[s·b, local_heads·head_dim]` covering an arbitrary contiguous range of
//! global heads, so the same code serves the serial model (`all heads`) and
//! every tensor-parallel rank (`a/t` heads with an offset). Dropout masks are
//! drawn from a counter RNG addressed by *global* head index, which makes the
//! computation bit-compatible across shardings and replayable without
//! storage.

use crate::streams::{attention_offset, stream_id, DropoutSite};
use mt_tensor::ops;
use mt_tensor::rng::CounterRng;
use mt_tensor::Tensor;

/// Static parameters of one attention-core invocation.
#[derive(Debug, Clone, Copy)]
pub struct AttnParams {
    /// Sequence length `s`.
    pub seq: usize,
    /// Microbatch size `b`.
    pub micro_batch: usize,
    /// Total (global) head count `a`.
    pub heads: usize,
    /// Per-head dimension `h/a`.
    pub head_dim: usize,
    /// First global head handled by this invocation.
    pub head_offset: usize,
    /// Number of local heads handled (`a/t`).
    pub local_heads: usize,
    /// Apply the causal mask.
    pub causal: bool,
    /// Softmax-dropout probability.
    pub dropout_p: f32,
    /// Layer index (selects the dropout stream).
    pub layer: usize,
    /// Microbatch id (selects the dropout stream).
    pub micro: u64,
}

impl AttnParams {
    fn tokens(&self) -> usize {
        self.seq * self.micro_batch
    }

    fn local_width(&self) -> usize {
        self.local_heads * self.head_dim
    }

    /// Softmax scale `1/√head_dim`.
    pub fn scale(&self) -> f32 {
        1.0 / (self.head_dim as f32).sqrt()
    }

    /// Regenerates the softmax-dropout keep-mask for `(batch, local head)` —
    /// identical bits regardless of how heads are sharded.
    pub fn softmax_mask(&self, rng: &CounterRng, batch: usize, local_head: usize) -> Vec<u8> {
        let stream = stream_id(DropoutSite::Softmax, self.layer, self.micro);
        let head = self.head_offset + local_head;
        let s = self.seq;
        let mut mask = Vec::with_capacity(s * s);
        for q in 0..s {
            for k in 0..s {
                let off = attention_offset(batch, head, q, k, self.heads, s);
                mask.push(u8::from(rng.uniform(stream, off) >= self.dropout_p));
            }
        }
        mask
    }
}

/// Tensors the attention core must keep for its backward pass when it is
/// *not* being recomputed: the softmax outputs (`2as²b` bytes) and the
/// dropout outputs (`2as²b` bytes), per `(batch, local head)`.
#[derive(Debug, Clone)]
pub struct AttnSaved {
    /// Softmax outputs, one `[s, s]` per `(batch, local_head)`,
    /// batch-major.
    pub probs: Vec<Tensor>,
    /// Post-dropout probabilities, same layout.
    pub probs_dropped: Vec<Tensor>,
}

/// Extracts the `[s, head_dim]` matrix of one `(batch, local head)` from a
/// packed `[s·b, local_heads·head_dim]` tensor.
fn extract_head(p: &AttnParams, packed: &Tensor, batch: usize, local_head: usize) -> Tensor {
    let (s, b, hd) = (p.seq, p.micro_batch, p.head_dim);
    let width = p.local_width();
    let mut out = Tensor::zeros(&[s, hd]);
    for si in 0..s {
        let src = (si * b + batch) * width + local_head * hd;
        let dst = si * hd;
        out.data_mut()[dst..dst + hd].copy_from_slice(&packed.data()[src..src + hd]);
    }
    out
}

/// Adds the `[s, head_dim]` matrix of one `(batch, local head)` into a packed
/// `[s·b, local_heads·head_dim]` tensor.
fn scatter_head(
    p: &AttnParams,
    packed: &mut Tensor,
    src: &Tensor,
    batch: usize,
    local_head: usize,
) {
    let (s, b, hd) = (p.seq, p.micro_batch, p.head_dim);
    let width = p.local_width();
    for si in 0..s {
        let dst = (si * b + batch) * width + local_head * hd;
        let srow = si * hd;
        for d in 0..hd {
            packed.data_mut()[dst + d] += src.data()[srow + d];
        }
    }
}

/// Attention-core forward: returns the packed context `[s·b, local_width]`
/// and the saved tensors a non-recomputing backward needs.
///
/// # Panics
///
/// Panics if `q`/`k`/`v` are not `[s·b, local_heads·head_dim]`.
pub fn attention_forward(
    p: &AttnParams,
    rng: &CounterRng,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
) -> (Tensor, AttnSaved) {
    for (name, t) in [("q", q), ("k", k), ("v", v)] {
        assert_eq!(
            t.shape(),
            &[p.tokens(), p.local_width()],
            "attention_forward: bad {name} shape"
        );
    }
    let mut ctx = Tensor::zeros(&[p.tokens(), p.local_width()]);
    let n = p.micro_batch * p.local_heads;
    let mut probs = Vec::with_capacity(n);
    let mut dropped = Vec::with_capacity(n);
    for batch in 0..p.micro_batch {
        for lh in 0..p.local_heads {
            let qm = extract_head(p, q, batch, lh);
            let km = extract_head(p, k, batch, lh);
            let vm = extract_head(p, v, batch, lh);
            let scores = ops::Gemm::NT.apply(&qm, &km).scale(p.scale());
            let pr = ops::softmax_rows(&scores, p.causal);
            let mask = p.softmax_mask(rng, batch, lh);
            let pd = ops::dropout(&pr, &mask, p.dropout_p);
            let ctx_head = ops::Gemm::NN.apply(&pd, &vm);
            scatter_head(p, &mut ctx, &ctx_head, batch, lh);
            probs.push(pr);
            dropped.push(pd);
        }
    }
    (ctx, AttnSaved { probs, probs_dropped: dropped })
}

/// Replays the forward to rebuild [`AttnSaved`] from the stored Q and K —
/// the selective-recomputation path. Bit-identical to what
/// [`attention_forward`] produced, because the dropout mask comes from the
/// counter RNG rather than storage.
pub fn attention_recompute(p: &AttnParams, rng: &CounterRng, q: &Tensor, k: &Tensor) -> AttnSaved {
    let n = p.micro_batch * p.local_heads;
    let mut probs = Vec::with_capacity(n);
    let mut dropped = Vec::with_capacity(n);
    for batch in 0..p.micro_batch {
        for lh in 0..p.local_heads {
            let qm = extract_head(p, q, batch, lh);
            let km = extract_head(p, k, batch, lh);
            let scores = ops::Gemm::NT.apply(&qm, &km).scale(p.scale());
            let pr = ops::softmax_rows(&scores, p.causal);
            let mask = p.softmax_mask(rng, batch, lh);
            let pd = ops::dropout(&pr, &mask, p.dropout_p);
            probs.push(pr);
            dropped.push(pd);
        }
    }
    AttnSaved { probs, probs_dropped: dropped }
}

/// Attention-core backward: given the packed inputs, saved (or recomputed)
/// probabilities, and the upstream context gradient, returns packed
/// `(dQ, dK, dV)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward call.
pub fn attention_backward(
    p: &AttnParams,
    rng: &CounterRng,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    saved: &AttnSaved,
    dctx: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    assert_eq!(dctx.shape(), &[p.tokens(), p.local_width()], "attention_backward: bad dctx");
    assert_eq!(saved.probs.len(), p.micro_batch * p.local_heads, "attention_backward: saved size");
    let mut dq = Tensor::zeros(&[p.tokens(), p.local_width()]);
    let mut dk = Tensor::zeros(&[p.tokens(), p.local_width()]);
    let mut dv = Tensor::zeros(&[p.tokens(), p.local_width()]);
    for batch in 0..p.micro_batch {
        for lh in 0..p.local_heads {
            let idx = batch * p.local_heads + lh;
            let qm = extract_head(p, q, batch, lh);
            let km = extract_head(p, k, batch, lh);
            let vm = extract_head(p, v, batch, lh);
            let dctx_head = extract_head(p, dctx, batch, lh);
            let pr = &saved.probs[idx];
            let pd = &saved.probs_dropped[idx];
            // ctx = pd · V
            let dpd = ops::Gemm::NT.apply(&dctx_head, &vm);
            let dvm = ops::Gemm::TN.apply(pd, &dctx_head);
            // dropout
            let mask = p.softmax_mask(rng, batch, lh);
            let dpr = ops::dropout_backward(&dpd, &mask, p.dropout_p);
            // softmax
            let dscores = ops::softmax_rows_backward(pr, &dpr);
            // scores = scale · q · kᵀ
            let dqm = ops::Gemm::NN.apply(&dscores, &km).scale(p.scale());
            let dkm = ops::Gemm::TN.apply(&dscores, &qm).scale(p.scale());
            scatter_head(p, &mut dq, &dqm, batch, lh);
            scatter_head(p, &mut dk, &dkm, batch, lh);
            scatter_head(p, &mut dv, &dvm, batch, lh);
        }
    }
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_tensor::rng::SplitMix64;

    fn params() -> AttnParams {
        AttnParams {
            seq: 6,
            micro_batch: 2,
            heads: 4,
            head_dim: 5,
            head_offset: 0,
            local_heads: 4,
            causal: true,
            dropout_p: 0.0,
            layer: 0,
            micro: 0,
        }
    }

    fn rand_qkv(p: &AttnParams, seed: u64) -> (Tensor, Tensor, Tensor) {
        let mut rng = SplitMix64::new(seed);
        let shape = [p.seq * p.micro_batch, p.local_heads * p.head_dim];
        (
            Tensor::rand_uniform(&shape, -1.0, 1.0, &mut rng),
            Tensor::rand_uniform(&shape, -1.0, 1.0, &mut rng),
            Tensor::rand_uniform(&shape, -1.0, 1.0, &mut rng),
        )
    }

    #[test]
    fn extract_scatter_roundtrip() {
        let p = params();
        let (q, _, _) = rand_qkv(&p, 1);
        let mut rebuilt = Tensor::zeros(q.shape());
        for batch in 0..p.micro_batch {
            for lh in 0..p.local_heads {
                let m = extract_head(&p, &q, batch, lh);
                scatter_head(&p, &mut rebuilt, &m, batch, lh);
            }
        }
        assert_eq!(rebuilt, q);
    }

    #[test]
    fn recompute_is_bit_identical() {
        let mut p = params();
        p.dropout_p = 0.2;
        let rng = CounterRng::new(77);
        let (q, k, v) = rand_qkv(&p, 2);
        let (_, saved) = attention_forward(&p, &rng, &q, &k, &v);
        let replay = attention_recompute(&p, &rng, &q, &k);
        for (a, b) in saved.probs_dropped.iter().zip(&replay.probs_dropped) {
            assert_eq!(a, b, "replayed dropout output differs");
        }
    }

    #[test]
    fn head_sharding_matches_full_computation() {
        // Running heads 0..2 and 2..4 on "two ranks" must reproduce the
        // 4-head result column-for-column, including dropout bits.
        let mut p_full = params();
        p_full.dropout_p = 0.3;
        let rng = CounterRng::new(99);
        let (q, k, v) = rand_qkv(&p_full, 3);
        let (ctx_full, _) = attention_forward(&p_full, &rng, &q, &k, &v);

        let width_half = 2 * p_full.head_dim;
        for rank in 0..2usize {
            let mut p_half = p_full;
            p_half.local_heads = 2;
            p_half.head_offset = rank * 2;
            // Slice packed q/k/v columns for this rank's heads.
            let cols = |t: &Tensor| -> Tensor {
                let parts = t.chunk_last_axis(2).unwrap();
                parts[rank].clone()
            };
            let (ctx_half, _) = attention_forward(&p_half, &rng, &cols(&q), &cols(&k), &cols(&v));
            let expect = ctx_full.chunk_last_axis(2).unwrap()[rank].clone();
            assert!(
                ctx_half.allclose(&expect, 1e-5, 1e-6),
                "rank {rank} context mismatch: {} vs {}",
                ctx_half.max_abs_diff(&expect),
                width_half
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut p = params();
        p.seq = 4;
        p.micro_batch = 1;
        p.local_heads = 2;
        p.heads = 2;
        p.head_dim = 3;
        let rng = CounterRng::new(5);
        let (q, k, v) = rand_qkv(&p, 4);
        let mut wrng = SplitMix64::new(6);
        let w = Tensor::rand_uniform(&[p.seq, p.local_heads * p.head_dim], -1.0, 1.0, &mut wrng);
        let loss = |q_: &Tensor, k_: &Tensor, v_: &Tensor| {
            attention_forward(&p, &rng, q_, k_, v_)
                .0
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, saved) = attention_forward(&p, &rng, &q, &k, &v);
        let (dq, dk, dv) = attention_backward(&p, &rng, &q, &k, &v, &saved, &w);
        let fdq = mt_tensor::check::finite_diff(&q, |t| loss(t, &k, &v));
        let fdk = mt_tensor::check::finite_diff(&k, |t| loss(&q, t, &v));
        let fdv = mt_tensor::check::finite_diff(&v, |t| loss(&q, &k, t));
        assert!(mt_tensor::check::grads_close(&dq, &fdq), "dq");
        assert!(mt_tensor::check::grads_close(&dk, &fdk), "dk");
        assert!(mt_tensor::check::grads_close(&dv, &fdv), "dv");
    }

    #[test]
    fn backward_with_dropout_matches_finite_difference() {
        let mut p = params();
        p.seq = 4;
        p.micro_batch = 1;
        p.local_heads = 2;
        p.heads = 2;
        p.head_dim = 3;
        p.dropout_p = 0.25; // masks are deterministic, so the loss is smooth
        let rng = CounterRng::new(8);
        let (q, k, v) = rand_qkv(&p, 9);
        let loss = |q_: &Tensor| attention_forward(&p, &rng, q_, &k, &v).0.sum();
        let (_, saved) = attention_forward(&p, &rng, &q, &k, &v);
        let ones = Tensor::full(&[p.seq, p.local_heads * p.head_dim], 1.0);
        let (dq, _, _) = attention_backward(&p, &rng, &q, &k, &v, &saved, &ones);
        let fdq = mt_tensor::check::finite_diff(&q, |t| loss(t));
        assert!(mt_tensor::check::grads_close(&dq, &fdq));
    }
}
