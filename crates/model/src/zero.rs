//! A minimal ZeRO stage-1 optimizer (Rajbhandari et al.), the
//! data-parallel-side memory technique the paper's Related Work contrasts
//! with its model-parallel approach: optimizer state is *sharded across
//! data-parallel replicas* instead of replicated, cutting the
//! 12 bytes/parameter of Adam moments + master weights by the DP degree.
//!
//! Execution per step, per parameter tensor:
//!
//! 1. all-reduce the gradient across the DP group (as plain DP would),
//! 2. the tensor's *owner* rank applies the Adam update using its local
//!    optimizer state,
//! 3. the updated tensor is broadcast back from the owner.
//!
//! Ownership is assigned greedily by element count so state memory balances
//! across ranks. The numerical trajectory is identical to replicated Adam —
//! verified against it in the tests — while each rank holds only ~`1/dp` of
//! the optimizer state, which is the whole point.

use crate::optim::{Adam, AdamState};
use mt_collectives::Communicator;
use mt_tensor::Tensor;

/// ZeRO-1 wrapper around [`Adam`].
#[derive(Debug, Clone)]
pub struct ZeroAdam {
    /// Owner rank per parameter index.
    owners: Vec<usize>,
    /// This rank's index in the DP group.
    rank: usize,
    /// Adam over the owned subset only.
    adam: Adam,
    /// Elements of state this rank owns (for memory accounting).
    owned_elements: usize,
}

impl ZeroAdam {
    /// Creates a ZeRO-1 optimizer for a parameter list described by
    /// `param_elements` (element count per tensor, in update order), sharded
    /// over `dp_size` replicas; `rank` is this replica's index.
    ///
    /// # Panics
    ///
    /// Panics if `dp_size == 0`, `rank >= dp_size`, or the list is empty.
    pub fn new(lr: f32, param_elements: &[usize], dp_size: usize, rank: usize) -> Self {
        assert!(rank < dp_size, "rank out of range");
        let owners = Self::assign_owners(param_elements, dp_size);
        let owned_elements =
            owners.iter().zip(param_elements).filter(|(&o, _)| o == rank).map(|(_, &e)| e).sum();
        ZeroAdam { owners, rank, adam: Adam::new(lr), owned_elements }
    }

    /// The deterministic owner assignment [`ZeroAdam::new`] uses: each
    /// tensor (largest first) goes to the least loaded rank. Exposed so a
    /// degree-changing re-shard can recompute both the old and the new
    /// assignment from the parameter list alone — no rank has to be alive
    /// to answer "who owned tensor `i`?".
    ///
    /// # Panics
    ///
    /// Panics if `dp_size == 0` or the list is empty.
    pub fn assign_owners(param_elements: &[usize], dp_size: usize) -> Vec<usize> {
        assert!(dp_size > 0, "dp_size must be positive");
        assert!(!param_elements.is_empty(), "no parameters");
        // Greedy balance: assign each tensor (largest first) to the least
        // loaded rank; deterministic across replicas.
        let mut order: Vec<usize> = (0..param_elements.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(param_elements[i]));
        let mut load = vec![0usize; dp_size];
        let mut owners = vec![0usize; param_elements.len()];
        for i in order {
            let target = (0..dp_size).min_by_key(|&r| (load[r], r)).expect("dp_size > 0");
            owners[i] = target;
            load[target] += param_elements[i];
        }
        owners
    }

    /// Snapshot of this rank's optimizer-state shard: the inner Adam state
    /// over the owned tensors only, in ascending parameter-index order.
    /// This is the per-rank blob a checkpoint stores and an elastic
    /// re-shard gathers.
    pub fn state(&self) -> AdamState {
        self.adam.state()
    }

    /// Restores a shard snapshot taken by [`ZeroAdam::state`] on a
    /// `ZeroAdam` constructed with the same parameter list, DP degree, and
    /// rank (so the owned subset matches).
    pub fn load_state(&mut self, state: AdamState) {
        self.adam.load_state(state);
    }

    /// Elements of optimizer state held on this rank. Replicated Adam would
    /// hold the full sum; ZeRO-1 holds roughly `1/dp` of it.
    pub fn owned_state_elements(&self) -> usize {
        self.owned_elements
    }

    /// Owner rank of parameter `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.owners[i]
    }

    /// One ZeRO-1 update step over the DP group.
    ///
    /// Every replica passes its local (unreduced) gradients; the method
    /// performs the gradient all-reduce internally.
    ///
    /// # Panics
    ///
    /// Panics if list lengths differ from construction or shapes mismatch.
    pub fn step(&mut self, comm: &Communicator, params: Vec<&mut Tensor>, grads: &[&Tensor]) {
        assert_eq!(params.len(), self.owners.len(), "parameter list changed");
        assert_eq!(grads.len(), self.owners.len(), "gradient list changed");
        // 1. reduce gradients; 2. owners update; 3. broadcast params back.
        let mut owned_params: Vec<&mut Tensor> = Vec::new();
        let mut owned_grads: Vec<Tensor> = Vec::new();
        let mut rest: Vec<(&mut Tensor, usize)> = Vec::new();
        for ((i, p), g) in params.into_iter().enumerate().zip(grads) {
            let reduced = comm.all_reduce(g);
            if self.owners[i] == self.rank {
                owned_params.push(p);
                owned_grads.push(reduced);
            } else {
                rest.push((p, i));
            }
        }
        let grad_refs: Vec<&Tensor> = owned_grads.iter().collect();
        self.adam.update(owned_params.iter_mut().map(|p| &mut **p).collect(), &grad_refs);
        // Broadcast every tensor from its owner so replicas stay in sync.
        // (SPMD: all ranks iterate the same sequence.)
        let mut owned_iter = owned_params.into_iter();
        let mut rest_iter = rest.into_iter();
        for (i, owner) in self.owners.clone().into_iter().enumerate() {
            if owner == self.rank {
                let p = owned_iter.next().expect("owned param in order");
                *p = comm.broadcast(p, owner);
            } else {
                let (p, idx) = rest_iter.next().expect("non-owned param in order");
                debug_assert_eq!(idx, i);
                *p = comm.broadcast(p, owner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_collectives::World;

    #[test]
    fn ownership_balances_by_elements() {
        let z = ZeroAdam::new(0.1, &[100, 50, 50, 10, 10], 2, 0);
        // Largest (100) to rank 0; the two 50s to rank 1; the 10s balance.
        let total: usize = 220;
        let owned = z.owned_state_elements();
        assert!(
            owned >= total / 2 - 15 && owned <= total / 2 + 15,
            "rank 0 owns {owned} of {total}"
        );
    }

    #[test]
    fn ownership_is_identical_across_ranks() {
        let a = ZeroAdam::new(0.1, &[7, 3, 9, 2], 3, 0);
        let b = ZeroAdam::new(0.1, &[7, 3, 9, 2], 3, 2);
        for i in 0..4 {
            assert_eq!(a.owner(i), b.owner(i));
        }
    }

    #[test]
    fn zero1_matches_replicated_adam_on_a_quadratic() {
        // Two replicas minimize ||x − c||² from the same start with
        // replica-local half-gradients (so the all-reduce reconstructs the
        // full gradient); the trajectory must equal plain Adam on the full
        // gradient.
        let c = [2.0_f32, -1.0, 0.5, 4.0];
        let steps = 30;
        // Reference: plain Adam.
        let mut x_ref = Tensor::zeros(&[4]);
        let mut adam = Adam::new(0.05);
        for _ in 0..steps {
            let g = Tensor::from_fn(&[4], |i| 2.0 * (x_ref.data()[i] - c[i]));
            adam.update(vec![&mut x_ref], &[&g]);
        }
        // ZeRO-1 over 2 replicas.
        let results = World::run(2, |comm| {
            let mut x = Tensor::zeros(&[4]);
            let mut zero = ZeroAdam::new(0.05, &[4], 2, comm.rank());
            for _ in 0..steps {
                // Each replica contributes half the gradient.
                let g = Tensor::from_fn(&[4], |i| x.data()[i] - c[i]);
                zero.step(&comm, vec![&mut x], &[&g]);
            }
            x
        });
        for x in &results {
            assert!(
                x.allclose(&x_ref, 1e-5, 1e-6),
                "ZeRO trajectory diverged: {:?} vs {:?}",
                x.data(),
                x_ref.data()
            );
        }
    }

    #[test]
    fn state_memory_is_sharded() {
        // 10 equal tensors over 5 ranks: each rank holds exactly 1/5 of the
        // optimizer state.
        let elements = vec![100usize; 10];
        for rank in 0..5 {
            let z = ZeroAdam::new(0.1, &elements, 5, rank);
            assert_eq!(z.owned_state_elements(), 200);
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn rejects_bad_rank() {
        let _ = ZeroAdam::new(0.1, &[4], 2, 2);
    }
}
