//! One transformer layer, executable serially, tensor-parallel (Figure 4),
//! or tensor+sequence-parallel (Figure 5), under any of the three
//! recomputation policies.
//!
//! A single implementation covers all modes; the mode only decides
//!
//! * how activations are sharded (`[s·b, h]` replicated vs `[s·b/t, h]`
//!   sequence shards),
//! * which collective implements each conjugate pair:
//!   `f`/`f̄` (identity / all-reduce) for tensor parallelism,
//!   `g`/`ḡ` (all-gather / reduce-scatter) for tensor+sequence parallelism.
//!
//! Sequence parallelism also applies the paper's extra memory trick: the
//! gathered LayerNorm outputs `Y` are *not* kept for the backward pass —
//! only the local shard `Yᵢˢ` is, and the backward pass re-all-gathers it
//! (Section 4.2.2, last paragraph).

use crate::attention::{
    attention_backward, attention_forward, attention_recompute, AttnParams, AttnSaved,
};
use crate::config::TransformerConfig;
use crate::ledger::{ActivationLedger, Category};
use crate::overlap::{timed_exposed, timed_recompute, OverlapPolicy};
use crate::policy::ExecPolicy;
use crate::streams::{element_offset, stream_id, DropoutSite};
use crate::weights::{LayerGrads, LayerWeights};
use mt_collectives::{chunk_rows, Communicator};
use mt_kernels::overlap::{gemm_gathered, recompute_prefetch, ChunkSlab, OverlapPlan};
use mt_memory::Recompute;
use mt_tensor::ops;
use mt_tensor::ops::LayerNormSaved;
use mt_tensor::rng::CounterRng;
use mt_tensor::Tensor;

/// How a layer executes: serially or on one rank of a parallel group.
#[derive(Clone, Copy)]
pub enum ExecMode<'a> {
    /// Single process, no sharding — the reference (Figure 2).
    Serial,
    /// Megatron tensor parallelism: activations inside the attention/MLP
    /// blocks are sharded, LayerNorms and dropouts replicated (Figure 4).
    TensorParallel(&'a Communicator),
    /// Tensor + sequence parallelism: the LayerNorm/dropout regions operate
    /// on sequence shards (Figure 5).
    TensorSequenceParallel(&'a Communicator),
}

impl std::fmt::Debug for ExecMode<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Serial => write!(f, "Serial"),
            ExecMode::TensorParallel(c) => write!(f, "TensorParallel(t={})", c.size()),
            ExecMode::TensorSequenceParallel(c) => {
                write!(f, "TensorSequenceParallel(t={})", c.size())
            }
        }
    }
}

impl<'a> ExecMode<'a> {
    /// Tensor-parallel group size `t` (1 for serial).
    pub fn t(&self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::TensorParallel(c) | ExecMode::TensorSequenceParallel(c) => c.size(),
        }
    }

    /// This rank's index (0 for serial).
    pub fn rank(&self) -> usize {
        match self {
            ExecMode::Serial => 0,
            ExecMode::TensorParallel(c) | ExecMode::TensorSequenceParallel(c) => c.rank(),
        }
    }

    /// Whether sequence parallelism is active.
    pub fn sequence_parallel(&self) -> bool {
        matches!(self, ExecMode::TensorSequenceParallel(_))
    }

    /// The tensor-parallel communicator, when one is active (`None` for
    /// serial execution).
    pub fn comm(&self) -> Option<&'a Communicator> {
        match self {
            ExecMode::Serial => None,
            ExecMode::TensorParallel(c) | ExecMode::TensorSequenceParallel(c) => Some(c),
        }
    }
}

/// Everything a non-recomputing backward pass needs. Field names follow the
/// forward dataflow of Figure 2.
#[derive(Debug, Clone)]
pub struct StoredState {
    micro: u64,
    /// Layer input (= first LayerNorm input); sequence shard under SP.
    x: Tensor,
    ln1_saved: LayerNormSaved,
    /// The QKV GEMM input. Under SP only the local shard `Yᵢˢ` is kept and
    /// the backward pass re-gathers (the paper's extra all-gather).
    y1: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax/dropout products; `None` under selective recomputation.
    attn: Option<AttnSaved>,
    /// Projection GEMM input.
    ctx: Tensor,
    /// Second LayerNorm input (first residual sum); shard under SP.
    r1: Tensor,
    ln2_saved: LayerNormSaved,
    /// MLP first GEMM input (shard under SP).
    y2: Tensor,
    /// GeLU input.
    m1: Tensor,
    /// MLP second GEMM input (GeLU output).
    g_act: Tensor,
}

/// Per-layer saved state, shaped by the recomputation policy.
#[derive(Debug, Clone)]
pub enum LayerState {
    /// Policies `None` and `Selective` (the latter with `attn` dropped).
    Stored(Box<StoredState>),
    /// Policy `Full`: only the layer input survives.
    Checkpoint {
        /// The checkpointed layer input.
        x: Tensor,
        /// Microbatch id, needed to replay dropout masks.
        micro: u64,
    },
}

/// One transformer layer.
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    cfg: TransformerConfig,
    weights: LayerWeights,
    layer_idx: usize,
    policy: Recompute,
    overlap: OverlapPolicy,
    rng: CounterRng,
}

impl TransformerLayer {
    /// Creates a layer.
    ///
    /// `weights` must be full-shape for serial execution or the rank's shard
    /// (see [`LayerWeights::shard`]) for parallel execution. `rng` seeds the
    /// replayable dropout masks and must be identical on all ranks.
    pub fn new(
        cfg: TransformerConfig,
        weights: LayerWeights,
        layer_idx: usize,
        policy: Recompute,
        rng: CounterRng,
    ) -> Self {
        TransformerLayer { cfg, weights, layer_idx, policy, overlap: OverlapPolicy::Exposed, rng }
    }

    /// Adopts an [`ExecPolicy`]'s overrides as this layer's stored defaults:
    /// a `Some` recompute or overlap half replaces the stored one, `None`
    /// halves leave it untouched (the policy's execution mode is per-call —
    /// it borrows a communicator — and is ignored here). All ranks of a
    /// group must store the same overlap policy; the chunking is part of
    /// the SPMD protocol. The policy was validated at
    /// [`ExecPolicy::builder`], so this cannot introduce a zero-chunk
    /// configuration.
    pub fn with_exec_policy(mut self, policy: &ExecPolicy<'_>) -> Self {
        if let Some(recompute) = policy.recompute() {
            self.policy = recompute;
        }
        if let Some(overlap) = policy.overlap() {
            self.overlap = overlap;
        }
        self
    }

    /// The active overlap policy.
    pub fn overlap_policy(&self) -> OverlapPolicy {
        self.overlap
    }

    /// The layer's weights (shard-shaped in parallel execution).
    pub fn weights(&self) -> &LayerWeights {
        &self.weights
    }

    /// Mutable access for optimizers.
    pub fn weights_mut(&mut self) -> &mut LayerWeights {
        &mut self.weights
    }

    /// The recomputation policy this layer runs.
    pub fn policy(&self) -> Recompute {
        self.policy
    }

    fn attn_params(&self, mode: &ExecMode<'_>, micro: u64) -> AttnParams {
        let t = mode.t();
        AttnParams {
            seq: self.cfg.seq,
            micro_batch: self.cfg.micro_batch,
            heads: self.cfg.heads,
            head_dim: self.cfg.head_dim(),
            head_offset: mode.rank() * (self.cfg.heads / t),
            local_heads: self.cfg.heads / t,
            causal: self.cfg.causal,
            dropout_p: self.cfg.dropout_p,
            layer: self.layer_idx,
            micro,
        }
    }

    /// Rows held locally in the LayerNorm/dropout regions.
    fn local_rows(&self, mode: &ExecMode<'_>) -> usize {
        if mode.sequence_parallel() {
            self.cfg.tokens() / mode.t()
        } else {
            self.cfg.tokens()
        }
    }

    /// Regenerates a row-region dropout mask addressed by global rows, so
    /// shards and the serial model draw identical bits.
    fn region_mask(
        &self,
        site: DropoutSite,
        micro: u64,
        mode: &ExecMode<'_>,
        rows: usize,
    ) -> Vec<u8> {
        let stream = stream_id(site, self.layer_idx, micro);
        let h = self.cfg.hidden;
        let row0 = if mode.sequence_parallel() { mode.rank() * rows } else { 0 };
        let mut mask = Vec::with_capacity(rows * h);
        for r in 0..rows {
            for c in 0..h {
                let off = element_offset(row0 + r, c, h);
                mask.push(u8::from(self.rng.uniform(stream, off) >= self.cfg.dropout_p));
            }
        }
        mask
    }

    /// `g` forward / `ḡ` backward fused with its consumer GEMM: gathers the
    /// sequence shard (identity outside SP) and computes
    /// `gathered · w` (`transpose_b` selects `A·Bᵀ`). The gathered rows are
    /// the GEMM's *output* rows, so under [`OverlapPolicy::Overlapped`] the
    /// chunked gather pipelines into `mt-kernels`' band driver; the exposed
    /// policy blocks on one whole-tensor all-gather first. Returns the
    /// product and, when `want_full`, the gathered tensor itself (for
    /// contraction-side consumers like the weight gradients, which cannot
    /// be row-decomposed).
    fn gather_gemm(
        &self,
        mode: &ExecMode<'_>,
        overlap: OverlapPolicy,
        shard: &Tensor,
        w: &Tensor,
        transpose_b: bool,
        want_full: bool,
    ) -> (Tensor, Option<Tensor>) {
        let descriptor = if transpose_b { ops::Gemm::NT } else { ops::Gemm::NN };
        let comm = match mode {
            ExecMode::TensorSequenceParallel(c) => c,
            // f forward / f̄ backward enter the region as the identity.
            _ => return (descriptor.apply(shard, w), want_full.then(|| shard.clone())),
        };
        let chunks = match overlap {
            OverlapPolicy::Exposed => {
                let full = timed_exposed(|| comm.all_gather(shard));
                let out = descriptor.apply(&full, w);
                return (out, want_full.then_some(full));
            }
            // Recompute prefetch is collective-free, so its collective
            // schedule is exactly the comm-overlapped one.
            OverlapPolicy::Overlapped { chunks }
            | OverlapPolicy::OverlappedRecompute { chunks } => chunks,
        };
        let n = comm.size();
        let shard_rows = shard.shape()[0];
        let m = n * shard_rows;
        let (wn, wk) =
            if transpose_b { (w.shape()[0], w.shape()[1]) } else { (w.shape()[1], w.shape()[0]) };
        assert_eq!(shard.shape()[1], wk, "gather_gemm: contraction dims disagree");
        let mut plan = OverlapPlan::default();
        for j in 0..chunks {
            let (a, b) = chunk_rows(shard_rows, chunks, j);
            plan.chunks.push(
                (0..n).map(|i| ChunkSlab { out_row0: i * shard_rows + a, rows: b - a }).collect(),
            );
        }
        let mut out = vec![0.0f32; m * wn];
        let mut full = want_full.then(|| vec![0.0f32; m * wk]);
        let report = gemm_gathered(
            mt_kernels::default_backend(),
            transpose_b,
            wn,
            wk,
            &plan,
            w.data(),
            &mut out,
            full.as_deref_mut(),
            |j| comm.all_gather_chunk(shard, j, chunks).data().to_vec(),
        );
        crate::overlap::add_comm_time(report.comm_us, report.exposed_us);
        (
            Tensor::from_vec_unchecked(vec![m, wn], out),
            full.map(|v| Tensor::from_vec_unchecked(vec![m, wk], v)),
        )
    }

    /// `f̄`/`ḡ` forward and `f`/`g` backward: combine the per-rank partial
    /// sums onto the LayerNorm/dropout region's layout. The SP
    /// reduce-scatter is chunked under [`OverlapPolicy::Overlapped`] (same
    /// wire traffic, and the static extractor mirrors the chunking); it has
    /// no row-parallel consumer to hide behind, so it stays exposed either
    /// way.
    fn combine_region(
        &self,
        mode: &ExecMode<'_>,
        overlap: OverlapPolicy,
        partial: &Tensor,
    ) -> Tensor {
        match mode {
            ExecMode::Serial => partial.clone(),
            ExecMode::TensorParallel(c) => timed_exposed(|| c.all_reduce(partial)),
            ExecMode::TensorSequenceParallel(c) => match overlap {
                OverlapPolicy::Exposed => timed_exposed(|| c.reduce_scatter(partial)),
                OverlapPolicy::Overlapped { chunks }
                | OverlapPolicy::OverlappedRecompute { chunks } => {
                    timed_exposed(|| c.reduce_scatter_chunked(partial, chunks))
                }
            },
        }
    }

    /// The backward re-gather of a stored LayerNorm-output shard (the
    /// paper's extra all-gather). Its consumer is the contraction side of a
    /// `TN` weight-gradient GEMM, which cannot start on partial rows, so
    /// the gather is chunked under [`OverlapPolicy::Overlapped`] but not
    /// pipelined.
    fn regather(&self, mode: &ExecMode<'_>, overlap: OverlapPolicy, shard: &Tensor) -> Tensor {
        match mode {
            ExecMode::Serial | ExecMode::TensorParallel(_) => shard.clone(),
            ExecMode::TensorSequenceParallel(c) => match overlap {
                OverlapPolicy::Exposed => timed_exposed(|| c.all_gather(shard)),
                OverlapPolicy::Overlapped { chunks }
                | OverlapPolicy::OverlappedRecompute { chunks } => {
                    timed_exposed(|| c.all_gather_chunked(shard, chunks))
                }
            },
        }
    }

    /// Full forward pass producing the complete stored state; records
    /// nothing. The policy-aware [`TransformerLayer::forward`] wraps this.
    fn forward_full(
        &self,
        x: &Tensor,
        micro: u64,
        mode: &ExecMode<'_>,
        overlap: OverlapPolicy,
    ) -> (Tensor, StoredState) {
        let rows = self.local_rows(mode);
        assert_eq!(
            x.shape(),
            &[rows, self.cfg.hidden],
            "layer {} forward: input shape mismatch for {mode:?}",
            self.layer_idx
        );
        let w = &self.weights;

        // Under SP the gathered tensors are not needed again (only the local
        // shard is kept for backward), so the fused gather-GEMMs can skip
        // assembling them.
        let keep_full = !mode.sequence_parallel();

        // --- attention half ---
        let (y_ln1, ln1_saved) = ops::layer_norm(x, &w.ln1_gamma, &w.ln1_beta);
        // g / f fused with the QKV GEMM.
        let (qkv_raw, y1_full) =
            self.gather_gemm(mode, overlap, &y_ln1, &w.w_qkv, false, keep_full);
        let qkv = ops::add_bias(&qkv_raw, &w.b_qkv);
        let blocks = qkv.chunk_last_axis(3).expect("qkv packs 3 blocks");
        let (q, k, v) = (blocks[0].clone(), blocks[1].clone(), blocks[2].clone());
        let ap = self.attn_params(mode, micro);
        let (ctx, attn_saved) = attention_forward(&ap, &self.rng, &q, &k, &v);
        let o_partial = ops::Gemm::NN.apply(&ctx, &w.w_o);
        let o = ops::add_bias(&self.combine_region(mode, overlap, &o_partial), &w.b_o); // f̄ / ḡ
        let mask_attn = self.region_mask(DropoutSite::AttentionOutput, micro, mode, rows);
        let od = ops::dropout(&o, &mask_attn, self.cfg.dropout_p);
        let r1 = ops::residual_add(x, &od);

        // --- MLP half ---
        let (y_ln2, ln2_saved) = ops::layer_norm(&r1, &w.ln2_gamma, &w.ln2_beta);
        let (m1_raw, y2_full) = self.gather_gemm(mode, overlap, &y_ln2, &w.w1, false, keep_full);
        let m1 = ops::add_bias(&m1_raw, &w.b1);
        let g_act = ops::gelu(&m1);
        let m2_partial = ops::Gemm::NN.apply(&g_act, &w.w2);
        let m2 = ops::add_bias(&self.combine_region(mode, overlap, &m2_partial), &w.b2);
        let mask_mlp = self.region_mask(DropoutSite::MlpOutput, micro, mode, rows);
        let md = ops::dropout(&m2, &mask_mlp, self.cfg.dropout_p);
        let out = ops::residual_add(&r1, &md);

        // Under SP we keep only the local LayerNorm output shards (the
        // paper's trick); otherwise y1/y2 *are* the gathered tensors.
        let (y1_keep, y2_keep) = if mode.sequence_parallel() {
            (y_ln1, y_ln2)
        } else {
            (y1_full.expect("full tensors kept outside SP"), y2_full.expect("full tensors kept"))
        };
        let state = StoredState {
            micro,
            x: x.clone(),
            ln1_saved,
            y1: y1_keep,
            q,
            k,
            v,
            attn: Some(attn_saved),
            ctx,
            r1,
            ln2_saved,
            y2: y2_keep,
            m1,
            g_act,
        };
        (out, state)
    }

    /// Records what `state` stores into the ledger, per the active policy.
    fn record_stored(&self, st: &StoredState, ledger: &mut ActivationLedger) {
        ledger.record(Category::LayerNormInput, st.x.numel() as u64);
        ledger.record(Category::SmallStatistics, 2 * st.x.rows() as u64);
        ledger.record(Category::QkvInput, st.y1.numel() as u64);
        ledger.record(Category::QueryKey, (st.q.numel() + st.k.numel()) as u64);
        ledger.record(Category::Value, st.v.numel() as u64);
        if let Some(attn) = &st.attn {
            let probs_elems: u64 = attn.probs.iter().map(|t| t.numel() as u64).sum();
            let dropped_elems: u64 = attn.probs_dropped.iter().map(|t| t.numel() as u64).sum();
            ledger.record(Category::SoftmaxOutput, probs_elems);
            ledger.record(Category::SoftmaxDropoutMask, probs_elems);
            ledger.record(Category::SoftmaxDropoutOutput, dropped_elems);
        }
        ledger.record(Category::ProjectionInput, st.ctx.numel() as u64);
        ledger.record(Category::AttentionDropoutMask, st.r1.numel() as u64);
        ledger.record(Category::LayerNormInput, st.r1.numel() as u64);
        ledger.record(Category::SmallStatistics, 2 * st.r1.rows() as u64);
        ledger.record(Category::MlpFirstInput, st.y2.numel() as u64);
        ledger.record(Category::GeluInput, st.m1.numel() as u64);
        ledger.record(Category::MlpSecondInput, st.g_act.numel() as u64);
        ledger.record(Category::MlpDropoutMask, st.r1.numel() as u64);
    }

    /// Forward pass under the resolved policy. Saved activations are
    /// recorded in `ledger` (byte-exact, paper accounting).
    ///
    /// `policy` accepts anything convertible into an [`ExecPolicy`] — a
    /// bare [`ExecMode`] (by value or reference) inherits this layer's
    /// stored recompute/overlap defaults; an explicit policy overrides the
    /// halves it sets.
    pub fn forward<'m>(
        &self,
        x: &Tensor,
        micro: u64,
        policy: impl Into<ExecPolicy<'m>>,
        ledger: &mut ActivationLedger,
    ) -> (Tensor, LayerState) {
        let policy = policy.into();
        let mode = policy.mode();
        let overlap = policy.overlap().unwrap_or(self.overlap);
        match policy.recompute().unwrap_or(self.policy) {
            Recompute::Full => {
                let (out, _discarded) = self.forward_full(x, micro, &mode, overlap);
                // Only the checkpointed input is stored.
                ledger.record(Category::LayerNormInput, x.numel() as u64);
                (out, LayerState::Checkpoint { x: x.clone(), micro })
            }
            Recompute::Selective => {
                let (out, mut st) = self.forward_full(x, micro, &mode, overlap);
                st.attn = None; // the Figure 3 red region is dropped
                self.record_stored(&st, ledger);
                (out, LayerState::Stored(Box::new(st)))
            }
            Recompute::None => {
                let (out, st) = self.forward_full(x, micro, &mode, overlap);
                self.record_stored(&st, ledger);
                (out, LayerState::Stored(Box::new(st)))
            }
        }
    }

    /// Backward pass: consumes the saved state (recomputing whatever the
    /// policy dropped) and returns the input gradient and parameter
    /// gradients (shard-shaped in parallel execution, fully reduced so each
    /// rank holds exact gradients for its shard and replicated parameters).
    ///
    /// `policy` accepts anything convertible into an [`ExecPolicy`]; under
    /// [`OverlapPolicy::OverlappedRecompute`] a selectively-dropped
    /// attention core is replayed on a helper thread while the MLP half of
    /// this backward pass (which does not depend on it) runs — bit-identical
    /// to the inline replay, since the replay is a pure function of stored
    /// Q/K and the counter RNG. Full-layer checkpoints are always replayed
    /// inline here; the cross-layer prefetch (layer k+1's replay under
    /// layer k's backward) lives in [`crate::gpt::Gpt`], which can see both
    /// layers.
    pub fn backward<'m>(
        &self,
        dy: &Tensor,
        state: LayerState,
        policy: impl Into<ExecPolicy<'m>>,
    ) -> (Tensor, LayerGrads) {
        let policy = policy.into();
        let mode = policy.mode();
        let overlap = policy.overlap().unwrap_or(self.overlap);
        let st = match state {
            LayerState::Stored(st) if st.attn.is_none() && overlap.recompute_overlapped() => {
                return self.backward_selective_overlapped(dy, &st, &mode, overlap);
            }
            LayerState::Stored(mut st) => {
                if st.attn.is_none() {
                    // Selective recomputation: replay the attention core from
                    // the stored Q and K (Section 5).
                    let ap = self.attn_params(&mode, st.micro);
                    st.attn = Some(timed_recompute("recompute_attention", || {
                        attention_recompute(&ap, &self.rng, &st.q, &st.k)
                    }));
                }
                st
            }
            LayerState::Checkpoint { x, micro } => {
                // Full recomputation: one extra forward pass (the 30-40%
                // overhead the paper eliminates).
                timed_recompute("recompute_layer", || {
                    Box::new(self.forward_full(&x, micro, &mode, overlap).1)
                })
            }
        };
        self.backward_stored(dy, &st, &mode, overlap)
    }

    /// Replays a checkpointed input into a full stored state. This is the
    /// collective-free building block [`crate::gpt::Gpt`] prefetches on a
    /// helper thread while the previous layer's backward runs: it forces
    /// serial mode (a parallel replay would issue collectives, and a
    /// second thread racing the rank's rendezvous sequence would break the
    /// SPMD tag order), and it does no ledger or span bookkeeping of its
    /// own — the prefetch driver's `recompute_overlapped` span and the
    /// caller's `add_recompute_time` cover it.
    pub(crate) fn recompute_stored(&self, x: &Tensor, micro: u64) -> Box<StoredState> {
        Box::new(self.forward_full(x, micro, &ExecMode::Serial, OverlapPolicy::Exposed).1)
    }

    /// Selective backward with the attention replay prefetched: the helper
    /// thread recomputes the Figure 3 red region (pure compute — no
    /// collectives, so legal in every [`ExecMode`]) while the calling rank
    /// thread runs the MLP half of the backward pass, which depends only on
    /// the stored MLP tensors. The join lands exactly where the inline
    /// replay used to run — before the attention half needs `attn` — so the
    /// dataflow, and therefore every bit of every gradient, is unchanged.
    fn backward_selective_overlapped(
        &self,
        dy: &Tensor,
        st: &StoredState,
        mode: &ExecMode<'_>,
        overlap: OverlapPolicy,
    ) -> (Tensor, LayerGrads) {
        let mut grads = self.weights.zeros_like();
        let ap = self.attn_params(mode, st.micro);
        let (attn, d_r1, report) = recompute_prefetch(
            || attention_recompute(&ap, &self.rng, &st.q, &st.k),
            || self.backward_mlp_half(dy, st, mode, overlap, &mut grads),
        );
        crate::overlap::add_recompute_time(report.recompute_us, report.exposed_us);
        let d_x = self.backward_attn_half(&d_r1, st, &attn, mode, overlap, &mut grads);
        self.reduce_replicated_grads(mode, &mut grads);
        (d_x, grads)
    }

    fn backward_stored(
        &self,
        dy: &Tensor,
        st: &StoredState,
        mode: &ExecMode<'_>,
        overlap: OverlapPolicy,
    ) -> (Tensor, LayerGrads) {
        let mut grads = self.weights.zeros_like();
        let d_r1 = self.backward_mlp_half(dy, st, mode, overlap, &mut grads);
        let attn = st.attn.as_ref().expect("attention state present after recompute");
        let d_x = self.backward_attn_half(&d_r1, st, attn, mode, overlap, &mut grads);
        self.reduce_replicated_grads(mode, &mut grads);
        (d_x, grads)
    }

    /// The MLP half of the backward pass: everything from the layer output
    /// gradient down to `d_r1`, the gradient at the second LayerNorm's
    /// input. Reads only the MLP-side stored tensors (`g_act`, `m1`, `y2`,
    /// `r1`, `ln2_saved`) — never `attn` — which is what makes it the legal
    /// covering work for the prefetched attention replay.
    fn backward_mlp_half(
        &self,
        dy: &Tensor,
        st: &StoredState,
        mode: &ExecMode<'_>,
        overlap: OverlapPolicy,
        grads: &mut LayerGrads,
    ) -> Tensor {
        let rows = self.local_rows(mode);
        assert_eq!(
            dy.shape(),
            &[rows, self.cfg.hidden],
            "layer {} backward: gradient shape mismatch",
            self.layer_idx
        );
        let w = &self.weights;

        // out = r1 + dropout(m2)
        let mask_mlp = self.region_mask(DropoutSite::MlpOutput, st.micro, mode, rows);
        let d_m2 = ops::dropout_backward(dy, &mask_mlp, self.cfg.dropout_p);
        grads.b2 = ops::bias_grad(&d_m2);
        // ḡ backward (all-gather; f̄ backward: identity) fused with the
        // d_g GEMM; the assembled gradient also feeds the w2 gradient.
        // m2_partial = g_act · w2
        let (d_g, d_m2_full) = self.gather_gemm(mode, overlap, &d_m2, &w.w2, true, true);
        grads.w2 = ops::Gemm::TN.apply(&st.g_act, &d_m2_full.expect("full grad requested"));
        let d_m1 = ops::gelu_backward(&st.m1, &d_g);
        grads.b1 = ops::bias_grad(&d_m1);
        // m1 = y2_full · w1. Under SP, y2 was kept as a shard: re-gather
        // (the extra all-gather the paper overlaps with the dW computation).
        let y2_full = self.regather(mode, overlap, &st.y2);
        grads.w1 = ops::Gemm::TN.apply(&y2_full, &d_m1);
        let d_y2_full = ops::Gemm::NT.apply(&d_m1, &w.w1);
        // g backward: reduce-scatter; f backward: all-reduce.
        let d_y_ln2 = self.combine_region(mode, overlap, &d_y2_full);
        let (d_r1_ln, d_ln2_gamma, d_ln2_beta) =
            ops::layer_norm_backward(&st.r1, &w.ln2_gamma, &st.ln2_saved, &d_y_ln2);
        grads.ln2_gamma = d_ln2_gamma;
        grads.ln2_beta = d_ln2_beta;
        dy.add(&d_r1_ln)
    }

    /// The attention half of the backward pass: from `d_r1` down to the
    /// layer-input gradient. The only consumer of the (possibly replayed)
    /// attention core state.
    fn backward_attn_half(
        &self,
        d_r1: &Tensor,
        st: &StoredState,
        attn: &AttnSaved,
        mode: &ExecMode<'_>,
        overlap: OverlapPolicy,
        grads: &mut LayerGrads,
    ) -> Tensor {
        let rows = self.local_rows(mode);
        let w = &self.weights;

        // r1 = x + dropout(o)
        let mask_attn = self.region_mask(DropoutSite::AttentionOutput, st.micro, mode, rows);
        let d_o = ops::dropout_backward(d_r1, &mask_attn, self.cfg.dropout_p);
        grads.b_o = ops::bias_grad(&d_o);
        // o_partial = ctx · w_o
        let (d_ctx, d_o_full) = self.gather_gemm(mode, overlap, &d_o, &w.w_o, true, true);
        grads.w_o = ops::Gemm::TN.apply(&st.ctx, &d_o_full.expect("full grad requested"));
        // attention core
        let ap = self.attn_params(mode, st.micro);
        let (d_q, d_k, d_v) = attention_backward(&ap, &self.rng, &st.q, &st.k, &st.v, attn, &d_ctx);
        let d_qkv = Tensor::concat_last_axis(&[d_q, d_k, d_v]);
        grads.b_qkv = ops::bias_grad(&d_qkv);
        let y1_full = self.regather(mode, overlap, &st.y1);
        grads.w_qkv = ops::Gemm::TN.apply(&y1_full, &d_qkv);
        let d_y1_full = ops::Gemm::NT.apply(&d_qkv, &w.w_qkv);
        let d_y_ln1 = self.combine_region(mode, overlap, &d_y1_full);
        let (d_x_ln, d_ln1_gamma, d_ln1_beta) =
            ops::layer_norm_backward(&st.x, &w.ln1_gamma, &st.ln1_saved, &d_y_ln1);
        grads.ln1_gamma = d_ln1_gamma;
        grads.ln1_beta = d_ln1_beta;
        d_r1.add(&d_x_ln)
    }

    /// Sequence parallelism computes replicated-parameter gradients from
    /// sequence shards; sum them so every rank holds exact gradients
    /// (Megatron's gradient sync for SP).
    fn reduce_replicated_grads(&self, mode: &ExecMode<'_>, grads: &mut LayerGrads) {
        if let (true, Some(comm)) = (mode.sequence_parallel(), mode.comm()) {
            grads.ln1_gamma = timed_exposed(|| comm.all_reduce(&grads.ln1_gamma));
            grads.ln1_beta = timed_exposed(|| comm.all_reduce(&grads.ln1_beta));
            grads.ln2_gamma = timed_exposed(|| comm.all_reduce(&grads.ln2_gamma));
            grads.ln2_beta = timed_exposed(|| comm.all_reduce(&grads.ln2_beta));
            grads.b_o = timed_exposed(|| comm.all_reduce(&grads.b_o));
            grads.b2 = timed_exposed(|| comm.all_reduce(&grads.b2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_tensor::rng::SplitMix64;

    fn cfg() -> TransformerConfig {
        TransformerConfig {
            hidden: 16,
            heads: 2,
            seq: 4,
            micro_batch: 2,
            layers: 1,
            vocab: 32,
            dropout_p: 0.0,
            causal: true,
        }
    }

    fn make_layer(policy: Recompute, dropout_p: f32) -> TransformerLayer {
        let mut c = cfg();
        c.dropout_p = dropout_p;
        let mut rng = SplitMix64::new(31);
        let w = LayerWeights::init(&c, &mut rng);
        TransformerLayer::new(c, w, 0, policy, CounterRng::new(7))
    }

    fn rand_input(c: &TransformerConfig, seed: u64) -> Tensor {
        let mut rng = SplitMix64::new(seed);
        Tensor::rand_uniform(&[c.tokens(), c.hidden], -1.0, 1.0, &mut rng)
    }

    #[test]
    fn output_shape_matches_input() {
        let layer = make_layer(Recompute::None, 0.0);
        let x = rand_input(&cfg(), 1);
        let mut ledger = ActivationLedger::new();
        let (y, _) = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn all_policies_produce_identical_outputs_and_gradients() {
        // Recomputation must be numerically invisible: with replayable
        // dropout masks the three policies are bit-identical.
        let x = rand_input(&cfg(), 2);
        let dy = rand_input(&cfg(), 3);
        let mut results = Vec::new();
        for policy in [Recompute::None, Recompute::Selective, Recompute::Full] {
            let layer = make_layer(policy, 0.1);
            let mut ledger = ActivationLedger::new();
            let (y, st) = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
            let (dx, grads) = layer.backward(&dy, st, ExecMode::Serial);
            results.push((y, dx, grads));
        }
        for other in &results[1..] {
            assert_eq!(results[0].0, other.0, "outputs differ across policies");
            assert_eq!(results[0].1, other.1, "input grads differ across policies");
            assert_eq!(results[0].2, other.2, "weight grads differ across policies");
        }
    }

    #[test]
    fn ledger_matches_equation_1_for_serial_no_recompute() {
        let c = cfg();
        let layer = make_layer(Recompute::None, 0.1);
        let x = rand_input(&c, 4);
        let mut ledger = ActivationLedger::new();
        let _ = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
        let sbh = c.sbh();
        let as2b = c.as2b();
        let expect = 34 * sbh + 5 * as2b; // Equation 1, exact bytes
        assert_eq!(ledger.paper_bytes(), expect);
    }

    #[test]
    fn ledger_selective_drops_exactly_the_attention_core() {
        let c = cfg();
        let layer = make_layer(Recompute::Selective, 0.1);
        let x = rand_input(&c, 5);
        let mut ledger = ActivationLedger::new();
        let _ = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
        assert_eq!(ledger.paper_bytes(), 34 * c.sbh()); // Table 2, t=1
        assert_eq!(ledger.elements(Category::SoftmaxOutput), 0);
        assert_eq!(ledger.elements(Category::SoftmaxDropoutMask), 0);
        assert_eq!(ledger.elements(Category::SoftmaxDropoutOutput), 0);
    }

    #[test]
    fn ledger_full_recompute_stores_only_the_input() {
        let c = cfg();
        let layer = make_layer(Recompute::Full, 0.1);
        let x = rand_input(&c, 6);
        let mut ledger = ActivationLedger::new();
        let _ = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
        assert_eq!(ledger.paper_bytes(), 2 * c.sbh()); // Table 2, last row
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let c = cfg();
        let layer = make_layer(Recompute::None, 0.0);
        let x = rand_input(&c, 7);
        let mut wrng = SplitMix64::new(8);
        let wsum = Tensor::rand_uniform(&[c.tokens(), c.hidden], -1.0, 1.0, &mut wrng);
        let loss = |t: &Tensor| {
            let mut ledger = ActivationLedger::new();
            layer
                .forward(t, 0, ExecMode::Serial, &mut ledger)
                .0
                .data()
                .iter()
                .zip(wsum.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let mut ledger = ActivationLedger::new();
        let (_, st) = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
        let (dx, _) = layer.backward(&wsum, st, ExecMode::Serial);
        let fd = mt_tensor::check::finite_diff(&x, loss);
        assert!(mt_tensor::check::grads_close(&dx, &fd));
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        // Spot-check two parameter tensors (a LayerNorm scale and a bias)
        // end-to-end through the layer.
        let c = cfg();
        let x = rand_input(&c, 9);
        let base = make_layer(Recompute::None, 0.0);
        let loss_with = |weights: LayerWeights| {
            let layer = TransformerLayer::new(c, weights, 0, Recompute::None, CounterRng::new(7));
            let mut ledger = ActivationLedger::new();
            layer.forward(&x, 0, ExecMode::Serial, &mut ledger).0.sum()
        };
        let mut ledger = ActivationLedger::new();
        let (_, st) = base.forward(&x, 0, ExecMode::Serial, &mut ledger);
        let ones = Tensor::full(&[c.tokens(), c.hidden], 1.0);
        let (_, grads) = base.backward(&ones, st, ExecMode::Serial);

        let fd_gamma = mt_tensor::check::finite_diff(&base.weights().ln1_gamma, |t| {
            let mut w = base.weights().clone();
            w.ln1_gamma = t.clone();
            loss_with(w)
        });
        assert!(mt_tensor::check::grads_close(&grads.ln1_gamma, &fd_gamma), "ln1_gamma");

        let fd_bo = mt_tensor::check::finite_diff(&base.weights().b_o, |t| {
            let mut w = base.weights().clone();
            w.b_o = t.clone();
            loss_with(w)
        });
        assert!(mt_tensor::check::grads_close(&grads.b_o, &fd_bo), "b_o");
    }

    #[test]
    fn overlapped_selective_backward_is_bit_identical_and_prefetches() {
        // The prefetched attention replay must be numerically invisible and
        // actually run through the prefetch driver (one recompute_overlapped
        // span, no inline recompute_attention span).
        let x = rand_input(&cfg(), 10);
        let dy = rand_input(&cfg(), 11);
        let exposed = make_layer(Recompute::Selective, 0.1);
        let mut ledger = ActivationLedger::new();
        let (y0, st0) = exposed.forward(&x, 0, ExecMode::Serial, &mut ledger);
        let (dx0, g0) = exposed.backward(&dy, st0, ExecMode::Serial);

        let policy = ExecPolicy::builder()
            .overlap(OverlapPolicy::overlapped_recompute(1).expect("chunks >= 1"))
            .build()
            .expect("valid policy");
        let layer = make_layer(Recompute::Selective, 0.1).with_exec_policy(&policy);
        let _ = crate::overlap::take_step_timing();
        let tracer = mt_trace::Tracer::enabled();
        let (y1, dx1, g1) = {
            let _installed = mt_trace::install(tracer.clone());
            let mut ledger = ActivationLedger::new();
            let (y1, st1) = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
            let (dx1, g1) = layer.backward(&dy, st1, ExecMode::Serial);
            (y1, dx1, g1)
        };
        let timing = crate::overlap::take_step_timing();
        assert_eq!(y0, y1, "outputs differ under recompute prefetch");
        assert_eq!(dx0, dx1, "input grads differ under recompute prefetch");
        assert_eq!(g0, g1, "weight grads differ under recompute prefetch");
        assert!(timing.recompute_us >= timing.exposed_recompute_us, "exposed exceeds total");
        let events = tracer.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("recompute_overlapped"), 1);
        assert_eq!(count("recompute_wait"), 1);
        assert_eq!(count("recompute_attention"), 0, "inline replay ran despite prefetch policy");
    }

    #[test]
    fn per_call_policy_overrides_stored_defaults() {
        // A layer built store-all, driven by a policy forcing Selective +
        // OverlappedRecompute, must behave exactly like a layer built that
        // way — the state drops the attention core and the replay is
        // prefetched.
        let x = rand_input(&cfg(), 12);
        let dy = rand_input(&cfg(), 13);
        let policy = ExecPolicy::builder()
            .recompute(Recompute::Selective)
            .overlap(OverlapPolicy::overlapped_recompute(1).expect("chunks >= 1"))
            .build()
            .expect("valid policy");
        let stock = make_layer(Recompute::None, 0.1);
        let mut ledger = ActivationLedger::new();
        let (y, st) = stock.forward(&x, 0, policy, &mut ledger);
        assert!(
            matches!(&st, LayerState::Stored(s) if s.attn.is_none()),
            "recompute override ignored"
        );
        let (dx, g) = stock.backward(&dy, st, policy);

        let reference = make_layer(Recompute::Selective, 0.1);
        let mut ledger = ActivationLedger::new();
        let (y0, st0) = reference.forward(&x, 0, ExecMode::Serial, &mut ledger);
        let (dx0, g0) = reference.backward(&dy, st0, ExecMode::Serial);
        assert_eq!(y, y0);
        assert_eq!(dx, dx0);
        assert_eq!(g, g0);
    }

    #[test]
    fn with_exec_policy_adopts_only_set_halves() {
        let policy = ExecPolicy::builder()
            .overlap(OverlapPolicy::overlapped_recompute(3).expect("chunks >= 1"))
            .build()
            .expect("valid policy");
        let layer = make_layer(Recompute::Selective, 0.0).with_exec_policy(&policy);
        assert_eq!(layer.policy(), Recompute::Selective, "unset half must not change");
        assert_eq!(layer.overlap_policy(), OverlapPolicy::OverlappedRecompute { chunks: 3 });
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn forward_rejects_bad_shape() {
        let layer = make_layer(Recompute::None, 0.0);
        let mut ledger = ActivationLedger::new();
        let bad = Tensor::zeros(&[3, 16]);
        let _ = layer.forward(&bad, 0, ExecMode::Serial, &mut ledger);
    }
}
