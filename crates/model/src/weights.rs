//! Layer and embedding weights, Megatron-style sharding, and gradients.

use crate::config::TransformerConfig;
use mt_tensor::rng::SplitMix64;
use mt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Weights of one transformer layer.
///
/// `w_qkv` packs the query/key/value projections as `[h, 3h]` with column
/// blocks `[Q | K | V]`, each block head-major (head `k` occupies columns
/// `k·hd .. (k+1)·hd` of its block). This layout makes Megatron head
/// sharding a contiguous column slice per block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// First LayerNorm scale, `[h]`.
    pub ln1_gamma: Tensor,
    /// First LayerNorm shift, `[h]`.
    pub ln1_beta: Tensor,
    /// Packed QKV projection, `[h, 3h]` (or `[h, 3h/t]` when sharded).
    pub w_qkv: Tensor,
    /// Packed QKV bias, `[3h]` (or `[3h/t]`).
    pub b_qkv: Tensor,
    /// Attention output projection, `[h, h]` (row-sharded to `[h/t, h]`).
    pub w_o: Tensor,
    /// Output projection bias, `[h]` — replicated under sharding.
    pub b_o: Tensor,
    /// Second LayerNorm scale, `[h]`.
    pub ln2_gamma: Tensor,
    /// Second LayerNorm shift, `[h]`.
    pub ln2_beta: Tensor,
    /// MLP h→4h weight, `[h, 4h]` (column-sharded to `[h, 4h/t]`).
    pub w1: Tensor,
    /// MLP first bias, `[4h]` (sharded to `[4h/t]`).
    pub b1: Tensor,
    /// MLP 4h→h weight, `[4h, h]` (row-sharded to `[4h/t, h]`).
    pub w2: Tensor,
    /// MLP second bias, `[h]` — replicated under sharding.
    pub b2: Tensor,
}

impl LayerWeights {
    /// Random initialization (N(0, 0.02²) for matrices, zeros for biases,
    /// ones/zeros for LayerNorm), matching GPT conventions.
    pub fn init(cfg: &TransformerConfig, rng: &mut SplitMix64) -> Self {
        let h = cfg.hidden;
        let std = 0.02;
        LayerWeights {
            ln1_gamma: Tensor::full(&[h], 1.0),
            ln1_beta: Tensor::zeros(&[h]),
            w_qkv: Tensor::rand_normal(&[h, 3 * h], std, rng),
            b_qkv: Tensor::zeros(&[3 * h]),
            w_o: Tensor::rand_normal(&[h, h], std, rng),
            b_o: Tensor::zeros(&[h]),
            ln2_gamma: Tensor::full(&[h], 1.0),
            ln2_beta: Tensor::zeros(&[h]),
            w1: Tensor::rand_normal(&[h, 4 * h], std, rng),
            b1: Tensor::zeros(&[4 * h]),
            w2: Tensor::rand_normal(&[4 * h, h], std, rng),
            b2: Tensor::zeros(&[h]),
        }
    }

    /// Extracts rank `rank`'s shard for `t`-way tensor parallelism:
    /// QKV and MLP-1 column-parallel, projection and MLP-2 row-parallel,
    /// LayerNorms and output biases replicated (Shoeybi et al.).
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not divide by `t` or `rank >= t`.
    pub fn shard(&self, t: usize, rank: usize) -> LayerWeights {
        assert!(rank < t, "rank {rank} out of range for t={t}");
        let qkv_blocks = self.w_qkv.chunk_last_axis(3).expect("w_qkv has 3h columns");
        let q = qkv_blocks[0].chunk_last_axis(t).expect("heads divide by t");
        let k = qkv_blocks[1].chunk_last_axis(t).expect("heads divide by t");
        let v = qkv_blocks[2].chunk_last_axis(t).expect("heads divide by t");
        let b_blocks = self.b_qkv.chunk_last_axis(3).expect("b_qkv has 3h elements");
        let bq = b_blocks[0].chunk_last_axis(t).expect("bias divides");
        let bk = b_blocks[1].chunk_last_axis(t).expect("bias divides");
        let bv = b_blocks[2].chunk_last_axis(t).expect("bias divides");
        LayerWeights {
            ln1_gamma: self.ln1_gamma.clone(),
            ln1_beta: self.ln1_beta.clone(),
            w_qkv: Tensor::concat_last_axis(&[q[rank].clone(), k[rank].clone(), v[rank].clone()]),
            b_qkv: Tensor::concat_last_axis(&[
                bq[rank].clone(),
                bk[rank].clone(),
                bv[rank].clone(),
            ]),
            w_o: self.w_o.chunk_axis0(t).expect("w_o rows divide")[rank].clone(),
            b_o: self.b_o.clone(),
            ln2_gamma: self.ln2_gamma.clone(),
            ln2_beta: self.ln2_beta.clone(),
            w1: self.w1.chunk_last_axis(t).expect("w1 cols divide")[rank].clone(),
            b1: self.b1.chunk_last_axis(t).expect("b1 divides")[rank].clone(),
            w2: self.w2.chunk_axis0(t).expect("w2 rows divide")[rank].clone(),
            b2: self.b2.clone(),
        }
    }

    /// Reassembles full weights from the `t` per-rank shards produced by
    /// [`LayerWeights::shard`]. Replicated tensors are taken from rank 0.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shard shapes are inconsistent.
    pub fn unshard(parts: &[LayerWeights]) -> LayerWeights {
        assert!(!parts.is_empty(), "unshard needs at least one shard");
        let t = parts.len();
        if t == 1 {
            return parts[0].clone();
        }
        let mut qs = Vec::with_capacity(t);
        let mut ks = Vec::with_capacity(t);
        let mut vs = Vec::with_capacity(t);
        let mut bqs = Vec::with_capacity(t);
        let mut bks = Vec::with_capacity(t);
        let mut bvs = Vec::with_capacity(t);
        for p in parts {
            let blocks = p.w_qkv.chunk_last_axis(3).expect("shard has 3 QKV blocks");
            qs.push(blocks[0].clone());
            ks.push(blocks[1].clone());
            vs.push(blocks[2].clone());
            let bb = p.b_qkv.chunk_last_axis(3).expect("shard bias has 3 blocks");
            bqs.push(bb[0].clone());
            bks.push(bb[1].clone());
            bvs.push(bb[2].clone());
        }
        LayerWeights {
            ln1_gamma: parts[0].ln1_gamma.clone(),
            ln1_beta: parts[0].ln1_beta.clone(),
            w_qkv: Tensor::concat_last_axis(&[
                Tensor::concat_last_axis(&qs),
                Tensor::concat_last_axis(&ks),
                Tensor::concat_last_axis(&vs),
            ]),
            b_qkv: Tensor::concat_last_axis(&[
                Tensor::concat_last_axis(&bqs),
                Tensor::concat_last_axis(&bks),
                Tensor::concat_last_axis(&bvs),
            ]),
            w_o: Tensor::concat_axis0(&parts.iter().map(|p| p.w_o.clone()).collect::<Vec<_>>()),
            b_o: parts[0].b_o.clone(),
            ln2_gamma: parts[0].ln2_gamma.clone(),
            ln2_beta: parts[0].ln2_beta.clone(),
            w1: Tensor::concat_last_axis(&parts.iter().map(|p| p.w1.clone()).collect::<Vec<_>>()),
            b1: Tensor::concat_last_axis(&parts.iter().map(|p| p.b1.clone()).collect::<Vec<_>>()),
            w2: Tensor::concat_axis0(&parts.iter().map(|p| p.w2.clone()).collect::<Vec<_>>()),
            b2: parts[0].b2.clone(),
        }
    }

    /// Shared references to every parameter tensor, in the same stable
    /// order as [`LayerWeights::tensors_mut`].
    pub fn tensors(&self) -> Vec<&Tensor> {
        vec![
            &self.ln1_gamma,
            &self.ln1_beta,
            &self.w_qkv,
            &self.b_qkv,
            &self.w_o,
            &self.b_o,
            &self.ln2_gamma,
            &self.ln2_beta,
            &self.w1,
            &self.b1,
            &self.w2,
            &self.b2,
        ]
    }

    /// Mutable references to every parameter tensor, in a stable order
    /// matching the gradient order used by
    /// [`GptGrads::tensors`](crate::gpt::GptGrads::tensors). Used by
    /// optimizers.
    pub fn tensors_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.ln1_gamma,
            &mut self.ln1_beta,
            &mut self.w_qkv,
            &mut self.b_qkv,
            &mut self.w_o,
            &mut self.b_o,
            &mut self.ln2_gamma,
            &mut self.ln2_beta,
            &mut self.w1,
            &mut self.b1,
            &mut self.w2,
            &mut self.b2,
        ]
    }

    /// Total parameter elements.
    pub fn num_parameters(&self) -> usize {
        [
            &self.ln1_gamma,
            &self.ln1_beta,
            &self.w_qkv,
            &self.b_qkv,
            &self.w_o,
            &self.b_o,
            &self.ln2_gamma,
            &self.ln2_beta,
            &self.w1,
            &self.b1,
            &self.w2,
            &self.b2,
        ]
        .iter()
        .map(|t| t.numel())
        .sum()
    }
}

/// Gradients of one layer — same shapes and sharding as [`LayerWeights`].
pub type LayerGrads = LayerWeights;

impl LayerWeights {
    /// All-zero gradients shaped like `self`.
    pub fn zeros_like(&self) -> LayerWeights {
        LayerWeights {
            ln1_gamma: Tensor::zeros(self.ln1_gamma.shape()),
            ln1_beta: Tensor::zeros(self.ln1_beta.shape()),
            w_qkv: Tensor::zeros(self.w_qkv.shape()),
            b_qkv: Tensor::zeros(self.b_qkv.shape()),
            w_o: Tensor::zeros(self.w_o.shape()),
            b_o: Tensor::zeros(self.b_o.shape()),
            ln2_gamma: Tensor::zeros(self.ln2_gamma.shape()),
            ln2_beta: Tensor::zeros(self.ln2_beta.shape()),
            w1: Tensor::zeros(self.w1.shape()),
            b1: Tensor::zeros(self.b1.shape()),
            w2: Tensor::zeros(self.w2.shape()),
            b2: Tensor::zeros(self.b2.shape()),
        }
    }

    /// Element-wise accumulation of another gradient set.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &LayerWeights) {
        self.ln1_gamma.add_assign(&other.ln1_gamma);
        self.ln1_beta.add_assign(&other.ln1_beta);
        self.w_qkv.add_assign(&other.w_qkv);
        self.b_qkv.add_assign(&other.b_qkv);
        self.w_o.add_assign(&other.w_o);
        self.b_o.add_assign(&other.b_o);
        self.ln2_gamma.add_assign(&other.ln2_gamma);
        self.ln2_beta.add_assign(&other.ln2_beta);
        self.w1.add_assign(&other.w1);
        self.b1.add_assign(&other.b1);
        self.w2.add_assign(&other.w2);
        self.b2.add_assign(&other.b2);
    }

    /// Maximum relative deviation from `other`, scaled by `other`'s largest
    /// magnitude — the comparison used by the equivalence tests.
    pub fn max_rel_diff(&self, other: &LayerWeights) -> f32 {
        let pairs = [
            (&self.ln1_gamma, &other.ln1_gamma),
            (&self.ln1_beta, &other.ln1_beta),
            (&self.w_qkv, &other.w_qkv),
            (&self.b_qkv, &other.b_qkv),
            (&self.w_o, &other.w_o),
            (&self.b_o, &other.b_o),
            (&self.ln2_gamma, &other.ln2_gamma),
            (&self.ln2_beta, &other.ln2_beta),
            (&self.w1, &other.w1),
            (&self.b1, &other.b1),
            (&self.w2, &other.w2),
            (&self.b2, &other.b2),
        ];
        pairs
            .iter()
            .map(|(a, b)| {
                let scale = b.max_abs().max(1e-6);
                a.max_abs_diff(b) / scale
            })
            .fold(0.0_f32, f32::max)
    }
}

/// Embedding weights: shared token table and learned positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingWeights {
    /// Word embedding table `[v, h]` — also the (tied) output projection.
    pub table: Tensor,
    /// Positional embedding `[s, h]`.
    pub positions: Tensor,
}

impl EmbeddingWeights {
    /// Random initialization.
    pub fn init(cfg: &TransformerConfig, rng: &mut SplitMix64) -> Self {
        EmbeddingWeights {
            table: Tensor::rand_normal(&[cfg.vocab, cfg.hidden], 0.02, rng),
            positions: Tensor::rand_normal(&[cfg.seq, cfg.hidden], 0.01, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransformerConfig {
        TransformerConfig::tiny()
    }

    #[test]
    fn shard_unshard_roundtrip() {
        let mut rng = SplitMix64::new(21);
        let w = LayerWeights::init(&cfg(), &mut rng);
        for t in [1usize, 2, 4] {
            let parts: Vec<_> = (0..t).map(|r| w.shard(t, r)).collect();
            let back = LayerWeights::unshard(&parts);
            assert_eq!(back, w, "roundtrip failed for t={t}");
        }
    }

    #[test]
    fn shard_shapes() {
        let mut rng = SplitMix64::new(22);
        let w = LayerWeights::init(&cfg(), &mut rng);
        let s = w.shard(4, 1);
        let h = cfg().hidden;
        assert_eq!(s.w_qkv.shape(), &[h, 3 * h / 4]);
        assert_eq!(s.w_o.shape(), &[h / 4, h]);
        assert_eq!(s.w1.shape(), &[h, h]); // 4h/4
        assert_eq!(s.w2.shape(), &[h, h]);
        assert_eq!(s.b1.shape(), &[h]);
        assert_eq!(s.b_o.shape(), &[h]); // replicated
    }

    #[test]
    fn qkv_shard_contains_local_head_columns() {
        // Column hd·head of the Q block must land on the rank owning that head.
        let mut rng = SplitMix64::new(23);
        let c = cfg();
        let w = LayerWeights::init(&c, &mut rng);
        let t = 2;
        let local_heads = c.heads / t;
        let hd = c.head_dim();
        let shard1 = w.shard(t, 1);
        // Global Q column for head 2 (first head of rank 1), dim 0:
        let global_col = 2 * hd;
        let local_col = (2 - local_heads) * hd;
        for row in 0..c.hidden {
            assert_eq!(w.w_qkv.at2(row, global_col), shard1.w_qkv.at2(row, local_col));
        }
    }

    #[test]
    fn accumulate_and_diff() {
        let mut rng = SplitMix64::new(24);
        let w = LayerWeights::init(&cfg(), &mut rng);
        let mut acc = w.zeros_like();
        acc.accumulate(&w);
        acc.accumulate(&w);
        let doubled = {
            let mut d = w.zeros_like();
            d.accumulate(&w);
            d.accumulate(&w);
            d
        };
        assert_eq!(acc, doubled);
        assert!(acc.max_rel_diff(&acc) == 0.0);
        assert!(acc.max_rel_diff(&w) > 0.5);
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut rng = SplitMix64::new(25);
        let c = cfg();
        let w = LayerWeights::init(&c, &mut rng);
        let h = c.hidden;
        assert_eq!(w.num_parameters(), 12 * h * h + 13 * h);
    }
}
