//! The activation ledger: byte-exact accounting of what a strategy stores.
//!
//! Every tensor a layer saves for back-propagation is recorded here under a
//! [`Category`] with the paper's byte widths (2 bytes/element for fp16
//! activations, 1 byte/element for dropout masks, 4 bytes/element for fp32
//! logits). Integration tests compare these measured totals against the
//! closed forms of Table 2 — they must match **exactly**, since the formulas
//! count precisely these objects.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of saved activation an entry is.
///
/// The variants mirror the itemization in Section 4.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Input to a LayerNorm (`2sbh` each, two per layer).
    LayerNormInput,
    /// Shared input of the Q/K/V matmuls (`2sbh`).
    QkvInput,
    /// Q and K, saved for the `QKᵀ` backward (`4sbh`).
    QueryKey,
    /// V, saved for the attention-over-values backward (`2sbh`).
    Value,
    /// Softmax output (`2as²b`).
    SoftmaxOutput,
    /// Softmax dropout mask (`as²b`, 1 byte/element).
    SoftmaxDropoutMask,
    /// Softmax dropout output, input of the `P·V` matmul (`2as²b`).
    SoftmaxDropoutOutput,
    /// Input of the post-attention linear projection (`2sbh`).
    ProjectionInput,
    /// Post-attention dropout mask (`sbh`, 1 byte/element).
    AttentionDropoutMask,
    /// Input of the h→4h linear (`2sbh`).
    MlpFirstInput,
    /// GeLU input (`8sbh`).
    GeluInput,
    /// Input of the 4h→h linear (`8sbh`).
    MlpSecondInput,
    /// MLP dropout mask (`sbh`, 1 byte/element).
    MlpDropoutMask,
    /// Embedding dropout mask (`sbh`, 1 byte/element; Section 4.3).
    EmbeddingDropoutMask,
    /// fp32 logits kept for the cross-entropy backward (`4sbv`; Section 4.3).
    Logits,
    /// Small per-row statistics (LayerNorm mean/rstd) — tracked but excluded
    /// from paper comparisons, exactly as the paper's approximation drops
    /// the `2sb ≪ sbh` terms.
    SmallStatistics,
}

impl Category {
    /// Paper-accounted bytes per element for this category.
    pub fn bytes_per_element(self) -> u64 {
        match self {
            Category::SoftmaxDropoutMask
            | Category::AttentionDropoutMask
            | Category::MlpDropoutMask
            | Category::EmbeddingDropoutMask => 1,
            Category::Logits => 4,
            _ => 2,
        }
    }

    /// Whether the category participates in Table 2 comparisons.
    pub fn counted_in_paper_model(self) -> bool {
        !matches!(self, Category::SmallStatistics)
    }
}

/// Byte-exact record of the activations one rank stores for one (or more)
/// layers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationLedger {
    elements: BTreeMap<Category, u64>,
    /// Currently-live elements per category (recorded minus freed). Unlike
    /// `elements` — which only ever grows and is what Table 2 compares
    /// against — this drops when [`ActivationLedger::free`] releases a
    /// tensor, so a pipeline schedule can measure its true in-flight peak.
    live: BTreeMap<Category, u64>,
    /// Running total of live paper-counted bytes, maintained incrementally
    /// alongside `live` so [`ActivationLedger::high_water`] can cross-check
    /// the two bookkeeping paths against each other.
    live_paper_bytes: u64,
    /// Highest value `live_paper_bytes` ever reached.
    peak_paper_bytes: u64,
}

impl ActivationLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `elements` saved elements of `category`.
    pub fn record(&mut self, category: Category, elements: u64) {
        *self.elements.entry(category).or_insert(0) += elements;
        *self.live.entry(category).or_insert(0) += elements;
        if category.counted_in_paper_model() {
            self.live_paper_bytes += elements * category.bytes_per_element();
            self.peak_paper_bytes = self.peak_paper_bytes.max(self.live_paper_bytes);
        }
    }

    /// Releases `elements` previously-recorded elements of `category` (a
    /// saved tensor consumed by its backward pass). Panics on underflow —
    /// freeing more than is live is a double-free.
    pub fn free(&mut self, category: Category, elements: u64) {
        let live = self.live.entry(category).or_insert(0);
        assert!(
            *live >= elements,
            "activation ledger double-free: freeing {elements} elements of {category:?} \
             with only {live} live"
        );
        *live -= elements;
        if category.counted_in_paper_model() {
            self.live_paper_bytes -= elements * category.bytes_per_element();
        }
    }

    /// Frees everything currently live in `other` from this ledger: the
    /// bulk release a pipeline stage performs when a microbatch's backward
    /// pass retires the activations its forward pass stored.
    pub fn release(&mut self, other: &ActivationLedger) {
        for (c, e) in &other.live {
            if *e > 0 {
                self.free(*c, *e);
            }
        }
    }

    /// Currently-live paper-counted bytes.
    pub fn live_paper_bytes(&self) -> u64 {
        self.live_paper_bytes
    }

    /// Peak of live paper-counted bytes over the ledger's lifetime, with a
    /// consistency assert: the incrementally-maintained live byte count must
    /// equal the sum over live categories recomputed from scratch. A
    /// double-count or double-free that slipped past [`free`]'s underflow
    /// check (e.g. freeing under the wrong category) trips this.
    ///
    /// [`free`]: ActivationLedger::free
    pub fn high_water(&self) -> u64 {
        let recomputed: u64 = self
            .live
            .iter()
            .filter(|(c, _)| c.counted_in_paper_model())
            .map(|(c, e)| e * c.bytes_per_element())
            .sum();
        assert_eq!(
            recomputed, self.live_paper_bytes,
            "activation ledger double-count: sum of live categories is {recomputed} bytes \
             but the running live total is {} bytes",
            self.live_paper_bytes
        );
        self.peak_paper_bytes
    }

    /// Elements recorded under a category.
    pub fn elements(&self, category: Category) -> u64 {
        self.elements.get(&category).copied().unwrap_or(0)
    }

    /// Bytes recorded under a category at paper widths.
    pub fn bytes(&self, category: Category) -> u64 {
        self.elements(category) * category.bytes_per_element()
    }

    /// Total bytes across categories that the paper's per-layer formulas
    /// count (excludes [`Category::SmallStatistics`]).
    pub fn paper_bytes(&self) -> u64 {
        self.elements
            .iter()
            .filter(|(c, _)| c.counted_in_paper_model())
            .map(|(c, e)| e * c.bytes_per_element())
            .sum()
    }

    /// Total bytes across *all* categories.
    pub fn total_bytes(&self) -> u64 {
        self.elements.iter().map(|(c, e)| e * c.bytes_per_element()).sum()
    }

    /// Merges another ledger into this one, as if every `record` on `other`
    /// had been replayed here (its live set joins this ledger's live set).
    pub fn merge(&mut self, other: &ActivationLedger) {
        for (c, e) in &other.elements {
            *self.elements.entry(*c).or_insert(0) += e;
        }
        for (c, e) in &other.live {
            *self.live.entry(*c).or_insert(0) += e;
        }
        self.live_paper_bytes += other.live_paper_bytes;
        self.peak_paper_bytes = self.peak_paper_bytes.max(self.live_paper_bytes);
    }

    /// Iterates `(category, elements)` in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        self.elements.iter().map(|(c, e)| (*c, *e))
    }

    /// Publishes the ledger into a metrics registry: per-category byte
    /// high-water marks under `{prefix}.{category:?}_bytes` plus
    /// `{prefix}.paper_bytes` / `{prefix}.total_bytes`. High-water semantics
    /// make repeated per-step publishes record the worst step.
    pub fn publish(&self, registry: &mt_trace::MetricsRegistry, prefix: &str) {
        for (c, _) in self.iter() {
            registry.high_water(&format!("{prefix}.{c:?}_bytes"), self.bytes(c));
        }
        registry.high_water(&format!("{prefix}.paper_bytes"), self.paper_bytes());
        registry.high_water(&format!("{prefix}.total_bytes"), self.total_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths_follow_paper() {
        assert_eq!(Category::SoftmaxOutput.bytes_per_element(), 2);
        assert_eq!(Category::SoftmaxDropoutMask.bytes_per_element(), 1);
        assert_eq!(Category::Logits.bytes_per_element(), 4);
    }

    #[test]
    fn paper_bytes_excludes_small_statistics() {
        let mut ledger = ActivationLedger::new();
        ledger.record(Category::LayerNormInput, 100);
        ledger.record(Category::SmallStatistics, 1_000_000);
        assert_eq!(ledger.paper_bytes(), 200);
        assert_eq!(ledger.total_bytes(), 200 + 2_000_000);
    }

    #[test]
    fn publish_records_high_water_bytes() {
        let mut ledger = ActivationLedger::new();
        ledger.record(Category::QueryKey, 10); // 20 bytes
        ledger.record(Category::SoftmaxDropoutMask, 8); // 8 bytes
        let reg = mt_trace::MetricsRegistry::new();
        ledger.publish(&reg, "rank0.act");
        assert_eq!(reg.get("rank0.act.QueryKey_bytes").unwrap().as_u64(), 20);
        assert_eq!(reg.get("rank0.act.paper_bytes").unwrap().as_u64(), 28);
        // A smaller later publish doesn't lower the mark.
        ActivationLedger::new().publish(&reg, "rank0.act");
        assert_eq!(reg.get("rank0.act.paper_bytes").unwrap().as_u64(), 28);
    }

    #[test]
    fn free_tracks_liveness_and_peak() {
        let mut ledger = ActivationLedger::new();
        ledger.record(Category::QueryKey, 10); // live 20 bytes
        ledger.record(Category::SoftmaxDropoutMask, 8); // live 28 bytes
        assert_eq!(ledger.live_paper_bytes(), 28);
        ledger.free(Category::QueryKey, 10);
        assert_eq!(ledger.live_paper_bytes(), 8);
        // Cumulative accounting is untouched by frees.
        assert_eq!(ledger.paper_bytes(), 28);
        assert_eq!(ledger.high_water(), 28);
        // SmallStatistics never enters the paper byte counts, live or not.
        ledger.record(Category::SmallStatistics, 1_000);
        assert_eq!(ledger.live_paper_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "double-free")]
    fn double_free_panics() {
        let mut ledger = ActivationLedger::new();
        ledger.record(Category::Value, 4);
        ledger.free(Category::Value, 4);
        ledger.free(Category::Value, 1);
    }

    #[test]
    fn release_frees_other_ledgers_live_set() {
        let mut iter_ledger = ActivationLedger::new();
        let mut micro = ActivationLedger::new();
        micro.record(Category::GeluInput, 16);
        micro.record(Category::MlpDropoutMask, 4);
        iter_ledger.merge(&micro);
        iter_ledger.merge(&micro); // two microbatches in flight
        assert_eq!(iter_ledger.live_paper_bytes(), 2 * (32 + 4));
        iter_ledger.release(&micro);
        assert_eq!(iter_ledger.live_paper_bytes(), 36);
        assert_eq!(iter_ledger.high_water(), 72);
    }

    #[test]
    fn record_accumulates_and_merges() {
        let mut a = ActivationLedger::new();
        a.record(Category::QueryKey, 10);
        a.record(Category::QueryKey, 5);
        let mut b = ActivationLedger::new();
        b.record(Category::QueryKey, 1);
        b.record(Category::Value, 2);
        a.merge(&b);
        assert_eq!(a.elements(Category::QueryKey), 16);
        assert_eq!(a.elements(Category::Value), 2);
    }
}
