//! The activation ledger: byte-exact accounting of what a strategy stores.
//!
//! Every tensor a layer saves for back-propagation is recorded here under a
//! [`Category`] with the paper's byte widths (2 bytes/element for fp16
//! activations, 1 byte/element for dropout masks, 4 bytes/element for fp32
//! logits). Integration tests compare these measured totals against the
//! closed forms of Table 2 — they must match **exactly**, since the formulas
//! count precisely these objects.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of saved activation an entry is.
///
/// The variants mirror the itemization in Section 4.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Input to a LayerNorm (`2sbh` each, two per layer).
    LayerNormInput,
    /// Shared input of the Q/K/V matmuls (`2sbh`).
    QkvInput,
    /// Q and K, saved for the `QKᵀ` backward (`4sbh`).
    QueryKey,
    /// V, saved for the attention-over-values backward (`2sbh`).
    Value,
    /// Softmax output (`2as²b`).
    SoftmaxOutput,
    /// Softmax dropout mask (`as²b`, 1 byte/element).
    SoftmaxDropoutMask,
    /// Softmax dropout output, input of the `P·V` matmul (`2as²b`).
    SoftmaxDropoutOutput,
    /// Input of the post-attention linear projection (`2sbh`).
    ProjectionInput,
    /// Post-attention dropout mask (`sbh`, 1 byte/element).
    AttentionDropoutMask,
    /// Input of the h→4h linear (`2sbh`).
    MlpFirstInput,
    /// GeLU input (`8sbh`).
    GeluInput,
    /// Input of the 4h→h linear (`8sbh`).
    MlpSecondInput,
    /// MLP dropout mask (`sbh`, 1 byte/element).
    MlpDropoutMask,
    /// Embedding dropout mask (`sbh`, 1 byte/element; Section 4.3).
    EmbeddingDropoutMask,
    /// fp32 logits kept for the cross-entropy backward (`4sbv`; Section 4.3).
    Logits,
    /// Small per-row statistics (LayerNorm mean/rstd) — tracked but excluded
    /// from paper comparisons, exactly as the paper's approximation drops
    /// the `2sb ≪ sbh` terms.
    SmallStatistics,
}

impl Category {
    /// Paper-accounted bytes per element for this category.
    pub fn bytes_per_element(self) -> u64 {
        match self {
            Category::SoftmaxDropoutMask
            | Category::AttentionDropoutMask
            | Category::MlpDropoutMask
            | Category::EmbeddingDropoutMask => 1,
            Category::Logits => 4,
            _ => 2,
        }
    }

    /// Whether the category participates in Table 2 comparisons.
    pub fn counted_in_paper_model(self) -> bool {
        !matches!(self, Category::SmallStatistics)
    }
}

/// Byte-exact record of the activations one rank stores for one (or more)
/// layers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationLedger {
    elements: BTreeMap<Category, u64>,
}

impl ActivationLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `elements` saved elements of `category`.
    pub fn record(&mut self, category: Category, elements: u64) {
        *self.elements.entry(category).or_insert(0) += elements;
    }

    /// Elements recorded under a category.
    pub fn elements(&self, category: Category) -> u64 {
        self.elements.get(&category).copied().unwrap_or(0)
    }

    /// Bytes recorded under a category at paper widths.
    pub fn bytes(&self, category: Category) -> u64 {
        self.elements(category) * category.bytes_per_element()
    }

    /// Total bytes across categories that the paper's per-layer formulas
    /// count (excludes [`Category::SmallStatistics`]).
    pub fn paper_bytes(&self) -> u64 {
        self.elements
            .iter()
            .filter(|(c, _)| c.counted_in_paper_model())
            .map(|(c, e)| e * c.bytes_per_element())
            .sum()
    }

    /// Total bytes across *all* categories.
    pub fn total_bytes(&self) -> u64 {
        self.elements.iter().map(|(c, e)| e * c.bytes_per_element()).sum()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &ActivationLedger) {
        for (c, e) in &other.elements {
            *self.elements.entry(*c).or_insert(0) += e;
        }
    }

    /// Iterates `(category, elements)` in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        self.elements.iter().map(|(c, e)| (*c, *e))
    }

    /// Publishes the ledger into a metrics registry: per-category byte
    /// high-water marks under `{prefix}.{category:?}_bytes` plus
    /// `{prefix}.paper_bytes` / `{prefix}.total_bytes`. High-water semantics
    /// make repeated per-step publishes record the worst step.
    pub fn publish(&self, registry: &mt_trace::MetricsRegistry, prefix: &str) {
        for (c, _) in self.iter() {
            registry.high_water(&format!("{prefix}.{c:?}_bytes"), self.bytes(c));
        }
        registry.high_water(&format!("{prefix}.paper_bytes"), self.paper_bytes());
        registry.high_water(&format!("{prefix}.total_bytes"), self.total_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths_follow_paper() {
        assert_eq!(Category::SoftmaxOutput.bytes_per_element(), 2);
        assert_eq!(Category::SoftmaxDropoutMask.bytes_per_element(), 1);
        assert_eq!(Category::Logits.bytes_per_element(), 4);
    }

    #[test]
    fn paper_bytes_excludes_small_statistics() {
        let mut ledger = ActivationLedger::new();
        ledger.record(Category::LayerNormInput, 100);
        ledger.record(Category::SmallStatistics, 1_000_000);
        assert_eq!(ledger.paper_bytes(), 200);
        assert_eq!(ledger.total_bytes(), 200 + 2_000_000);
    }

    #[test]
    fn publish_records_high_water_bytes() {
        let mut ledger = ActivationLedger::new();
        ledger.record(Category::QueryKey, 10); // 20 bytes
        ledger.record(Category::SoftmaxDropoutMask, 8); // 8 bytes
        let reg = mt_trace::MetricsRegistry::new();
        ledger.publish(&reg, "rank0.act");
        assert_eq!(reg.get("rank0.act.QueryKey_bytes").unwrap().as_u64(), 20);
        assert_eq!(reg.get("rank0.act.paper_bytes").unwrap().as_u64(), 28);
        // A smaller later publish doesn't lower the mark.
        ActivationLedger::new().publish(&reg, "rank0.act");
        assert_eq!(reg.get("rank0.act.paper_bytes").unwrap().as_u64(), 28);
    }

    #[test]
    fn record_accumulates_and_merges() {
        let mut a = ActivationLedger::new();
        a.record(Category::QueryKey, 10);
        a.record(Category::QueryKey, 5);
        let mut b = ActivationLedger::new();
        b.record(Category::QueryKey, 1);
        b.record(Category::Value, 2);
        a.merge(&b);
        assert_eq!(a.elements(Category::QueryKey), 16);
        assert_eq!(a.elements(Category::Value), 2);
    }
}
