//! Optimizers for the executing model: Adam (as used by the paper's
//! training runs) and plain SGD.

use mt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Serializable optimizer state: the step count driving bias correction
/// plus the first/second moment tensors in parameter order. Captured with
/// [`Adam::state`] / [`AdamW::state`] and restored with `load_state`, so a
/// resumed run continues bit-identically to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// Update steps taken (drives bias correction).
    pub step: u64,
    /// First moments, one per parameter.
    pub m: Vec<Tensor>,
    /// Second moments, one per parameter.
    pub v: Vec<Tensor>,
}

/// Adam with bias correction.
///
/// State tensors are allocated lazily on the first [`Adam::update`] call and
/// keyed by position, so callers must pass parameters in a stable order.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual defaults
    /// (`β₁ = 0.9, β₂ = 0.999, ε = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, step: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of update steps taken.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Snapshot of the optimizer state for checkpointing.
    pub fn state(&self) -> AdamState {
        AdamState { step: self.step, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restores a snapshot taken by [`Adam::state`]. The moment tensors
    /// must be in the same parameter order the optimizer will later be
    /// stepped with.
    pub fn load_state(&mut self, state: AdamState) {
        assert_eq!(state.m.len(), state.v.len(), "m/v length mismatch");
        self.step = state.step;
        self.m = state.m;
        self.v = state.v;
    }

    /// Applies one update: `params[i] -= lr · m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` lengths differ, if a gradient shape
    /// does not match its parameter, or if the parameter list changed
    /// between calls.
    pub fn update(&mut self, params: Vec<&mut Tensor>, grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed between updates");
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((p, g), (m, v)) in
            params.into_iter().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "gradient shape mismatch");
            for ((pv, &gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// AdamW: Adam with decoupled weight decay (the regularization large GPT
/// training runs actually use).
#[derive(Debug, Clone)]
pub struct AdamW {
    inner: Adam,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
}

impl AdamW {
    /// Creates an AdamW optimizer.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW { inner: Adam::new(lr), weight_decay }
    }

    /// Number of update steps taken.
    pub fn steps(&self) -> u64 {
        self.inner.steps()
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.inner.lr
    }

    /// Snapshot of the optimizer state for checkpointing.
    pub fn state(&self) -> AdamState {
        self.inner.state()
    }

    /// Restores a snapshot taken by [`AdamW::state`].
    pub fn load_state(&mut self, state: AdamState) {
        self.inner.load_state(state);
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.inner.lr = lr;
    }

    /// Applies one update: weight decay `p -= lr·wd·p`, then the Adam step.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Adam::update`].
    pub fn update(&mut self, mut params: Vec<&mut Tensor>, grads: &[&Tensor]) {
        let decay = self.inner.lr * self.weight_decay;
        for p in params.iter_mut() {
            for v in p.data_mut() {
                *v -= decay * *v;
            }
        }
        self.inner.update(params, grads);
    }
}

/// Global gradient-norm clipping: scales every gradient by
/// `min(1, max_norm / ‖g‖₂)` where the norm is taken over *all* gradients
/// jointly, and returns the pre-clip norm.
///
/// In a model-parallel setting each rank holds a shard of the gradients;
/// compute the global norm by all-reducing the squared-norm contributions
/// before calling this with the combined value — or use this directly for
/// single-rank training.
pub fn clip_grad_norm(mut grads: Vec<&mut Tensor>, max_norm: f32) -> f32 {
    let sq: f64 = grads.iter().flat_map(|g| g.data()).map(|&v| (v as f64) * (v as f64)).sum();
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.data_mut() {
                *v *= scale;
            }
        }
    }
    norm
}

/// [`clip_grad_norm`] for a tensor-parallel rank: the norm is the *global*
/// gradient norm with every parameter counted exactly once — replicated
/// gradients (identical on all ranks) contribute locally, sharded
/// gradients contribute their shard's squared sum through an `all_reduce`.
/// Because the reduced value is identical on every rank, so is the clip
/// scale, which keeps replicated parameters bit-identical across the group
/// — the invariant degree-changing checkpoint re-sharding depends on.
/// Clipping each rank by its *local* norm instead would scale replicated
/// gradients differently per rank and silently desynchronize them.
///
/// Split the gradients with
/// [`GptGrads::tensors_mut_by_locality`](crate::gpt::GptGrads::tensors_mut_by_locality).
///
/// # Panics
///
/// Raises the underlying [`CollectiveError`](mt_collectives::CollectiveError)
/// as a panic payload if the reduction fails (as every infallible
/// collective does).
pub fn clip_grad_norm_tp<'a>(
    mut replicated: Vec<&'a mut Tensor>,
    mut sharded: Vec<&'a mut Tensor>,
    max_norm: f32,
    comm: &mt_collectives::Communicator,
) -> f32 {
    let sq_sum = |ts: &[&mut Tensor]| -> f64 {
        ts.iter().flat_map(|g| g.data()).map(|&v| (v as f64) * (v as f64)).sum()
    };
    let local = Tensor::from_vec(vec![1], vec![sq_sum(&sharded) as f32])
        .expect("1-element squared-norm tensor");
    let shard_sq = comm.all_reduce(&local).data()[0] as f64;
    let norm = (sq_sum(&replicated) + shard_sq).sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in replicated.iter_mut().chain(sharded.iter_mut()) {
            for v in g.data_mut() {
                *v *= scale;
            }
        }
    }
    norm
}

/// Plain SGD, mostly for tests.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies `params[i] -= lr · grads[i]`.
    ///
    /// # Panics
    ///
    /// Panics if lengths or shapes mismatch.
    pub fn update(&self, params: Vec<&mut Tensor>, grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        for (p, g) in params.into_iter().zip(grads) {
            p.axpy(-self.lr, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_reduces_a_quadratic() {
        // Minimize f(x) = ||x - c||² — Adam should march towards c.
        let c = [3.0_f32, -1.0, 0.5];
        let mut x = Tensor::zeros(&[3]);
        let mut adam = Adam::new(0.1);
        for _ in 0..200 {
            let g = Tensor::from_fn(&[3], |i| 2.0 * (x.data()[i] - c[i]));
            adam.update(vec![&mut x], &[&g]);
        }
        for (xi, ci) in x.data().iter().zip(&c) {
            assert!((xi - ci).abs() < 0.05, "{xi} vs {ci}");
        }
    }

    #[test]
    fn sgd_step_is_exact() {
        let mut x = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let g = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        Sgd::new(0.1).update(vec![&mut x], &[&g]);
        assert!(x.allclose(&Tensor::from_vec(vec![2], vec![0.95, 2.05]).unwrap(), 1e-6, 1e-7));
    }

    #[test]
    fn adam_is_deterministic() {
        let run = || {
            let mut x = Tensor::full(&[4], 1.0);
            let mut adam = Adam::new(0.01);
            for i in 0..10 {
                let g = Tensor::full(&[4], (i as f32).sin());
                adam.update(vec![&mut x], &[&g]);
            }
            x
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn adam_rejects_mismatched_lists() {
        let mut x = Tensor::zeros(&[2]);
        Adam::new(0.1).update(vec![&mut x], &[]);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        let g_at = |i: u64| Tensor::full(&[3], (i as f32).sin());
        // Uninterrupted: 10 steps.
        let mut x_ref = Tensor::full(&[3], 1.0);
        let mut adam_ref = Adam::new(0.05);
        for i in 0..10 {
            adam_ref.update(vec![&mut x_ref], &[&g_at(i)]);
        }
        // Interrupted at step 5: snapshot, restore into a fresh optimizer,
        // replay the rest.
        let mut x = Tensor::full(&[3], 1.0);
        let mut adam = Adam::new(0.05);
        for i in 0..5 {
            adam.update(vec![&mut x], &[&g_at(i)]);
        }
        let snapshot = adam.state();
        let mut resumed = Adam::new(0.05);
        resumed.load_state(snapshot);
        for i in 5..10 {
            resumed.update(vec![&mut x], &[&g_at(i)]);
        }
        assert_eq!(resumed.steps(), adam_ref.steps());
        for (a, b) in x.data().iter().zip(x_ref.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in resumed.state().m.iter().zip(&adam_ref.state().m) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn adamw_decays_unused_weights() {
        // With zero gradients, AdamW still shrinks the parameters; Adam
        // does not.
        let mut x = Tensor::full(&[3], 1.0);
        let g = Tensor::zeros(&[3]);
        let mut adamw = AdamW::new(0.1, 0.5);
        adamw.update(vec![&mut x], &[&g]);
        assert!(x.data().iter().all(|&v| v < 1.0));
        let mut y = Tensor::full(&[3], 1.0);
        Adam::new(0.1).update(vec![&mut y], &[&g]);
        assert!(y.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn adamw_with_zero_decay_equals_adam() {
        let g = Tensor::from_vec(vec![2], vec![0.3, -0.7]).unwrap();
        let mut a = Tensor::full(&[2], 1.0);
        let mut b = Tensor::full(&[2], 1.0);
        let mut adam = Adam::new(0.05);
        let mut adamw = AdamW::new(0.05, 0.0);
        for _ in 0..5 {
            adam.update(vec![&mut a], &[&g]);
            adamw.update(vec![&mut b], &[&g]);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn clip_grad_norm_scales_to_the_target() {
        let mut grads = [
            Tensor::from_vec(vec![2], vec![3.0, 0.0]).unwrap(),
            Tensor::from_vec(vec![1], vec![4.0]).unwrap(),
        ];
        let norm = clip_grad_norm(grads.iter_mut().collect(), 1.0);
        assert!((norm - 5.0).abs() < 1e-6, "pre-clip norm {norm}");
        let new_sq: f32 = grads.iter().flat_map(|g| g.data()).map(|v| v * v).sum();
        assert!((new_sq.sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut grads = [Tensor::from_vec(vec![2], vec![0.1, 0.1]).unwrap()];
        let before = grads[0].clone();
        let _ = clip_grad_norm(grads.iter_mut().collect(), 10.0);
        assert_eq!(grads[0], before);
    }
}
