//! Dropout stream-id assignment.
//!
//! Each dropout *site* in the network gets a unique, deterministic stream id
//! so that [`CounterRng`](mt_tensor::rng::CounterRng) masks are:
//!
//! 1. **replayable** — a recomputation pass regenerates the identical mask
//!    without having stored it, and
//! 2. **layout-independent** — mask elements are addressed by *global*
//!    `(row, column)` coordinates, so a rank operating on a sequence shard
//!    or a head subset draws exactly the bits the serial model would. This
//!    is what makes serial ↔ TP ↔ TP+SP gradient equivalence exact.

/// The three dropout sites inside a transformer layer, plus the embedding
/// dropout outside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropoutSite {
    /// Softmax-probability dropout inside attention.
    Softmax,
    /// Dropout after the attention output projection.
    AttentionOutput,
    /// Dropout after the MLP second linear.
    MlpOutput,
    /// Dropout after the embedding lookup (Section 4.3).
    Embedding,
}

impl DropoutSite {
    fn code(self) -> u64 {
        match self {
            DropoutSite::Softmax => 0,
            DropoutSite::AttentionOutput => 1,
            DropoutSite::MlpOutput => 2,
            DropoutSite::Embedding => 3,
        }
    }
}

/// Computes the stream id for a dropout site in `layer` while processing
/// microbatch `micro`.
///
/// The embedding site ignores `layer`.
pub fn stream_id(site: DropoutSite, layer: usize, micro: u64) -> u64 {
    (micro << 24) | ((layer as u64) << 4) | site.code()
}

/// Global flat offset of element `(row, col)` in an `[rows, cols]` activation
/// whose rows may be sharded: `row` is the *global* row index.
pub fn element_offset(row: usize, col: usize, cols: usize) -> u64 {
    (row * cols + col) as u64
}

/// Global flat offset of element `(q, k)` of the `[s, s]` attention-score
/// matrix for `(batch, head)`: addressed by global head index so head-sharded
/// ranks replay the same bits.
pub fn attention_offset(
    batch: usize,
    head: usize,
    q: usize,
    k: usize,
    heads: usize,
    s: usize,
) -> u64 {
    (((batch * heads + head) * s + q) * s + k) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_ids_are_unique_across_sites_layers_micros() {
        let mut seen = std::collections::HashSet::new();
        for micro in 0..3u64 {
            for layer in 0..5usize {
                for site in
                    [DropoutSite::Softmax, DropoutSite::AttentionOutput, DropoutSite::MlpOutput]
                {
                    assert!(seen.insert(stream_id(site, layer, micro)));
                }
            }
            assert!(seen.insert(stream_id(DropoutSite::Embedding, 0, micro)));
        }
    }

    #[test]
    fn offsets_are_layout_independent() {
        // The offset of global row 10 is the same whether computed by the
        // serial model or by the rank holding rows 8..16.
        assert_eq!(element_offset(10, 3, 32), (10 * 32 + 3) as u64);
        // Attention offsets are dense and unique per (b, head, q, k).
        let a = attention_offset(1, 2, 3, 4, 4, 8);
        let b = attention_offset(1, 2, 3, 5, 4, 8);
        assert_eq!(b - a, 1);
    }
}
