//! Evaluation utilities: mean cross-entropy and perplexity over a set of
//! microbatches, on a dropout-free copy of the model.

use crate::gpt::Gpt;
use mt_tensor::ops;

/// Mean cross-entropy of the model over `(tokens, targets)` microbatches,
/// with dropout disabled (the model is evaluated via [`Gpt::eval`]).
///
/// # Panics
///
/// Panics if `batches` is empty or any batch's length differs from the
/// model's `s·b`.
pub fn mean_loss(gpt: &Gpt, batches: &[(Vec<usize>, Vec<usize>)]) -> f32 {
    assert!(!batches.is_empty(), "no evaluation batches");
    let model = gpt.eval();
    let total: f64 = batches
        .iter()
        .map(|(tokens, targets)| {
            let logits = model.logits(tokens, 0);
            ops::cross_entropy(&logits, targets).loss as f64
        })
        .sum();
    (total / batches.len() as f64) as f32
}

/// Perplexity: `exp(mean_loss)`.
///
/// # Panics
///
/// Panics under the same conditions as [`mean_loss`].
pub fn perplexity(gpt: &Gpt, batches: &[(Vec<usize>, Vec<usize>)]) -> f32 {
    mean_loss(gpt, batches).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformerConfig;
    use mt_memory::Recompute;
    use mt_tensor::rng::SplitMix64;

    type Batches = Vec<(Vec<usize>, Vec<usize>)>;

    fn fixtures() -> (Gpt, Batches) {
        let cfg = TransformerConfig {
            hidden: 16,
            heads: 2,
            seq: 6,
            micro_batch: 2,
            layers: 1,
            vocab: 20,
            dropout_p: 0.2,
            causal: true,
        };
        let gpt = Gpt::init(cfg, Recompute::None, 44);
        let mut rng = SplitMix64::new(45);
        let batches = (0..3)
            .map(|_| {
                (
                    (0..cfg.tokens()).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect(),
                    (0..cfg.tokens()).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect(),
                )
            })
            .collect();
        (gpt, batches)
    }

    #[test]
    fn fresh_model_perplexity_is_near_vocab_size() {
        let (gpt, batches) = fixtures();
        let ppl = perplexity(&gpt, &batches);
        assert!((10.0..35.0).contains(&ppl), "ppl {ppl} for vocab 20");
    }

    #[test]
    fn eval_is_deterministic_despite_dropout() {
        let (gpt, batches) = fixtures();
        assert_eq!(mean_loss(&gpt, &batches), mean_loss(&gpt, &batches));
    }

    #[test]
    fn perplexity_is_exp_of_loss() {
        let (gpt, batches) = fixtures();
        let l = mean_loss(&gpt, &batches);
        assert!((perplexity(&gpt, &batches) - l.exp()).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "no evaluation batches")]
    fn rejects_empty_batch_lists() {
        let (gpt, _) = fixtures();
        let _ = mean_loss(&gpt, &[]);
    }
}
