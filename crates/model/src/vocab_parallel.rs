//! Vocabulary-parallel logits head and fused cross-entropy (the Megatron-LM
//! output-layer sharding referenced in Section 4.3: "The output layer
//! projection into vocabulary dimension will require its input with size
//! 2sbh/t" — each rank holds a `v/t` row-slice of the tied embedding table,
//! computes its slice of the logits, and the softmax statistics are combined
//! with two small collectives).
//!
//! Compared with replicating the head, this divides both the logits memory
//! (`4sbv → 4sbv/t`, the paper's fp32 logits term) and the projection FLOPs
//! by `t`, at the cost of one max all-reduce and two sum all-reduces of
//! `s·b` elements.

use crate::ledger::{ActivationLedger, Category};
use mt_collectives::Communicator;
use mt_tensor::{ops, Tensor};

/// One rank's shard of the vocabulary-parallel head state, kept for the
/// backward pass.
#[derive(Debug, Clone)]
pub struct VocabParallelSaved {
    /// Local softmax probabilities `[n, v/t]`.
    probs_local: Tensor,
    /// For each row, the local column index of the target if this rank owns
    /// it.
    target_local: Vec<Option<usize>>,
    /// Rows of the input (for shapes).
    rows: usize,
}

/// Result of [`vocab_parallel_cross_entropy`].
#[derive(Debug, Clone)]
pub struct VocabParallelOutput {
    /// Mean negative log-likelihood (identical on every rank).
    pub loss: f32,
    /// State for [`vocab_parallel_cross_entropy_backward`].
    pub saved: VocabParallelSaved,
}

/// Computes the mean cross-entropy of `y · table_shardᵀ` against integer
/// targets, with the vocabulary dimension sharded across the communicator.
///
/// `table_shard` is rank `r`'s rows `r·v/t .. (r+1)·v/t` of the `[v, h]`
/// table. Saved activations (the local fp32 logits-turned-probabilities,
/// `4·s·b·v/t` bytes) are recorded on the ledger — the `/t` the paper's
/// Section 4.3 accounting assumes.
///
/// # Panics
///
/// Panics if shapes are inconsistent or a target is out of the global
/// vocabulary range.
pub fn vocab_parallel_cross_entropy(
    comm: &Communicator,
    y: &Tensor,
    table_shard: &Tensor,
    targets: &[usize],
    ledger: &mut ActivationLedger,
) -> VocabParallelOutput {
    let rows = y.rows();
    assert_eq!(targets.len(), rows, "one target per row");
    let v_local = table_shard.dim(0);
    let vocab = v_local * comm.size();
    let lo = comm.rank() * v_local;

    // Local logits slice: [n, v/t].
    let mut logits = ops::Gemm::NT.apply(y, table_shard);
    ledger.record(Category::Logits, logits.numel() as u64);

    // Global row max (for the stable softmax).
    let mut local_max = Tensor::zeros(&[rows]);
    for r in 0..rows {
        local_max.data_mut()[r] = logits.data()[r * v_local..(r + 1) * v_local]
            .iter()
            .fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    }
    let global_max = comm.all_reduce_max(&local_max);

    // exp and global denominator.
    let mut local_sum = Tensor::zeros(&[rows]);
    for r in 0..rows {
        let m = global_max.data()[r];
        let row = &mut logits.data_mut()[r * v_local..(r + 1) * v_local];
        let mut s = 0.0;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            s += *x;
        }
        local_sum.data_mut()[r] = s;
    }
    let global_sum = comm.all_reduce(&local_sum);

    // Normalize to probabilities and pull out the target terms.
    let mut target_local = Vec::with_capacity(rows);
    let mut local_target_prob = Tensor::zeros(&[rows]);
    #[allow(clippy::needless_range_loop)] // r indexes logits rows and `targets` jointly
    for r in 0..rows {
        let z = global_sum.data()[r];
        let row = &mut logits.data_mut()[r * v_local..(r + 1) * v_local];
        for x in row.iter_mut() {
            *x /= z;
        }
        let t = targets[r];
        assert!(t < vocab, "target {t} out of range (vocab {vocab})");
        if (lo..lo + v_local).contains(&t) {
            target_local.push(Some(t - lo));
            local_target_prob.data_mut()[r] = row[t - lo];
        } else {
            target_local.push(None);
        }
    }
    let target_prob = comm.all_reduce(&local_target_prob);
    let loss =
        -target_prob.data().iter().map(|&p| (p as f64).ln()).sum::<f64>() as f32 / rows as f32;

    VocabParallelOutput {
        loss,
        saved: VocabParallelSaved { probs_local: logits, target_local, rows },
    }
}

/// Backward of [`vocab_parallel_cross_entropy`]: returns `(dY, dTableShard)`.
///
/// `dY` is the complete input gradient (the partial products are summed with
/// one all-reduce); `dTableShard` is the rank's complete shard gradient.
///
/// # Panics
///
/// Panics if the saved state does not match `y`/`table_shard`.
pub fn vocab_parallel_cross_entropy_backward(
    comm: &Communicator,
    y: &Tensor,
    table_shard: &Tensor,
    saved: &VocabParallelSaved,
) -> (Tensor, Tensor) {
    assert_eq!(y.rows(), saved.rows, "saved state does not match y");
    let v_local = table_shard.dim(0);
    let rows = saved.rows;
    // dlogits_local = (p - onehot_local) / n.
    let mut dlogits = saved.probs_local.clone();
    let inv_n = 1.0 / rows as f32;
    for r in 0..rows {
        let row = &mut dlogits.data_mut()[r * v_local..(r + 1) * v_local];
        if let Some(c) = saved.target_local[r] {
            row[c] -= 1.0;
        }
        for x in row.iter_mut() {
            *x *= inv_n;
        }
    }
    let d_y_partial = ops::Gemm::NN.apply(&dlogits, table_shard);
    let d_y = comm.all_reduce(&d_y_partial);
    let d_table = ops::Gemm::TN.apply(&dlogits, y);
    (d_y, d_table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_collectives::World;
    use mt_tensor::rng::SplitMix64;

    const ROWS: usize = 6;
    const HIDDEN: usize = 8;
    const VOCAB: usize = 12;

    fn fixtures() -> (Tensor, Tensor, Vec<usize>) {
        let mut rng = SplitMix64::new(42);
        let y = Tensor::rand_uniform(&[ROWS, HIDDEN], -1.0, 1.0, &mut rng);
        let table = Tensor::rand_uniform(&[VOCAB, HIDDEN], -1.0, 1.0, &mut rng);
        let targets = vec![0, 3, 11, 7, 5, 2];
        (y, table, targets)
    }

    fn serial_reference() -> (f32, Tensor, Tensor) {
        let (y, table, targets) = fixtures();
        let logits = ops::Gemm::NT.apply(&y, &table);
        let ce = ops::cross_entropy(&logits, &targets);
        let d_y = ops::Gemm::NN.apply(&ce.dlogits, &table);
        let d_table = ops::Gemm::TN.apply(&ce.dlogits, &y);
        (ce.loss, d_y, d_table)
    }

    #[test]
    fn matches_serial_cross_entropy() {
        let (loss_s, d_y_s, d_table_s) = serial_reference();
        for t in [2usize, 4] {
            let (y, table, targets) = fixtures();
            let out = World::run(t, |comm| {
                let shard = table.chunk_axis0(t).unwrap()[comm.rank()].clone();
                let mut ledger = ActivationLedger::new();
                let out = vocab_parallel_cross_entropy(&comm, &y, &shard, &targets, &mut ledger);
                let (d_y, d_table) =
                    vocab_parallel_cross_entropy_backward(&comm, &y, &shard, &out.saved);
                (out.loss, d_y, d_table)
            });
            for (rank, (loss, d_y, _)) in out.iter().enumerate() {
                assert!((loss - loss_s).abs() < 1e-5, "t={t} rank={rank}: loss {loss} vs {loss_s}");
                assert!(d_y.allclose(&d_y_s, 1e-4, 1e-5), "t={t} rank={rank}: dY mismatch");
            }
            // Reassemble the table gradient from the shards.
            let full = Tensor::concat_axis0(&out.iter().map(|o| o.2.clone()).collect::<Vec<_>>());
            assert!(full.allclose(&d_table_s, 1e-4, 1e-5), "t={t}: dTable mismatch");
        }
    }

    #[test]
    fn ledger_records_logits_divided_by_t() {
        let (y, table, targets) = fixtures();
        let t = 4;
        let bytes = World::run(t, |comm| {
            let shard = table.chunk_axis0(t).unwrap()[comm.rank()].clone();
            let mut ledger = ActivationLedger::new();
            let _ = vocab_parallel_cross_entropy(&comm, &y, &shard, &targets, &mut ledger);
            ledger.bytes(Category::Logits)
        });
        let full = (ROWS * VOCAB * 4) as u64; // 4sbv
        for b in bytes {
            assert_eq!(b, full / t as u64, "4sbv/t per rank");
        }
    }

    #[test]
    fn loss_is_identical_on_all_ranks() {
        let (y, table, targets) = fixtures();
        let losses = World::run(3, |comm| {
            let shard = table.chunk_axis0(3).unwrap()[comm.rank()].clone();
            let mut ledger = ActivationLedger::new();
            vocab_parallel_cross_entropy(&comm, &y, &shard, &targets, &mut ledger).loss
        });
        assert!(losses.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rejects_out_of_range_targets() {
        let (y, table, _) = fixtures();
        let bad = vec![VOCAB; ROWS];
        let _ = World::run(2, |comm| {
            let shard = table.chunk_axis0(2).unwrap()[comm.rank()].clone();
            let mut ledger = ActivationLedger::new();
            vocab_parallel_cross_entropy(&comm, &y, &shard, &bad, &mut ledger).loss
        });
    }
}
