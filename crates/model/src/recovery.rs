//! Retry-with-backoff training: run segments between checkpoints under
//! [`World::run_fallible`], and on any rank failure restore the last
//! checkpoint and replay.
//!
//! The driver models job-level restart semantics: a *segment* of
//! `checkpoint_every` steps either commits on every rank (all ranks return
//! fresh checkpoints) or commits on none, in which case the same segment is
//! retried from the previous checkpoints after a deterministic exponential
//! backoff. Because checkpoints capture the complete training state
//! bit-exactly (see [`TrainerCheckpoint`]) and injected faults are
//! consume-once, a recovered run produces final weights **bit-identical**
//! to a fault-free run of the same total steps.

use crate::gpt::Gpt;
use crate::layer::ExecMode;
use crate::trainer::{StepStats, Trainer, TrainerCheckpoint, TrainerConfig};
use mt_collectives::{CollectiveError, World, DEFAULT_COLLECTIVE_TIMEOUT};
use mt_fault::{FaultAction, FaultPlan};
use mt_memory::Recompute;
use mt_trace::ArgValue;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Knobs for [`train_with_recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Total training steps to complete.
    pub total_steps: u64,
    /// Steps between checkpoints (segment length).
    pub checkpoint_every: u64,
    /// Failed attempts tolerated before giving up.
    pub max_retries: u32,
    /// Base backoff slept after a failed attempt; doubles per consecutive
    /// failure (capped at 5 s). Zero disables sleeping, which keeps tests
    /// fast while preserving the retry accounting.
    pub backoff_base: Duration,
    /// Rendezvous deadline installed on each attempt's world.
    pub collective_timeout: Duration,
}

impl RecoveryConfig {
    /// A config for `total_steps` with checkpoints every 4 steps, 4
    /// retries, no backoff sleep, and the default collective timeout.
    pub fn new(total_steps: u64) -> Self {
        RecoveryConfig {
            total_steps,
            checkpoint_every: 4,
            max_retries: 4,
            backoff_base: Duration::ZERO,
            collective_timeout: DEFAULT_COLLECTIVE_TIMEOUT,
        }
    }
}

/// What happened across a recovered run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Per-step diagnostics from rank 0, for all `total_steps` steps
    /// (committed segments only — failed attempts are not recorded, just
    /// as their weight updates are not kept).
    pub stats: Vec<StepStats>,
    /// Failed attempts that were recovered from.
    pub retries: u32,
    /// Human-readable description of each recovered failure.
    pub failures: Vec<String>,
    /// Segments committed (= checkpoints taken).
    pub segments: u64,
}

/// Terminal failure of [`train_with_recovery`]: the retry budget ran out.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryError {
    /// Descriptions of every failed attempt, in order.
    pub failures: Vec<String>,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "training failed after {} attempts: ", self.failures.len())?;
        match self.failures.last() {
            Some(last) => write!(f, "{last}"),
            None => write!(f, "(no attempts recorded)"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Trains `init` for `rc.total_steps` steps across `tp` tensor-parallel
/// ranks, surviving injected (or real) rank failures by restoring the last
/// checkpoint and replaying. Returns the per-rank trained model shards
/// (the full model when `tp == 1`) and a report of the recoveries.
///
/// `data(step)` must be a pure function of the step number so a replayed
/// segment sees identical batches; the trainer's counter-based RNG streams
/// make everything else about the replay exact.
///
/// The fault plan is consulted at two granularities: each attempt's
/// [`World`] consults it per collective call, and this driver consults it
/// at the top of every step via [`FaultPlan::poll_step`].
///
/// # Errors
///
/// Returns [`RecoveryError`] once `rc.max_retries` failed attempts are
/// exhausted.
///
/// # Panics
///
/// Panics if `tp == 0`, `rc.checkpoint_every == 0`, or the model/config
/// are invalid for `tp`-way sharding.
pub fn train_with_recovery<F>(
    init: &Gpt,
    tp: usize,
    policy: Recompute,
    cfg: TrainerConfig,
    rc: &RecoveryConfig,
    plan: Arc<FaultPlan>,
    data: F,
) -> Result<(Vec<Gpt>, RecoveryReport), RecoveryError>
where
    F: Fn(u64) -> (Vec<usize>, Vec<usize>) + Sync,
{
    assert!(tp > 0, "tensor-parallel degree must be at least 1");
    assert!(rc.checkpoint_every > 0, "checkpoint_every must be at least 1");
    let mut ckpts: Vec<TrainerCheckpoint> = (0..tp)
        .map(|rank| {
            let model = if tp == 1 { init.clone() } else { init.shard(tp, rank, policy) };
            Trainer::new(model, cfg).save_checkpoint()
        })
        .collect();
    let mut report =
        RecoveryReport { stats: Vec::new(), retries: 0, failures: Vec::new(), segments: 0 };
    let mut done = 0u64;
    let mut consecutive = 0u32;
    while done < rc.total_steps {
        let seg_end = (done + rc.checkpoint_every).min(rc.total_steps);
        let mut world = World::new(tp);
        // Same-degree retry never re-forms the world, so every attempt is
        // formation epoch 0 — stated explicitly for the epoch lint.
        world.set_epoch(0);
        world.set_collective_timeout(rc.collective_timeout);
        world.set_fault_plan(Arc::clone(&plan));
        let ckpts_ref = &ckpts;
        let plan_ref = &plan;
        let data_ref = &data;
        let results = world.run_fallible(|comm| {
            let rank = comm.rank();
            let mut trainer = Trainer::resume_from(ckpts_ref[rank].clone())
                .expect("in-memory checkpoint is valid");
            let mut seg_stats = Vec::with_capacity((seg_end - done) as usize);
            for step in done..seg_end {
                gate_step(plan_ref, rank, step)?;
                let (tokens, targets) = data_ref(step);
                let stats = if tp == 1 {
                    trainer.step(&tokens, &targets, ExecMode::Serial)
                } else {
                    trainer.step(&tokens, &targets, ExecMode::TensorParallel(&comm))
                };
                seg_stats.push(stats);
            }
            Ok((trainer.save_checkpoint(), seg_stats))
        });
        if results.iter().all(Result::is_ok) {
            for (rank, r) in results.into_iter().enumerate() {
                let (ckpt, seg_stats) = r.expect("checked ok");
                if rank == 0 {
                    report.stats.extend(seg_stats);
                }
                ckpts[rank] = ckpt;
            }
            done = seg_end;
            report.segments += 1;
            consecutive = 0;
        } else {
            let errs: Vec<String> = results
                .iter()
                .enumerate()
                .filter_map(|(rank, r)| r.as_ref().err().map(|e| format!("rank {rank}: {e}")))
                .collect();
            report.retries += 1;
            consecutive += 1;
            report.failures.push(format!("segment [{done}, {seg_end}): {}", errs.join("; ")));
            if report.retries > rc.max_retries {
                return Err(RecoveryError { failures: report.failures });
            }
            let backoff = rc
                .backoff_base
                .saturating_mul(1u32 << (consecutive - 1).min(16))
                .min(Duration::from_secs(5));
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
    }
    let models = ckpts
        .into_iter()
        .map(|c| Trainer::resume_from(c).expect("in-memory checkpoint is valid").into_model())
        .collect();
    Ok((models, report))
}

/// Applies the fault plan's step-granularity decision for `(rank, step)`:
/// panic, stall, fail the attempt, or note a recovery. Public so other
/// recovery drivers (mt-elastic) gate their steps through the identical
/// decision procedure and emit the same `fault_injected` /
/// `fault_recovered` trace instants.
pub fn gate_step(plan: &FaultPlan, rank: usize, step: u64) -> Result<(), CollectiveError> {
    let emit = |name: &'static str, kind: &'static str| {
        mt_trace::current().instant_args(name, || {
            vec![
                ("site", ArgValue::Str("step".to_string())),
                ("kind", ArgValue::Str(kind.to_string())),
                ("rank", ArgValue::U64(rank as u64)),
                ("step", ArgValue::U64(step)),
            ]
        });
    };
    match plan.poll_step(rank, step) {
        Some(FaultAction::Panic) => {
            emit("fault_injected", "panic");
            panic!("mt-fault: injected panic on rank {rank} at step {step}");
        }
        Some(FaultAction::Delay { micros }) => {
            emit("fault_injected", "delay");
            std::thread::sleep(Duration::from_micros(micros));
        }
        Some(FaultAction::Fail) => {
            emit("fault_injected", "transient");
            return Err(CollectiveError::InjectedTransient { rank, seq: step });
        }
        Some(FaultAction::Recovered) => emit("fault_recovered", "replay"),
        None => {}
    }
    Ok(())
}
