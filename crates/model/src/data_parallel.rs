//! Data-parallel gradient synchronization (Section 6.3).
//!
//! The paper's techniques are "independent of data parallelism"; its 6.3
//! extension scales the 530B model to 8 replicas with a gradient all-reduce
//! between the data-parallel groups. These helpers are that all-reduce for
//! the executing model: each replica computes gradients on its own
//! microbatches, then every parameter gradient is summed across the
//! data-parallel communicator (the group spanning the replicas that hold
//! the *same* model shard — `Grid3Comm::dp` in `mt-collectives`).

use crate::gpt::GptGrads;
use crate::pipeline_exec::StageGrads;
use mt_collectives::Communicator;

/// Sums a full model's gradients across data-parallel replicas in place.
///
/// Every replica must call this with identically-shaped gradients (SPMD).
pub fn all_reduce_gpt_grads(comm: &Communicator, grads: &mut GptGrads) {
    grads.table = comm.all_reduce(&grads.table);
    grads.positions = comm.all_reduce(&grads.positions);
    grads.final_ln_gamma = comm.all_reduce(&grads.final_ln_gamma);
    grads.final_ln_beta = comm.all_reduce(&grads.final_ln_beta);
    for layer in &mut grads.layers {
        layer.ln1_gamma = comm.all_reduce(&layer.ln1_gamma);
        layer.ln1_beta = comm.all_reduce(&layer.ln1_beta);
        layer.w_qkv = comm.all_reduce(&layer.w_qkv);
        layer.b_qkv = comm.all_reduce(&layer.b_qkv);
        layer.w_o = comm.all_reduce(&layer.w_o);
        layer.b_o = comm.all_reduce(&layer.b_o);
        layer.ln2_gamma = comm.all_reduce(&layer.ln2_gamma);
        layer.ln2_beta = comm.all_reduce(&layer.ln2_beta);
        layer.w1 = comm.all_reduce(&layer.w1);
        layer.b1 = comm.all_reduce(&layer.b1);
        layer.w2 = comm.all_reduce(&layer.w2);
        layer.b2 = comm.all_reduce(&layer.b2);
    }
}

/// Sums one pipeline stage's gradients across data-parallel replicas in
/// place (for `pipeline_exec` + DP grids).
pub fn all_reduce_stage_grads(comm: &Communicator, grads: &mut StageGrads) {
    if let Some((table, positions)) = grads.embedding.as_mut() {
        *table = comm.all_reduce(table);
        *positions = comm.all_reduce(positions);
    }
    for layer in &mut grads.layers {
        layer.ln1_gamma = comm.all_reduce(&layer.ln1_gamma);
        layer.ln1_beta = comm.all_reduce(&layer.ln1_beta);
        layer.w_qkv = comm.all_reduce(&layer.w_qkv);
        layer.b_qkv = comm.all_reduce(&layer.b_qkv);
        layer.w_o = comm.all_reduce(&layer.w_o);
        layer.b_o = comm.all_reduce(&layer.b_o);
        layer.ln2_gamma = comm.all_reduce(&layer.ln2_gamma);
        layer.ln2_beta = comm.all_reduce(&layer.ln2_beta);
        layer.w1 = comm.all_reduce(&layer.w1);
        layer.b1 = comm.all_reduce(&layer.b1);
        layer.w2 = comm.all_reduce(&layer.w2);
        layer.b2 = comm.all_reduce(&layer.b2);
    }
    if let Some((fg, fb, table)) = grads.head.as_mut() {
        *fg = comm.all_reduce(fg);
        *fb = comm.all_reduce(fb);
        *table = comm.all_reduce(table);
    }
}
