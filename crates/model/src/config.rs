//! Execution-scale transformer configuration.

use serde::{Deserialize, Serialize};

/// Configuration of an *executing* transformer (in contrast to
/// `mt_memory::ModelShape`, which describes paper-scale models that are only
/// analyzed, this one is instantiated with real weights and run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// `h` — hidden size.
    pub hidden: usize,
    /// `a` — attention heads. Must divide `hidden`.
    pub heads: usize,
    /// `s` — sequence length.
    pub seq: usize,
    /// `b` — microbatch size.
    pub micro_batch: usize,
    /// `L` — number of layers (used by the full GPT model; single layers
    /// ignore it).
    pub layers: usize,
    /// `v` — vocabulary size.
    pub vocab: usize,
    /// Dropout probability applied by all three dropout sites. Set to 0 for
    /// deterministic numerical comparisons, nonzero to exercise the mask
    /// machinery.
    pub dropout_p: f32,
    /// Apply the GPT causal mask in attention.
    pub causal: bool,
}

impl TransformerConfig {
    /// A small config suitable for tests: `h=32, a=4, s=8, b=2, L=2, v=64`.
    pub fn tiny() -> Self {
        TransformerConfig {
            hidden: 32,
            heads: 4,
            seq: 8,
            micro_batch: 2,
            layers: 2,
            vocab: 64,
            dropout_p: 0.0,
            causal: true,
        }
    }

    /// Validates divisibility constraints for a tensor-parallel size `t`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden % heads != 0`, `heads % t != 0`, or `seq % t != 0`
    /// (sequence parallelism shards the `s` axis `t` ways).
    pub fn validate(&self, t: usize) {
        assert!(
            self.hidden.is_multiple_of(self.heads),
            "hidden {} not divisible by heads {}",
            self.hidden,
            self.heads
        );
        assert!(
            t > 0 && self.heads.is_multiple_of(t),
            "heads {} not divisible by t {}",
            self.heads,
            t
        );
        assert!(
            self.seq.is_multiple_of(t),
            "seq {} not divisible by t {} (needed for sequence parallelism)",
            self.seq,
            t
        );
    }

    /// Per-head dimension `h / a`.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Rows of the `[s·b, h]` activation layout.
    pub fn tokens(&self) -> usize {
        self.seq * self.micro_batch
    }

    /// `s·b·h` — the element unit of the paper's formulas.
    pub fn sbh(&self) -> u64 {
        (self.seq * self.micro_batch * self.hidden) as u64
    }

    /// `a·s²·b` — the element unit of the attention-core terms.
    pub fn as2b(&self) -> u64 {
        (self.heads * self.seq * self.seq * self.micro_batch) as u64
    }

    /// The equivalent analytical shape for cross-checking with `mt-memory`.
    pub fn to_shape(&self) -> mt_memory::ModelShape {
        mt_memory::ModelShape {
            heads: self.heads as u64,
            hidden: self.hidden as u64,
            layers: self.layers as u64,
            seq: self.seq as u64,
            vocab: self.vocab as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_valid_for_small_t() {
        for t in [1, 2, 4] {
            TransformerConfig::tiny().validate(t);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible by t")]
    fn rejects_bad_head_split() {
        TransformerConfig::tiny().validate(3);
    }

    #[test]
    fn derived_quantities() {
        let c = TransformerConfig::tiny();
        assert_eq!(c.head_dim(), 8);
        assert_eq!(c.tokens(), 16);
        assert_eq!(c.sbh(), 8 * 2 * 32);
        assert_eq!(c.as2b(), 4 * 64 * 2);
    }
}
