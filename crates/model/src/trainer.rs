//! A training-loop harness: AdamW + linear-warmup/cosine-decay learning
//! rates + global gradient clipping, over any execution mode. This is the
//! recipe the paper's runs use (GPT pre-training hyperparameters), packaged
//! so examples and downstream users don't re-implement the loop.

use crate::gpt::{Gpt, GptCheckpoint};
use crate::ledger::ActivationLedger;
use crate::optim::{clip_grad_norm, clip_grad_norm_tp, AdamState, AdamW};
use crate::overlap::{take_step_timing, StepTiming};
use crate::policy::ExecPolicy;
use mt_fault::binfmt;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Linear warmup to `base_lr`, then cosine decay to `min_lr` over
/// `decay_steps`, constant `min_lr` afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Peak learning rate, reached after warmup.
    pub base_lr: f32,
    /// Linear-warmup steps.
    pub warmup_steps: u64,
    /// Cosine-decay steps (measured after warmup).
    pub decay_steps: u64,
    /// Floor learning rate.
    pub min_lr: f32,
}

impl LrSchedule {
    /// A constant learning rate (no warmup, no decay).
    pub fn constant(lr: f32) -> Self {
        LrSchedule { base_lr: lr, warmup_steps: 0, decay_steps: 0, min_lr: lr }
    }

    /// The learning rate at `step` (0-based).
    pub fn lr_at(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        if self.decay_steps == 0 {
            return self.base_lr;
        }
        let progress = ((step - self.warmup_steps) as f32 / self.decay_steps as f32).min(1.0);
        let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cosine
    }
}

/// Trainer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f32>,
}

impl TrainerConfig {
    /// Starts a builder seeded with the default configuration.
    ///
    /// ```
    /// use mt_model::trainer::TrainerConfig;
    /// let cfg = TrainerConfig::builder().lr(1e-3).warmup_steps(5).build();
    /// assert_eq!(cfg.schedule.base_lr, 1e-3);
    /// ```
    pub fn builder() -> TrainerConfigBuilder {
        TrainerConfigBuilder { cfg: TrainerConfig::default() }
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            schedule: LrSchedule {
                base_lr: 3e-3,
                warmup_steps: 10,
                decay_steps: 1000,
                min_lr: 3e-4,
            },
            weight_decay: 0.01,
            clip_norm: Some(1.0),
        }
    }
}

/// Builder for [`TrainerConfig`], starting from the defaults — set only the
/// hyperparameters an experiment cares about.
#[derive(Debug, Clone)]
pub struct TrainerConfigBuilder {
    cfg: TrainerConfig,
}

impl TrainerConfigBuilder {
    /// Sets the peak learning rate; the floor (`min_lr`) is clamped down to
    /// it so a low `lr` cannot silently sit below its own floor.
    pub fn lr(mut self, base_lr: f32) -> Self {
        self.cfg.schedule.base_lr = base_lr;
        self.cfg.schedule.min_lr = self.cfg.schedule.min_lr.min(base_lr);
        self
    }

    /// Sets the linear-warmup step count.
    pub fn warmup_steps(mut self, steps: u64) -> Self {
        self.cfg.schedule.warmup_steps = steps;
        self
    }

    /// Sets the cosine-decay step count (0 disables decay).
    pub fn decay_steps(mut self, steps: u64) -> Self {
        self.cfg.schedule.decay_steps = steps;
        self
    }

    /// Sets the floor learning rate.
    pub fn min_lr(mut self, min_lr: f32) -> Self {
        self.cfg.schedule.min_lr = min_lr;
        self
    }

    /// Replaces the whole schedule (e.g. [`LrSchedule::constant`]).
    pub fn schedule(mut self, schedule: LrSchedule) -> Self {
        self.cfg.schedule = schedule;
        self
    }

    /// Sets the AdamW decoupled weight decay.
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.cfg.weight_decay = weight_decay;
        self
    }

    /// Sets the global gradient-norm clip (`None` disables clipping).
    pub fn clip_norm(mut self, clip_norm: Option<f32>) -> Self {
        self.cfg.clip_norm = clip_norm;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> TrainerConfig {
        self.cfg
    }
}

/// Per-step diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// 0-based step index that was just executed.
    pub step: u64,
    /// Mean cross-entropy loss of the step.
    pub loss: f32,
    /// Pre-clip global gradient norm.
    pub grad_norm: f32,
    /// Learning rate used.
    pub lr: f32,
}

/// Version of [`TrainerCheckpoint`]'s logical schema, stored in the
/// checkpoint itself (on top of the binary container's own version in
/// [`binfmt`]). Bump when the field set changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Everything needed to continue a training run exactly where it stopped:
/// model weights and dropout RNG (via [`GptCheckpoint`]), Adam moments and
/// bias-correction step, the hyperparameters, and the global step that
/// drives the LR schedule and the per-step RNG stream ids. Because the
/// dropout streams are counter-based (pure functions of `(seed, stream,
/// offset)`) and the binary format round-trips every float bit-exactly, a
/// resumed run is **bit-identical** to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerCheckpoint {
    /// Logical schema version ([`CHECKPOINT_VERSION`] at save time).
    pub version: u32,
    /// Trainer hyperparameters (schedule, weight decay, clipping).
    pub cfg: TrainerConfig,
    /// Model weights, policies, and dropout RNG.
    pub model: GptCheckpoint,
    /// Optimizer moments and step count.
    pub opt: AdamState,
    /// Global steps completed.
    pub step: u64,
}

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The blob failed to decode (bad magic, truncation, type mismatch...).
    Format(binfmt::BinError),
    /// The checkpoint's logical schema is newer than this build understands.
    UnsupportedVersion(u32),
    /// The optimizer step count disagrees with the trainer step count.
    Inconsistent(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Format(e) => write!(f, "checkpoint undecodable: {e}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "checkpoint schema version {v} newer than supported {CHECKPOINT_VERSION}")
            }
            CheckpointError::Inconsistent(msg) => write!(f, "checkpoint inconsistent: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Owns a model and an optimizer, and advances them one microbatch at a
/// time.
#[derive(Debug, Clone)]
pub struct Trainer {
    gpt: Gpt,
    opt: AdamW,
    cfg: TrainerConfig,
    step: u64,
}

impl Trainer {
    /// Creates a trainer around a model.
    pub fn new(gpt: Gpt, cfg: TrainerConfig) -> Self {
        let opt = AdamW::new(cfg.schedule.lr_at(0), cfg.weight_decay);
        Trainer { gpt, opt, cfg, step: 0 }
    }

    /// The model being trained.
    pub fn model(&self) -> &Gpt {
        &self.gpt
    }

    /// Consumes the trainer and returns the trained model.
    pub fn into_model(self) -> Gpt {
        self.gpt
    }

    /// Steps executed so far.
    pub fn steps_done(&self) -> u64 {
        self.step
    }

    /// Snapshots the full training state — weights, Adam moments, LR/step
    /// counters, dropout RNG — for exact resume via
    /// [`Trainer::resume_from`].
    pub fn save_checkpoint(&self) -> TrainerCheckpoint {
        TrainerCheckpoint {
            version: CHECKPOINT_VERSION,
            cfg: self.cfg,
            model: self.gpt.to_checkpoint(),
            opt: self.opt.state(),
            step: self.step,
        }
    }

    /// Reconstructs a trainer that continues exactly where the checkpoint
    /// was taken: the next [`Trainer::step`] call produces bit-identical
    /// weights to the run the checkpoint came from.
    ///
    /// # Errors
    ///
    /// Fails on a newer-than-supported schema version or an internally
    /// inconsistent checkpoint.
    pub fn resume_from(ckpt: TrainerCheckpoint) -> Result<Trainer, CheckpointError> {
        if ckpt.version > CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(ckpt.version));
        }
        if ckpt.opt.step != ckpt.step {
            return Err(CheckpointError::Inconsistent(format!(
                "optimizer at step {} but trainer at step {}",
                ckpt.opt.step, ckpt.step
            )));
        }
        let mut opt = AdamW::new(ckpt.cfg.schedule.lr_at(ckpt.step), ckpt.cfg.weight_decay);
        opt.load_state(ckpt.opt);
        Ok(Trainer { gpt: Gpt::from_checkpoint(ckpt.model), opt, cfg: ckpt.cfg, step: ckpt.step })
    }

    /// [`Trainer::save_checkpoint`] rendered to the versioned binary
    /// format (`MTCK` magic; floats as raw IEEE-754 bits, so the blob
    /// round-trips bit-exactly).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        binfmt::to_bytes(&self.save_checkpoint())
    }

    /// Restores a trainer from a blob written by
    /// [`Trainer::checkpoint_bytes`].
    ///
    /// # Errors
    ///
    /// Fails if the blob is not a decodable checkpoint of a supported
    /// version.
    pub fn resume_from_bytes(bytes: &[u8]) -> Result<Trainer, CheckpointError> {
        let ckpt: TrainerCheckpoint = binfmt::from_bytes(bytes).map_err(CheckpointError::Format)?;
        Trainer::resume_from(ckpt)
    }

    /// Runs one training step (forward, backward, clip, update) on one
    /// microbatch under `policy`.
    ///
    /// `policy` is anything convertible into an [`ExecPolicy`]: a bare
    /// [`ExecMode`](crate::ExecMode) by value or by reference (inheriting
    /// each layer's stored recompute/overlap defaults), or an explicit
    /// policy, also by value or by reference.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Gpt::loss_and_grads`](crate::gpt::Gpt::loss_and_grads).
    pub fn step<'m>(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        policy: impl Into<ExecPolicy<'m>>,
    ) -> StepStats {
        self.step_with_ledger(tokens, targets, policy).0
    }

    /// [`Trainer::step`], also returning the activation ledger the forward
    /// pass filled — the measured counterpart to the analytical memory
    /// model — and the step's [`StepTiming`] ledger (collective and
    /// recomputation time, total and exposed).
    ///
    /// The timing accumulators are drained at entry *and* harvested at
    /// exit, so a step's ledger cannot absorb a previous step's leftovers
    /// when rank threads are reused — the leak an unbracketed thread-local
    /// harvest would allow.
    pub fn step_with_ledger<'m>(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        policy: impl Into<ExecPolicy<'m>>,
    ) -> (StepStats, ActivationLedger, StepTiming) {
        let policy = policy.into();
        let _stale = take_step_timing();
        let tracer = mt_trace::current();
        let step_no = self.step;
        let _step_span =
            tracer.span_args("step", move || vec![("step", mt_trace::ArgValue::U64(step_no))]);
        let mut ledger = ActivationLedger::new();
        let comm = policy.mode().comm();
        let (loss, mut grads) =
            self.gpt.loss_and_grads(tokens, targets, self.step, policy, &mut ledger);
        let opt_span = tracer.span("optimizer");
        // Under tensor parallelism the clip must use the *global* norm:
        // a per-rank local norm would scale replicated gradients by
        // rank-dependent factors and desynchronize replicated parameters.
        let grad_norm = match (self.cfg.clip_norm, comm) {
            (Some(max), None) => clip_grad_norm(grads.tensors_mut(), max),
            (Some(max), Some(c)) => {
                let (replicated, sharded) = grads.tensors_mut_by_locality();
                clip_grad_norm_tp(replicated, sharded, max, c)
            }
            (None, _) => 0.0,
        };
        let lr = self.cfg.schedule.lr_at(self.step);
        self.opt.set_lr(lr);
        self.opt.update(self.gpt.param_tensors_mut(), &grads.tensors());
        drop(opt_span);
        let stats = StepStats { step: self.step, loss, grad_norm, lr };
        self.step += 1;
        (stats, ledger, take_step_timing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformerConfig;
    use crate::layer::ExecMode;
    use mt_memory::Recompute;
    use mt_tensor::rng::SplitMix64;

    fn cfg() -> TransformerConfig {
        TransformerConfig {
            hidden: 16,
            heads: 2,
            seq: 8,
            micro_batch: 2,
            layers: 2,
            vocab: 24,
            dropout_p: 0.0,
            causal: true,
        }
    }

    fn data(c: &TransformerConfig) -> (Vec<usize>, Vec<usize>) {
        let mut rng = SplitMix64::new(12);
        let n = c.tokens();
        (
            (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
            (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
        )
    }

    #[test]
    fn schedule_warms_up_then_decays() {
        let s = LrSchedule { base_lr: 1.0, warmup_steps: 10, decay_steps: 100, min_lr: 0.1 };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6, "first warmup step");
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6, "end of warmup");
        assert!(s.lr_at(30) < 1.0 && s.lr_at(30) > s.lr_at(80), "cosine decays");
        assert!((s.lr_at(10_000) - 0.1).abs() < 1e-6, "floor after decay");
        // Monotone through warmup, monotone down through decay.
        for step in 0..9 {
            assert!(s.lr_at(step + 1) >= s.lr_at(step));
        }
        for step in 10..109 {
            assert!(s.lr_at(step + 1) <= s.lr_at(step) + 1e-7);
        }
    }

    #[test]
    fn constant_schedule_is_constant() {
        let s = LrSchedule::constant(0.5);
        for step in [0, 1, 100, 10_000] {
            assert_eq!(s.lr_at(step), 0.5);
        }
    }

    #[test]
    fn builder_overrides_only_what_is_set() {
        let cfg = TrainerConfig::builder()
            .lr(1e-3)
            .warmup_steps(3)
            .weight_decay(0.1)
            .clip_norm(None)
            .build();
        assert_eq!(cfg.schedule.base_lr, 1e-3);
        assert_eq!(cfg.schedule.warmup_steps, 3);
        assert_eq!(cfg.weight_decay, 0.1);
        assert_eq!(cfg.clip_norm, None);
        // Untouched fields keep their defaults.
        assert_eq!(cfg.schedule.decay_steps, TrainerConfig::default().schedule.decay_steps);
    }

    #[test]
    fn builder_lr_clamps_floor_below_peak() {
        // Default min_lr is 3e-4; a peak below it must drag the floor down.
        let cfg = TrainerConfig::builder().lr(1e-5).build();
        assert!(cfg.schedule.min_lr <= cfg.schedule.base_lr);
        // Explicit schedules are taken verbatim.
        let cfg = TrainerConfig::builder().schedule(LrSchedule::constant(0.5)).build();
        assert_eq!(cfg.schedule.lr_at(42), 0.5);
    }

    #[test]
    #[allow(clippy::needless_borrows_for_generic_args)] // the by-reference call is the point
    fn step_accepts_mode_by_value_and_by_reference() {
        let c = cfg();
        let mut a = Trainer::new(Gpt::init(c, Recompute::None, 5), TrainerConfig::default());
        let mut b = a.clone();
        let (tokens, targets) = data(&c);
        let by_val = a.step(&tokens, &targets, ExecMode::Serial);
        let by_ref = b.step(&tokens, &targets, &ExecMode::Serial);
        assert_eq!(by_val.loss, by_ref.loss);
    }

    #[test]
    fn step_with_ledger_drains_stale_timing() {
        use crate::layer::ExecMode;
        let c = cfg();
        let mut t = Trainer::new(Gpt::init(c, Recompute::Full, 81), TrainerConfig::default());
        let (tokens, targets) = data(&c);
        // Poison the thread-local with a previous "step's" leftovers; the
        // entry drain must keep them out of this step's ledger.
        crate::overlap::add_comm_time(1_000_000, 1_000_000);
        crate::overlap::add_recompute_time(1_000_000, 500_000);
        let (_, _, timing) = t.step_with_ledger(&tokens, &targets, ExecMode::Serial);
        assert_eq!(timing.comm_us, 0, "serial steps book no collectives");
        assert_eq!(timing.exposed_us, 0);
        assert!(timing.recompute_us < 1_000_000, "stale recompute time leaked in");
        assert!(timing.recompute_us >= timing.exposed_recompute_us);
        // The harvest also reset the accumulators for whoever runs next.
        assert_eq!(crate::overlap::take_step_timing(), crate::overlap::StepTiming::default());
    }

    #[test]
    fn step_accepts_policies_by_value_and_by_reference() {
        use crate::layer::ExecMode;
        use crate::policy::ExecPolicy;
        let c = cfg();
        let mut a = Trainer::new(Gpt::init(c, Recompute::Selective, 6), TrainerConfig::default());
        let mut b = a.clone();
        let policy = ExecPolicy::builder().backend(ExecMode::Serial).build().expect("valid");
        let (tokens, targets) = data(&c);
        let by_val = a.step(&tokens, &targets, policy);
        let by_ref = b.step(&tokens, &targets, policy);
        assert_eq!(by_val.loss, by_ref.loss);
    }

    #[test]
    fn trainer_reduces_loss_and_reports_stats() {
        let c = cfg();
        let gpt = Gpt::init(c, Recompute::Selective, 77);
        let mut trainer = Trainer::new(
            gpt,
            TrainerConfig {
                schedule: LrSchedule {
                    base_lr: 5e-3,
                    warmup_steps: 5,
                    decay_steps: 100,
                    min_lr: 5e-4,
                },
                weight_decay: 0.01,
                clip_norm: Some(1.0),
            },
        );
        let (tokens, targets) = data(&c);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..40 {
            let stats = trainer.step(&tokens, &targets, ExecMode::Serial);
            assert_eq!(stats.step, i as u64);
            assert!(stats.grad_norm >= 0.0);
            assert!(stats.lr > 0.0);
            if i == 0 {
                first = stats.loss;
            }
            last = stats.loss;
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert_eq!(trainer.steps_done(), 40);
    }

    #[test]
    fn traced_step_emits_phase_spans() {
        let c = cfg();
        let gpt = Gpt::init(c, Recompute::Full, 79);
        let mut trainer = Trainer::new(gpt, TrainerConfig::default());
        let (tokens, targets) = data(&c);
        let tracer = mt_trace::Tracer::enabled();
        {
            let _installed = mt_trace::install(tracer.clone());
            trainer.step(&tokens, &targets, ExecMode::Serial);
        }
        let events = tracer.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("step"), 1);
        assert_eq!(count("forward"), 1);
        assert_eq!(count("backward"), 1);
        assert_eq!(count("optimizer"), 1);
        // Full recomputation replays every layer's forward in the backward.
        assert_eq!(count("recompute_layer"), c.layers);
        // The step span encloses the phases.
        let span = |name: &str| {
            let e = events.iter().find(|e| e.name == name).unwrap();
            match e.kind {
                mt_trace::EventKind::Complete { dur_us } => (e.ts_us, e.ts_us + dur_us),
                _ => panic!("{name} is not a complete event"),
            }
        };
        let (s0, s1) = span("step");
        for phase in ["forward", "backward", "optimizer"] {
            let (p0, p1) = span(phase);
            assert!(s0 <= p0 && p1 <= s1, "{phase} outside step span");
        }
    }

    #[test]
    fn clipping_bounds_the_applied_gradient() {
        // With a tiny clip norm, the reported pre-clip norm exceeds the clip
        // value on a fresh model.
        let c = cfg();
        let gpt = Gpt::init(c, Recompute::None, 78);
        let mut trainer = Trainer::new(
            gpt,
            TrainerConfig {
                schedule: LrSchedule::constant(1e-3),
                weight_decay: 0.0,
                clip_norm: Some(1e-3),
            },
        );
        let (tokens, targets) = data(&c);
        let stats = trainer.step(&tokens, &targets, ExecMode::Serial);
        assert!(stats.grad_norm > 1e-3, "pre-clip norm reported");
    }
}
