//! Real pipeline-parallel execution: the 1F1B schedule (Section 4.2.3)
//! running on thread-simulated ranks, composable with tensor and sequence
//! parallelism and every recomputation policy.
//!
//! Each pipeline stage owns `L/p` transformer layers (stage 0 additionally
//! the embedding, the last stage the final LayerNorm and the tied logits
//! head). Microbatches flow through the PipeDream-flush order — warmup
//! forwards, steady 1F1B pairs, cooldown backwards — with activations sent
//! stage-to-stage over point-to-point channels. The executor tracks how many
//! microbatch activation states are live per stage, which lets tests confirm
//! the paper's central memory assumption (`min(p − stage, n)` in-flight
//! microbatches, Appendix B/C) *by running the schedule*, not by assuming it.

use crate::config::TransformerConfig;
use crate::gpt::Gpt;
use crate::layer::{ExecMode, LayerState, TransformerLayer};
use crate::ledger::{ActivationLedger, Category};
use crate::streams::{element_offset, stream_id, DropoutSite};
use crate::weights::{EmbeddingWeights, LayerGrads};
use mt_collectives::{CollectiveError, GridComm};
use mt_memory::Recompute;
use mt_tensor::ops;
use mt_tensor::rng::CounterRng;
use mt_tensor::Tensor;
use std::fmt;

/// A pipeline communication failure, located at the coordinate where it
/// surfaced: which stage, which microbatch (when tied to one), and what the
/// stage was doing.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineError {
    /// Pipeline stage (virtual stage under the interleaved schedule) that
    /// observed the failure.
    pub stage: usize,
    /// Microbatch in flight, when the failure is tied to one.
    pub micro: Option<usize>,
    /// The operation that failed.
    pub context: &'static str,
    /// The underlying collective failure (boxed to keep the hot path's
    /// `Result` small).
    pub source: Box<CollectiveError>,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline stage {}", self.stage)?;
        if let Some(m) = self.micro {
            write!(f, ", microbatch {m}")?;
        }
        write!(f, ": {} failed: {}", self.context, self.source)
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// Curries the failure coordinate so call sites read
/// `.map_err(at(stage, Some(m), "recv of forward activation"))?`.
fn at(
    stage: usize,
    micro: Option<usize>,
    context: &'static str,
) -> impl FnOnce(CollectiveError) -> PipelineError {
    move |source| PipelineError { stage, micro, context, source: Box::new(source) }
}

/// The final-LayerNorm + tied-logits head owned by the last stage.
#[derive(Debug, Clone)]
pub struct HeadWeights {
    /// Final LayerNorm scale.
    pub final_ln_gamma: Tensor,
    /// Final LayerNorm shift.
    pub final_ln_beta: Tensor,
    /// The last stage's copy of the tied word-embedding table, used for the
    /// logits projection. Megatron keeps one copy on the first and last
    /// stages and sums their gradients each step; this executor does the
    /// same.
    pub table: Tensor,
}

/// One pipeline stage's slice of a GPT model, shard-shaped for its
/// tensor-parallel rank.
#[derive(Debug, Clone)]
pub struct StageModel {
    cfg: TransformerConfig,
    stage: usize,
    pp: usize,
    /// Embedding weights (stage 0 only).
    pub embedding: Option<EmbeddingWeights>,
    /// This stage's transformer layers.
    pub layers: Vec<TransformerLayer>,
    /// Head weights (last stage only).
    pub head: Option<HeadWeights>,
    rng: CounterRng,
}

/// Gradients accumulated by one stage over an iteration; shapes mirror
/// [`StageModel`].
#[derive(Debug, Clone)]
pub struct StageGrads {
    /// `(d_table, d_positions)` on stage 0.
    pub embedding: Option<(Tensor, Tensor)>,
    /// Per-layer gradients.
    pub layers: Vec<LayerGrads>,
    /// `(d_final_ln_gamma, d_final_ln_beta, d_table_head)` on the last
    /// stage.
    pub head: Option<(Tensor, Tensor, Tensor)>,
}

/// Result of one 1F1B iteration on one rank.
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// Mean cross-entropy loss over the microbatches (identical on every
    /// rank; the last stage computes it and the grid broadcasts it).
    pub mean_loss: f32,
    /// Gradients summed over the iteration's microbatches.
    pub grads: StageGrads,
    /// Peak number of microbatch activation states simultaneously live on
    /// this stage — the quantity Appendix B's memory analysis is built on.
    pub peak_live_states: usize,
    /// Activation bytes (paper accounting) saved per microbatch on this
    /// rank.
    pub per_micro_activation_bytes: u64,
    /// Peak live activation bytes (paper accounting) on this rank over the
    /// iteration: microbatch ledgers merge in at their forward pass and are
    /// released at their backward pass, so this measures the schedule's
    /// true in-flight footprint — `min(p − stage, n)` microbatches' worth.
    pub peak_activation_bytes: u64,
}

/// Saved per-microbatch state while a microbatch is in flight.
struct MicroState {
    tokens_hash: usize, // index into micro_data, for the embedding backward
    layer_states: Vec<LayerState>,
    head: Option<HeadState>,
    ledger: ActivationLedger,
}

struct HeadState {
    y_full: Tensor,
    ln_saved: ops::LayerNormSaved,
    y_ln: Tensor,
    dlogits: Tensor,
}

impl StageModel {
    /// Extracts stage `stage` of a `pp`-deep pipeline from a full [`Gpt`]
    /// template, sharded for `tp_rank` of a `tp`-wide tensor-parallel group,
    /// running recomputation policy `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the layer count is not divisible by `pp` or the
    /// configuration does not divide by `tp`.
    pub fn from_gpt(
        gpt: &Gpt,
        pp: usize,
        stage: usize,
        tp: usize,
        tp_rank: usize,
        policy: Recompute,
    ) -> StageModel {
        let cfg = gpt.config();
        cfg.validate(tp);
        assert!(stage < pp, "stage {stage} out of range for pp={pp}");
        assert_eq!(cfg.layers % pp, 0, "layers {} not divisible by pp {pp}", cfg.layers);
        let per_stage = cfg.layers / pp;
        let rng = gpt.dropout_rng();
        let layers = (stage * per_stage..(stage + 1) * per_stage)
            .map(|i| {
                TransformerLayer::new(
                    cfg,
                    gpt.layers[i].weights().shard(tp, tp_rank),
                    i,
                    policy,
                    rng,
                )
            })
            .collect();
        StageModel {
            cfg,
            stage,
            pp,
            embedding: (stage == 0).then(|| gpt.embedding.clone()),
            layers,
            head: (stage == pp - 1).then(|| HeadWeights {
                final_ln_gamma: gpt.final_ln_gamma.clone(),
                final_ln_beta: gpt.final_ln_beta.clone(),
                table: gpt.embedding.table.clone(),
            }),
            rng,
        }
    }

    /// The stage index.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Zero gradients shaped like this stage.
    fn zero_grads(&self) -> StageGrads {
        StageGrads {
            embedding: self
                .embedding
                .as_ref()
                .map(|e| (Tensor::zeros(e.table.shape()), Tensor::zeros(e.positions.shape()))),
            layers: self.layers.iter().map(|l| l.weights().zeros_like()).collect(),
            head: self.head.as_ref().map(|h| {
                (
                    Tensor::zeros(h.final_ln_gamma.shape()),
                    Tensor::zeros(h.final_ln_beta.shape()),
                    Tensor::zeros(h.table.shape()),
                )
            }),
        }
    }

    fn embedding_mask(&self, micro: u64, row0: usize, rows: usize) -> Vec<u8> {
        let stream = stream_id(DropoutSite::Embedding, 0, micro);
        let h = self.cfg.hidden;
        let mut mask = Vec::with_capacity(rows * h);
        for r in 0..rows {
            for c in 0..h {
                mask.push(u8::from(
                    self.rng.uniform(stream, element_offset(row0 + r, c, h)) >= self.cfg.dropout_p,
                ));
            }
        }
        mask
    }

    /// Embedding forward for local rows (stage 0).
    fn embed(&self, tokens: &[usize], micro: u64, row0: usize, rows: usize) -> Tensor {
        let e = self.embedding.as_ref().expect("embed called off stage 0");
        let h = self.cfg.hidden;
        let mut x = ops::embedding(&tokens[row0..row0 + rows], &e.table);
        for r in 0..rows {
            let si = (row0 + r) / self.cfg.micro_batch;
            let pos = &e.positions.data()[si * h..(si + 1) * h];
            for (xv, &pv) in x.data_mut()[r * h..(r + 1) * h].iter_mut().zip(pos) {
                *xv += pv;
            }
        }
        let mask = self.embedding_mask(micro, row0, rows);
        ops::dropout(&x, &mask, self.cfg.dropout_p)
    }
}

/// The 1F1B op order for one stage (PipeDream-flush): warmup forwards,
/// steady (F, B) pairs, cooldown backwards. Each entry is
/// `(is_forward, microbatch)`. Public so `mt-analyze` can extract the exact
/// schedule the executor runs rather than re-deriving (and possibly
/// diverging from) it.
pub fn stage_ops(stage: usize, pp: usize, n: usize) -> Vec<(bool, usize)> {
    let w = (pp - 1 - stage).min(n);
    let mut ops = Vec::with_capacity(2 * n);
    for m in 0..w {
        ops.push((true, m));
    }
    for j in 0..(n - w) {
        ops.push((true, w + j));
        ops.push((false, j));
    }
    for m in (n - w)..n {
        ops.push((false, m));
    }
    ops
}

/// Runs one full training iteration (all microbatches, forward and backward)
/// of the 1F1B schedule on this rank.
///
/// `micro_data[m] = (tokens, targets)` for microbatch `m`; every rank
/// receives the same slices. `step` diversifies dropout masks across
/// iterations. Set `sequence_parallel` to partition the LayerNorm/dropout
/// regions (and the stage-boundary tensors) along the sequence dimension.
///
/// # Panics
///
/// Panics if `micro_data` is empty, shapes are inconsistent with the
/// grid/model, or a peer fails mid-iteration (use
/// [`try_run_1f1b_iteration`] to get the failure as a [`PipelineError`]
/// instead).
pub fn run_1f1b_iteration(
    model: &StageModel,
    g: &GridComm,
    sequence_parallel: bool,
    micro_data: &[(Vec<usize>, Vec<usize>)],
    step: u64,
) -> IterationOutcome {
    try_run_1f1b_iteration(model, g, sequence_parallel, micro_data, step)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_1f1b_iteration`] with communication failures propagated: a dead,
/// absent, or mismatched peer surfaces as `Err(PipelineError)` naming the
/// stage and microbatch coordinate instead of a panic or a hang.
///
/// # Errors
///
/// Returns the first collective failure this rank observes.
///
/// # Panics
///
/// Still panics on caller bugs (empty `micro_data`, a model built for a
/// different grid) — those are not runtime faults.
pub fn try_run_1f1b_iteration(
    model: &StageModel,
    g: &GridComm,
    sequence_parallel: bool,
    micro_data: &[(Vec<usize>, Vec<usize>)],
    step: u64,
) -> Result<IterationOutcome, PipelineError> {
    let cfg = model.cfg;
    let n = micro_data.len();
    assert!(n > 0, "need at least one microbatch");
    assert_eq!(model.pp, g.pp(), "stage model built for a different pipeline depth");
    let tp = g.tp.size();
    let sp = sequence_parallel;
    let rows = if sp { cfg.tokens() / tp } else { cfg.tokens() };
    let row0 = if sp { g.tp_rank * rows } else { 0 };
    let mode = if tp == 1 && !sp {
        ExecMode::Serial
    } else if sp {
        ExecMode::TensorSequenceParallel(&g.tp)
    } else {
        ExecMode::TensorParallel(&g.tp)
    };

    let mut grads = model.zero_grads();
    let mut live: Vec<Option<MicroState>> = (0..n).map(|_| None).collect();
    let mut live_count = 0usize;
    let mut peak_live = 0usize;
    let mut loss_sum = 0.0_f64;
    let mut per_micro_bytes = 0u64;
    let mut iter_ledger = ActivationLedger::new();

    for (is_fwd, m) in stage_ops(model.stage, model.pp, n) {
        let micro_id = step * n as u64 + m as u64;
        if is_fwd {
            // ----- forward of microbatch m -----
            let mut ledger = ActivationLedger::new();
            let mut x = if model.stage == 0 {
                let x = model.embed(&micro_data[m].0, micro_id, row0, rows);
                ledger.record(Category::EmbeddingDropoutMask, x.numel() as u64);
                x
            } else {
                let from = g.prev_stage_rank().expect("stage > 0 has a predecessor");
                g.grid.try_recv(from).map_err(at(
                    model.stage,
                    Some(m),
                    "recv of forward activation",
                ))?
            };
            let mut layer_states = Vec::with_capacity(model.layers.len());
            for layer in &model.layers {
                let (y, st) = layer.forward(&x, micro_id, mode, &mut ledger);
                layer_states.push(st);
                x = y;
            }
            let head = if model.stage == model.pp - 1 {
                let y_full = if sp {
                    g.tp.try_all_gather(&x).map_err(at(
                        model.stage,
                        Some(m),
                        "all-gather of final activations",
                    ))?
                } else {
                    x.clone()
                };
                let h = model.head.as_ref().expect("last stage has a head");
                let (y_ln, ln_saved) =
                    ops::layer_norm(&y_full, &h.final_ln_gamma, &h.final_ln_beta);
                ledger.record(Category::LayerNormInput, y_full.numel() as u64);
                let logits = ops::Gemm::NT.apply(&y_ln, &h.table);
                ledger.record(Category::ProjectionInput, y_ln.numel() as u64);
                ledger.record(Category::Logits, logits.numel() as u64);
                let ce = ops::cross_entropy(&logits, &micro_data[m].1);
                loss_sum += ce.loss as f64;
                Some(HeadState { y_full, ln_saved, y_ln, dlogits: ce.dlogits })
            } else {
                let to = g.next_stage_rank().expect("non-final stage has a successor");
                g.grid.try_send(to, &x).map_err(at(
                    model.stage,
                    Some(m),
                    "send of forward activation",
                ))?;
                None
            };
            per_micro_bytes = ledger.paper_bytes();
            iter_ledger.merge(&ledger);
            live[m] = Some(MicroState { tokens_hash: m, layer_states, head, ledger });
            live_count += 1;
            peak_live = peak_live.max(live_count);
        } else {
            // ----- backward of microbatch m -----
            let st = live[m].take().unwrap_or_else(|| {
                panic!(
                    "stage {}: backward of microbatch {m} scheduled before its forward",
                    model.stage
                )
            });
            live_count -= 1;
            iter_ledger.release(&st.ledger);
            let mut d = if let Some(hs) = &st.head {
                let h = model.head.as_ref().expect("last stage has a head");
                let d_y_ln = ops::Gemm::NN.apply(&hs.dlogits, &h.table);
                let (d_fg_acc, d_fb_acc, d_table_acc) =
                    grads.head.as_mut().expect("head grads allocated");
                d_table_acc.add_assign(&ops::Gemm::TN.apply(&hs.dlogits, &hs.y_ln));
                let (d_y_full, d_fg, d_fb) =
                    ops::layer_norm_backward(&hs.y_full, &h.final_ln_gamma, &hs.ln_saved, &d_y_ln);
                d_fg_acc.add_assign(&d_fg);
                d_fb_acc.add_assign(&d_fb);
                if sp {
                    d_y_full.chunk_axis0(tp).expect("rows divide")[g.tp_rank].clone()
                } else {
                    d_y_full
                }
            } else {
                let from = g.next_stage_rank().expect("non-final stage has a successor");
                g.grid.try_recv(from).map_err(at(
                    model.stage,
                    Some(m),
                    "recv of backward gradient",
                ))?
            };
            let mut layer_states = st.layer_states;
            for idx in (0..model.layers.len()).rev() {
                let lstate = layer_states.pop().unwrap_or_else(|| {
                    panic!(
                        "stage {}, microbatch {m}: missing saved state for layer {idx}",
                        model.stage
                    )
                });
                let (dx, lg) = model.layers[idx].backward(&d, lstate, mode);
                grads.layers[idx].accumulate(&lg);
                d = dx;
            }
            if model.stage == 0 {
                let micro_tokens = &micro_data[st.tokens_hash].0;
                let mask = model.embedding_mask(micro_id, row0, rows);
                let d_emb = ops::dropout_backward(&d, &mask, cfg.dropout_p);
                let (d_table_acc, d_pos_acc) =
                    grads.embedding.as_mut().expect("embedding grads allocated");
                let h = cfg.hidden;
                for r in 0..rows {
                    let si = (row0 + r) / cfg.micro_batch;
                    let src = &d_emb.data()[r * h..(r + 1) * h];
                    let dst = &mut d_pos_acc.data_mut()[si * h..(si + 1) * h];
                    for (dv, &sv) in dst.iter_mut().zip(src) {
                        *dv += sv;
                    }
                }
                let ids_local = &micro_tokens[row0..row0 + rows];
                d_table_acc.add_assign(&ops::embedding_backward(ids_local, &d_emb, cfg.vocab));
            } else {
                let to = g.prev_stage_rank().expect("stage > 0 has a predecessor");
                g.grid.try_send(to, &d).map_err(at(
                    model.stage,
                    Some(m),
                    "send of backward gradient",
                ))?;
            }
        }
    }

    // Sequence parallelism computed embedding gradients from sequence
    // shards; sum across the tensor-parallel group.
    if sp {
        if let Some((t, p)) = grads.embedding.as_mut() {
            *t = g.tp.try_all_reduce(t).map_err(at(
                model.stage,
                None,
                "all-reduce of embedding-table gradients",
            ))?;
            *p = g.tp.try_all_reduce(p).map_err(at(
                model.stage,
                None,
                "all-reduce of position gradients",
            ))?;
        }
    }

    // Tied embeddings (Megatron): the last stage's head-table gradient is
    // summed into stage 0's embedding-table gradient, and the combined
    // gradient is sent back so both copies step identically.
    if model.pp > 1 {
        let last = model.pp - 1;
        let tied = "tied-embedding gradient exchange";
        if model.stage == last {
            let (_, _, d_table_head) = grads.head.as_ref().expect("head grads");
            g.grid.try_send(g.peer_on_stage(0), d_table_head).map_err(at(
                model.stage,
                None,
                tied,
            ))?;
            let combined =
                g.grid.try_recv(g.peer_on_stage(0)).map_err(at(model.stage, None, tied))?;
            grads.head.as_mut().expect("head grads").2 = combined;
        } else if model.stage == 0 {
            let head_grad =
                g.grid.try_recv(g.peer_on_stage(last)).map_err(at(model.stage, None, tied))?;
            let (d_table, _) = grads.embedding.as_mut().expect("embedding grads");
            d_table.add_assign(&head_grad);
            let combined = d_table.clone();
            g.grid.try_send(g.peer_on_stage(last), &combined).map_err(at(
                model.stage,
                None,
                tied,
            ))?;
        }
    } else if let (Some((d_table, _)), Some((_, _, d_head))) =
        (grads.embedding.as_mut(), grads.head.as_ref())
    {
        d_table.add_assign(d_head);
        let combined = d_table.clone();
        grads.head.as_mut().expect("head grads").2 = combined;
    }

    // Broadcast the mean loss from the last stage's tp-rank-0 to everyone.
    let loss_root = (model.pp - 1) * tp;
    let loss_local = Tensor::full(&[1], (loss_sum / n as f64) as f32);
    let mean_loss = g
        .grid
        .try_broadcast(&loss_local, loss_root)
        .map_err(at(model.stage, None, "broadcast of mean loss"))?
        .data()[0];

    // Every microbatch's backward released its forward's activations.
    debug_assert_eq!(iter_ledger.live_paper_bytes(), 0, "activations leaked across the iteration");
    Ok(IterationOutcome {
        mean_loss,
        grads,
        peak_live_states: peak_live,
        per_micro_activation_bytes: per_micro_bytes,
        peak_activation_bytes: iter_ledger.high_water(),
    })
}

/// The interleaved unit order for one device (Megatron's schedule; matches
/// `mt_pipeline::InterleavedSim`): forward unit `k` is microbatch
/// `(k/(p·m))·p + k%p` of chunk `(k/p)%m`; backwards mirror with chunks
/// reversed; warmup is `2(p−d−1) + (m−1)p + 1` units. Each entry is
/// `(is_forward, chunk, microbatch)`. Public so `mt-analyze` extracts the
/// executor's real schedule.
pub fn interleaved_device_ops(
    device: usize,
    p: usize,
    m: usize,
    n: usize,
) -> Vec<(bool, usize, usize)> {
    let total = n * m;
    let fwd = |k: usize| ((k / p) % m, (k / (p * m)) * p + k % p);
    let bwd = |k: usize| (m - 1 - (k / p) % m, (k / (p * m)) * p + k % p);
    let w = (2 * (p - device - 1) + (m - 1) * p + 1).min(total);
    let mut ops = Vec::with_capacity(2 * total);
    for k in 0..w {
        let (v, mb) = fwd(k);
        ops.push((true, v, mb));
    }
    for j in 0..(total - w) {
        let (v, mb) = fwd(w + j);
        ops.push((true, v, mb));
        let (v, mb) = bwd(j);
        ops.push((false, v, mb));
    }
    for k in (total - w)..total {
        let (v, mb) = bwd(k);
        ops.push((false, v, mb));
    }
    ops
}

/// Runs one training iteration of the **interleaved** schedule: this device
/// holds `chunks.len() = m` model chunks (chunk `v` is virtual stage
/// `v·p + device`, built with `StageModel::from_gpt(gpt, p·m, v·p + device,
/// …)`), and microbatches traverse all `p·m` virtual stages with
/// wrap-around point-to-point transfers.
///
/// Returns per-chunk gradients (outer index = chunk) plus the mean loss and
/// the peak number of live chunk-activation states — the quantity behind
/// the paper's `L(1 + (p−1)/(p·m))` first-device memory factor.
///
/// # Panics
///
/// Panics if `micro_data.len()` is not a multiple of the device count, the
/// chunk list is empty, chunk models disagree with the grid, or a peer
/// fails mid-iteration (use [`try_run_interleaved_iteration`] to get the
/// failure as a [`PipelineError`] instead).
pub fn run_interleaved_iteration(
    chunks: &[StageModel],
    g: &GridComm,
    sequence_parallel: bool,
    micro_data: &[(Vec<usize>, Vec<usize>)],
    step: u64,
) -> (f32, Vec<StageGrads>, usize) {
    try_run_interleaved_iteration(chunks, g, sequence_parallel, micro_data, step)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_interleaved_iteration`] with communication failures propagated as
/// [`PipelineError`]s naming the virtual-stage and microbatch coordinate.
///
/// # Errors
///
/// Returns the first collective failure this device observes.
///
/// # Panics
///
/// Still panics on caller bugs (empty chunk list, chunk/grid mismatch) —
/// those are not runtime faults.
pub fn try_run_interleaved_iteration(
    chunks: &[StageModel],
    g: &GridComm,
    sequence_parallel: bool,
    micro_data: &[(Vec<usize>, Vec<usize>)],
    step: u64,
) -> Result<(f32, Vec<StageGrads>, usize), PipelineError> {
    let m = chunks.len();
    assert!(m > 0, "need at least one chunk");
    let p = g.pp();
    let device = g.stage;
    let n = micro_data.len();
    assert!(n > 0 && n.is_multiple_of(p), "microbatches ({n}) must be a multiple of devices ({p})");
    let cfg = chunks[0].cfg;
    let tp = g.tp.size();
    let sp = sequence_parallel;
    let rows = if sp { cfg.tokens() / tp } else { cfg.tokens() };
    let row0 = if sp { g.tp_rank * rows } else { 0 };
    let vstages = p * m;
    let mode = if tp == 1 && !sp {
        ExecMode::Serial
    } else if sp {
        ExecMode::TensorSequenceParallel(&g.tp)
    } else {
        ExecMode::TensorParallel(&g.tp)
    };
    for (v, c) in chunks.iter().enumerate() {
        assert_eq!(c.stage, v * p + device, "chunk {v} built for the wrong virtual stage");
        assert_eq!(c.pp, vstages, "chunk built for a different virtual depth");
    }

    let mut grads: Vec<StageGrads> = chunks.iter().map(|c| c.zero_grads()).collect();
    let mut live: Vec<Vec<Option<MicroState>>> =
        (0..m).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut live_count = 0usize;
    let mut peak_live = 0usize;
    let mut loss_sum = 0.0_f64;

    for (is_fwd, v, mb) in interleaved_device_ops(device, p, m, n) {
        let vs = v * p + device;
        let micro_id = step * n as u64 + mb as u64;
        let model = &chunks[v];
        if is_fwd {
            let mut x = if vs == 0 {
                model.embed(&micro_data[mb].0, micro_id, row0, rows)
            } else {
                // Previous virtual stage lives on device (device+p-1)%p
                // (chunk v, or chunk v-1 when this is device 0).
                let from_device = (device + p - 1) % p;
                g.grid.try_recv(from_device * tp + g.tp_rank).map_err(at(
                    vs,
                    Some(mb),
                    "recv of forward activation",
                ))?
            };
            let mut layer_states = Vec::with_capacity(model.layers.len());
            let mut scratch = ActivationLedger::new();
            for layer in &model.layers {
                let (y, st) = layer.forward(&x, micro_id, mode, &mut scratch);
                layer_states.push(st);
                x = y;
            }
            let head = if vs == vstages - 1 {
                let y_full = if sp {
                    g.tp.try_all_gather(&x).map_err(at(
                        vs,
                        Some(mb),
                        "all-gather of final activations",
                    ))?
                } else {
                    x.clone()
                };
                let h = model.head.as_ref().expect("last virtual stage has the head");
                let (y_ln, ln_saved) =
                    ops::layer_norm(&y_full, &h.final_ln_gamma, &h.final_ln_beta);
                let logits = ops::Gemm::NT.apply(&y_ln, &h.table);
                let ce = ops::cross_entropy(&logits, &micro_data[mb].1);
                loss_sum += ce.loss as f64;
                Some(HeadState { y_full, ln_saved, y_ln, dlogits: ce.dlogits })
            } else {
                let to_device = (device + 1) % p;
                g.grid.try_send(to_device * tp + g.tp_rank, &x).map_err(at(
                    vs,
                    Some(mb),
                    "send of forward activation",
                ))?;
                None
            };
            live[v][mb] = Some(MicroState { tokens_hash: mb, layer_states, head, ledger: scratch });
            live_count += 1;
            peak_live = peak_live.max(live_count);
        } else {
            let st = live[v][mb].take().unwrap_or_else(|| {
                panic!(
                    "virtual stage {vs}: backward of microbatch {mb} scheduled before its forward"
                )
            });
            live_count -= 1;
            let mut d = if let Some(hs) = &st.head {
                let h = chunks[v].head.as_ref().expect("head weights");
                let d_y_ln = ops::Gemm::NN.apply(&hs.dlogits, &h.table);
                let (d_fg_acc, d_fb_acc, d_table_acc) =
                    grads[v].head.as_mut().expect("head grads allocated");
                d_table_acc.add_assign(&ops::Gemm::TN.apply(&hs.dlogits, &hs.y_ln));
                let (d_y_full, d_fg, d_fb) =
                    ops::layer_norm_backward(&hs.y_full, &h.final_ln_gamma, &hs.ln_saved, &d_y_ln);
                d_fg_acc.add_assign(&d_fg);
                d_fb_acc.add_assign(&d_fb);
                if sp {
                    d_y_full.chunk_axis0(tp).expect("rows divide")[g.tp_rank].clone()
                } else {
                    d_y_full
                }
            } else {
                let from_device = (device + 1) % p;
                g.grid.try_recv(from_device * tp + g.tp_rank).map_err(at(
                    vs,
                    Some(mb),
                    "recv of backward gradient",
                ))?
            };
            let mut layer_states = st.layer_states;
            for idx in (0..chunks[v].layers.len()).rev() {
                let lstate = layer_states.pop().unwrap_or_else(|| {
                    panic!(
                        "virtual stage {vs}, microbatch {mb}: missing saved state for layer {idx}"
                    )
                });
                let (dx, lg) = chunks[v].layers[idx].backward(&d, lstate, mode);
                grads[v].layers[idx].accumulate(&lg);
                d = dx;
            }
            if vs == 0 {
                let mask = chunks[v].embedding_mask(micro_id, row0, rows);
                let d_emb = ops::dropout_backward(&d, &mask, cfg.dropout_p);
                let (d_table_acc, d_pos_acc) =
                    grads[v].embedding.as_mut().expect("embedding grads allocated");
                let h = cfg.hidden;
                for r in 0..rows {
                    let si = (row0 + r) / cfg.micro_batch;
                    let src = &d_emb.data()[r * h..(r + 1) * h];
                    let dst = &mut d_pos_acc.data_mut()[si * h..(si + 1) * h];
                    for (dv, &sv) in dst.iter_mut().zip(src) {
                        *dv += sv;
                    }
                }
                let ids = &micro_data[st.tokens_hash].0[row0..row0 + rows];
                d_table_acc.add_assign(&ops::embedding_backward(ids, &d_emb, cfg.vocab));
            } else {
                let to_device = (device + p - 1) % p;
                g.grid.try_send(to_device * tp + g.tp_rank, &d).map_err(at(
                    vs,
                    Some(mb),
                    "send of backward gradient",
                ))?;
            }
        }
    }

    // SP embedding-gradient reduction and the tied-embedding exchange
    // (device 0 holds chunk 0 / the embedding; device p−1 holds the head).
    if sp {
        if let Some(embedding) = grads[0].embedding.as_mut() {
            embedding.0 = g.tp.try_all_reduce(&embedding.0).map_err(at(
                device,
                None,
                "all-reduce of embedding-table gradients",
            ))?;
            embedding.1 = g.tp.try_all_reduce(&embedding.1).map_err(at(
                device,
                None,
                "all-reduce of position gradients",
            ))?;
        }
    }
    if p > 1 {
        let tied = "tied-embedding gradient exchange";
        if device == p - 1 {
            let (_, _, d_table_head) = grads[m - 1].head.as_ref().expect("head grads");
            g.grid.try_send(g.peer_on_stage(0), d_table_head).map_err(at(device, None, tied))?;
            let combined = g.grid.try_recv(g.peer_on_stage(0)).map_err(at(device, None, tied))?;
            grads[m - 1].head.as_mut().expect("head grads").2 = combined;
        } else if device == 0 {
            let head_grad =
                g.grid.try_recv(g.peer_on_stage(p - 1)).map_err(at(device, None, tied))?;
            let (d_table, _) = grads[0].embedding.as_mut().expect("embedding grads");
            d_table.add_assign(&head_grad);
            let combined = d_table.clone();
            g.grid.try_send(g.peer_on_stage(p - 1), &combined).map_err(at(device, None, tied))?;
        }
    } else {
        // Single device: both tied copies are local; combine across chunks
        // (or within the single chunk when m = 1).
        let head_grad = grads[m - 1].head.as_ref().expect("head grads").2.clone();
        let (d_table, _) = grads[0].embedding.as_mut().expect("embedding grads");
        d_table.add_assign(&head_grad);
        let combined = d_table.clone();
        grads[m - 1].head.as_mut().expect("head grads").2 = combined;
    }

    let loss_root = (p - 1) * tp;
    let loss_local = Tensor::full(&[1], (loss_sum / n as f64) as f32);
    let mean_loss = g
        .grid
        .try_broadcast(&loss_local, loss_root)
        .map_err(at(device, None, "broadcast of mean loss"))?
        .data()[0];
    Ok((mean_loss, grads, peak_live))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ops_covers_every_microbatch_once() {
        for (pp, n) in [(1usize, 4usize), (2, 4), (4, 8), (4, 2)] {
            for stage in 0..pp {
                let ops = stage_ops(stage, pp, n);
                assert_eq!(ops.len(), 2 * n);
                let fwd: Vec<usize> = ops.iter().filter(|(f, _)| *f).map(|(_, m)| *m).collect();
                let bwd: Vec<usize> = ops.iter().filter(|(f, _)| !*f).map(|(_, m)| *m).collect();
                assert_eq!(fwd, (0..n).collect::<Vec<_>>());
                assert_eq!(bwd, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn stage_ops_backward_never_precedes_forward() {
        let ops = stage_ops(1, 4, 6);
        let mut done = [false; 6];
        for (is_fwd, m) in ops {
            if is_fwd {
                done[m] = true;
            } else {
                assert!(done[m], "backward of {m} before its forward");
            }
        }
    }

    #[test]
    fn from_gpt_slices_layers() {
        let cfg = TransformerConfig::tiny(); // 2 layers
        let gpt = Gpt::init(cfg, Recompute::None, 9);
        let s0 = StageModel::from_gpt(&gpt, 2, 0, 1, 0, Recompute::None);
        let s1 = StageModel::from_gpt(&gpt, 2, 1, 1, 0, Recompute::None);
        assert_eq!(s0.layers.len(), 1);
        assert_eq!(s1.layers.len(), 1);
        assert!(s0.embedding.is_some() && s0.head.is_none());
        assert!(s1.embedding.is_none() && s1.head.is_some());
        assert_eq!(s0.layers[0].weights(), gpt.layers[0].weights());
        assert_eq!(s1.layers[0].weights(), gpt.layers[1].weights());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn from_gpt_rejects_uneven_stages() {
        let cfg = TransformerConfig::tiny();
        let gpt = Gpt::init(cfg, Recompute::None, 9);
        let _ = StageModel::from_gpt(&gpt, 3, 0, 1, 0, Recompute::None);
    }
}
