//! The full GPT model: embedding → L transformer layers → final LayerNorm →
//! tied logits head → cross-entropy loss.
//!
//! Like [`crate::TransformerLayer`], the model runs in any
//! [`ExecMode`]: serial, tensor-parallel, or tensor+sequence-parallel. The
//! embedding and the loss head are *replicated* across the tensor-parallel
//! group (every rank computes them identically) — the paper's Megatron
//! implementation shards the vocabulary dimension too, but replication is
//! numerically equivalent and keeps the focus on the transformer-layer
//! techniques the paper is about. The Section 4.3 input/output extras
//! (embedding dropout mask, final LayerNorm input, head input, fp32 logits)
//! are still placed on the activation ledger.

use crate::config::TransformerConfig;
use crate::layer::{ExecMode, LayerState, TransformerLayer};
use crate::ledger::{ActivationLedger, Category};
use crate::policy::ExecPolicy;
use crate::streams::{element_offset, stream_id, DropoutSite};
use crate::weights::{EmbeddingWeights, LayerGrads, LayerWeights};
use mt_kernels::overlap::recompute_prefetch;
use mt_memory::Recompute;
use mt_tensor::ops;
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;

/// Gradients of every GPT parameter, shaped like the owning model (layer
/// gradients are shard-shaped under parallel execution).
#[derive(Debug, Clone, PartialEq)]
pub struct GptGrads {
    /// Word-embedding table gradient `[v, h]` (embedding + tied head).
    pub table: Tensor,
    /// Positional-embedding gradient `[s, h]`.
    pub positions: Tensor,
    /// Final LayerNorm scale gradient.
    pub final_ln_gamma: Tensor,
    /// Final LayerNorm shift gradient.
    pub final_ln_beta: Tensor,
    /// Per-layer gradients.
    pub layers: Vec<LayerGrads>,
}

impl GptGrads {
    /// Gradient tensors in the order matching
    /// [`Gpt::param_tensors_mut`].
    pub fn tensors(&self) -> Vec<&Tensor> {
        let mut out = vec![&self.table, &self.positions, &self.final_ln_gamma, &self.final_ln_beta];
        for l in &self.layers {
            out.extend([
                &l.ln1_gamma,
                &l.ln1_beta,
                &l.w_qkv,
                &l.b_qkv,
                &l.w_o,
                &l.b_o,
                &l.ln2_gamma,
                &l.ln2_beta,
                &l.w1,
                &l.b1,
                &l.w2,
                &l.b2,
            ]);
        }
        out
    }

    /// Mutable gradient tensors in the same order as
    /// [`GptGrads::tensors`] — for in-place transforms such as
    /// [`clip_grad_norm`](crate::optim::clip_grad_norm).
    pub fn tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = vec![
            &mut self.table,
            &mut self.positions,
            &mut self.final_ln_gamma,
            &mut self.final_ln_beta,
        ];
        for l in &mut self.layers {
            out.extend(l.tensors_mut());
        }
        out
    }

    /// Splits the mutable gradient tensors by tensor-parallel locality:
    /// `(replicated, sharded)`. Replicated gradients (embedding, LayerNorm
    /// scales/shifts, row-parallel biases) hold identical values on every
    /// rank; sharded gradients (QKV/MLP weights, column-parallel biases)
    /// each hold one rank's shard. The split is what lets
    /// [`clip_grad_norm_tp`](crate::optim::clip_grad_norm_tp) count every
    /// parameter exactly once in the global norm.
    pub fn tensors_mut_by_locality(&mut self) -> (Vec<&mut Tensor>, Vec<&mut Tensor>) {
        let mut replicated: Vec<&mut Tensor> = vec![
            &mut self.table,
            &mut self.positions,
            &mut self.final_ln_gamma,
            &mut self.final_ln_beta,
        ];
        let mut sharded: Vec<&mut Tensor> = Vec::new();
        for l in &mut self.layers {
            replicated.push(&mut l.ln1_gamma);
            replicated.push(&mut l.ln1_beta);
            sharded.push(&mut l.w_qkv);
            sharded.push(&mut l.b_qkv);
            sharded.push(&mut l.w_o);
            replicated.push(&mut l.b_o);
            replicated.push(&mut l.ln2_gamma);
            replicated.push(&mut l.ln2_beta);
            sharded.push(&mut l.w1);
            sharded.push(&mut l.b1);
            sharded.push(&mut l.w2);
            replicated.push(&mut l.b2);
        }
        (replicated, sharded)
    }

    /// Accumulates another gradient set (microbatch accumulation).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &GptGrads) {
        self.table.add_assign(&other.table);
        self.positions.add_assign(&other.positions);
        self.final_ln_gamma.add_assign(&other.final_ln_gamma);
        self.final_ln_beta.add_assign(&other.final_ln_beta);
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.accumulate(b);
        }
    }
}

/// A runnable GPT model.
#[derive(Debug, Clone)]
pub struct Gpt {
    cfg: TransformerConfig,
    /// Embedding weights (replicated under parallelism).
    pub embedding: EmbeddingWeights,
    /// Transformer layers (shard-shaped under parallelism).
    pub layers: Vec<TransformerLayer>,
    /// Final LayerNorm scale.
    pub final_ln_gamma: Tensor,
    /// Final LayerNorm shift.
    pub final_ln_beta: Tensor,
    rng: CounterRng,
}

impl Gpt {
    /// Initializes a full (unsharded) model. All randomness derives from
    /// `seed`, so two calls with equal arguments build identical models.
    pub fn init(cfg: TransformerConfig, policy: Recompute, seed: u64) -> Self {
        Self::init_with_policies(cfg, &vec![policy; cfg.layers], seed)
    }

    /// Initializes a model with a per-layer recomputation policy — the
    /// "checkpoint some of the transformer layers" scheme of Section 5.
    /// Weight initialization depends only on `cfg` and `seed`, so models
    /// differing only in `policies` are numerically identical.
    ///
    /// # Panics
    ///
    /// Panics if `policies.len() != cfg.layers`.
    pub fn init_with_policies(cfg: TransformerConfig, policies: &[Recompute], seed: u64) -> Self {
        cfg.validate(1);
        assert_eq!(policies.len(), cfg.layers, "one policy per layer");
        let mut rng = SplitMix64::new(seed);
        let embedding = EmbeddingWeights::init(&cfg, &mut rng);
        let dropout_rng = CounterRng::new(rng.next_u64());
        let layers = policies
            .iter()
            .enumerate()
            .map(|(i, &policy)| {
                let w = LayerWeights::init(&cfg, &mut rng);
                TransformerLayer::new(cfg, w, i, policy, dropout_rng)
            })
            .collect();
        Gpt {
            cfg,
            embedding,
            layers,
            final_ln_gamma: Tensor::full(&[cfg.hidden], 1.0),
            final_ln_beta: Tensor::zeros(&[cfg.hidden]),
            rng: dropout_rng,
        }
    }

    /// Builds rank `rank`'s shard of this model for `t`-way tensor
    /// parallelism. Embedding, final LayerNorm, and the dropout RNG are
    /// shared; layer weights are Megatron-sharded.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not divide by `t`.
    pub fn shard(&self, t: usize, rank: usize, policy: Recompute) -> Gpt {
        self.cfg.validate(t);
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                TransformerLayer::new(self.cfg, l.weights().shard(t, rank), i, policy, self.rng)
            })
            .collect();
        Gpt {
            cfg: self.cfg,
            embedding: self.embedding.clone(),
            layers,
            final_ln_gamma: self.final_ln_gamma.clone(),
            final_ln_beta: self.final_ln_beta.clone(),
            rng: self.rng,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> TransformerConfig {
        self.cfg
    }

    /// The counter RNG seeding this model's dropout streams; stage models
    /// built from this template must share it so replayed masks agree.
    pub fn dropout_rng(&self) -> CounterRng {
        self.rng
    }

    /// Parameter tensors in a stable order matching [`GptGrads::tensors`].
    pub fn param_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = vec![
            &mut self.embedding.table,
            &mut self.embedding.positions,
            &mut self.final_ln_gamma,
            &mut self.final_ln_beta,
        ];
        for l in &mut self.layers {
            out.extend(l.weights_mut().tensors_mut());
        }
        out
    }

    fn embedding_mask(&self, micro: u64, row0: usize, rows: usize) -> Vec<u8> {
        let stream = stream_id(DropoutSite::Embedding, 0, micro);
        let h = self.cfg.hidden;
        let mut mask = Vec::with_capacity(rows * h);
        for r in 0..rows {
            for c in 0..h {
                mask.push(u8::from(
                    self.rng.uniform(stream, element_offset(row0 + r, c, h)) >= self.cfg.dropout_p,
                ));
            }
        }
        mask
    }

    /// Runs one microbatch forward **and** backward, returning the mean
    /// cross-entropy loss and all parameter gradients.
    ///
    /// `tokens` and `targets` are `s·b` token ids in the model's s-major row
    /// order (`row = seq_index · b + batch_index`); every rank passes the
    /// full arrays. Saved activations land on `ledger`.
    ///
    /// `policy` accepts anything convertible into an [`ExecPolicy`]; a bare
    /// [`ExecMode`] inherits each layer's stored recompute/overlap
    /// defaults. Under [`crate::OverlapPolicy::OverlappedRecompute`] in
    /// serial mode, a fully-checkpointed layer `k`'s replay is prefetched
    /// on a helper thread while layer `k+1`'s backward runs (the Chen et
    /// al. cross-layer hiding) — parallel modes replay inline, because the
    /// replay issues collectives there and a second thread would race the
    /// rank's SPMD rendezvous order.
    ///
    /// # Panics
    ///
    /// Panics if `tokens`/`targets` lengths differ from `s·b` or the mode's
    /// group size does not divide the configuration.
    pub fn loss_and_grads<'m>(
        &self,
        tokens: &[usize],
        targets: &[usize],
        micro: u64,
        policy: impl Into<ExecPolicy<'m>>,
        ledger: &mut ActivationLedger,
    ) -> (f32, GptGrads) {
        let policy = policy.into();
        let mode = &policy.mode();
        let cfg = &self.cfg;
        assert_eq!(tokens.len(), cfg.tokens(), "tokens length must be s*b");
        assert_eq!(targets.len(), cfg.tokens(), "targets length must be s*b");
        cfg.validate(mode.t());
        let sp = mode.sequence_parallel();
        let t = mode.t();
        let rows = if sp { cfg.tokens() / t } else { cfg.tokens() };
        let row0 = if sp { mode.rank() * rows } else { 0 };
        let ids_local = &tokens[row0..row0 + rows];

        let tracer = mt_trace::current();
        let fwd_span =
            tracer.span_args("forward", || vec![("micro", mt_trace::ArgValue::U64(micro))]);

        // --- forward: embedding ---
        let mut x = ops::embedding(ids_local, &self.embedding.table);
        for r in 0..rows {
            let si = (row0 + r) / cfg.micro_batch;
            let h = cfg.hidden;
            let pos = &self.embedding.positions.data()[si * h..(si + 1) * h];
            for (xv, &pv) in x.data_mut()[r * h..(r + 1) * h].iter_mut().zip(pos) {
                *xv += pv;
            }
        }
        let emb_mask = self.embedding_mask(micro, row0, rows);
        let mut act = ops::dropout(&x, &emb_mask, cfg.dropout_p);
        ledger.record(Category::EmbeddingDropoutMask, act.numel() as u64);

        // --- forward: layers ---
        let mut states = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (y, st) = layer.forward(&act, micro, policy, ledger);
            states.push(st);
            act = y;
        }

        // --- forward: head ---
        let y_full = match mode {
            ExecMode::TensorSequenceParallel(c) => c.all_gather(&act),
            _ => act.clone(),
        };
        let (y_ln, ln_saved) = ops::layer_norm(&y_full, &self.final_ln_gamma, &self.final_ln_beta);
        ledger.record(Category::LayerNormInput, y_full.numel() as u64);
        ledger.record(Category::SmallStatistics, 2 * y_full.rows() as u64);
        let logits = ops::Gemm::NT.apply(&y_ln, &self.embedding.table);
        ledger.record(Category::ProjectionInput, y_ln.numel() as u64);
        ledger.record(Category::Logits, logits.numel() as u64);
        let ce = ops::cross_entropy(&logits, targets);
        drop(fwd_span);
        let bwd_span =
            tracer.span_args("backward", || vec![("micro", mt_trace::ArgValue::U64(micro))]);

        // --- backward: head ---
        let d_y_ln = ops::Gemm::NN.apply(&ce.dlogits, &self.embedding.table);
        let d_table_head = ops::Gemm::TN.apply(&ce.dlogits, &y_ln);
        let (d_y_full, d_fg, d_fb) =
            ops::layer_norm_backward(&y_full, &self.final_ln_gamma, &ln_saved, &d_y_ln);
        // The head is replicated redundant compute: the shard gradient is a
        // plain slice, not a reduction.
        let mut d_act = if sp {
            d_y_full.chunk_axis0(t).expect("rows divide by t")[mode.rank()].clone()
        } else {
            d_y_full
        };

        // --- backward: layers ---
        let mut layer_grads: Vec<Option<LayerGrads>> =
            (0..self.layers.len()).map(|_| None).collect();
        let mut states: Vec<Option<LayerState>> = states.into_iter().map(Some).collect();
        for i in (0..self.layers.len()).rev() {
            let layer = &self.layers[i];
            let st = states[i].take().expect("state consumed exactly once");
            // Hide layer i-1's full-recompute replay under layer i's
            // backward GEMMs (Chen et al.): legal only in serial mode — the
            // replay is collective-free there — and only when the layer
            // below is a checkpoint whose resolved overlap opts in. The
            // replay is the same pure function the inline path runs, so
            // gradients stay bit-identical.
            let prefetch_below = i > 0
                && matches!(mode, ExecMode::Serial)
                && policy
                    .overlap()
                    .unwrap_or(self.layers[i - 1].overlap_policy())
                    .recompute_overlapped();
            let below = if prefetch_below { states[i - 1].take() } else { None };
            let (dx, lg) = match below {
                Some(LayerState::Checkpoint { x, micro: below_micro }) => {
                    let prev = &self.layers[i - 1];
                    let (replayed, out, report) = recompute_prefetch(
                        || prev.recompute_stored(&x, below_micro),
                        || layer.backward(&d_act, st, policy),
                    );
                    crate::overlap::add_recompute_time(report.recompute_us, report.exposed_us);
                    states[i - 1] = Some(LayerState::Stored(replayed));
                    out
                }
                other => {
                    // Not a checkpoint below (or nothing taken): put the
                    // state back and run this backward alone.
                    if let Some(s) = other {
                        states[i - 1] = Some(s);
                    }
                    layer.backward(&d_act, st, policy)
                }
            };
            layer_grads[i] = Some(lg);
            d_act = dx;
        }
        let layer_grads: Vec<LayerGrads> =
            layer_grads.into_iter().map(|g| g.expect("gradient computed")).collect();

        // --- backward: embedding ---
        let d_emb = ops::dropout_backward(&d_act, &emb_mask, cfg.dropout_p);
        let mut d_positions = Tensor::zeros(&[cfg.seq, cfg.hidden]);
        for r in 0..rows {
            let si = (row0 + r) / cfg.micro_batch;
            let h = cfg.hidden;
            let src = &d_emb.data()[r * h..(r + 1) * h];
            let dst = &mut d_positions.data_mut()[si * h..(si + 1) * h];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        let mut d_table_embed = ops::embedding_backward(ids_local, &d_emb, cfg.vocab);
        if let ExecMode::TensorSequenceParallel(c) = mode {
            // Each rank embedded only its sequence shard.
            d_table_embed = c.all_reduce(&d_table_embed);
            d_positions = c.all_reduce(&d_positions);
        }
        let d_table = d_table_embed.add(&d_table_head);
        drop(bwd_span);

        (
            ce.loss,
            GptGrads {
                table: d_table,
                positions: d_positions,
                final_ln_gamma: d_fg,
                final_ln_beta: d_fb,
                layers: layer_grads,
            },
        )
    }
}

impl Gpt {
    /// An inference copy of this model: identical weights, dropout disabled.
    pub fn eval(&self) -> Gpt {
        let mut ckpt = self.to_checkpoint();
        ckpt.cfg.dropout_p = 0.0;
        Gpt::from_checkpoint(ckpt)
    }

    /// Serial forward pass producing the `[s·b, v]` logits (no loss, no
    /// gradients, nothing saved). Dropout still applies if the model's
    /// `dropout_p` is nonzero — call on [`Gpt::eval`] for inference.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != s·b`.
    pub fn logits(&self, tokens: &[usize], micro: u64) -> Tensor {
        let cfg = &self.cfg;
        assert_eq!(tokens.len(), cfg.tokens(), "tokens length must be s*b");
        let rows = cfg.tokens();
        let mut x = ops::embedding(tokens, &self.embedding.table);
        for r in 0..rows {
            let si = r / cfg.micro_batch;
            let h = cfg.hidden;
            let pos = &self.embedding.positions.data()[si * h..(si + 1) * h];
            for (xv, &pv) in x.data_mut()[r * h..(r + 1) * h].iter_mut().zip(pos) {
                *xv += pv;
            }
        }
        let mask = self.embedding_mask(micro, 0, rows);
        let mut act = ops::dropout(&x, &mask, cfg.dropout_p);
        let mut scratch = ActivationLedger::new();
        for layer in &self.layers {
            let (y, _) = layer.forward(&act, micro, ExecMode::Serial, &mut scratch);
            act = y;
        }
        let (y_ln, _) = ops::layer_norm(&act, &self.final_ln_gamma, &self.final_ln_beta);
        ops::Gemm::NT.apply(&y_ln, &self.embedding.table)
    }

    /// Greedy autoregressive generation: appends `n_new` tokens to `prompt`
    /// and returns the full sequence. Dropout is disabled internally.
    ///
    /// The model's context is its fixed `s`; shorter contexts are padded on
    /// the right (harmless under the causal mask), longer histories keep
    /// their last `s` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the model's microbatch size is not 1, the prompt is empty,
    /// or a prompt token is out of vocabulary range.
    pub fn generate(&self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        assert_eq!(self.cfg.micro_batch, 1, "generation requires micro_batch == 1");
        assert!(!prompt.is_empty(), "empty prompt");
        let model = self.eval();
        let s = self.cfg.seq;
        let mut seq: Vec<usize> = prompt.to_vec();
        for _ in 0..n_new {
            let ctx_start = seq.len().saturating_sub(s);
            let ctx = &seq[ctx_start..];
            let mut window = vec![0usize; s];
            window[..ctx.len()].copy_from_slice(ctx);
            let logits = model.logits(&window, 0);
            let row = ctx.len() - 1;
            let v = self.cfg.vocab;
            let scores = &logits.data()[row * v..(row + 1) * v];
            let next = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("nonempty vocabulary");
            seq.push(next);
        }
        seq
    }
}

/// A serializable snapshot of a full (unsharded) model — weights, dropout
/// seed, and per-layer recomputation policies. Round-trips through
/// [`Gpt::to_checkpoint`] / [`Gpt::from_checkpoint`] reproduce the model
/// bit-for-bit, including its future dropout draws.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GptCheckpoint {
    /// Model configuration.
    pub cfg: TransformerConfig,
    /// Embedding weights.
    pub embedding: EmbeddingWeights,
    /// Per-layer weights.
    pub layer_weights: Vec<LayerWeights>,
    /// Per-layer recomputation policies.
    pub policies: Vec<Recompute>,
    /// Final LayerNorm scale.
    pub final_ln_gamma: Tensor,
    /// Final LayerNorm shift.
    pub final_ln_beta: Tensor,
    /// The counter RNG driving dropout-mask replay.
    pub dropout_rng: CounterRng,
}

impl Gpt {
    /// Captures a checkpoint of this model.
    pub fn to_checkpoint(&self) -> GptCheckpoint {
        GptCheckpoint {
            cfg: self.cfg,
            embedding: self.embedding.clone(),
            layer_weights: self.layers.iter().map(|l| l.weights().clone()).collect(),
            policies: self.layers.iter().map(|l| l.policy()).collect(),
            final_ln_gamma: self.final_ln_gamma.clone(),
            final_ln_beta: self.final_ln_beta.clone(),
            dropout_rng: self.rng,
        }
    }

    /// Restores a model from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's layer count disagrees with its config.
    pub fn from_checkpoint(ckpt: GptCheckpoint) -> Gpt {
        assert_eq!(ckpt.layer_weights.len(), ckpt.cfg.layers, "layer count mismatch");
        assert_eq!(ckpt.policies.len(), ckpt.cfg.layers, "policy count mismatch");
        let layers = ckpt
            .layer_weights
            .into_iter()
            .zip(&ckpt.policies)
            .enumerate()
            .map(|(i, (w, &policy))| {
                TransformerLayer::new(ckpt.cfg, w, i, policy, ckpt.dropout_rng)
            })
            .collect();
        Gpt {
            cfg: ckpt.cfg,
            embedding: ckpt.embedding,
            layers,
            final_ln_gamma: ckpt.final_ln_gamma,
            final_ln_beta: ckpt.final_ln_beta,
            rng: ckpt.dropout_rng,
        }
    }

    /// Serializes the model as JSON to a writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save_json<W: std::io::Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(writer, &self.to_checkpoint())
    }

    /// Deserializes a model from JSON. The reader can be a `&mut` reference
    /// (see `std::io::Read`'s blanket impl) if it is needed afterwards.
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load_json<R: std::io::Read>(reader: R) -> Result<Gpt, serde_json::Error> {
        serde_json::from_reader(reader).map(Gpt::from_checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn cfg() -> TransformerConfig {
        TransformerConfig {
            hidden: 16,
            heads: 2,
            seq: 8,
            micro_batch: 2,
            layers: 2,
            vocab: 24,
            dropout_p: 0.0,
            causal: true,
        }
    }

    fn data(c: &TransformerConfig, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let n = c.tokens();
        let tokens: Vec<usize> = (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
        let targets: Vec<usize> = (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
        (tokens, targets)
    }

    #[test]
    fn initial_loss_is_near_uniform() {
        let c = cfg();
        let gpt = Gpt::init(c, Recompute::None, 11);
        let (tokens, targets) = data(&c, 1);
        let mut ledger = ActivationLedger::new();
        let (loss, _) = gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut ledger);
        let uniform = (c.vocab as f32).ln();
        assert!((loss - uniform).abs() < 0.5, "loss {loss} vs ln(v) {uniform}");
    }

    #[test]
    fn adam_training_reduces_loss() {
        let c = cfg();
        let mut gpt = Gpt::init(c, Recompute::Selective, 12);
        let (tokens, targets) = data(&c, 2);
        let mut adam = Adam::new(3e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            let mut ledger = ActivationLedger::new();
            let (loss, grads) =
                gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut ledger);
            if step == 0 {
                first = loss;
            }
            last = loss;
            adam.update(gpt.param_tensors_mut(), &grads.tensors());
        }
        assert!(last < first * 0.5, "loss failed to drop: {first} -> {last}");
    }

    #[test]
    fn policies_are_loss_and_gradient_identical() {
        let c = cfg();
        let (tokens, targets) = data(&c, 3);
        let mut outs = Vec::new();
        for policy in [Recompute::None, Recompute::Selective, Recompute::Full] {
            let gpt = Gpt::init(TransformerConfig { dropout_p: 0.1, ..c }, policy, 13);
            let mut ledger = ActivationLedger::new();
            outs.push(gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut ledger));
        }
        for (loss, grads) in &outs[1..] {
            assert_eq!(*loss, outs[0].0);
            assert_eq!(*grads, outs[0].1);
        }
    }

    #[test]
    fn mixed_layer_policies_are_numerically_invisible() {
        // Checkpointing layer 0 and running layer 1 store-all (Section 5's
        // coarse scheme) must not change loss or gradients, while its ledger
        // is the per-layer sum of the Table 2 entries.
        let c = TransformerConfig { dropout_p: 0.1, ..cfg() };
        let (tokens, targets) = data(&c, 6);
        let uniform = Gpt::init(c, Recompute::None, 16);
        let mixed = Gpt::init_with_policies(c, &[Recompute::Full, Recompute::None], 16);
        let mut l_uniform = ActivationLedger::new();
        let mut l_mixed = ActivationLedger::new();
        let (loss_u, grads_u) =
            uniform.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut l_uniform);
        let (loss_m, grads_m) =
            mixed.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut l_mixed);
        assert_eq!(loss_u, loss_m);
        assert_eq!(grads_u, grads_m);
        // Layer 0 stores 2sbh; layer 1 stores the full Equation 1 amount.
        let per_layer_full = 34 * c.sbh() + 5 * c.as2b();
        assert_eq!(l_mixed.paper_bytes(), l_uniform.paper_bytes() - per_layer_full + 2 * c.sbh());
    }

    #[test]
    fn ledger_records_section_4_3_extras() {
        // Serial, p = 1, t = 1: extras = sbh (embedding mask) + 2sbh (final
        // LayerNorm input) + 2sbh (head input) + 4sbv (fp32 logits).
        let c = cfg();
        let gpt = Gpt::init(c, Recompute::None, 14);
        let (tokens, targets) = data(&c, 4);
        let mut ledger = ActivationLedger::new();
        let _ = gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut ledger);
        let sbh = c.sbh();
        let sbv = (c.seq * c.micro_batch * c.vocab) as u64;
        assert_eq!(ledger.bytes(Category::EmbeddingDropoutMask), sbh);
        assert_eq!(ledger.bytes(Category::Logits), 4 * sbv);
        // Per-layer LayerNormInput is 4sbh · L; the head adds 2sbh more.
        assert_eq!(ledger.bytes(Category::LayerNormInput), 4 * sbh * c.layers as u64 + 2 * sbh);
    }

    #[test]
    fn logits_match_the_training_forward() {
        // With dropout off, logits() must agree with the loss path: the
        // mean loss recomputed from logits equals loss_and_grads' loss.
        let c = cfg();
        let gpt = Gpt::init(c, Recompute::None, 19);
        let (tokens, targets) = data(&c, 8);
        let logits = gpt.logits(&tokens, 0);
        let ce = mt_tensor::ops::cross_entropy(&logits, &targets);
        let mut ledger = ActivationLedger::new();
        let (loss, _) = gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut ledger);
        assert!((ce.loss - loss).abs() < 1e-6);
    }

    #[test]
    fn eval_disables_dropout_deterministically() {
        let c = TransformerConfig { dropout_p: 0.3, ..cfg() };
        let gpt = Gpt::init(c, Recompute::None, 20);
        let (tokens, _) = data(&c, 9);
        let e = gpt.eval();
        // Different "microbatch ids" draw different masks in train mode but
        // must not matter in eval mode.
        assert_ne!(gpt.logits(&tokens, 0), gpt.logits(&tokens, 1));
        assert_eq!(e.logits(&tokens, 0), e.logits(&tokens, 1));
    }

    #[test]
    fn generation_extends_the_prompt() {
        let c = TransformerConfig { micro_batch: 1, ..cfg() };
        let gpt = Gpt::init(c, Recompute::None, 21);
        let prompt = vec![1, 2, 3];
        let out = gpt.generate(&prompt, 5);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &prompt[..]);
        assert!(out.iter().all(|&t| t < c.vocab));
        // Greedy decoding is deterministic.
        assert_eq!(out, gpt.generate(&prompt, 5));
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let c = TransformerConfig { dropout_p: 0.1, ..cfg() };
        let gpt = Gpt::init_with_policies(c, &[Recompute::Selective, Recompute::Full], 17);
        let mut buf = Vec::new();
        gpt.save_json(&mut buf).expect("serialize");
        let restored = Gpt::load_json(buf.as_slice()).expect("deserialize");
        // Same weights, same policies, same dropout stream ⇒ identical
        // losses and gradients, mask replay included.
        let (tokens, targets) = data(&c, 7);
        let mut l1 = ActivationLedger::new();
        let mut l2 = ActivationLedger::new();
        let a = gpt.loss_and_grads(&tokens, &targets, 3, ExecMode::Serial, &mut l1);
        let b = restored.loss_and_grads(&tokens, &targets, 3, ExecMode::Serial, &mut l2);
        assert_eq!(a, b);
        assert_eq!(l1, l2);
    }

    #[test]
    fn checkpoint_rejects_inconsistent_layer_count() {
        let c = cfg();
        let gpt = Gpt::init(c, Recompute::None, 18);
        let mut ckpt = gpt.to_checkpoint();
        ckpt.layer_weights.pop();
        let result = std::panic::catch_unwind(|| Gpt::from_checkpoint(ckpt));
        assert!(result.is_err());
    }

    #[test]
    fn cross_layer_recompute_prefetch_is_bit_identical() {
        // Full recomputation with the prefetch policy: layer k's replay runs
        // on a helper thread under layer k+1's backward. Loss, gradients,
        // and the activation ledger must all be unchanged; the trace shows
        // L-1 prefetched replays plus one inline replay (the topmost
        // backward layer has nothing to hide under).
        let c = TransformerConfig { dropout_p: 0.1, ..cfg() };
        let (tokens, targets) = data(&c, 30);
        let gpt = Gpt::init(c, Recompute::Full, 33);
        let mut l_inline = ActivationLedger::new();
        let inline = gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut l_inline);
        let policy = ExecPolicy::builder()
            .overlap(crate::OverlapPolicy::overlapped_recompute(2).expect("chunks >= 1"))
            .build()
            .expect("valid policy");
        let tracer = mt_trace::Tracer::enabled();
        let mut l_prefetch = ActivationLedger::new();
        let prefetched = {
            let _installed = mt_trace::install(tracer.clone());
            let _ = crate::overlap::take_step_timing();
            gpt.loss_and_grads(&tokens, &targets, 0, policy, &mut l_prefetch)
        };
        let timing = crate::overlap::take_step_timing();
        assert_eq!(inline.0, prefetched.0, "loss differs under recompute prefetch");
        assert_eq!(inline.1, prefetched.1, "gradients differ under recompute prefetch");
        assert_eq!(l_inline, l_prefetch, "ledger differs under recompute prefetch");
        assert!(timing.recompute_us >= timing.exposed_recompute_us);
        let events = tracer.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("recompute_overlapped"), c.layers - 1);
        assert_eq!(count("recompute_layer"), 1, "only the topmost replay stays inline");
    }

    #[test]
    fn different_microbatches_draw_different_dropout() {
        let c = TransformerConfig { dropout_p: 0.2, ..cfg() };
        let gpt = Gpt::init(c, Recompute::None, 15);
        let (tokens, targets) = data(&c, 5);
        let mut l1 = ActivationLedger::new();
        let mut l2 = ActivationLedger::new();
        let (loss_a, _) = gpt.loss_and_grads(&tokens, &targets, 0, ExecMode::Serial, &mut l1);
        let (loss_b, _) = gpt.loss_and_grads(&tokens, &targets, 1, ExecMode::Serial, &mut l2);
        assert_ne!(loss_a, loss_b, "microbatch id must vary the dropout masks");
    }
}
