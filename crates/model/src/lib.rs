//! # mt-model
//!
//! An *executing* GPT transformer for the reproduction of *"Reducing
//! Activation Recomputation in Large Transformer Models"*: the same layer
//! runs serially (the paper's Figure 2), tensor-parallel (Figure 4), or
//! tensor+sequence-parallel (Figure 5), under `none` / `selective` / `full`
//! activation-recomputation policies — on real numbers, with real gradients,
//! on thread-simulated ranks.
//!
//! What this buys the reproduction over a purely analytical model:
//!
//! * **Gradient equivalence** — TP and TP+SP executions reproduce the serial
//!   gradients, and every recomputation policy is *bit-identical* to storing
//!   everything (dropout masks are replayed from a counter RNG, mirroring
//!   Megatron-LM's CUDA RNG state replay).
//! * **Byte-exact memory accounting** — every tensor a policy saves is
//!   recorded on an [`ActivationLedger`]; integration tests check the ledger
//!   equals the paper's Table 2 closed forms exactly.
//! * **Communication-volume verification** — the collectives ledger shows
//!   TP's 2 all-reduces and TP+SP's 2 all-gathers + 2 reduce-scatters move
//!   identical wire bytes (Section 4.2.2).
//!
//! ## Example
//!
//! ```
//! use mt_model::{ActivationLedger, ExecMode, TransformerConfig, TransformerLayer};
//! use mt_model::weights::LayerWeights;
//! use mt_memory::Recompute;
//! use mt_tensor::rng::{CounterRng, SplitMix64};
//! use mt_tensor::Tensor;
//!
//! let cfg = TransformerConfig::tiny();
//! let mut rng = SplitMix64::new(1);
//! let weights = LayerWeights::init(&cfg, &mut rng);
//! let layer = TransformerLayer::new(cfg, weights, 0, Recompute::Selective, CounterRng::new(2));
//!
//! let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
//! let mut ledger = ActivationLedger::new();
//! let (y, state) = layer.forward(&x, 0, &ExecMode::Serial, &mut ledger);
//! let (dx, grads) = layer.backward(&y, state, &ExecMode::Serial);
//! assert_eq!(dx.shape(), x.shape());
//! assert_eq!(grads.w_qkv.shape(), &[cfg.hidden, 3 * cfg.hidden]);
//! ```

#![warn(missing_docs)]

pub mod attention;
mod config;
pub mod data_parallel;
pub mod eval;
pub mod gpt;
mod layer;
mod ledger;
pub mod optim;
mod overlap;
pub mod pipeline_exec;
mod policy;
pub mod recovery;
pub mod streams;
pub mod trainer;
pub mod vocab_parallel;
pub mod weights;
pub mod zero;

pub use config::TransformerConfig;
pub use layer::{ExecMode, LayerState, StoredState, TransformerLayer};
pub use ledger::{ActivationLedger, Category};
pub use overlap::{take_step_timing, CommTiming, OverlapPolicy, StepTiming, ZeroChunks};
pub use policy::{ExecPolicy, ExecPolicyBuilder, PolicyError};
