//! The unified execution policy: *where* a layer runs ([`ExecMode`]), *what*
//! it saves ([`Recompute`]), and *how* it schedules collectives and replays
//! ([`OverlapPolicy`]) — one validated value instead of three knobs spread
//! across a constructor argument, a builder-ish setter, and a per-call
//! parameter.
//!
//! ## Why a struct and not three parameters
//!
//! PR 5 bolted `OverlapPolicy` onto [`TransformerLayer`] via
//! `with_overlap_policy` because `forward`/`backward` already took an
//! `ExecMode` and the recompute policy was fixed at `new`. Adding a third
//! orthogonal knob (recompute prefetch) the same way would have meant a
//! fourth spelling. [`ExecPolicy`] carries all three, validates them
//! jointly at [`ExecPolicyBuilder::build`] (the place a `chunks: 0` typo is
//! a `Result`, not a mid-step panic), and flows **by value or reference**
//! through every call site via `impl Into<ExecPolicy>` — a bare
//! [`ExecMode`] still converts, so the paper-following call sites read
//! unchanged.
//!
//! ## Inheritance semantics
//!
//! `recompute` and `overlap` are optional: `None` means *inherit the
//! layer's stored default*. This keeps [`crate::gpt::Gpt`]'s per-layer
//! heterogeneous recompute policies (`init_with_policies`) expressible —
//! the trainer passes one `ExecPolicy` with `recompute: None` and each
//! layer resolves its own — while a bench that wants to force a uniform
//! policy sets the field explicitly.
//!
//! ```
//! use mt_model::{ExecMode, ExecPolicy, OverlapPolicy};
//! use mt_memory::Recompute;
//!
//! let policy = ExecPolicy::builder()
//!     .backend(ExecMode::Serial)
//!     .recompute(Recompute::Selective)
//!     .overlap(OverlapPolicy::overlapped_recompute(2).unwrap())
//!     .build()
//!     .unwrap();
//! assert!(matches!(policy.mode(), ExecMode::Serial));
//! assert!(policy.overlap().unwrap().recompute_overlapped());
//!
//! // A bare ExecMode still converts — old call sites read unchanged.
//! let inherit: ExecPolicy = ExecMode::Serial.into();
//! assert!(inherit.recompute().is_none(), "None = inherit the layer default");
//! ```

use crate::layer::ExecMode;
use crate::overlap::{OverlapPolicy, ZeroChunks};
use mt_memory::Recompute;

/// Rejected [`ExecPolicyBuilder`] input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// The overlap policy asked for zero chunks.
    ZeroChunks,
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::ZeroChunks => ZeroChunks.fmt(f),
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<ZeroChunks> for PolicyError {
    fn from(_: ZeroChunks) -> Self {
        PolicyError::ZeroChunks
    }
}

/// The unified execution policy a layer call runs under: execution mode,
/// optional recompute override, optional overlap override.
///
/// Construct with [`ExecPolicy::builder`], or convert a bare [`ExecMode`]
/// with `Into` (both overrides default to "inherit the layer's stored
/// policy"). The lifetime is the [`ExecMode`]'s borrow of its
/// communicator.
#[derive(Debug, Clone, Copy)]
pub struct ExecPolicy<'a> {
    mode: ExecMode<'a>,
    recompute: Option<Recompute>,
    overlap: Option<OverlapPolicy>,
}

impl<'a> ExecPolicy<'a> {
    /// Starts building a policy; `backend` defaults to [`ExecMode::Serial`].
    pub fn builder() -> ExecPolicyBuilder<'a> {
        ExecPolicyBuilder::default()
    }

    /// The execution mode (serial / TP / TP+SP).
    pub fn mode(&self) -> ExecMode<'a> {
        self.mode
    }

    /// The recompute override, or `None` to inherit the layer's policy.
    pub fn recompute(&self) -> Option<Recompute> {
        self.recompute
    }

    /// The overlap override, or `None` to inherit the layer's policy.
    pub fn overlap(&self) -> Option<OverlapPolicy> {
        self.overlap
    }
}

impl<'a> From<ExecMode<'a>> for ExecPolicy<'a> {
    fn from(mode: ExecMode<'a>) -> Self {
        ExecPolicy { mode, recompute: None, overlap: None }
    }
}

impl<'a> From<&ExecMode<'a>> for ExecPolicy<'a> {
    fn from(mode: &ExecMode<'a>) -> Self {
        ExecPolicy { mode: *mode, recompute: None, overlap: None }
    }
}

impl<'a> From<&ExecPolicy<'a>> for ExecPolicy<'a> {
    fn from(policy: &ExecPolicy<'a>) -> Self {
        *policy
    }
}

/// Builder for [`ExecPolicy`]; the single place the knob combination is
/// validated.
#[derive(Debug, Clone, Copy)]
pub struct ExecPolicyBuilder<'a> {
    mode: ExecMode<'a>,
    recompute: Option<Recompute>,
    overlap: Option<OverlapPolicy>,
}

impl Default for ExecPolicyBuilder<'_> {
    fn default() -> Self {
        ExecPolicyBuilder { mode: ExecMode::Serial, recompute: None, overlap: None }
    }
}

impl<'a> ExecPolicyBuilder<'a> {
    /// Sets the execution mode (serial / TP / TP+SP).
    pub fn backend(mut self, mode: ExecMode<'a>) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the layer's recompute policy for calls under this policy.
    pub fn recompute(mut self, recompute: Recompute) -> Self {
        self.recompute = Some(recompute);
        self
    }

    /// Overrides the layer's overlap policy for calls under this policy.
    pub fn overlap(mut self, overlap: OverlapPolicy) -> Self {
        self.overlap = Some(overlap);
        self
    }

    /// Validates and builds the policy.
    ///
    /// # Errors
    ///
    /// [`PolicyError::ZeroChunks`] if the overlap policy carries
    /// `chunks: 0` (possible when the variant is constructed literally
    /// rather than through [`OverlapPolicy::overlapped`]).
    pub fn build(self) -> Result<ExecPolicy<'a>, PolicyError> {
        if let Some(overlap) = &self.overlap {
            overlap.validate()?;
        }
        Ok(ExecPolicy { mode: self.mode, recompute: self.recompute, overlap: self.overlap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_chunk_counts() {
        let err = ExecPolicy::builder()
            .overlap(OverlapPolicy::Overlapped { chunks: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, PolicyError::ZeroChunks);
        let err = ExecPolicy::builder()
            .overlap(OverlapPolicy::OverlappedRecompute { chunks: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, PolicyError::ZeroChunks);
        let ok = ExecPolicy::builder()
            .overlap(OverlapPolicy::OverlappedRecompute { chunks: 1 })
            .recompute(Recompute::Full)
            .build()
            .unwrap();
        assert_eq!(ok.overlap(), Some(OverlapPolicy::OverlappedRecompute { chunks: 1 }));
        assert_eq!(ok.recompute(), Some(Recompute::Full));
    }

    #[test]
    fn mode_conversions_inherit_layer_policies() {
        let by_val: ExecPolicy = ExecMode::Serial.into();
        assert!(matches!(by_val.mode(), ExecMode::Serial));
        assert_eq!(by_val.recompute(), None);
        assert_eq!(by_val.overlap(), None);
        let mode = ExecMode::Serial;
        let by_ref: ExecPolicy = (&mode).into();
        assert!(matches!(by_ref.mode(), ExecMode::Serial));
        let again: ExecPolicy = (&by_ref).into();
        assert!(again.recompute().is_none());
    }
}
