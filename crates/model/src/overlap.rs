//! Communication-overlap policy for the TP+SP layer, plus the per-thread
//! ledger of how much collective time a step spent (and how much of it was
//! exposed on the critical path).
//!
//! The paper's sequence-parallel layer leaves the `g`/`ḡ` conjugate
//! collectives fully exposed: the QKV/MLP GEMM waits for the whole
//! all-gather. [`OverlapPolicy::Overlapped`] splits those collectives into
//! `C` chunk sub-rendezvous (`mt-collectives`) and feeds the row-parallel
//! consumer GEMMs through `mt-kernels`' dependency-aware driver, which
//! starts a row band as soon as its chunk lands. The overlapped schedule is
//! **bit-identical** to the exposed one — same work units, same ascending
//! reduction orders — so the policy is purely a performance knob, exactly
//! like the kernel backend.

use std::cell::Cell;

/// Whether the TP+SP `g`/`ḡ` regions run exposed or overlapped.
///
/// Only sequence-parallel execution is affected: the tensor-parallel
/// conjugates (`f`/`f̄`) are identity/all-reduce, which have no
/// row-decomposable consumer. Under `Overlapped { chunks }` every `g`/`ḡ`
/// collective of the layer is issued as `chunks` sub-rendezvous (so all
/// ranks agree on the chunking — it is part of the SPMD protocol), and the
/// four gather-feeds-row-parallel-GEMM sites additionally pipeline compute
/// into the gaps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverlapPolicy {
    /// Whole-tensor collectives; every GEMM waits for the full gather.
    #[default]
    Exposed,
    /// Chunked collectives pipelined with their consumer GEMMs.
    Overlapped {
        /// Number of sequence-dimension chunks `C ≥ 1` per collective.
        chunks: usize,
    },
}

impl OverlapPolicy {
    /// Short label for reports (`"exposed"` / `"overlapped"`).
    pub fn label(&self) -> &'static str {
        match self {
            OverlapPolicy::Exposed => "exposed",
            OverlapPolicy::Overlapped { .. } => "overlapped",
        }
    }

    /// The chunk count (1 for [`OverlapPolicy::Exposed`]).
    pub fn chunks(&self) -> usize {
        match self {
            OverlapPolicy::Exposed => 1,
            OverlapPolicy::Overlapped { chunks } => *chunks,
        }
    }
}

/// Collective time accumulated on this thread since the last
/// [`take_comm_timing`], in microseconds of the shared process clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommTiming {
    /// Total time spent inside blocking collectives (including the portion
    /// hidden under compute by the overlapped driver).
    pub comm_us: u64,
    /// The portion of `comm_us` during which no dependent compute ran —
    /// communication exposed on the critical path. Exposed collectives
    /// contribute their full duration; overlapped ones only what the
    /// pipeline failed to hide.
    pub exposed_us: u64,
}

thread_local! {
    static COMM_US: Cell<u64> = const { Cell::new(0) };
    static EXPOSED_US: Cell<u64> = const { Cell::new(0) };
}

/// Adds one collective's timing to this thread's ledger. Layer code calls
/// this; rank threads harvest with [`take_comm_timing`].
pub(crate) fn add_comm_time(comm_us: u64, exposed_us: u64) {
    COMM_US.with(|c| c.set(c.get() + comm_us));
    EXPOSED_US.with(|c| c.set(c.get() + exposed_us));
}

/// Runs a blocking (exposed) collective and books its wall time as both
/// total and exposed comm time.
///
/// The call is wrapped in a `comm_exposed` span carrying the **same**
/// `monotonic_us`-derived integers that go into the [`CommTiming`] ledger
/// as close-time args (`comm_us`, `exposed_us`), so `mt-profile` can
/// cross-check its attribution against the ledger with exact integer
/// equality rather than clock-tolerance comparisons.
pub(crate) fn timed_exposed<T>(f: impl FnOnce() -> T) -> T {
    let mut span = mt_trace::current().span("comm_exposed");
    let t0 = mt_trace::monotonic_us();
    let out = f();
    let dt = mt_trace::monotonic_us().saturating_sub(t0);
    add_comm_time(dt, dt);
    span.arg("comm_us", dt);
    span.arg("exposed_us", dt);
    drop(span);
    out
}

/// Returns and resets this thread's accumulated collective timing. Each
/// rank thread's layer calls accumulate into its own ledger, so a step
/// bench brackets the step with `take_comm_timing()` calls on the rank
/// thread.
pub fn take_comm_timing() -> CommTiming {
    CommTiming {
        comm_us: COMM_US.with(|c| c.replace(0)),
        exposed_us: EXPOSED_US.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_ledger_is_per_thread_and_resets_on_take() {
        assert_eq!(take_comm_timing(), CommTiming::default());
        add_comm_time(100, 40);
        add_comm_time(10, 10);
        let t = take_comm_timing();
        assert_eq!(t, CommTiming { comm_us: 110, exposed_us: 50 });
        assert_eq!(take_comm_timing(), CommTiming::default());
        let other = std::thread::spawn(take_comm_timing).join().unwrap();
        assert_eq!(other, CommTiming::default(), "ledger is thread-local");
    }

    #[test]
    fn policy_labels_and_chunks() {
        assert_eq!(OverlapPolicy::default(), OverlapPolicy::Exposed);
        assert_eq!(OverlapPolicy::Exposed.label(), "exposed");
        assert_eq!(OverlapPolicy::Overlapped { chunks: 4 }.label(), "overlapped");
        assert_eq!(OverlapPolicy::Overlapped { chunks: 4 }.chunks(), 4);
        assert_eq!(OverlapPolicy::Exposed.chunks(), 1);
    }
}
