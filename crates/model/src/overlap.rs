//! Overlap policy for the TP+SP layer, plus the per-thread ledger of how
//! much collective and recomputation time a step spent (and how much of it
//! was exposed on the critical path).
//!
//! The paper's sequence-parallel layer leaves the `g`/`ḡ` conjugate
//! collectives fully exposed, and its recomputation policies leave the
//! replay serialized into the backward pass. [`OverlapPolicy::Overlapped`]
//! splits the collectives into `C` chunk sub-rendezvous (`mt-collectives`)
//! and feeds the row-parallel consumer GEMMs through `mt-kernels`'
//! dependency-aware driver; [`OverlapPolicy::OverlappedRecompute`]
//! additionally issues the recomputation of a checkpointed region on a
//! helper thread while backward GEMMs that do not depend on it run
//! (`mt_kernels::recompute_prefetch`). All overlapped schedules are
//! **bit-identical** to the exposed one — same work units, same ascending
//! reduction orders — so the policy is purely a performance knob, exactly
//! like the kernel backend.

use std::cell::Cell;

/// Error returned by validating policy constructors. Carried by
/// [`crate::policy::PolicyError`] when an [`crate::ExecPolicy`] builder
/// rejects its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroChunks;

impl std::fmt::Display for ZeroChunks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "overlap policy needs at least one chunk")
    }
}

impl std::error::Error for ZeroChunks {}

/// Whether the TP+SP `g`/`ḡ` regions run exposed or overlapped, and whether
/// recomputation is prefetched under backward compute.
///
/// Only sequence-parallel execution chunks collectives: the tensor-parallel
/// conjugates (`f`/`f̄`) are identity/all-reduce, which have no
/// row-decomposable consumer. Under `Overlapped { chunks }` every `g`/`ḡ`
/// collective of the layer is issued as `chunks` sub-rendezvous (so all
/// ranks agree on the chunking — it is part of the SPMD protocol), and the
/// four gather-feeds-row-parallel-GEMM sites additionally pipeline compute
/// into the gaps. `OverlappedRecompute { chunks }` does all of that **and**
/// prefetches collective-free recomputation (the selective attention replay
/// in any mode; the full-layer replay in serial mode) on a helper thread
/// while independent backward GEMMs run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverlapPolicy {
    /// Whole-tensor collectives; every GEMM waits for the full gather, and
    /// recomputation runs serialized into the backward pass.
    #[default]
    Exposed,
    /// Chunked collectives pipelined with their consumer GEMMs.
    Overlapped {
        /// Number of sequence-dimension chunks `C ≥ 1` per collective.
        chunks: usize,
    },
    /// [`OverlapPolicy::Overlapped`] plus recomputation prefetch: the
    /// checkpointed region's replay is issued while backward GEMMs that do
    /// not depend on it run. `chunks: 1` keeps whole-tensor collectives and
    /// overlaps only the recompute.
    OverlappedRecompute {
        /// Number of sequence-dimension chunks `C ≥ 1` per collective.
        chunks: usize,
    },
}

impl OverlapPolicy {
    /// Validating constructor for [`OverlapPolicy::Overlapped`]: rejects
    /// `chunks == 0` instead of panicking at the first collective.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroChunks`] when `chunks == 0`.
    pub fn overlapped(chunks: usize) -> Result<Self, ZeroChunks> {
        if chunks == 0 {
            return Err(ZeroChunks);
        }
        Ok(OverlapPolicy::Overlapped { chunks })
    }

    /// Validating constructor for [`OverlapPolicy::OverlappedRecompute`].
    ///
    /// # Errors
    ///
    /// Returns [`ZeroChunks`] when `chunks == 0`.
    pub fn overlapped_recompute(chunks: usize) -> Result<Self, ZeroChunks> {
        if chunks == 0 {
            return Err(ZeroChunks);
        }
        Ok(OverlapPolicy::OverlappedRecompute { chunks })
    }

    /// Short label for reports (`"exposed"` / `"overlapped"` /
    /// `"overlapped_recompute"`).
    pub fn label(&self) -> &'static str {
        match self {
            OverlapPolicy::Exposed => "exposed",
            OverlapPolicy::Overlapped { .. } => "overlapped",
            OverlapPolicy::OverlappedRecompute { .. } => "overlapped_recompute",
        }
    }

    /// The chunk count (1 for [`OverlapPolicy::Exposed`]).
    pub fn chunks(&self) -> usize {
        match self {
            OverlapPolicy::Exposed => 1,
            OverlapPolicy::Overlapped { chunks }
            | OverlapPolicy::OverlappedRecompute { chunks } => *chunks,
        }
    }

    /// Whether collectives are chunked and pipelined.
    pub fn comm_overlapped(&self) -> bool {
        !matches!(self, OverlapPolicy::Exposed)
    }

    /// Whether recomputation is prefetched under backward compute.
    pub fn recompute_overlapped(&self) -> bool {
        matches!(self, OverlapPolicy::OverlappedRecompute { .. })
    }

    /// Whether this policy is structurally valid (`chunks ≥ 1`).
    pub(crate) fn validate(&self) -> Result<(), ZeroChunks> {
        if self.chunks() == 0 {
            return Err(ZeroChunks);
        }
        Ok(())
    }
}

/// The collective half of a [`StepTiming`] ledger, in microseconds of the
/// shared process clock. Obtained by projection via [`StepTiming::comm`];
/// kept as its own type for callers that only care about communication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommTiming {
    /// Total time spent inside blocking collectives (including the portion
    /// hidden under compute by the overlapped driver).
    pub comm_us: u64,
    /// The portion of `comm_us` during which no dependent compute ran —
    /// communication exposed on the critical path. Exposed collectives
    /// contribute their full duration; overlapped ones only what the
    /// pipeline failed to hide.
    pub exposed_us: u64,
}

/// Per-step timing ledger: collective and recomputation time, each split
/// into its total and the portion exposed on the critical path.
///
/// Returned from
/// [`Trainer::step_with_ledger`](crate::trainer::Trainer::step_with_ledger),
/// which drains the rank thread's accumulators at step
/// entry and exit — so timings cannot leak across steps on reused rank
/// threads the way an unbracketed thread-local harvest could. Layer-level
/// harnesses that bypass the trainer bracket their work with
/// [`take_step_timing`] instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepTiming {
    /// Total time spent inside blocking collectives (including the portion
    /// hidden under compute by the overlapped driver).
    pub comm_us: u64,
    /// The portion of `comm_us` no dependent compute covered.
    pub exposed_us: u64,
    /// Total recomputation time: the checkpointed-region replays the
    /// backward pass performed, inline or prefetched.
    pub recompute_us: u64,
    /// The portion of `recompute_us` the backward pipeline failed to hide:
    /// inline replays contribute their full duration, prefetched ones only
    /// the join wait after the covering backward work finished.
    pub exposed_recompute_us: u64,
}

impl StepTiming {
    /// The collective half of the ledger, for callers of the deprecated
    /// comm-only spelling.
    pub fn comm(&self) -> CommTiming {
        CommTiming { comm_us: self.comm_us, exposed_us: self.exposed_us }
    }
}

thread_local! {
    static COMM_US: Cell<u64> = const { Cell::new(0) };
    static EXPOSED_US: Cell<u64> = const { Cell::new(0) };
    static RECOMPUTE_US: Cell<u64> = const { Cell::new(0) };
    static EXPOSED_RECOMPUTE_US: Cell<u64> = const { Cell::new(0) };
}

/// Adds one collective's timing to this thread's ledger. Layer code calls
/// this; rank threads harvest with [`take_step_timing`].
pub(crate) fn add_comm_time(comm_us: u64, exposed_us: u64) {
    COMM_US.with(|c| c.set(c.get() + comm_us));
    EXPOSED_US.with(|c| c.set(c.get() + exposed_us));
}

/// Adds one recomputation's timing to this thread's ledger. Inline replays
/// book `(dt, dt)`; the prefetch driver books its measured
/// `(recompute_us, exposed_us)` pair.
pub(crate) fn add_recompute_time(recompute_us: u64, exposed_us: u64) {
    RECOMPUTE_US.with(|c| c.set(c.get() + recompute_us));
    EXPOSED_RECOMPUTE_US.with(|c| c.set(c.get() + exposed_us));
}

/// Runs a blocking (exposed) collective and books its wall time as both
/// total and exposed comm time.
///
/// The call is wrapped in a `comm_exposed` span carrying the **same**
/// `monotonic_us`-derived integers that go into the [`StepTiming`] ledger
/// as close-time args (`comm_us`, `exposed_us`), so `mt-profile` can
/// cross-check its attribution against the ledger with exact integer
/// equality rather than clock-tolerance comparisons.
pub(crate) fn timed_exposed<T>(f: impl FnOnce() -> T) -> T {
    let mut span = mt_trace::current().span("comm_exposed");
    let t0 = mt_trace::monotonic_us();
    let out = f();
    let dt = mt_trace::monotonic_us().saturating_sub(t0);
    add_comm_time(dt, dt);
    span.arg("comm_us", dt);
    span.arg("exposed_us", dt);
    drop(span);
    out
}

/// Runs an inline (exposed) recomputation and books its wall time as both
/// total and exposed recompute time — the recompute analogue of
/// [`timed_exposed`]. `name` is the span name (`recompute_attention` /
/// `recompute_layer`); the close-time args mirror the booked integers.
pub(crate) fn timed_recompute<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let mut span = mt_trace::current().span(name);
    let t0 = mt_trace::monotonic_us();
    let out = f();
    let dt = mt_trace::monotonic_us().saturating_sub(t0);
    add_recompute_time(dt, dt);
    span.arg("recompute_us", dt);
    span.arg("exposed_us", dt);
    drop(span);
    out
}

/// Returns and resets this thread's accumulated step timing. Each rank
/// thread's layer calls accumulate into its own ledger, so a layer-level
/// bench brackets its work with `take_step_timing()` calls on the rank
/// thread; trainer users get the same ledger returned from
/// [`Trainer::step_with_ledger`](crate::trainer::Trainer::step_with_ledger).
pub fn take_step_timing() -> StepTiming {
    StepTiming {
        comm_us: COMM_US.with(|c| c.replace(0)),
        exposed_us: EXPOSED_US.with(|c| c.replace(0)),
        recompute_us: RECOMPUTE_US.with(|c| c.replace(0)),
        exposed_recompute_us: EXPOSED_RECOMPUTE_US.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_ledger_is_per_thread_and_resets_on_take() {
        assert_eq!(take_step_timing(), StepTiming::default());
        add_comm_time(100, 40);
        add_comm_time(10, 10);
        add_recompute_time(70, 5);
        let t = take_step_timing();
        assert_eq!(
            t,
            StepTiming { comm_us: 110, exposed_us: 50, recompute_us: 70, exposed_recompute_us: 5 }
        );
        assert_eq!(take_step_timing(), StepTiming::default());
        let other = std::thread::spawn(take_step_timing).join().unwrap();
        assert_eq!(other, StepTiming::default(), "ledger is thread-local");
    }

    #[test]
    fn comm_view_projects_the_collective_half() {
        add_comm_time(9, 3);
        add_recompute_time(4, 4);
        let t = take_step_timing();
        assert_eq!(t.comm(), CommTiming { comm_us: 9, exposed_us: 3 });
    }

    #[test]
    fn policy_labels_and_chunks() {
        assert_eq!(OverlapPolicy::default(), OverlapPolicy::Exposed);
        assert_eq!(OverlapPolicy::Exposed.label(), "exposed");
        assert_eq!(OverlapPolicy::Overlapped { chunks: 4 }.label(), "overlapped");
        assert_eq!(
            OverlapPolicy::OverlappedRecompute { chunks: 2 }.label(),
            "overlapped_recompute"
        );
        assert_eq!(OverlapPolicy::Overlapped { chunks: 4 }.chunks(), 4);
        assert_eq!(OverlapPolicy::OverlappedRecompute { chunks: 2 }.chunks(), 2);
        assert_eq!(OverlapPolicy::Exposed.chunks(), 1);
        assert!(!OverlapPolicy::Exposed.recompute_overlapped());
        assert!(!OverlapPolicy::Overlapped { chunks: 2 }.recompute_overlapped());
        assert!(OverlapPolicy::OverlappedRecompute { chunks: 2 }.recompute_overlapped());
        assert!(OverlapPolicy::OverlappedRecompute { chunks: 1 }.comm_overlapped());
    }

    #[test]
    fn validating_constructors_reject_zero_chunks() {
        assert_eq!(OverlapPolicy::overlapped(0), Err(ZeroChunks));
        assert_eq!(OverlapPolicy::overlapped_recompute(0), Err(ZeroChunks));
        assert_eq!(OverlapPolicy::overlapped(3), Ok(OverlapPolicy::Overlapped { chunks: 3 }));
        assert_eq!(
            OverlapPolicy::overlapped_recompute(1),
            Ok(OverlapPolicy::OverlappedRecompute { chunks: 1 })
        );
    }
}
