//! Cross-rank equivalence: the tensor-parallel and tensor+sequence-parallel
//! executions must reproduce the serial reference — outputs, input
//! gradients, and weight gradients — under every recomputation policy, and
//! their activation ledgers must equal the paper's Table 2 closed forms
//! exactly.

use mt_collectives::{CollectiveKind, CommStats, World};
use mt_memory::Recompute;
use mt_model::weights::LayerWeights;
use mt_model::{ActivationLedger, ExecMode, TransformerConfig, TransformerLayer};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 2,
        layers: 1,
        vocab: 64,
        dropout_p: 0.0,
        causal: true,
    }
}

struct RankResult {
    y: Tensor,
    dx: Tensor,
    grads: LayerWeights,
    ledger: ActivationLedger,
    stats: CommStats,
}

/// Runs one layer fwd+bwd on `t` ranks and returns per-rank results.
fn run_parallel(
    c: TransformerConfig,
    full: &LayerWeights,
    x: &Tensor,
    dy: &Tensor,
    t: usize,
    sp: bool,
    policy: Recompute,
) -> Vec<RankResult> {
    World::run(t, |comm| {
        let rank = comm.rank();
        let layer = TransformerLayer::new(c, full.shard(t, rank), 0, policy, CounterRng::new(404));
        let mode = if sp {
            ExecMode::TensorSequenceParallel(&comm)
        } else {
            ExecMode::TensorParallel(&comm)
        };
        let (x_local, dy_local) = if sp {
            (x.chunk_axis0(t).unwrap()[rank].clone(), dy.chunk_axis0(t).unwrap()[rank].clone())
        } else {
            (x.clone(), dy.clone())
        };
        let mut ledger = ActivationLedger::new();
        let (y, st) = layer.forward(&x_local, 0, mode, &mut ledger);
        let (dx, grads) = layer.backward(&dy_local, st, mode);
        RankResult { y, dx, grads, ledger, stats: comm.stats() }
    })
}

fn run_serial(
    c: TransformerConfig,
    full: &LayerWeights,
    x: &Tensor,
    dy: &Tensor,
    policy: Recompute,
) -> (Tensor, Tensor, LayerWeights, ActivationLedger) {
    let layer = TransformerLayer::new(c, full.clone(), 0, policy, CounterRng::new(404));
    let mut ledger = ActivationLedger::new();
    let (y, st) = layer.forward(x, 0, ExecMode::Serial, &mut ledger);
    let (dx, grads) = layer.backward(dy, st, ExecMode::Serial);
    (y, dx, grads, ledger)
}

fn fixtures(c: &TransformerConfig, seed: u64) -> (LayerWeights, Tensor, Tensor) {
    let mut rng = SplitMix64::new(seed);
    let w = LayerWeights::init(c, &mut rng);
    let x = Tensor::rand_uniform(&[c.tokens(), c.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[c.tokens(), c.hidden], -1.0, 1.0, &mut rng);
    (w, x, dy)
}

/// Reassembles sharded outputs/gradients and compares against serial.
fn assert_matches_serial(
    c: TransformerConfig,
    results: &[RankResult],
    sp: bool,
    serial: &(Tensor, Tensor, LayerWeights, ActivationLedger),
    tol: f32,
) {
    let t = results.len();
    let (y_ser, dx_ser, grads_ser, _) = serial;
    let (y_par, dx_par) = if sp {
        (
            Tensor::concat_axis0(&results.iter().map(|r| r.y.clone()).collect::<Vec<_>>()),
            Tensor::concat_axis0(&results.iter().map(|r| r.dx.clone()).collect::<Vec<_>>()),
        )
    } else {
        for r in &results[1..] {
            assert_eq!(r.y, results[0].y, "replicated outputs differ across ranks");
        }
        (results[0].y.clone(), results[0].dx.clone())
    };
    assert!(
        y_par.allclose(y_ser, tol, tol),
        "t={t} sp={sp}: outputs diverge by {}",
        y_par.max_abs_diff(y_ser)
    );
    assert!(
        dx_par.allclose(dx_ser, tol, tol),
        "t={t} sp={sp}: input grads diverge by {}",
        dx_par.max_abs_diff(dx_ser)
    );
    let grads_full =
        LayerWeights::unshard(&results.iter().map(|r| r.grads.clone()).collect::<Vec<_>>());
    let rel = grads_full.max_rel_diff(grads_ser);
    assert!(rel < tol, "t={t} sp={sp}: weight grads rel diff {rel}");
    let _ = c;
}

#[test]
fn tensor_parallel_matches_serial() {
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 1);
    let serial = run_serial(c, &w, &x, &dy, Recompute::None);
    for t in [1, 2, 4] {
        let results = run_parallel(c, &w, &x, &dy, t, false, Recompute::None);
        assert_matches_serial(c, &results, false, &serial, 1e-3);
    }
}

#[test]
fn tensor_sequence_parallel_matches_serial() {
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 2);
    let serial = run_serial(c, &w, &x, &dy, Recompute::None);
    for t in [2, 4] {
        let results = run_parallel(c, &w, &x, &dy, t, true, Recompute::None);
        assert_matches_serial(c, &results, true, &serial, 1e-3);
    }
}

#[test]
fn parallel_equivalence_holds_with_dropout() {
    // Global-addressed counter-RNG masks make the equivalence exact even
    // with active dropout.
    let c = TransformerConfig { dropout_p: 0.15, ..cfg() };
    let (w, x, dy) = fixtures(&c, 3);
    let serial = run_serial(c, &w, &x, &dy, Recompute::None);
    for sp in [false, true] {
        let results = run_parallel(c, &w, &x, &dy, 4, sp, Recompute::None);
        assert_matches_serial(c, &results, sp, &serial, 2e-3);
    }
}

#[test]
fn recompute_policies_match_across_parallel_modes() {
    let c = TransformerConfig { dropout_p: 0.1, ..cfg() };
    let (w, x, dy) = fixtures(&c, 4);
    for sp in [false, true] {
        let baseline = run_parallel(c, &w, &x, &dy, 2, sp, Recompute::None);
        for policy in [Recompute::Selective, Recompute::Full] {
            let other = run_parallel(c, &w, &x, &dy, 2, sp, policy);
            for (a, b) in baseline.iter().zip(&other) {
                // Recomputation must be *bit*-identical, not just close.
                assert_eq!(a.y, b.y, "sp={sp} policy={policy:?} outputs");
                assert_eq!(a.dx, b.dx, "sp={sp} policy={policy:?} input grads");
                assert_eq!(a.grads, b.grads, "sp={sp} policy={policy:?} weight grads");
            }
        }
    }
}

#[test]
fn ledger_matches_equation_2_tensor_parallel() {
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 5);
    for t in [2u64, 4] {
        let results = run_parallel(c, &w, &x, &dy, t as usize, false, Recompute::None);
        let sbh = c.sbh();
        let as2b = c.as2b();
        let expect = 10 * sbh + 24 * sbh / t + 5 * as2b / t;
        for r in &results {
            assert_eq!(r.ledger.paper_bytes(), expect, "Eq. 2 at t={t}");
        }
    }
}

#[test]
fn ledger_matches_equation_4_sequence_parallel() {
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 6);
    for t in [2u64, 4] {
        let results = run_parallel(c, &w, &x, &dy, t as usize, true, Recompute::None);
        let expect = (34 * c.sbh() + 5 * c.as2b()) / t;
        for r in &results {
            assert_eq!(r.ledger.paper_bytes(), expect, "Eq. 4 at t={t}");
        }
    }
}

#[test]
fn ledger_matches_table2_selective_rows() {
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 7);
    let t = 4u64;
    let tp = run_parallel(c, &w, &x, &dy, 4, false, Recompute::Selective);
    assert_eq!(tp[0].ledger.paper_bytes(), 10 * c.sbh() + 24 * c.sbh() / t);
    let tpsp = run_parallel(c, &w, &x, &dy, 4, true, Recompute::Selective);
    assert_eq!(tpsp[0].ledger.paper_bytes(), 34 * c.sbh() / t);
}

#[test]
fn ledger_matches_table2_full_recompute() {
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 8);
    let tp = run_parallel(c, &w, &x, &dy, 4, false, Recompute::Full);
    assert_eq!(tp[0].ledger.paper_bytes(), 2 * c.sbh());
    // The sharded-checkpoint variant the paper mentions (2sbh/t).
    let tpsp = run_parallel(c, &w, &x, &dy, 4, true, Recompute::Full);
    assert_eq!(tpsp[0].ledger.paper_bytes(), 2 * c.sbh() / 4);
}

#[test]
fn forward_wire_bytes_identical_between_tp_and_tpsp() {
    // Section 4.2.2's headline claim, measured on the real runtime: the two
    // all-gathers + two reduce-scatters of TP+SP move exactly the wire bytes
    // of TP's two all-reduces in the forward pass.
    let c = cfg();
    let (w, x, _) = fixtures(&c, 9);
    let t = 4;
    let measure = |sp: bool| -> u64 {
        let stats = World::run(t, |comm| {
            let layer = TransformerLayer::new(
                c,
                w.shard(t, comm.rank()),
                0,
                Recompute::None,
                CounterRng::new(404),
            );
            let mode = if sp {
                ExecMode::TensorSequenceParallel(&comm)
            } else {
                ExecMode::TensorParallel(&comm)
            };
            let x_local =
                if sp { x.chunk_axis0(t).unwrap()[comm.rank()].clone() } else { x.clone() };
            let mut ledger = ActivationLedger::new();
            let _ = layer.forward(&x_local, 0, mode, &mut ledger);
            comm.stats()
        });
        stats[0].total_wire_bytes()
    };
    let tp = measure(false);
    let tpsp = measure(true);
    assert_eq!(tp, tpsp, "forward wire bytes must be identical");
    assert!(tp > 0);
}

#[test]
fn collective_call_pattern_matches_figures_4_and_5() {
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 10);
    // Figure 4: tensor parallelism = 2 all-reduces forward (f̄) + 2 backward
    // (f) per layer.
    let tp = run_parallel(c, &w, &x, &dy, 4, false, Recompute::None);
    let s = &tp[0].stats;
    assert_eq!(s.kind(CollectiveKind::AllReduce).calls, 4);
    assert_eq!(s.kind(CollectiveKind::AllGather).calls, 0);
    assert_eq!(s.kind(CollectiveKind::ReduceScatter).calls, 0);

    // Figure 5: TP+SP = (2 AG + 2 RS) forward + (2 AG + 2 RS) backward,
    // plus the 2 extra backward all-gathers for the unsaved Y tensors
    // (overlapped in the paper), plus 6 small gradient-sync all-reduces for
    // the replicated parameters.
    let tpsp = run_parallel(c, &w, &x, &dy, 4, true, Recompute::None);
    let s = &tpsp[0].stats;
    assert_eq!(s.kind(CollectiveKind::AllGather).calls, 2 + 2 + 2);
    assert_eq!(s.kind(CollectiveKind::ReduceScatter).calls, 2 + 2);
    assert_eq!(s.kind(CollectiveKind::AllReduce).calls, 6);
}

#[test]
fn full_recompute_doubles_forward_collectives() {
    // The replayed forward pass re-issues f̄/ḡ — visible in the ledger as
    // extra collective calls, the communication analogue of the 30-40%
    // compute overhead.
    let c = cfg();
    let (w, x, dy) = fixtures(&c, 11);
    let none = run_parallel(c, &w, &x, &dy, 2, false, Recompute::None);
    let full = run_parallel(c, &w, &x, &dy, 2, false, Recompute::Full);
    assert_eq!(none[0].stats.kind(CollectiveKind::AllReduce).calls, 4);
    assert_eq!(full[0].stats.kind(CollectiveKind::AllReduce).calls, 6);
}
