//! Pipeline-parallel execution equivalence: running the real 1F1B schedule
//! over thread-rank stages (optionally combined with tensor and sequence
//! parallelism) must reproduce the serial model's loss and gradients, obey
//! the paper's in-flight microbatch bound, and train identically under every
//! recomputation policy.

use mt_collectives::run_grid;
use mt_memory::Recompute;
use mt_model::gpt::{Gpt, GptGrads};
use mt_model::optim::Adam;
use mt_model::pipeline_exec::{run_1f1b_iteration, StageModel};
use mt_model::weights::LayerWeights;
use mt_model::{ActivationLedger, ExecMode, TransformerConfig};
use mt_tensor::rng::SplitMix64;
use mt_tensor::Tensor;

const SEED: u64 = 77;

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 1,
        layers: 4,
        vocab: 32,
        dropout_p: 0.1,
        causal: true,
    }
}

fn micro_data(c: &TransformerConfig, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = SplitMix64::new(500);
    (0..n)
        .map(|_| {
            let toks = (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
            let tgts = (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
            (toks, tgts)
        })
        .collect()
}

/// Serial reference: accumulate gradients over the microbatches exactly as
/// the pipeline does, and average the loss.
fn serial_iteration(gpt: &Gpt, data: &[(Vec<usize>, Vec<usize>)], step: u64) -> (f32, GptGrads) {
    let n = data.len();
    let mut total: Option<GptGrads> = None;
    let mut loss_sum = 0.0_f64;
    for (m, (tokens, targets)) in data.iter().enumerate() {
        let mut ledger = ActivationLedger::new();
        let micro_id = step * n as u64 + m as u64;
        let (loss, grads) =
            gpt.loss_and_grads(tokens, targets, micro_id, ExecMode::Serial, &mut ledger);
        loss_sum += loss as f64;
        match &mut total {
            None => total = Some(grads),
            Some(t) => t.accumulate(&grads),
        }
    }
    ((loss_sum / n as f64) as f32, total.expect("at least one microbatch"))
}

struct PipeResult {
    stage: usize,
    tp_rank: usize,
    loss: f32,
    grads: mt_model::pipeline_exec::StageGrads,
    peak: usize,
}

fn pipeline_iteration(
    gpt: &Gpt,
    tp: usize,
    pp: usize,
    sp: bool,
    policy: Recompute,
    data: &[(Vec<usize>, Vec<usize>)],
    step: u64,
) -> Vec<PipeResult> {
    run_grid(tp, pp, |g| {
        let model = StageModel::from_gpt(gpt, pp, g.stage, tp, g.tp_rank, policy);
        let out = run_1f1b_iteration(&model, &g, sp, data, step);
        PipeResult {
            stage: g.stage,
            tp_rank: g.tp_rank,
            loss: out.mean_loss,
            grads: out.grads,
            peak: out.peak_live_states,
        }
    })
}

fn close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
    let scale = b.max_abs().max(1e-6);
    let diff = a.max_abs_diff(b) / scale;
    assert!(diff < tol, "{what}: relative diff {diff}");
}

/// Reassembles per-stage/per-rank gradients and compares with serial.
fn assert_grads_match(
    c: &TransformerConfig,
    results: &[PipeResult],
    _tp: usize,
    pp: usize,
    serial: &GptGrads,
    tol: f32,
) {
    let layers_per_stage = c.layers / pp;
    for stage in 0..pp {
        // Gather this stage's tensor-parallel shards, ordered by tp_rank.
        let mut shards: Vec<&PipeResult> = results.iter().filter(|r| r.stage == stage).collect();
        shards.sort_by_key(|r| r.tp_rank);
        for local in 0..layers_per_stage {
            let global = stage * layers_per_stage + local;
            let parts: Vec<LayerWeights> =
                shards.iter().map(|r| r.grads.layers[local].clone()).collect();
            let full = LayerWeights::unshard(&parts);
            let rel = full.max_rel_diff(&serial.layers[global]);
            assert!(rel < tol, "layer {global} grads rel diff {rel}");
        }
        if stage == 0 {
            let (d_table, d_pos) = shards[0].grads.embedding.as_ref().expect("stage 0");
            close(d_table, &serial.table, tol, "embedding table grad");
            close(d_pos, &serial.positions, tol, "positions grad");
        }
        if stage == pp - 1 {
            let (d_fg, d_fb, d_table_head) = shards[0].grads.head.as_ref().expect("last stage");
            close(d_fg, &serial.final_ln_gamma, tol, "final ln gamma grad");
            close(d_fb, &serial.final_ln_beta, tol, "final ln beta grad");
            // After the tied-embedding exchange, the head copy holds the
            // combined gradient too.
            close(d_table_head, &serial.table, tol, "tied head table grad");
        }
    }
}

#[test]
fn pipeline_matches_serial_pp2() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = micro_data(&c, 4);
    let (loss_s, grads_s) = serial_iteration(&gpt, &data, 0);
    let results = pipeline_iteration(&gpt, 1, 2, false, Recompute::None, &data, 0);
    for r in &results {
        assert!((r.loss - loss_s).abs() < 1e-5, "loss {} vs serial {loss_s}", r.loss);
    }
    assert_grads_match(&c, &results, 1, 2, &grads_s, 1e-3);
}

#[test]
fn pipeline_matches_serial_pp4() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::Selective, SEED);
    let data = micro_data(&c, 6);
    let (loss_s, grads_s) = serial_iteration(&gpt, &data, 0);
    let results = pipeline_iteration(&gpt, 1, 4, false, Recompute::Selective, &data, 0);
    for r in &results {
        assert!((r.loss - loss_s).abs() < 1e-5);
    }
    assert_grads_match(&c, &results, 1, 4, &grads_s, 1e-3);
}

#[test]
fn pipeline_with_tensor_parallelism_matches_serial() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = micro_data(&c, 4);
    let (loss_s, grads_s) = serial_iteration(&gpt, &data, 0);
    let results = pipeline_iteration(&gpt, 2, 2, false, Recompute::None, &data, 0);
    for r in &results {
        assert!((r.loss - loss_s).abs() < 1e-4);
    }
    assert_grads_match(&c, &results, 2, 2, &grads_s, 2e-3);
}

#[test]
fn pipeline_with_sequence_parallelism_matches_serial() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::Selective, SEED);
    let data = micro_data(&c, 4);
    let (loss_s, grads_s) = serial_iteration(&gpt, &data, 0);
    let results = pipeline_iteration(&gpt, 2, 2, true, Recompute::Selective, &data, 0);
    for r in &results {
        assert!((r.loss - loss_s).abs() < 1e-4);
    }
    assert_grads_match(&c, &results, 2, 2, &grads_s, 2e-3);
}

#[test]
fn recompute_policies_are_bit_identical_in_the_pipeline() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = micro_data(&c, 4);
    let base = pipeline_iteration(&gpt, 2, 2, true, Recompute::None, &data, 0);
    for policy in [Recompute::Selective, Recompute::Full] {
        let other = pipeline_iteration(&gpt, 2, 2, true, policy, &data, 0);
        for (a, b) in base.iter().zip(&other) {
            assert_eq!(a.loss, b.loss, "policy {policy:?}");
            assert_eq!(a.grads.layers, b.grads.layers, "policy {policy:?}");
        }
    }
}

#[test]
fn pipeline_handles_fewer_microbatches_than_stages() {
    // n < p: every stage's in-flight count caps at n and the result still
    // matches serial (the deep-pipeline warm-up edge case).
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = micro_data(&c, 2);
    let (loss_s, grads_s) = serial_iteration(&gpt, &data, 0);
    let results = pipeline_iteration(&gpt, 1, 4, false, Recompute::None, &data, 0);
    for r in &results {
        assert!((r.loss - loss_s).abs() < 1e-5);
        assert_eq!(r.peak, (4 - r.stage).min(2), "stage {} peak", r.stage);
    }
    assert_grads_match(&c, &results, 1, 4, &grads_s, 1e-3);
}

#[test]
fn peak_in_flight_matches_appendix_b() {
    // The executed schedule itself exhibits min(p − stage, n) live
    // microbatch states — the assumption behind Equation 5 and Figure 9.
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    for (pp, n) in [(2usize, 4usize), (4, 6), (4, 2)] {
        let data = micro_data(&c, n);
        let results = pipeline_iteration(&gpt, 1, pp, false, Recompute::None, &data, 0);
        for r in &results {
            assert_eq!(r.peak, (pp - r.stage).min(n), "pp={pp} n={n} stage={}", r.stage);
        }
    }
}

#[test]
fn multi_step_pipeline_training_follows_serial_curve() {
    let c = cfg();
    let data = micro_data(&c, 4);
    const STEPS: usize = 4;

    // Serial trajectory.
    let mut serial_gpt = Gpt::init(c, Recompute::None, SEED);
    let mut serial_adam = Adam::new(1e-3);
    let mut serial_losses = Vec::new();
    for step in 0..STEPS {
        let (loss, grads) = serial_iteration(&serial_gpt, &data, step as u64);
        serial_adam.update(serial_gpt.param_tensors_mut(), &grads.tensors());
        serial_losses.push(loss);
    }

    // Pipeline trajectory: each stage keeps its own Adam over its params.
    let template = Gpt::init(c, Recompute::Selective, SEED);
    let losses = run_grid(1, 2, |g| {
        let mut model =
            StageModel::from_gpt(&template, 2, g.stage, 1, g.tp_rank, Recompute::Selective);
        let mut adam = Adam::new(1e-3);
        let mut losses = Vec::new();
        for step in 0..STEPS {
            let out = run_1f1b_iteration(&model, &g, false, &data, step as u64);
            losses.push(out.mean_loss);
            // Assemble (params, grads) pairs for this stage.
            let mut grad_list: Vec<&Tensor> = Vec::new();
            let mut param_list: Vec<&mut Tensor> = Vec::new();
            if let (Some(e), Some((gt, gp))) =
                (model.embedding.as_mut(), out.grads.embedding.as_ref())
            {
                param_list.push(&mut e.table);
                grad_list.push(gt);
                param_list.push(&mut e.positions);
                grad_list.push(gp);
            }
            for (layer, lg) in model.layers.iter_mut().zip(&out.grads.layers) {
                param_list.extend(layer.weights_mut().tensors_mut());
                grad_list.extend([
                    &lg.ln1_gamma,
                    &lg.ln1_beta,
                    &lg.w_qkv,
                    &lg.b_qkv,
                    &lg.w_o,
                    &lg.b_o,
                    &lg.ln2_gamma,
                    &lg.ln2_beta,
                    &lg.w1,
                    &lg.b1,
                    &lg.w2,
                    &lg.b2,
                ]);
            }
            if let (Some(h), Some((gfg, gfb, gtab))) =
                (model.head.as_mut(), out.grads.head.as_ref())
            {
                param_list.push(&mut h.final_ln_gamma);
                grad_list.push(gfg);
                param_list.push(&mut h.final_ln_beta);
                grad_list.push(gfb);
                param_list.push(&mut h.table);
                grad_list.push(gtab);
            }
            adam.update(param_list, &grad_list);
        }
        losses
    });

    for rank_losses in &losses {
        for (step, (a, b)) in serial_losses.iter().zip(rank_losses).enumerate() {
            assert!((a - b).abs() < 1e-3, "step {step}: serial {a} vs pipeline {b}");
        }
    }
}
