//! Data-parallel execution equivalence (Section 6.3): replicas training on
//! disjoint microbatches plus a gradient all-reduce must match the serial
//! model processing all the data — alone and composed with tensor,
//! sequence, and pipeline parallelism.

use mt_collectives::{run_grid3, World};
use mt_memory::Recompute;
use mt_model::data_parallel::{all_reduce_gpt_grads, all_reduce_stage_grads};
use mt_model::gpt::{Gpt, GptGrads};
use mt_model::pipeline_exec::{run_1f1b_iteration, StageModel};
use mt_model::weights::LayerWeights;
use mt_model::{ActivationLedger, ExecMode, TransformerConfig};
use mt_tensor::rng::SplitMix64;
use mt_tensor::Tensor;

const SEED: u64 = 4242;

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 1,
        layers: 2,
        vocab: 32,
        dropout_p: 0.0, // DP replicas see different data, so masks must not
        // be the discriminating factor here; dropout-off keeps the serial
        // reference definition unambiguous.
        causal: true,
    }
}

fn batches(c: &TransformerConfig, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = SplitMix64::new(900);
    (0..n)
        .map(|_| {
            let toks = (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
            let tgts = (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
            (toks, tgts)
        })
        .collect()
}

/// Serial reference: gradient sum over every replica's microbatch. Each
/// microbatch keeps its own dropout stream id (its global index), matching
/// what the replicas use.
fn serial_sum(gpt: &Gpt, data: &[(Vec<usize>, Vec<usize>)]) -> GptGrads {
    let mut total: Option<GptGrads> = None;
    for (m, (tokens, targets)) in data.iter().enumerate() {
        let mut ledger = ActivationLedger::new();
        let (_, grads) =
            gpt.loss_and_grads(tokens, targets, m as u64, ExecMode::Serial, &mut ledger);
        match &mut total {
            None => total = Some(grads),
            Some(t) => t.accumulate(&grads),
        }
    }
    total.expect("nonempty data")
}

fn assert_gpt_grads_close(a: &GptGrads, b: &GptGrads, tol: f32) {
    let pairs: Vec<(&Tensor, &Tensor, &str)> = vec![
        (&a.table, &b.table, "table"),
        (&a.positions, &b.positions, "positions"),
        (&a.final_ln_gamma, &b.final_ln_gamma, "final_ln_gamma"),
        (&a.final_ln_beta, &b.final_ln_beta, "final_ln_beta"),
    ];
    for (x, y, name) in pairs {
        let rel = x.max_abs_diff(y) / y.max_abs().max(1e-6);
        assert!(rel < tol, "{name}: rel diff {rel}");
    }
    for (i, (la, lb)) in a.layers.iter().zip(&b.layers).enumerate() {
        let rel = la.max_rel_diff(lb);
        assert!(rel < tol, "layer {i}: rel diff {rel}");
    }
}

#[test]
fn pure_data_parallel_matches_serial_sum() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = batches(&c, 2);
    let serial = serial_sum(&gpt, &data);
    let results = World::run(2, |comm| {
        let (tokens, targets) = &data[comm.rank()];
        let mut ledger = ActivationLedger::new();
        let (_, mut grads) = gpt.loss_and_grads(
            tokens,
            targets,
            comm.rank() as u64, // microbatch id = global index
            ExecMode::Serial,
            &mut ledger,
        );
        all_reduce_gpt_grads(&comm, &mut grads);
        grads
    });
    for grads in &results {
        assert_gpt_grads_close(grads, &serial, 1e-4);
    }
}

#[test]
fn data_parallel_composes_with_tensor_parallelism() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::Selective, SEED);
    let data = batches(&c, 2);
    let serial = serial_sum(&gpt, &data);
    let results = run_grid3(2, 2, 1, |g| {
        let sharded = gpt.shard(2, g.replica.tp_rank, Recompute::Selective);
        let (tokens, targets) = &data[g.dp_rank];
        let mut ledger = ActivationLedger::new();
        let (_, mut grads) = sharded.loss_and_grads(
            tokens,
            targets,
            g.dp_rank as u64,
            ExecMode::TensorParallel(&g.replica.tp),
            &mut ledger,
        );
        all_reduce_gpt_grads(&g.dp, &mut grads);
        (g.replica.tp_rank, grads)
    });
    // Reassemble layer shards per replica (take dp_rank 0's two tp shards —
    // results are ordered (dp, stage, tp)).
    let shard0 = &results[0].1;
    let shard1 = &results[1].1;
    for (i, serial_layer) in serial.layers.iter().enumerate() {
        let full = LayerWeights::unshard(&[shard0.layers[i].clone(), shard1.layers[i].clone()]);
        let rel = full.max_rel_diff(serial_layer);
        assert!(rel < 1e-3, "layer {i} rel {rel}");
    }
    let rel = shard0.table.max_abs_diff(&serial.table) / serial.table.max_abs();
    assert!(rel < 1e-3, "table rel {rel}");
}

#[test]
fn data_parallel_composes_with_pipeline_parallelism() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    // Two replicas × two microbatches each = four microbatches total.
    let data = batches(&c, 4);
    let serial = serial_sum(&gpt, &data);
    let results = run_grid3(2, 1, 2, |g| {
        let model = StageModel::from_gpt(&gpt, 2, g.replica.stage, 1, 0, Recompute::None);
        // Replica d takes microbatches [2d, 2d+1]; stream ids stay global
        // because run_1f1b_iteration numbers microbatches step*n + m with
        // n = 2 — so pass step = dp_rank to make ids 2d + m.
        let my_data = &data[g.dp_rank * 2..g.dp_rank * 2 + 2];
        let out = run_1f1b_iteration(&model, &g.replica, false, my_data, g.dp_rank as u64);
        let mut grads = out.grads;
        all_reduce_stage_grads(&g.dp, &mut grads);
        (g.replica.stage, grads)
    });
    // Results ordered (dp, stage): take replica 0's stages.
    for (stage, grads) in &results[..2] {
        if *stage == 0 {
            let (d_table, d_pos) = grads.embedding.as_ref().unwrap();
            let rel = d_table.max_abs_diff(&serial.table) / serial.table.max_abs();
            assert!(rel < 1e-3, "table rel {rel}");
            let relp = d_pos.max_abs_diff(&serial.positions) / serial.positions.max_abs();
            assert!(relp < 1e-3, "positions rel {relp}");
            let rel0 = grads.layers[0].max_rel_diff(&serial.layers[0]);
            assert!(rel0 < 1e-3, "layer 0 rel {rel0}");
        } else {
            let rel1 = grads.layers[0].max_rel_diff(&serial.layers[1]);
            assert!(rel1 < 1e-3, "layer 1 rel {rel1}");
        }
    }
}

#[test]
fn zero1_training_matches_replicated_adam_on_a_gpt() {
    use mt_model::optim::Adam;
    use mt_model::zero::ZeroAdam;
    let c = cfg();
    let data = batches(&c, 2);
    const STEPS: usize = 4;

    // Reference: replicated Adam over the summed gradients.
    let mut ref_gpt = Gpt::init(c, Recompute::None, SEED);
    let mut ref_adam = Adam::new(1e-3);
    let mut ref_losses = Vec::new();
    for _step in 0..STEPS {
        let grads = serial_sum(&ref_gpt, &data);
        let mut ledger = ActivationLedger::new();
        let (loss, _) =
            ref_gpt.loss_and_grads(&data[0].0, &data[0].1, 0, ExecMode::Serial, &mut ledger);
        ref_losses.push(loss);
        ref_adam.update(ref_gpt.param_tensors_mut(), &grads.tensors());
    }

    // ZeRO-1 over two replicas, each computing its own microbatch's grads.
    let zero_losses = World::run(2, |comm| {
        let mut gpt = Gpt::init(c, Recompute::None, SEED);
        let elements: Vec<usize> = gpt.param_tensors_mut().iter().map(|t| t.numel()).collect();
        let mut zero = ZeroAdam::new(1e-3, &elements, 2, comm.rank());
        let mut losses = Vec::new();
        for _step in 0..STEPS {
            let (tokens, targets) = &data[comm.rank()];
            let mut ledger = ActivationLedger::new();
            let (_, grads) = gpt.loss_and_grads(
                tokens,
                targets,
                comm.rank() as u64,
                ExecMode::Serial,
                &mut ledger,
            );
            // Track the same diagnostic loss as the reference (microbatch 0).
            let mut l2 = ActivationLedger::new();
            let (probe, _) =
                gpt.loss_and_grads(&data[0].0, &data[0].1, 0, ExecMode::Serial, &mut l2);
            losses.push(probe);
            // ZeRO's internal all-reduce sums the per-replica gradients.
            zero.step(&comm, gpt.param_tensors_mut(), &grads.tensors());
        }
        // State must be roughly halved per rank.
        let total: usize = elements.iter().sum();
        assert!(
            zero.owned_state_elements() < total * 6 / 10,
            "rank holds {} of {total} state elements",
            zero.owned_state_elements()
        );
        losses
    });
    for rank_losses in &zero_losses {
        for (step, (a, b)) in ref_losses.iter().zip(rank_losses).enumerate() {
            assert!((a - b).abs() < 1e-3, "step {step}: ref {a} vs zero {b}");
        }
    }
}

#[test]
fn replicas_agree_after_the_all_reduce() {
    let c = cfg();
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = batches(&c, 3);
    let results = World::run(3, |comm| {
        let (tokens, targets) = &data[comm.rank()];
        let mut ledger = ActivationLedger::new();
        let (_, mut grads) =
            gpt.loss_and_grads(tokens, targets, comm.rank() as u64, ExecMode::Serial, &mut ledger);
        all_reduce_gpt_grads(&comm, &mut grads);
        grads
    });
    for other in &results[1..] {
        assert_eq!(results[0], *other, "all replicas must hold identical gradients");
    }
}
