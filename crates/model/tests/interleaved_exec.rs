//! Real interleaved-schedule execution (Section 4.2.3's `m`-chunk schedule,
//! used by the paper's 175B/530B runs): model chunks spread over devices
//! with wrap-around transfers must reproduce the serial model exactly, and
//! the first device must hold the paper's `L(1 + (p−1)/(p·m))`-factor worth
//! of in-flight chunk states.

use mt_collectives::run_grid;
use mt_memory::Recompute;
use mt_model::gpt::{Gpt, GptGrads};
use mt_model::pipeline_exec::{run_interleaved_iteration, StageModel};
use mt_model::{ActivationLedger, ExecMode, TransformerConfig};
use mt_tensor::rng::SplitMix64;

const SEED: u64 = 1616;

fn cfg(layers: usize) -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 1,
        layers,
        vocab: 32,
        dropout_p: 0.1,
        causal: true,
    }
}

fn micro_data(c: &TransformerConfig, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = SplitMix64::new(808);
    (0..n)
        .map(|_| {
            (
                (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
                (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
            )
        })
        .collect()
}

fn serial_reference(gpt: &Gpt, data: &[(Vec<usize>, Vec<usize>)]) -> (f32, GptGrads) {
    let n = data.len();
    let mut total: Option<GptGrads> = None;
    let mut loss = 0.0_f64;
    for (mb, (tokens, targets)) in data.iter().enumerate() {
        let mut ledger = ActivationLedger::new();
        let (l, g) = gpt.loss_and_grads(tokens, targets, mb as u64, ExecMode::Serial, &mut ledger);
        loss += l as f64;
        match &mut total {
            None => total = Some(g),
            Some(t) => t.accumulate(&g),
        }
    }
    ((loss / n as f64) as f32, total.expect("nonempty"))
}

struct DeviceResult {
    device: usize,
    loss: f32,
    grads: Vec<mt_model::pipeline_exec::StageGrads>,
    peak: usize,
}

fn run(gpt: &Gpt, p: usize, m: usize, n: usize, policy: Recompute) -> Vec<DeviceResult> {
    let data = micro_data(&gpt.config(), n);
    run_grid(1, p, |g| {
        let chunks: Vec<StageModel> = (0..m)
            .map(|v| StageModel::from_gpt(gpt, p * m, v * p + g.stage, 1, 0, policy))
            .collect();
        let (loss, grads, peak) = run_interleaved_iteration(&chunks, &g, false, &data, 0);
        DeviceResult { device: g.stage, loss, grads, peak }
    })
}

/// Compares device-chunk gradients against the serial reference.
fn assert_matches(
    gpt: &Gpt,
    results: &[DeviceResult],
    p: usize,
    m: usize,
    serial: &GptGrads,
    serial_loss: f32,
) {
    let layers_per_chunk = gpt.config().layers / (p * m);
    for r in results {
        assert!((r.loss - serial_loss).abs() < 1e-5, "device {} loss", r.device);
        for (v, chunk_grads) in r.grads.iter().enumerate() {
            let vs = v * p + r.device;
            for (local, lg) in chunk_grads.layers.iter().enumerate() {
                let global = vs * layers_per_chunk + local;
                let rel = lg.max_rel_diff(&serial.layers[global]);
                assert!(rel < 1e-3, "layer {global} rel {rel}");
            }
            if vs == 0 {
                let (d_table, d_pos) = chunk_grads.embedding.as_ref().expect("embedding");
                let rel = d_table.max_abs_diff(&serial.table) / serial.table.max_abs();
                assert!(rel < 1e-3, "table rel {rel}");
                let relp = d_pos.max_abs_diff(&serial.positions) / serial.positions.max_abs();
                assert!(relp < 1e-3, "positions rel {relp}");
            }
            if vs == p * m - 1 {
                let (d_fg, _, d_head_table) = chunk_grads.head.as_ref().expect("head");
                let rel =
                    d_fg.max_abs_diff(&serial.final_ln_gamma) / serial.final_ln_gamma.max_abs();
                assert!(rel < 1e-3, "final ln rel {rel}");
                let relt = d_head_table.max_abs_diff(&serial.table) / serial.table.max_abs();
                assert!(relt < 1e-3, "tied head table rel {relt}");
            }
        }
    }
}

#[test]
fn interleaved_p2_m2_matches_serial() {
    let c = cfg(4);
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = micro_data(&c, 4);
    let (loss_s, grads_s) = serial_reference(&gpt, &data);
    let results = run(&gpt, 2, 2, 4, Recompute::None);
    assert_matches(&gpt, &results, 2, 2, &grads_s, loss_s);
}

#[test]
fn interleaved_p2_m3_matches_serial_with_selective_recompute() {
    let c = cfg(6);
    let gpt = Gpt::init(c, Recompute::Selective, SEED);
    let data = micro_data(&c, 4);
    let (loss_s, grads_s) = serial_reference(&gpt, &data);
    let results = run(&gpt, 2, 3, 4, Recompute::Selective);
    assert_matches(&gpt, &results, 2, 3, &grads_s, loss_s);
}

#[test]
fn interleaved_m1_degenerates_to_plain_1f1b_result() {
    let c = cfg(4);
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let data = micro_data(&c, 4);
    let (loss_s, grads_s) = serial_reference(&gpt, &data);
    let results = run(&gpt, 2, 1, 4, Recompute::None);
    assert_matches(&gpt, &results, 2, 1, &grads_s, loss_s);
}

#[test]
fn interleaved_composes_with_tensor_and_sequence_parallelism() {
    let c = cfg(4);
    let gpt = Gpt::init(c, Recompute::Selective, SEED);
    let data = micro_data(&c, 2);
    let (loss_s, grads_s) = serial_reference(&gpt, &data);
    let results = run_grid(2, 2, |g| {
        let chunks: Vec<StageModel> = (0..2)
            .map(|v| {
                StageModel::from_gpt(&gpt, 4, v * 2 + g.stage, 2, g.tp_rank, Recompute::Selective)
            })
            .collect();
        let (loss, grads, _) = run_interleaved_iteration(&chunks, &g, true, &data, 0);
        (g.stage, g.tp_rank, loss, grads)
    });
    // Losses agree everywhere; reassemble layer grads per virtual stage.
    let layers_per_chunk = c.layers / 4;
    for (_, _, loss, _) in &results {
        assert!((loss - loss_s).abs() < 1e-4);
    }
    for device in 0..2 {
        for v in 0..2 {
            let vs = v * 2 + device;
            let mut shards: Vec<_> = results.iter().filter(|(s, _, _, _)| *s == device).collect();
            shards.sort_by_key(|(_, tp_rank, _, _)| *tp_rank);
            for local in 0..layers_per_chunk {
                let parts: Vec<_> =
                    shards.iter().map(|(_, _, _, g)| g[v].layers[local].clone()).collect();
                let full = mt_model::weights::LayerWeights::unshard(&parts);
                let global = vs * layers_per_chunk + local;
                let rel = full.max_rel_diff(&grads_s.layers[global]);
                assert!(rel < 2e-3, "vs={vs} layer {global} rel {rel}");
            }
        }
    }
}

#[test]
fn first_device_holds_the_interleaved_memory_factor() {
    // 2(p−1) + (m−1)p + 1 in-flight chunk states (±1 for the chunk whose
    // backward is executing) — the paper's L(1 + (p−1)/(p·m)) factor.
    let c = cfg(4);
    let gpt = Gpt::init(c, Recompute::None, SEED);
    let results = run(&gpt, 2, 2, 4, Recompute::None);
    let bound = 5; // 2(p-1) + (m-1)p + 1 with p = m = 2
    let dev0 = results.iter().find(|r| r.device == 0).unwrap();
    assert!(
        dev0.peak == bound || dev0.peak == bound + 1,
        "device 0 peak {} vs bound {bound}",
        dev0.peak
    );
    let dev1 = results.iter().find(|r| r.device == 1).unwrap();
    assert!(dev1.peak <= dev0.peak, "later devices hold fewer states");
}
