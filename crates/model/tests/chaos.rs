//! Chaos testing: training runs with injected rank failures must fail
//! fast (no hangs), report the failure precisely, and — through
//! checkpoint/resume — converge to weights **bit-identical** to a
//! fault-free run.

use mt_collectives::{CollectiveError, World};
use mt_fault::FaultPlan;
use mt_memory::Recompute;
use mt_model::gpt::Gpt;
use mt_model::recovery::{train_with_recovery, RecoveryConfig};
use mt_model::trainer::{Trainer, TrainerConfig};
use mt_model::{ExecMode, TransformerConfig};
use mt_tensor::rng::SplitMix64;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 16,
        heads: 4,
        seq: 8,
        micro_batch: 2,
        layers: 2,
        vocab: 24,
        dropout_p: 0.1,
        causal: true,
    }
}

fn batch(c: &TransformerConfig, step: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(2000 + step);
    let n = c.tokens();
    (
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
    )
}

/// A rank panicking mid-training surfaces as `RankDead` on every survivor,
/// within the collective deadline — nobody hangs in a rendezvous.
#[test]
fn tp4_training_with_injected_panic_fails_fast_with_rank_dead() {
    let c = cfg();
    let t = 4usize;
    let init = Gpt::init(c, Recompute::Selective, 11);
    let plan = Arc::new(FaultPlan::builder().panic_at_step(2, 1).build());

    let start = Instant::now();
    let mut world = World::new(t);
    world.set_collective_timeout(Duration::from_secs(10));
    world.set_fault_plan(Arc::clone(&plan));
    let results = world.run_fallible(|comm| {
        let rank = comm.rank();
        let sharded = init.shard(t, rank, Recompute::Selective);
        let mut trainer = Trainer::new(sharded, TrainerConfig::default());
        for step in 0..4u64 {
            if let Some(mt_fault::FaultAction::Panic) = plan.poll_step(rank, step) {
                panic!("mt-fault: injected panic on rank {rank} at step {step}");
            }
            let (tokens, targets) = batch(&c, step);
            trainer.step(&tokens, &targets, ExecMode::TensorParallel(&comm));
        }
        Ok(trainer.steps_done())
    });
    let elapsed = start.elapsed();

    assert!(elapsed < Duration::from_secs(60), "chaos run hung for {elapsed:?}");
    assert_eq!(results.len(), t);
    for (rank, r) in results.iter().enumerate() {
        match r {
            Err(CollectiveError::RankDead { dead_rank, .. }) => {
                assert_eq!(*dead_rank, 2, "rank {rank} blamed the wrong rank");
            }
            other => panic!("rank {rank}: expected RankDead, got {other:?}"),
        }
    }
}

/// `train_with_recovery` survives an injected rank panic by restoring the
/// last checkpoint, and its final weights are bit-identical to a fault-free
/// run of the same number of steps.
#[test]
fn recovery_after_rank_panic_is_bit_identical_to_fault_free_run() {
    let c = cfg();
    let t = 4usize;
    let init = Gpt::init(c, Recompute::Selective, 23);
    let rc = RecoveryConfig {
        total_steps: 8,
        checkpoint_every: 3,
        max_retries: 3,
        backoff_base: Duration::ZERO,
        collective_timeout: Duration::from_secs(10),
    };
    let data = |step: u64| batch(&cfg(), step);

    // Fault-free reference.
    let (clean, clean_report) = train_with_recovery(
        &init,
        t,
        Recompute::Selective,
        TrainerConfig::default(),
        &rc,
        Arc::new(FaultPlan::none()),
        data,
    )
    .expect("fault-free run succeeds");
    assert_eq!(clean_report.retries, 0);
    assert_eq!(clean_report.stats.len(), 8);

    // Same run with rank 1 panicking at step 4 (second segment) and rank 3
    // hitting a transient failure at step 7 (third segment).
    let plan = FaultPlan::builder().panic_at_step(1, 4).transient_at_step(3, 7).build();
    let (recovered, report) = train_with_recovery(
        &init,
        t,
        Recompute::Selective,
        TrainerConfig::default(),
        &rc,
        Arc::new(plan),
        data,
    )
    .expect("recovery succeeds within the retry budget");

    assert_eq!(report.retries, 2, "one retry per injected fault: {:?}", report.failures);
    assert!(report.failures[0].contains("rank 1"), "failures: {:?}", report.failures);
    assert!(report.failures[1].contains("rank 3"), "failures: {:?}", report.failures);
    assert_eq!(report.stats.len(), 8, "all steps committed exactly once");

    let bits = |m: &Gpt| -> Vec<u32> {
        let ck = m.to_checkpoint();
        let mut out: Vec<u32> = Vec::new();
        for lw in &ck.layer_weights {
            for tns in lw.tensors() {
                out.extend(tns.data().iter().map(|x| x.to_bits()));
            }
        }
        out.extend(ck.embedding.table.data().iter().map(|x| x.to_bits()));
        out.extend(ck.final_ln_gamma.data().iter().map(|x| x.to_bits()));
        out
    };
    assert_eq!(clean.len(), t);
    assert_eq!(recovered.len(), t);
    for rank in 0..t {
        assert_eq!(
            bits(&clean[rank]),
            bits(&recovered[rank]),
            "rank {rank}: recovered weights diverged from the fault-free run"
        );
    }
    // Loss trajectories match step for step, too.
    for (a, b) in clean_report.stats.iter().zip(&report.stats) {
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss diverged at step {}", a.step);
    }
}

/// The retry budget is enforced: a fault plan that kills every attempt
/// exhausts `max_retries` and surfaces a `RecoveryError` naming the rank.
#[test]
fn recovery_gives_up_after_max_retries() {
    let c = cfg();
    let plan = FaultPlan::builder().panic_at_step(0, 0).build();
    let rc = RecoveryConfig {
        total_steps: 2,
        checkpoint_every: 2,
        max_retries: 0,
        backoff_base: Duration::ZERO,
        collective_timeout: Duration::from_secs(5),
    };
    let err = train_with_recovery(
        &Gpt::init(c, Recompute::None, 5),
        1,
        Recompute::None,
        TrainerConfig::default(),
        &rc,
        Arc::new(plan),
        |step| batch(&c, step),
    )
    .expect_err("zero retries cannot absorb a panic");
    assert_eq!(err.failures.len(), 1);
    assert!(err.failures[0].contains("rank 0"), "got: {}", err.failures[0]);
}
