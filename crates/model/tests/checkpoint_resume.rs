//! Deterministic checkpoint/resume: a run interrupted at step `k` and
//! resumed must be **bit-identical** to an uninterrupted run — weights,
//! Adam moments, RNG streams, LR schedule, everything. Verified on the
//! serial and threaded kernel backends and through the binary wire format.

use mt_fault::binfmt;
use mt_memory::Recompute;
use mt_model::gpt::Gpt;
use mt_model::trainer::{CheckpointError, Trainer, TrainerConfig};
use mt_model::{ExecMode, TransformerConfig};
use mt_tensor::rng::SplitMix64;
use mt_tensor::{set_default_backend, Backend};

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 16,
        heads: 2,
        seq: 8,
        micro_batch: 2,
        layers: 2,
        vocab: 24,
        dropout_p: 0.1,
        causal: true,
    }
}

fn batch(c: &TransformerConfig, step: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(1000 + step);
    let n = c.tokens();
    (
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
    )
}

/// Bit-level equality of every f32 in both models' and optimizers' state.
/// The binary checkpoint codec stores floats as raw IEEE-754 bits, so byte
/// equality of the blobs is exactly "weights and Adam moments `to_bits`
/// equal" (plus step counters and RNG state).
fn assert_bit_identical(a: &Trainer, b: &Trainer, what: &str) {
    let (ca, cb) = (a.save_checkpoint(), b.save_checkpoint());
    for (ta, tb) in ca.model.layer_weights.iter().zip(&cb.model.layer_weights) {
        for (wa, wb) in ta.tensors().iter().zip(tb.tensors()) {
            let bits_a: Vec<u32> = wa.data().iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u32> = wb.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "{what}: layer weights differ at the bit level");
        }
    }
    for (ma, mb) in ca.opt.m.iter().zip(&cb.opt.m) {
        let bits_a: Vec<u32> = ma.data().iter().map(|x| x.to_bits()).collect();
        let bits_b: Vec<u32> = mb.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "{what}: Adam first moments differ at the bit level");
    }
    for (va, vb) in ca.opt.v.iter().zip(&cb.opt.v) {
        let bits_a: Vec<u32> = va.data().iter().map(|x| x.to_bits()).collect();
        let bits_b: Vec<u32> = vb.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "{what}: Adam second moments differ at the bit level");
    }
    assert_eq!(
        binfmt::to_bytes(&ca),
        binfmt::to_bytes(&cb),
        "{what}: full checkpoint blobs differ"
    );
}

fn resumed_equals_uninterrupted(policy: Recompute, what: &str) {
    let c = cfg();
    let k = 3u64;
    let n = 4u64;

    // Uninterrupted run: k + n steps.
    let mut straight = Trainer::new(Gpt::init(c, policy, 42), TrainerConfig::default());
    for step in 0..k + n {
        let (tokens, targets) = batch(&c, step);
        straight.step(&tokens, &targets, ExecMode::Serial);
    }

    // Interrupted run: k steps, checkpoint through the wire format, resume,
    // n more steps.
    let mut first = Trainer::new(Gpt::init(c, policy, 42), TrainerConfig::default());
    for step in 0..k {
        let (tokens, targets) = batch(&c, step);
        first.step(&tokens, &targets, ExecMode::Serial);
    }
    let blob = first.checkpoint_bytes();
    drop(first);
    let mut resumed = Trainer::resume_from_bytes(&blob).expect("checkpoint restores");
    assert_eq!(resumed.steps_done(), k);
    for step in k..k + n {
        let (tokens, targets) = batch(&c, step);
        resumed.step(&tokens, &targets, ExecMode::Serial);
    }

    assert_bit_identical(&straight, &resumed, what);
}

#[test]
fn resume_is_bit_identical_serial_backend() {
    resumed_equals_uninterrupted(Recompute::None, "serial backend, no recompute");
    resumed_equals_uninterrupted(Recompute::Selective, "serial backend, selective recompute");
}

#[test]
fn resume_is_bit_identical_threaded_backend() {
    // The kernel backends are bit-identical to each other, so flipping the
    // default mid-process is safe for concurrently running tests; this
    // checks checkpoints stay exact when the math runs on worker threads
    // (the MT_KERNEL_BACKEND=threaded configuration).
    set_default_backend(Backend::Threaded { threads: 4 });
    resumed_equals_uninterrupted(Recompute::Selective, "threaded backend");
    set_default_backend(Backend::Serial);
}

#[test]
fn resume_under_tensor_parallel_is_bit_identical() {
    let c = cfg();
    let t = 2usize;
    let k = 2u64;
    let n = 3u64;
    let init = Gpt::init(c, Recompute::Selective, 7);

    let run = |interrupt: bool| -> Vec<Vec<u8>> {
        let init = init.clone();
        mt_collectives::World::run(t, |comm| {
            let sharded = init.shard(t, comm.rank(), Recompute::Selective);
            let mut trainer = Trainer::new(sharded, TrainerConfig::default());
            for step in 0..k {
                let (tokens, targets) = batch(&c, step);
                trainer.step(&tokens, &targets, ExecMode::TensorParallel(&comm));
            }
            if interrupt {
                let blob = trainer.checkpoint_bytes();
                trainer = Trainer::resume_from_bytes(&blob).expect("restores");
            }
            for step in k..k + n {
                let (tokens, targets) = batch(&c, step);
                trainer.step(&tokens, &targets, ExecMode::TensorParallel(&comm));
            }
            trainer.checkpoint_bytes()
        })
    };

    let straight = run(false);
    let resumed = run(true);
    assert_eq!(straight.len(), t);
    for (rank, (a, b)) in straight.iter().zip(&resumed).enumerate() {
        assert_eq!(a, b, "rank {rank}: resumed TP shard diverged from uninterrupted run");
    }
}

#[test]
fn corrupt_or_foreign_blobs_are_rejected() {
    let c = cfg();
    let trainer = Trainer::new(Gpt::init(c, Recompute::None, 3), TrainerConfig::default());
    let blob = trainer.checkpoint_bytes();

    // Bad magic.
    let mut bad = blob.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        Trainer::resume_from_bytes(&bad),
        Err(CheckpointError::Format(binfmt::BinError::BadMagic))
    ));

    // Container version from the future.
    let mut future = blob.clone();
    future[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Trainer::resume_from_bytes(&future),
        Err(CheckpointError::Format(binfmt::BinError::UnsupportedVersion(_)))
    ));

    // Truncation.
    assert!(Trainer::resume_from_bytes(&blob[..blob.len() / 2]).is_err());

    // Logical schema version from the future.
    let mut ckpt = trainer.save_checkpoint();
    ckpt.version = u32::MAX;
    assert!(matches!(Trainer::resume_from(ckpt), Err(CheckpointError::UnsupportedVersion(_))));

    // Optimizer/trainer step disagreement.
    let mut ckpt = trainer.save_checkpoint();
    ckpt.step = 99;
    assert!(matches!(Trainer::resume_from(ckpt), Err(CheckpointError::Inconsistent(_))));
}
