//! Communication accounting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The paper accounts activations (and therefore communication payloads) at
/// fp16 width: 2 bytes per element.
pub const FP16_BYTES: u64 = 2;

/// The kinds of communication operation the runtime records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Ring all-reduce (sum).
    AllReduce,
    /// Ring all-gather along axis 0.
    AllGather,
    /// Ring reduce-scatter along axis 0.
    ReduceScatter,
    /// One-to-all broadcast.
    Broadcast,
    /// Point-to-point send/recv (pipeline stage boundaries).
    SendRecv,
    /// Synchronization barrier (no payload).
    Barrier,
}

impl CollectiveKind {
    /// Stable snake_case name, used as the span name and metric-key segment
    /// for this kind.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::AllGather => "all_gather",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::SendRecv => "send_recv",
            CollectiveKind::Barrier => "barrier",
        }
    }

    /// Bytes each rank puts on the wire for a ring implementation of this
    /// collective, given the *logical full tensor* payload in bytes and the
    /// group size `n`.
    ///
    /// * ring all-reduce = reduce-scatter + all-gather = `2(n−1)/n · B`
    /// * ring all-gather / reduce-scatter = `(n−1)/n · B`
    /// * broadcast (tree or ring) ≈ `B` leaving the root; we charge `B`
    /// * send/recv = `B`
    ///
    /// This is exactly the decomposition behind the paper's "sequence
    /// parallelism does not introduce any communication overhead" argument:
    /// an all-reduce of `B` costs the same wire bytes as a reduce-scatter of
    /// `B` followed by an all-gather of `B`.
    pub fn ring_wire_bytes(self, payload_bytes: u64, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        match self {
            CollectiveKind::AllReduce => 2 * payload_bytes * (n - 1) / n,
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
                payload_bytes * (n - 1) / n
            }
            CollectiveKind::Broadcast | CollectiveKind::SendRecv => payload_bytes,
            CollectiveKind::Barrier => 0,
        }
    }
}

/// Aggregate counters for one kind of collective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStats {
    /// Number of calls.
    pub calls: u64,
    /// Logical payload bytes summed over calls (full-tensor size at fp16
    /// accounting).
    pub payload_bytes: u64,
    /// Per-rank ring wire bytes summed over calls.
    pub wire_bytes: u64,
}

/// Per-rank communication ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    by_kind: BTreeMap<CollectiveKind, KindStats>,
}

impl CommStats {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call.
    pub fn record(&mut self, kind: CollectiveKind, payload_elems: u64, group_size: u64) {
        let payload_bytes = payload_elems * FP16_BYTES;
        let entry = self.by_kind.entry(kind).or_default();
        entry.calls += 1;
        entry.payload_bytes += payload_bytes;
        entry.wire_bytes += kind.ring_wire_bytes(payload_bytes, group_size);
    }

    /// Counters for one kind (zeros if never called).
    pub fn kind(&self, kind: CollectiveKind) -> KindStats {
        self.by_kind.get(&kind).copied().unwrap_or_default()
    }

    /// Total calls across kinds.
    pub fn total_calls(&self) -> u64 {
        self.by_kind.values().map(|k| k.calls).sum()
    }

    /// Total per-rank wire bytes across kinds.
    pub fn total_wire_bytes(&self) -> u64 {
        self.by_kind.values().map(|k| k.wire_bytes).sum()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CommStats) {
        for (kind, ks) in &other.by_kind {
            let entry = self.by_kind.entry(*kind).or_default();
            entry.calls += ks.calls;
            entry.payload_bytes += ks.payload_bytes;
            entry.wire_bytes += ks.wire_bytes;
        }
    }

    /// Iterates over `(kind, stats)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (CollectiveKind, KindStats)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, *v))
    }

    /// World-level aggregation: sums per-rank ledgers into one. The result's
    /// `wire_bytes` is the total traffic all ranks put on the wire — the
    /// quantity a cluster-level bandwidth budget sees.
    pub fn aggregate<'a>(per_rank: impl IntoIterator<Item = &'a CommStats>) -> CommStats {
        let mut total = CommStats::new();
        for s in per_rank {
            total.merge(s);
        }
        total
    }

    /// Publishes this ledger into a metrics registry under
    /// `{prefix}.{kind}.{calls,payload_bytes,wire_bytes}` counters plus
    /// `{prefix}.total_calls` / `{prefix}.total_wire_bytes`. Counters
    /// accumulate, so publish a ledger once (or publish per-step deltas).
    pub fn publish(&self, registry: &mt_trace::MetricsRegistry, prefix: &str) {
        for (kind, ks) in self.iter() {
            let base = format!("{prefix}.{}", kind.name());
            registry.counter_add(&format!("{base}.calls"), ks.calls);
            registry.counter_add(&format!("{base}.payload_bytes"), ks.payload_bytes);
            registry.counter_add(&format!("{base}.wire_bytes"), ks.wire_bytes);
        }
        registry.counter_add(&format!("{prefix}.total_calls"), self.total_calls());
        registry.counter_add(&format!("{prefix}.total_wire_bytes"), self.total_wire_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_equals_rs_plus_ag() {
        // The paper's bandwidth-equivalence identity, for a range of sizes.
        for n in [2_u64, 4, 8, 16] {
            for bytes in [1024_u64, 1 << 20, 123_456 * n] {
                let ar = CollectiveKind::AllReduce.ring_wire_bytes(bytes, n);
                let rs = CollectiveKind::ReduceScatter.ring_wire_bytes(bytes, n);
                let ag = CollectiveKind::AllGather.ring_wire_bytes(bytes, n);
                assert_eq!(ar, rs + ag, "n={n} bytes={bytes}");
            }
        }
    }

    #[test]
    fn single_rank_groups_are_free() {
        for kind in
            [CollectiveKind::AllReduce, CollectiveKind::AllGather, CollectiveKind::ReduceScatter]
        {
            assert_eq!(kind.ring_wire_bytes(1 << 20, 1), 0);
        }
    }

    #[test]
    fn aggregate_sums_ranks_and_matches_ring_totals() {
        // Four ranks, each all-reducing the same 100-element tensor twice
        // and all-gathering once: the world total is rank count × per-rank.
        let n = 4u64;
        let per_rank: Vec<CommStats> = (0..n)
            .map(|_| {
                let mut s = CommStats::new();
                s.record(CollectiveKind::AllReduce, 100, n);
                s.record(CollectiveKind::AllReduce, 100, n);
                s.record(CollectiveKind::AllGather, 80, n);
                s
            })
            .collect();
        let world = CommStats::aggregate(&per_rank);
        assert_eq!(world.kind(CollectiveKind::AllReduce).calls, 2 * n);
        assert_eq!(
            world.kind(CollectiveKind::AllReduce).wire_bytes,
            n * 2 * CollectiveKind::AllReduce.ring_wire_bytes(100 * FP16_BYTES, n)
        );
        assert_eq!(
            world.kind(CollectiveKind::AllGather).wire_bytes,
            n * CollectiveKind::AllGather.ring_wire_bytes(80 * FP16_BYTES, n)
        );
        assert_eq!(world.total_calls(), 3 * n);
        // Aggregating nothing is the empty ledger.
        assert_eq!(CommStats::aggregate([]), CommStats::new());
    }

    #[test]
    fn publish_writes_counters_under_prefix() {
        let mut s = CommStats::new();
        s.record(CollectiveKind::AllReduce, 100, 4);
        s.record(CollectiveKind::Barrier, 0, 4);
        let reg = mt_trace::MetricsRegistry::new();
        s.publish(&reg, "comm");
        assert_eq!(reg.get("comm.all_reduce.calls").unwrap().as_u64(), 1);
        assert_eq!(
            reg.get("comm.all_reduce.wire_bytes").unwrap().as_u64(),
            CollectiveKind::AllReduce.ring_wire_bytes(200, 4)
        );
        assert_eq!(reg.get("comm.barrier.calls").unwrap().as_u64(), 1);
        assert_eq!(reg.get("comm.total_calls").unwrap().as_u64(), 2);
    }

    #[test]
    fn record_and_merge() {
        let mut a = CommStats::new();
        a.record(CollectiveKind::AllReduce, 100, 4);
        a.record(CollectiveKind::AllReduce, 100, 4);
        let mut b = CommStats::new();
        b.record(CollectiveKind::AllGather, 50, 4);
        a.merge(&b);
        assert_eq!(a.kind(CollectiveKind::AllReduce).calls, 2);
        assert_eq!(a.kind(CollectiveKind::AllReduce).payload_bytes, 400);
        assert_eq!(a.kind(CollectiveKind::AllGather).calls, 1);
        assert_eq!(a.total_calls(), 3);
    }
}
