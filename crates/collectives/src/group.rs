//! The thread-rank runtime: [`World`] and [`Communicator`].

use crate::cost::CommCostModel;
use crate::error::{CallTag, CollectiveError};
use crate::stats::{CollectiveKind, CommStats, FP16_BYTES};
use mt_fault::{FaultAction, FaultPlan};
use mt_sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use mt_sync::time::Instant;
use mt_sync::{Condvar, Mutex};
use mt_tensor::Tensor;
use mt_trace::{ArgValue, SpanGuard, Tracer};
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

/// Default rendezvous deadline. Generous enough that healthy runs never
/// trip it; finite so a lost rank turns into an error instead of a hang.
pub const DEFAULT_COLLECTIVE_TIMEOUT: Duration = Duration::from_secs(60);

/// How often a point-to-point receive re-checks for dead peers while
/// waiting out its deadline.
const RECV_POLL: Duration = Duration::from_millis(10);

/// Row range `[start, end)` of chunk `j` when `rows` rows are split into
/// `chunks` equal-as-possible contiguous pieces. Ragged row counts are
/// allowed (chunks may be empty when `chunks > rows`); the ranges are
/// disjoint, ascending, and cover `0..rows` exactly. The runtime chunked
/// collectives, the overlapped GEMM driver's plan builder, and the
/// `mt-analyze` static extractor all use this one partition so the
/// schedules they describe agree byte for byte.
pub fn chunk_rows(rows: usize, chunks: usize, j: usize) -> (usize, usize) {
    assert!(chunks > 0, "chunk_rows: chunk count must be positive");
    assert!(j < chunks, "chunk_rows: chunk index {j} out of range for {chunks} chunks");
    (j * rows / chunks, (j + 1) * rows / chunks)
}

/// Shared rendezvous state for one collective "slot".
///
/// Correctness argument for reuse without generation counters: a rank only
/// deposits for collective *k+1* after it has taken its own result of
/// collective *k*; therefore when the last deposit of round *k+1* arrives,
/// every `results` cell is already empty and may be overwritten.
/// This requires the standard SPMD discipline that all ranks issue the same
/// collectives in the same order — the same requirement NCCL imposes. The
/// discipline itself is checked: the first depositor of a round records a
/// [`CallTag`] and later depositors must match it, so an SPMD bug poisons
/// the exchange with [`CollectiveError::SpmdMismatch`] instead of
/// deadlocking.
struct ExchangeState {
    deposits: Vec<Option<Tensor>>,
    deposited: usize,
    results: Vec<Option<Tensor>>,
    /// Tag of the in-flight round, set by its first depositor.
    tag: Option<CallTag>,
    /// First rank known to have died, if any.
    dead: Option<usize>,
    /// Sticky SPMD-mismatch failure; once set, every call fails fast.
    poisoned: Option<CollectiveError>,
}

struct Exchange {
    state: Mutex<ExchangeState>,
    cond: Condvar,
}

impl Exchange {
    fn new(n: usize) -> Self {
        Exchange {
            state: Mutex::new(ExchangeState {
                deposits: vec![None; n],
                deposited: 0,
                results: vec![None; n],
                tag: None,
                dead: None,
                poisoned: None,
            }),
            cond: Condvar::new(),
        }
    }

    /// Marks `rank` dead and wakes every waiter so blocked collectives fail
    /// with [`CollectiveError::RankDead`] instead of waiting out their
    /// deadlines.
    fn mark_dead(&self, rank: usize) {
        let mut st = self.state.lock();
        if st.dead.is_none() {
            st.dead = Some(rank);
        }
        drop(st);
        self.cond.notify_all();
    }

    /// The first rank known dead, if any.
    fn first_dead(&self) -> Option<usize> {
        self.state.lock().dead
    }

    /// Runs one collective round: rank `rank` contributes `input`; when all
    /// ranks have contributed, `combine` maps the deposits to one result per
    /// rank; each rank receives its result. Fails — always within
    /// `deadline` — if a peer never arrives, a rank is dead, or the round's
    /// ranks disagree on what collective they are in.
    fn try_exchange(
        &self,
        rank: usize,
        tag: CallTag,
        deadline: Duration,
        input: Tensor,
        combine: impl FnOnce(&mut Vec<Option<Tensor>>) -> Vec<Tensor>,
    ) -> Result<Tensor, CollectiveError> {
        let start = Instant::now();
        let mut st = self.state.lock();
        if let Some(err) = &st.poisoned {
            return Err(err.clone());
        }
        if let Some(dead_rank) = st.dead {
            return Err(CollectiveError::RankDead { rank, dead_rank });
        }
        match &st.tag {
            None => st.tag = Some(tag.clone()),
            Some(current) if !tag_matches(current, &tag) => {
                let err = CollectiveError::SpmdMismatch {
                    rank,
                    expected: Box::new(current.clone()),
                    found: Box::new(tag),
                };
                st.poisoned = Some(err.clone());
                drop(st);
                self.cond.notify_all();
                return Err(err);
            }
            Some(_) => {}
        }
        debug_assert!(st.deposits[rank].is_none(), "rank {rank} double-deposited");
        debug_assert!(st.results[rank].is_none(), "rank {rank} result not consumed");
        st.deposits[rank] = Some(input);
        st.deposited += 1;
        if st.deposited == st.deposits.len() {
            let results = combine(&mut st.deposits);
            debug_assert_eq!(results.len(), st.results.len());
            for (slot, r) in st.results.iter_mut().zip(results) {
                *slot = Some(r);
            }
            for d in st.deposits.iter_mut() {
                *d = None;
            }
            st.deposited = 0;
            st.tag = None;
            self.cond.notify_all();
        } else {
            while st.results[rank].is_none() {
                if let Some(err) = &st.poisoned {
                    return Err(err.clone());
                }
                if let Some(dead_rank) = st.dead {
                    return Err(CollectiveError::RankDead { rank, dead_rank });
                }
                let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
                    return Err(CollectiveError::Timeout {
                        rank,
                        op: st.tag.as_ref().map_or("collective", |t| t.op),
                        waited: start.elapsed(),
                    });
                };
                self.cond.wait_for(&mut st, remaining);
                // Seeded bug `skip-recheck` (mt-check self-validation):
                // trust the wakeup instead of looping back to re-check the
                // predicate — the classic spurious-wakeup bug.
                #[cfg(mt_check)]
                if mt_sync::mutation::armed("skip-recheck") {
                    break;
                }
            }
        }
        Ok(st.results[rank].take().expect("result present after wakeup"))
    }
}

/// Whether a later depositor's tag matches the in-flight round's. This is
/// plain [`CallTag`] equality — epoch included, which is what fences
/// cross-formation stragglers — except under the seeded `skip-epoch-check`
/// bug (mt-check self-validation), which ignores the epoch the way a
/// hand-rolled comparison forgetting the field would.
fn tag_matches(current: &CallTag, tag: &CallTag) -> bool {
    #[cfg(mt_check)]
    if mt_sync::mutation::armed("skip-epoch-check") {
        let mut t = tag.clone();
        t.epoch = current.epoch;
        return *current == t;
    }
    *current == *tag
}

/// A group of `n` simulated ranks.
///
/// The usual entry point is [`World::run`], which spawns one thread per rank
/// and hands each a [`Communicator`]. For chaos testing and recovery
/// drivers, configure a world with [`World::set_fault_plan`] /
/// [`World::set_collective_timeout`] and use [`World::run_fallible`], which
/// converts rank panics into per-rank errors instead of propagating.
pub struct World {
    size: usize,
    exchange: Arc<Exchange>,
    // p2p[from][to] channel endpoints, created once up front.
    senders: Vec<Vec<Sender<Tensor>>>,
    receivers: Vec<Vec<Option<Receiver<Tensor>>>>,
    tracer: Tracer,
    timeout: Duration,
    fault_plan: Option<Arc<FaultPlan>>,
    link: Option<CommCostModel>,
    epoch: u64,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World").field("size", &self.size).finish()
    }
}

impl World {
    /// Creates a world of `size` ranks without spawning threads. Use
    /// [`World::communicator`] to extract per-rank handles and drive them
    /// from threads you manage yourself; most callers want [`World::run`].
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "World requires at least one rank");
        let mut senders = vec![Vec::with_capacity(size); size];
        let mut receivers: Vec<Vec<Option<Receiver<Tensor>>>> =
            (0..size).map(|_| (0..size).map(|_| None).collect()).collect();
        for from in 0..size {
            #[allow(clippy::needless_range_loop)] // `to` addresses the matching receiver slot
            for to in 0..size {
                let (tx, rx) = unbounded();
                senders[from].push(tx);
                receivers[to][from] = Some(rx);
            }
        }
        World {
            size,
            exchange: Arc::new(Exchange::new(size)),
            senders,
            receivers,
            tracer: Tracer::disabled(),
            timeout: DEFAULT_COLLECTIVE_TIMEOUT,
            fault_plan: None,
            link: None,
            epoch: 0,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Attaches a tracer. Communicators extracted afterwards record each
    /// collective as a span on their rank's track.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets the rendezvous deadline for communicators extracted afterwards.
    /// Defaults to [`DEFAULT_COLLECTIVE_TIMEOUT`]; chaos tests use a short
    /// deadline so failures surface in bounded time.
    pub fn set_collective_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Installs a deterministic fault plan. Communicators extracted
    /// afterwards consult it before every collective and point-to-point
    /// call, injecting panics, straggler delays, or transient failures at
    /// the planned coordinates (visible as `fault_injected` /
    /// `fault_recovered` trace instants).
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault_plan = Some(plan);
    }

    /// Installs a simulated link: communicators extracted afterwards sleep
    /// for the α–β ring wire time of each collective after its rendezvous
    /// completes. Rendezvous over shared memory is otherwise near-instant,
    /// so benchmarks that want to measure comm/compute *overlap* need a
    /// link with realistic (deterministic) transfer time. Ranks sleep
    /// concurrently, and a sleeping rank thread frees its CPU for the
    /// compute workers — exactly the resource picture of a DMA'd NCCL
    /// transfer.
    pub fn set_link_cost(&mut self, model: CommCostModel) {
        self.link = Some(model);
    }

    /// Sets the world-formation epoch stamped into every [`CallTag`] built
    /// by communicators extracted afterwards. A fresh world is epoch 0;
    /// elastic recovery re-forms survivors into a new world at `epoch + 1`,
    /// so a straggler communicator from the previous formation that reaches
    /// a re-formed round fails fast as
    /// [`CollectiveError::SpmdMismatch`] naming both epochs rather than
    /// corrupting the round or deadlocking it.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The world-formation epoch communicators are currently extracted at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Extracts the communicator for `rank`. Each rank may be taken once.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or its communicator was already
    /// taken.
    pub fn communicator(&mut self, rank: usize) -> Communicator {
        assert!(rank < self.size, "rank {rank} out of range");
        let inboxes: Vec<Receiver<Tensor>> = self.receivers[rank]
            .iter_mut()
            .map(|slot| slot.take().expect("communicator already taken"))
            .collect();
        Communicator {
            rank,
            size: self.size,
            exchange: Arc::clone(&self.exchange),
            peers: self.senders.iter().map(|row| row[rank].clone()).collect::<Vec<_>>(),
            outboxes: self.senders[rank].clone(),
            inboxes,
            stats: RefCell::new(CommStats::new()),
            tracer: self.tracer.with_track(rank as u32),
            timeout: self.timeout,
            fault_plan: self.fault_plan.clone(),
            link: self.link,
            epoch: self.epoch,
            seq: Cell::new(0),
        }
    }

    /// Spawns one thread per rank, runs `f(communicator)` on each, and
    /// returns the per-rank results in rank order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any rank thread, including collective
    /// failures (the infallible collective methods raise
    /// [`CollectiveError`] as a panic payload).
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        Self::run_traced(size, &Tracer::disabled(), f)
    }

    /// [`World::run`] with tracing: each rank thread gets a communicator
    /// whose collectives record spans on track `rank`, and the tracer is
    /// installed as the thread's current tracer so instrumentation deeper
    /// in the stack (model phases, allocator watermarks) attributes to the
    /// same rank lane.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any rank thread.
    pub fn run_traced<T, F>(size: usize, tracer: &Tracer, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        let mut world = World::new(size);
        world.set_tracer(tracer.clone());
        let comms: Vec<Communicator> = (0..size).map(|r| world.communicator(r)).collect();
        mt_sync::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    scope.spawn(|| {
                        let _installed = mt_trace::install(comm.tracer().clone());
                        f(comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(t) => t,
                    Err(payload) => match payload.downcast::<CollectiveError>() {
                        Ok(err) => panic!("rank thread failed: {err}"),
                        Err(_) => panic!("rank thread panicked"),
                    },
                })
                .collect()
        })
    }

    /// Spawns one thread per rank like [`World::run`], but catches rank
    /// panics instead of propagating them: a panicked rank is marked dead
    /// (waking any peer blocked on it with [`CollectiveError::RankDead`])
    /// and its slot in the returned vector carries the error. Never hangs
    /// and never unwinds out of the calling thread, which is what a
    /// retry-with-recovery driver needs.
    ///
    /// Collective failures raised through the infallible methods (panic
    /// payloads of type [`CollectiveError`]) are recovered as that error;
    /// any other panic is reported as `RankDead` for its own rank.
    pub fn run_fallible<T, F>(&mut self, f: F) -> Vec<Result<T, CollectiveError>>
    where
        T: Send,
        F: Fn(Communicator) -> Result<T, CollectiveError> + Sync,
    {
        let exchange = Arc::clone(&self.exchange);
        let comms: Vec<Communicator> = (0..self.size).map(|r| self.communicator(r)).collect();
        mt_sync::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let exchange = Arc::clone(&exchange);
                    let f = &f;
                    scope.spawn(move || {
                        let rank = comm.rank();
                        let _installed = mt_trace::install(comm.tracer().clone());
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm))) {
                            Ok(result) => {
                                if result.is_err() {
                                    // A rank that bailed out of the SPMD
                                    // program will never rendezvous again;
                                    // unblock any peer waiting on it.
                                    exchange.mark_dead(rank);
                                }
                                result
                            }
                            Err(payload) => {
                                exchange.mark_dead(rank);
                                match payload.downcast::<CollectiveError>() {
                                    Ok(err) => Err(*err),
                                    Err(_) => {
                                        Err(CollectiveError::RankDead { rank, dead_rank: rank })
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank wrapper catches panics")).collect()
        })
    }
}

/// Raises a collective failure as a panic carrying the typed error, so the
/// infallible API stays ergonomic while [`World::run_fallible`] can still
/// recover the precise cause.
fn raise(err: CollectiveError) -> ! {
    std::panic::panic_any(err)
}

/// Per-rank handle for collectives and point-to-point messaging.
///
/// All collective methods must be called by **every** rank of the world in
/// the same order (SPMD), exactly like NCCL. Each call is recorded in a
/// per-rank [`CommStats`] ledger retrievable with [`Communicator::stats`].
///
/// Every operation exists in two flavors: the infallible spelling
/// (`all_reduce`, `recv`, ...) used by model code, and a fallible `try_*`
/// spelling returning [`CollectiveError`]. Both go through the same
/// deadline-checked rendezvous — the infallible methods simply raise the
/// error as a panic payload — so no call can block past the world's
/// configured timeout.
pub struct Communicator {
    rank: usize,
    size: usize,
    exchange: Arc<Exchange>,
    // `peers[from]` sends towards *this* rank; kept so that Communicator is
    // self-contained. `outboxes[to]` sends from this rank to `to`.
    #[allow(dead_code)]
    peers: Vec<Sender<Tensor>>,
    outboxes: Vec<Sender<Tensor>>,
    inboxes: Vec<Receiver<Tensor>>,
    stats: RefCell<CommStats>,
    tracer: Tracer,
    timeout: Duration,
    fault_plan: Option<Arc<FaultPlan>>,
    link: Option<CommCostModel>,
    // World-formation epoch stamped into every CallTag this rank builds.
    epoch: u64,
    // Index of the next collective/p2p call on this rank; fault plans
    // address injection points by (rank, seq).
    seq: Cell<u64>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator").field("rank", &self.rank).field("size", &self.size).finish()
    }
}

impl Communicator {
    /// This rank's index in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's communication ledger.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// The tracer this communicator records spans on (disabled unless the
    /// world had one attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The rendezvous deadline this communicator was extracted with.
    pub fn collective_timeout(&self) -> Duration {
        self.timeout
    }

    /// The world-formation epoch this communicator stamps into its tags
    /// (see [`World::set_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records the stats entry for one collective call and opens its span,
    /// tagged with the kind, logical payload bytes, analytical ring wire
    /// bytes, and group size. The span covers the blocking exchange.
    fn record_traced(&self, kind: CollectiveKind, payload_elems: u64) -> SpanGuard {
        self.stats.borrow_mut().record(kind, payload_elems, self.size as u64);
        let payload_bytes = payload_elems * FP16_BYTES;
        let n = self.size as u64;
        self.tracer.span_args(kind.name(), move || {
            vec![
                ("kind", ArgValue::Str(kind.name().to_string())),
                ("payload_bytes", ArgValue::U64(payload_bytes)),
                ("wire_bytes", ArgValue::U64(kind.ring_wire_bytes(payload_bytes, n))),
                ("group_size", ArgValue::U64(n)),
            ]
        })
    }

    /// [`Communicator::record_traced`] for one chunk of a chunked
    /// collective: same ledger entry and span, plus the sub-rendezvous
    /// coordinate so a trace shows `C` distinct chunk spans instead of one
    /// opaque whole-tensor span.
    fn record_traced_chunk(
        &self,
        kind: CollectiveKind,
        payload_elems: u64,
        chunk: (usize, usize),
    ) -> SpanGuard {
        self.stats.borrow_mut().record(kind, payload_elems, self.size as u64);
        let payload_bytes = payload_elems * FP16_BYTES;
        let n = self.size as u64;
        self.tracer.span_args(kind.name(), move || {
            vec![
                ("kind", ArgValue::Str(kind.name().to_string())),
                ("payload_bytes", ArgValue::U64(payload_bytes)),
                ("wire_bytes", ArgValue::U64(kind.ring_wire_bytes(payload_bytes, n))),
                ("group_size", ArgValue::U64(n)),
                ("chunk", ArgValue::U64(chunk.0 as u64)),
                ("chunks", ArgValue::U64(chunk.1 as u64)),
            ]
        })
    }

    /// Sleeps for the simulated ring wire time of one collective, if the
    /// world has a link cost model installed. Called after the rendezvous
    /// succeeds so every rank of the round sleeps concurrently.
    fn simulate_link(&self, kind: CollectiveKind, payload_elems: u64) {
        if let Some(model) = &self.link {
            let payload_bytes = payload_elems * FP16_BYTES;
            let secs = model.time(kind, payload_bytes, self.size as u64);
            if secs > 0.0 {
                mt_sync::thread::sleep(Duration::from_secs_f64(secs));
            }
        }
    }

    /// The **single** constructor for collective call tags. Every collective
    /// entry point in this crate builds its [`CallTag`] here, so no call
    /// site can omit the tag or hand-roll one with a wrong shape or root —
    /// `mt-lint` (rule `hand-rolled-call-tag`) rejects any other `CallTag`
    /// struct literal in collective code.
    fn call_tag(
        &self,
        op: &'static str,
        shape: &[usize],
        root: Option<usize>,
        chunk: Option<(usize, usize)>,
    ) -> CallTag {
        CallTag { op, shape: shape.to_vec(), root, chunk, epoch: self.epoch }
    }

    /// Consults the world's fault plan before a call. Returns `Err` for an
    /// injected transient failure (without consuming the call's sequence
    /// number, so the retry lands on the same coordinate), panics for an
    /// injected rank death, sleeps for an injected straggler delay.
    fn fault_gate(&self, op: &'static str) -> Result<(), CollectiveError> {
        let seq = self.seq.get();
        let Some(plan) = &self.fault_plan else {
            self.seq.set(seq + 1);
            return Ok(());
        };
        let rank = self.rank;
        let emit = |name: &'static str, kind: &'static str| {
            self.tracer.instant_args(name, || {
                vec![
                    ("op", ArgValue::Str(op.to_string())),
                    ("kind", ArgValue::Str(kind.to_string())),
                    ("rank", ArgValue::U64(rank as u64)),
                    ("seq", ArgValue::U64(seq)),
                ]
            });
        };
        match plan.poll_collective(rank, seq) {
            Some(FaultAction::Panic) => {
                emit("fault_injected", "panic");
                panic!("mt-fault: injected panic on rank {rank} at collective #{seq} ({op})");
            }
            Some(FaultAction::Delay { micros }) => {
                emit("fault_injected", "delay");
                mt_sync::thread::sleep(Duration::from_micros(micros));
            }
            Some(FaultAction::Fail) => {
                emit("fault_injected", "transient");
                return Err(CollectiveError::InjectedTransient { rank, seq });
            }
            Some(FaultAction::Recovered) => emit("fault_recovered", "transient"),
            None => {}
        }
        self.seq.set(seq + 1);
        Ok(())
    }

    /// Element-wise sum across ranks; every rank receives the full result.
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from [`Communicator::try_all_reduce`]
    /// as a panic payload.
    pub fn all_reduce(&self, x: &Tensor) -> Tensor {
        self.try_all_reduce(x).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::all_reduce`].
    pub fn try_all_reduce(&self, x: &Tensor) -> Result<Tensor, CollectiveError> {
        self.fault_gate("all_reduce")?;
        let _span = self.record_traced(CollectiveKind::AllReduce, x.numel() as u64);
        let tag = self.call_tag("all_reduce", x.shape(), None, None);
        let out =
            self.exchange.try_exchange(self.rank, tag, self.timeout, x.clone(), |deposits| {
                let mut acc = deposits[0].take().expect("deposit 0 present");
                for d in deposits.iter_mut().skip(1) {
                    acc.add_assign(d.as_ref().expect("deposit present"));
                }
                vec![acc; deposits.len()]
            })?;
        self.simulate_link(CollectiveKind::AllReduce, x.numel() as u64);
        Ok(out)
    }

    /// Element-wise maximum across ranks; every rank receives the full
    /// result. Used by the vocabulary-parallel softmax (the max-subtraction
    /// step needs the global row maximum).
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from
    /// [`Communicator::try_all_reduce_max`] as a panic payload.
    pub fn all_reduce_max(&self, x: &Tensor) -> Tensor {
        self.try_all_reduce_max(x).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::all_reduce_max`].
    pub fn try_all_reduce_max(&self, x: &Tensor) -> Result<Tensor, CollectiveError> {
        self.fault_gate("all_reduce_max")?;
        let _span = self.record_traced(CollectiveKind::AllReduce, x.numel() as u64);
        let tag = self.call_tag("all_reduce_max", x.shape(), None, None);
        let out =
            self.exchange.try_exchange(self.rank, tag, self.timeout, x.clone(), |deposits| {
                let mut acc = deposits[0].take().expect("deposit 0 present");
                for d in deposits.iter_mut().skip(1) {
                    let other = d.as_ref().expect("deposit present");
                    for (a, &b) in acc.data_mut().iter_mut().zip(other.data()) {
                        *a = a.max(b);
                    }
                }
                vec![acc; deposits.len()]
            })?;
        self.simulate_link(CollectiveKind::AllReduce, x.numel() as u64);
        Ok(out)
    }

    /// Concatenates per-rank shards along axis 0 in rank order; every rank
    /// receives the full tensor. Inverse of [`Communicator::reduce_scatter`]
    /// in the shapes it produces.
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from [`Communicator::try_all_gather`]
    /// as a panic payload.
    pub fn all_gather(&self, shard: &Tensor) -> Tensor {
        self.try_all_gather(shard).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::all_gather`].
    pub fn try_all_gather(&self, shard: &Tensor) -> Result<Tensor, CollectiveError> {
        self.fault_gate("all_gather")?;
        let full_elems = (shard.numel() * self.size) as u64;
        let _span = self.record_traced(CollectiveKind::AllGather, full_elems);
        let tag = self.call_tag("all_gather", shard.shape(), None, None);
        let out = self.exchange.try_exchange(
            self.rank,
            tag,
            self.timeout,
            shard.clone(),
            |deposits| {
                let parts: Vec<Tensor> =
                    deposits.iter().map(|d| d.as_ref().expect("deposit present").clone()).collect();
                let full = Tensor::concat_axis0(&parts);
                vec![full; parts.len()]
            },
        )?;
        self.simulate_link(CollectiveKind::AllGather, full_elems);
        Ok(out)
    }

    /// [`Communicator::all_gather`] split into `chunks` sub-rendezvous along
    /// axis 0 of the shard: chunk `j` gathers rows
    /// `chunk_rows(shard_rows, chunks, j)` of every rank's shard and the
    /// results are assembled into the same full tensor `all_gather` returns.
    /// Total payload, ledger entries, and wire bytes are identical to the
    /// unchunked call (each of the `C` rounds carries `1/C` of the rows);
    /// only the rendezvous granularity changes, which is what lets a
    /// consumer overlap computation with the remaining chunks — see
    /// [`Communicator::all_gather_chunk`] for the piecewise form.
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from
    /// [`Communicator::try_all_gather_chunked`] as a panic payload.
    pub fn all_gather_chunked(&self, shard: &Tensor, chunks: usize) -> Tensor {
        self.try_all_gather_chunked(shard, chunks).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::all_gather_chunked`].
    pub fn try_all_gather_chunked(
        &self,
        shard: &Tensor,
        chunks: usize,
    ) -> Result<Tensor, CollectiveError> {
        let n = self.size;
        let rows = shard.shape()[0];
        let row_elems = shard.numel().checked_div(rows).unwrap_or(0);
        let mut full = vec![0.0f32; shard.numel() * n];
        for j in 0..chunks {
            let slab = self.try_all_gather_chunk(shard, j, chunks)?;
            let (a, b) = chunk_rows(rows, chunks, j);
            // Rank i's rows of this chunk land at full rows i*rows + a..b.
            for i in 0..n {
                let src = &slab.data()[i * (b - a) * row_elems..(i + 1) * (b - a) * row_elems];
                full[(i * rows + a) * row_elems..(i * rows + b) * row_elems].copy_from_slice(src);
            }
        }
        let mut shape = shard.shape().to_vec();
        shape[0] = rows * n;
        Ok(Tensor::from_vec_unchecked(shape, full))
    }

    /// One sub-rendezvous of a chunked all-gather: gathers rows
    /// `chunk_rows(shard_rows, chunks, j)` of every rank's shard,
    /// concatenated in rank order (shape `[n·chunk_rows, ...]`). All ranks
    /// must issue the chunks of one logical gather in ascending `j` order —
    /// the chunk coordinate is part of the SPMD call tag, so divergence
    /// fails with [`CollectiveError::SpmdMismatch`] rather than mis-pairing
    /// rounds. Used directly by the overlapped GEMM driver, which starts
    /// consuming chunk `j` while chunk `j+1` is still in flight.
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from
    /// [`Communicator::try_all_gather_chunk`] as a panic payload.
    pub fn all_gather_chunk(&self, shard: &Tensor, j: usize, chunks: usize) -> Tensor {
        self.try_all_gather_chunk(shard, j, chunks).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::all_gather_chunk`].
    pub fn try_all_gather_chunk(
        &self,
        shard: &Tensor,
        j: usize,
        chunks: usize,
    ) -> Result<Tensor, CollectiveError> {
        self.fault_gate("all_gather")?;
        let rows = shard.shape()[0];
        let (a, b) = chunk_rows(rows, chunks, j);
        let row_elems = shard.numel().checked_div(rows).unwrap_or(0);
        let mut piece_shape = shard.shape().to_vec();
        piece_shape[0] = b - a;
        let piece = Tensor::from_vec_unchecked(
            piece_shape,
            shard.data()[a * row_elems..b * row_elems].to_vec(),
        );
        let full_elems = (piece.numel() * self.size) as u64;
        let _span = self.record_traced_chunk(CollectiveKind::AllGather, full_elems, (j, chunks));
        let tag = self.call_tag("all_gather", piece.shape(), None, Some((j, chunks)));
        let out = self.exchange.try_exchange(self.rank, tag, self.timeout, piece, |deposits| {
            let parts: Vec<Tensor> =
                deposits.iter().map(|d| d.as_ref().expect("deposit present").clone()).collect();
            let slab = Tensor::concat_axis0(&parts);
            vec![slab; parts.len()]
        })?;
        self.simulate_link(CollectiveKind::AllGather, full_elems);
        Ok(out)
    }

    /// Element-wise sums the per-rank full tensors, then scatters: rank `r`
    /// receives chunk `r` of the sum along axis 0.
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from
    /// [`Communicator::try_reduce_scatter`] as a panic payload, or panics
    /// if the tensors' axis 0 is not divisible by the group size.
    pub fn reduce_scatter(&self, x: &Tensor) -> Tensor {
        self.try_reduce_scatter(x).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::reduce_scatter`].
    pub fn try_reduce_scatter(&self, x: &Tensor) -> Result<Tensor, CollectiveError> {
        self.fault_gate("reduce_scatter")?;
        let _span = self.record_traced(CollectiveKind::ReduceScatter, x.numel() as u64);
        let n = self.size;
        let tag = self.call_tag("reduce_scatter", x.shape(), None, None);
        let out =
            self.exchange.try_exchange(self.rank, tag, self.timeout, x.clone(), |deposits| {
                let mut acc = deposits[0].take().expect("deposit 0 present");
                for d in deposits.iter_mut().skip(1) {
                    acc.add_assign(d.as_ref().expect("deposit present"));
                }
                acc.chunk_axis0(n).expect("reduce_scatter: axis 0 not divisible by group size")
            })?;
        self.simulate_link(CollectiveKind::ReduceScatter, x.numel() as u64);
        Ok(out)
    }

    /// [`Communicator::reduce_scatter`] split into `chunks` sub-rendezvous
    /// along axis 0 of the *result shard*: chunk `j` reduces and scatters
    /// rows `chunk_rows(shard_rows, chunks, j)` of every destination rank's
    /// shard, and the pieces are concatenated into the same shard
    /// `reduce_scatter` returns. Reduction order is the same ascending-rank
    /// accumulator chain as the unchunked call, so the result is
    /// bit-identical; payload, ledger entries, and wire bytes also match
    /// exactly (each round carries `1/C` of the rows).
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from
    /// [`Communicator::try_reduce_scatter_chunked`] as a panic payload, or
    /// panics if axis 0 is not divisible by the group size.
    pub fn reduce_scatter_chunked(&self, x: &Tensor, chunks: usize) -> Tensor {
        self.try_reduce_scatter_chunked(x, chunks).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::reduce_scatter_chunked`].
    pub fn try_reduce_scatter_chunked(
        &self,
        x: &Tensor,
        chunks: usize,
    ) -> Result<Tensor, CollectiveError> {
        let mut pieces = Vec::with_capacity(chunks);
        for j in 0..chunks {
            pieces.push(self.try_reduce_scatter_chunk(x, j, chunks)?);
        }
        // Chunks partition the shard's rows in ascending order, so the
        // shard is just their concatenation.
        Ok(Tensor::concat_axis0(&pieces))
    }

    /// One sub-rendezvous of a chunked reduce-scatter: reduces rows
    /// `chunk_rows(shard_rows, chunks, j)` of every destination's shard and
    /// hands each rank its piece (shape `[chunk_rows, ...]`). The chunk
    /// coordinate is part of the SPMD call tag; all ranks must issue chunks
    /// in ascending `j` order.
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from
    /// [`Communicator::try_reduce_scatter_chunk`] as a panic payload, or
    /// panics if axis 0 is not divisible by the group size.
    pub fn reduce_scatter_chunk(&self, x: &Tensor, j: usize, chunks: usize) -> Tensor {
        self.try_reduce_scatter_chunk(x, j, chunks).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::reduce_scatter_chunk`].
    pub fn try_reduce_scatter_chunk(
        &self,
        x: &Tensor,
        j: usize,
        chunks: usize,
    ) -> Result<Tensor, CollectiveError> {
        self.fault_gate("reduce_scatter")?;
        let n = self.size;
        let rows = x.shape()[0];
        assert!(rows.is_multiple_of(n), "reduce_scatter_chunk: axis 0 not divisible by group size");
        let shard_rows = rows / n;
        let (a, b) = chunk_rows(shard_rows, chunks, j);
        let row_elems = x.numel().checked_div(rows).unwrap_or(0);
        // This rank's contribution to chunk j: for every destination d, its
        // rows [a, b) of d's shard — concatenated in destination order.
        let mut contrib = Vec::with_capacity(n * (b - a) * row_elems);
        for d in 0..n {
            let lo = (d * shard_rows + a) * row_elems;
            let hi = (d * shard_rows + b) * row_elems;
            contrib.extend_from_slice(&x.data()[lo..hi]);
        }
        let mut contrib_shape = x.shape().to_vec();
        contrib_shape[0] = n * (b - a);
        let contrib = Tensor::from_vec_unchecked(contrib_shape, contrib);
        let payload = contrib.numel() as u64;
        let _span = self.record_traced_chunk(CollectiveKind::ReduceScatter, payload, (j, chunks));
        let tag = self.call_tag("reduce_scatter", contrib.shape(), None, Some((j, chunks)));
        let out =
            self.exchange.try_exchange(self.rank, tag, self.timeout, contrib, |deposits| {
                let mut acc = deposits[0].take().expect("deposit 0 present");
                for d in deposits.iter_mut().skip(1) {
                    acc.add_assign(d.as_ref().expect("deposit present"));
                }
                acc.chunk_axis0(n).expect("chunk contribution rows divisible by group size")
            })?;
        self.simulate_link(CollectiveKind::ReduceScatter, payload);
        Ok(out)
    }

    /// Broadcasts `root`'s tensor to every rank. Non-root contributions are
    /// ignored (pass anything of the right type, e.g. an empty tensor), so
    /// the SPMD tag checks only the op and root, not the shape.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range, or raises the [`CollectiveError`]
    /// from [`Communicator::try_broadcast`] as a panic payload.
    pub fn broadcast(&self, x: &Tensor, root: usize) -> Tensor {
        self.try_broadcast(x, root).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::broadcast`].
    pub fn try_broadcast(&self, x: &Tensor, root: usize) -> Result<Tensor, CollectiveError> {
        assert!(root < self.size, "broadcast: root {root} out of range");
        self.fault_gate("broadcast")?;
        let _span = self.record_traced(CollectiveKind::Broadcast, x.numel() as u64);
        let tag = self.call_tag("broadcast", &[], Some(root), None);
        let out =
            self.exchange.try_exchange(self.rank, tag, self.timeout, x.clone(), |deposits| {
                let chosen = deposits[root].take().expect("root deposit present");
                vec![chosen; deposits.len()]
            })?;
        self.simulate_link(CollectiveKind::Broadcast, x.numel() as u64);
        Ok(out)
    }

    /// Synchronizes all ranks without moving data.
    ///
    /// # Panics
    ///
    /// Raises the [`CollectiveError`] from [`Communicator::try_barrier`] as
    /// a panic payload.
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::barrier`].
    pub fn try_barrier(&self) -> Result<(), CollectiveError> {
        self.fault_gate("barrier")?;
        let _span = self.record_traced(CollectiveKind::Barrier, 0);
        let tag = self.call_tag("barrier", &[], None, None);
        self.exchange
            .try_exchange(self.rank, tag, self.timeout, Tensor::zeros(&[0]), |d| {
                vec![Tensor::zeros(&[0]); d.len()]
            })
            .map(|_| ())
    }

    /// Sends `x` to rank `to` (non-blocking; the channel is unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range, or raises the [`CollectiveError`]
    /// from [`Communicator::try_send`] as a panic payload.
    pub fn send(&self, to: usize, x: &Tensor) {
        self.try_send(to, x).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::send`].
    pub fn try_send(&self, to: usize, x: &Tensor) -> Result<(), CollectiveError> {
        assert!(to < self.size, "send: destination {to} out of range");
        self.fault_gate("send")?;
        let _span = self.record_traced(CollectiveKind::SendRecv, x.numel() as u64);
        self.outboxes[to]
            .send(x.clone())
            .map_err(|_| CollectiveError::PeerDisconnected { rank: self.rank, peer: to })
    }

    /// Blocks until a tensor arrives from rank `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range, or raises the [`CollectiveError`]
    /// from [`Communicator::try_recv`] as a panic payload.
    pub fn recv(&self, from: usize) -> Tensor {
        self.try_recv(from).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`Communicator::recv`]: waits up to the world's collective
    /// timeout, failing early if the sending rank dies.
    pub fn try_recv(&self, from: usize) -> Result<Tensor, CollectiveError> {
        assert!(from < self.size, "recv: source {from} out of range");
        self.fault_gate("recv")?;
        let _span = self.tracer.span_args("recv", || vec![("from", ArgValue::U64(from as u64))]);
        let start = Instant::now();
        loop {
            if let Some(dead_rank) = self.exchange.first_dead() {
                return Err(CollectiveError::RankDead { rank: self.rank, dead_rank });
            }
            let Some(remaining) = self.timeout.checked_sub(start.elapsed()) else {
                return Err(CollectiveError::Timeout {
                    rank: self.rank,
                    op: "recv",
                    waited: start.elapsed(),
                });
            };
            match self.inboxes[from].recv_timeout(remaining.min(RECV_POLL)) {
                Ok(t) => return Ok(t),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CollectiveError::PeerDisconnected { rank: self.rank, peer: from })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_collectives_emit_spans_matching_stats() {
        let tracer = Tracer::enabled();
        let stats = World::run_traced(4, &tracer, |c| {
            let x = Tensor::from_fn(&[6], |i| i as f32);
            c.all_reduce(&x);
            let shard = Tensor::full(&[2], c.rank() as f32);
            c.all_gather(&shard);
            c.barrier();
            c.stats()
        });
        let events = tracer.events();
        // Every rank records one span per collective, on its own track.
        for rank in 0..4u32 {
            let lane: Vec<_> = events.iter().filter(|e| e.track == rank).collect();
            let names: Vec<&str> = lane.iter().map(|e| e.name.as_ref()).collect();
            assert_eq!(names, ["all_reduce", "all_gather", "barrier"], "rank {rank}");
        }
        // Span wire-bytes args agree exactly with the CommStats ledger and
        // the analytical ring formula.
        let per_rank_wire: u64 = events
            .iter()
            .filter(|e| e.track == 0)
            .flat_map(|e| e.args.iter())
            .filter(|(k, _)| *k == "wire_bytes")
            .map(|(_, v)| match v {
                ArgValue::U64(b) => *b,
                other => panic!("wire_bytes arg not U64: {other:?}"),
            })
            .sum();
        assert_eq!(per_rank_wire, stats[0].total_wire_bytes());
        assert_eq!(
            per_rank_wire,
            CollectiveKind::AllReduce.ring_wire_bytes(6 * FP16_BYTES, 4)
                + CollectiveKind::AllGather.ring_wire_bytes(4 * 2 * FP16_BYTES, 4)
        );
    }

    #[test]
    fn untraced_world_records_no_events() {
        let tracer = Tracer::disabled();
        World::run_traced(2, &tracer, |c| {
            c.all_reduce(&Tensor::full(&[2], 1.0));
        });
        assert!(tracer.events().is_empty());
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let out = World::run(4, |c| {
            let x = Tensor::from_fn(&[3], |i| (c.rank() * 10 + i) as f32);
            c.all_reduce(&x)
        });
        // Sum over ranks of [10r, 10r+1, 10r+2] = [60, 64, 68].
        for t in &out {
            assert_eq!(t.data(), &[60., 64., 68.]);
        }
    }

    #[test]
    fn all_reduce_max_takes_elementwise_maximum() {
        let out = World::run(3, |c| {
            // Rank r contributes [r, -r, r²].
            let r = c.rank() as f32;
            let x = Tensor::from_vec(vec![3], vec![r, -r, r * r]).unwrap();
            c.all_reduce_max(&x)
        });
        for t in &out {
            assert_eq!(t.data(), &[2.0, 0.0, 4.0]);
        }
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let out = World::run(3, |c| {
            let shard = Tensor::full(&[1, 2], c.rank() as f32);
            c.all_gather(&shard)
        });
        for t in &out {
            assert_eq!(t.shape(), &[3, 2]);
            assert_eq!(t.data(), &[0., 0., 1., 1., 2., 2.]);
        }
    }

    #[test]
    fn reduce_scatter_gives_rank_chunks_of_the_sum() {
        let out = World::run(2, |c| {
            // Both ranks contribute [0,1,2,3]; sum = [0,2,4,6].
            let x = Tensor::from_fn(&[4, 1], |i| i as f32);
            (c.rank(), c.reduce_scatter(&x))
        });
        for (rank, t) in &out {
            assert_eq!(t.shape(), &[2, 1]);
            match rank {
                0 => assert_eq!(t.data(), &[0., 2.]),
                1 => assert_eq!(t.data(), &[4., 6.]),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        // The ring identity the paper leans on, executed for real.
        let out = World::run(4, |c| {
            let x = Tensor::from_fn(&[8, 2], |i| ((c.rank() + 1) * (i + 1)) as f32);
            let ar = c.all_reduce(&x);
            let rs = c.reduce_scatter(&x);
            let ag = c.all_gather(&rs);
            (ar, ag)
        });
        for (ar, ag) in &out {
            assert_eq!(ar, ag);
        }
    }

    #[test]
    fn broadcast_propagates_root_value() {
        let out = World::run(3, |c| {
            let x = Tensor::full(&[2], c.rank() as f32);
            c.broadcast(&x, 1)
        });
        for t in &out {
            assert_eq!(t.data(), &[1., 1.]);
        }
    }

    #[test]
    fn send_recv_roundtrip() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, &Tensor::full(&[2], 7.0));
                c.recv(1)
            } else {
                let got = c.recv(0);
                c.send(0, &got.scale(2.0));
                got
            }
        });
        assert_eq!(out[0].data(), &[14., 14.]);
        assert_eq!(out[1].data(), &[7., 7.]);
    }

    #[test]
    fn repeated_collectives_reuse_the_slot_safely() {
        let out = World::run(4, |c| {
            let mut acc = 0.0;
            for round in 0..50 {
                let x = Tensor::full(&[1], (c.rank() + round) as f32);
                acc += c.all_reduce(&x).data()[0];
            }
            acc
        });
        // Round r: sum over ranks of (rank + r) = 6 + 4r. Total over 50 rounds.
        let expect: f32 = (0..50).map(|r| 6.0 + 4.0 * r as f32).sum();
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn stats_record_bandwidth_identity() {
        let stats = World::run(4, |c| {
            let x = Tensor::zeros(&[16, 4]);
            let _ = c.all_reduce(&x);
            let shard = Tensor::zeros(&[4, 4]);
            let _ = c.all_gather(&shard);
            let _ = c.reduce_scatter(&x);
            c.stats()
        });
        for s in &stats {
            let ar = s.kind(CollectiveKind::AllReduce).wire_bytes;
            let ag = s.kind(CollectiveKind::AllGather).wire_bytes;
            let rs = s.kind(CollectiveKind::ReduceScatter).wire_bytes;
            assert_eq!(ar, ag + rs, "all-reduce == all-gather + reduce-scatter wire bytes");
        }
    }

    #[test]
    fn world_size_one_is_trivial() {
        let out = World::run(1, |c| {
            let x = Tensor::full(&[3], 5.0);
            let ar = c.all_reduce(&x);
            let ag = c.all_gather(&x);
            let rs = c.reduce_scatter(&x.reshape(&[1, 3]).unwrap());
            (ar, ag, rs)
        });
        assert_eq!(out[0].0.data(), &[5., 5., 5.]);
        assert_eq!(out[0].1.shape(), &[3]);
        assert_eq!(out[0].2.shape(), &[1, 3]);
    }

    #[test]
    fn chunk_rows_partitions_exactly() {
        for rows in [0usize, 1, 5, 7, 8, 64] {
            for chunks in [1usize, 2, 3, 4, 7, 11] {
                let mut covered = 0;
                for j in 0..chunks {
                    let (a, b) = chunk_rows(rows, chunks, j);
                    assert_eq!(a, covered, "rows={rows} chunks={chunks} j={j}");
                    assert!(b >= a);
                    covered = b;
                }
                assert_eq!(covered, rows);
            }
        }
    }

    #[test]
    fn all_gather_chunked_matches_all_gather_bitwise() {
        // Ragged: 7 rows per shard over 3 chunks (3+2+2 is NOT the split;
        // chunk_rows gives 2+3+2) with 3 ranks.
        for chunks in [1usize, 2, 3, 7, 9] {
            let out = World::run(3, |c| {
                let shard = Tensor::from_fn(&[7, 2], |i| (c.rank() * 100 + i) as f32);
                (c.all_gather(&shard), c.all_gather_chunked(&shard, chunks))
            });
            for (whole, chunked) in &out {
                assert_eq!(whole.shape(), chunked.shape(), "chunks={chunks}");
                assert_eq!(whole.data(), chunked.data(), "chunks={chunks}");
            }
        }
    }

    #[test]
    fn reduce_scatter_chunked_matches_reduce_scatter_bitwise() {
        for chunks in [1usize, 2, 3, 5] {
            let out = World::run(2, |c| {
                // 10 rows → 5-row shards; values vary per rank so the
                // ascending-rank sum order matters.
                let x = Tensor::from_fn(&[10, 3], |i| (c.rank() + 1) as f32 * 0.3 + i as f32);
                (c.reduce_scatter(&x), c.reduce_scatter_chunked(&x, chunks))
            });
            for (whole, chunked) in &out {
                assert_eq!(whole.shape(), chunked.shape(), "chunks={chunks}");
                let wb: Vec<u32> = whole.data().iter().map(|v| v.to_bits()).collect();
                let cb: Vec<u32> = chunked.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(wb, cb, "chunks={chunks}");
            }
        }
    }

    #[test]
    fn chunked_collectives_keep_wire_bytes_identical() {
        let unchunked = World::run(4, |c| {
            let shard = Tensor::zeros(&[8, 4]);
            let _ = c.all_gather(&shard);
            let x = Tensor::zeros(&[32, 4]);
            let _ = c.reduce_scatter(&x);
            c.stats()
        });
        let chunked = World::run(4, |c| {
            let shard = Tensor::zeros(&[8, 4]);
            let _ = c.all_gather_chunked(&shard, 3);
            let x = Tensor::zeros(&[32, 4]);
            let _ = c.reduce_scatter_chunked(&x, 3);
            c.stats()
        });
        for (u, c) in unchunked.iter().zip(&chunked) {
            let kinds = [CollectiveKind::AllGather, CollectiveKind::ReduceScatter];
            for kind in kinds {
                assert_eq!(u.kind(kind).payload_bytes, c.kind(kind).payload_bytes, "{kind:?}");
                assert_eq!(u.kind(kind).wire_bytes, c.kind(kind).wire_bytes, "{kind:?}");
            }
            // The chunked run made 3 calls per collective instead of 1.
            assert_eq!(c.kind(CollectiveKind::AllGather).calls, 3);
        }
    }

    #[test]
    fn chunk_spans_carry_the_chunk_coordinate() {
        let tracer = Tracer::enabled();
        World::run_traced(2, &tracer, |c| {
            let shard = Tensor::zeros(&[4, 2]);
            c.all_gather_chunked(&shard, 2);
        });
        let lane: Vec<_> = tracer.events().into_iter().filter(|e| e.track == 0).collect();
        assert_eq!(lane.len(), 2, "one span per chunk");
        for (j, ev) in lane.iter().enumerate() {
            assert_eq!(ev.name.as_ref(), "all_gather");
            let chunk = ev.args.iter().find(|(k, _)| *k == "chunk").map(|(_, v)| v.clone());
            assert_eq!(chunk, Some(ArgValue::U64(j as u64)));
        }
    }

    #[test]
    fn mismatched_chunk_order_is_an_spmd_error() {
        let mut world = World::new(2);
        world.set_collective_timeout(Duration::from_secs(5));
        let out = world.run_fallible(|c| {
            let shard = Tensor::zeros(&[4, 2]);
            // Rank 0 starts at chunk 0; rank 1 skips to chunk 1.
            let j = if c.rank() == 0 { 0 } else { 1 };
            c.try_all_gather_chunk(&shard, j, 2)?;
            Ok(())
        });
        assert!(
            out.iter()
                .any(|r| matches!(r, Err(CollectiveError::SpmdMismatch { expected, found, .. })
                    if expected.chunk != found.chunk)),
            "{out:?}"
        );
    }

    #[test]
    fn cross_epoch_rendezvous_is_an_spmd_error_not_a_deadlock() {
        // A straggler communicator extracted before an elastic re-formation
        // (epoch 0) wanders into a round of the re-formed world (epoch 1):
        // the rendezvous must fail fast naming both epochs, not hang or mix
        // data across formations.
        let mut world = World::new(2);
        world.set_collective_timeout(Duration::from_secs(2));
        let straggler = world.communicator(0);
        world.set_epoch(1);
        let reformed = world.communicator(1);
        let results = mt_sync::thread::scope(|scope| {
            let handles = [
                scope.spawn(move || straggler.try_all_reduce(&Tensor::full(&[2], 1.0))),
                scope.spawn(move || reformed.try_all_reduce(&Tensor::full(&[2], 1.0))),
            ];
            handles.map(|h| h.join().expect("try_* does not panic"))
        });
        assert!(
            results.iter().any(|r| matches!(
                r,
                Err(CollectiveError::SpmdMismatch { expected, found, .. })
                    if expected.epoch != found.epoch
            )),
            "{results:?}"
        );
    }

    #[test]
    fn simulated_link_sleeps_but_preserves_results() {
        let mut world = World::new(2);
        // Absurdly slow link so the sleep is measurable in CI: ~1 ms per
        // collective at these payloads.
        world.set_link_cost(CommCostModel { alpha_s: 500e-6, beta_bytes_per_s: 1e9 });
        let out = world.run_fallible(|c| {
            let x = Tensor::full(&[4], (c.rank() + 1) as f32);
            c.try_all_reduce(&x)
        });
        for r in out {
            assert_eq!(r.expect("healthy world").data(), &[3., 3., 3., 3.]);
        }
    }

    #[test]
    fn try_collectives_succeed_on_the_healthy_path() {
        let mut world = World::new(3);
        let out = world.run_fallible(|c| {
            let x = Tensor::full(&[2], (c.rank() + 1) as f32);
            let sum = c.try_all_reduce(&x)?;
            c.try_barrier()?;
            Ok(sum.data()[0])
        });
        for r in out {
            assert_eq!(r.expect("healthy world"), 6.0);
        }
    }
}
