//! # mt-collectives
//!
//! Simulated multi-rank communication for the reproduction of
//! *"Reducing Activation Recomputation in Large Transformer Models"*.
//!
//! The paper's tensor/sequence-parallel transformer runs one worker per GPU
//! and communicates through NCCL collectives. Here each *rank* is an OS
//! thread and the collectives are rendezvous operations over shared memory —
//! semantically identical (what data lands on which rank), which is all the
//! paper's memory and communication-volume arguments depend on.
//!
//! Two layers are provided:
//!
//! * A **runtime** ([`World`], [`Communicator`]): spawn `n` rank threads,
//!   give each a communicator, and call `all_reduce` / `all_gather` /
//!   `reduce_scatter` / `broadcast` / `send` / `recv` in SPMD style. Every
//!   call is recorded in a [`CommStats`] ledger, including the *wire bytes* a
//!   ring implementation of the collective would move — which lets tests
//!   verify the paper's claim (Section 4.2.2) that tensor parallelism
//!   (2 all-reduces per layer per pass) and tensor+sequence parallelism
//!   (2 all-gathers + 2 reduce-scatters) use identical bandwidth.
//! * A **cost model** ([`cost::CommCostModel`]): α–β timing of ring
//!   collectives used by the `mt-perf` layer-timing model.
//!
//! ## Example
//!
//! ```
//! use mt_collectives::World;
//! use mt_tensor::Tensor;
//!
//! let sums = World::run(4, |comm| {
//!     let x = Tensor::full(&[2], (comm.rank() + 1) as f32);
//!     comm.all_reduce(&x).data()[0]
//! });
//! assert_eq!(sums, vec![10.0; 4]); // 1+2+3+4 on every rank
//! ```

#![warn(missing_docs)]

pub mod cost;
mod error;
pub mod grid;
mod group;
pub mod stats;

pub use error::{CallTag, CollectiveError};
pub use grid::{run_grid, run_grid3, Grid3Comm, GridComm};
pub use group::{chunk_rows, Communicator, World, DEFAULT_COLLECTIVE_TIMEOUT};
pub use stats::{CollectiveKind, CommStats, KindStats, FP16_BYTES};
