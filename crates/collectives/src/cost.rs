//! α–β timing model for ring collectives.
//!
//! Used by `mt-perf` to price the `f`/`f̄` (all-reduce) and `g`/`ḡ`
//! (all-gather / reduce-scatter) operators of the paper's Figures 4 and 5.

use crate::stats::CollectiveKind;
use serde::{Deserialize, Serialize};

/// Latency/bandwidth model of one interconnect.
///
/// Time of a collective over payload `B` bytes on `n` ranks is
/// `steps(n) · α + wire_bytes(B, n) / β`, where `steps` is the number of
/// ring phases and `wire_bytes` the per-rank traffic from
/// [`CollectiveKind::ring_wire_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommCostModel {
    /// Per-step launch/synchronization latency, seconds.
    pub alpha_s: f64,
    /// Per-rank link bandwidth, bytes/second (e.g. NVLink3 ≈ 300 GB/s
    /// effective for ring traffic inside a DGX A100).
    pub beta_bytes_per_s: f64,
}

impl CommCostModel {
    /// NVLink/NVSwitch inside a DGX A100 node (the paper's tensor-parallel
    /// domain): 300 GB/s effective ring bandwidth, ~8 µs per ring step.
    pub fn nvlink_dgx_a100() -> Self {
        CommCostModel { alpha_s: 8e-6, beta_bytes_per_s: 300e9 }
    }

    /// InfiniBand HDR between nodes (the paper's pipeline-parallel domain):
    /// 8 × 200 Gb/s HCAs per node ≈ 25 GB/s per GPU, ~15 µs latency.
    pub fn infiniband_hdr() -> Self {
        CommCostModel { alpha_s: 15e-6, beta_bytes_per_s: 25e9 }
    }

    /// Number of ring phases for a collective over `n` ranks.
    pub fn ring_steps(kind: CollectiveKind, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        match kind {
            CollectiveKind::AllReduce => 2 * (n - 1),
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => n - 1,
            CollectiveKind::Broadcast => n - 1,
            CollectiveKind::SendRecv => 1,
            CollectiveKind::Barrier => 1,
        }
    }

    /// Seconds to run `kind` over a logical payload of `payload_bytes` on
    /// `n` ranks.
    pub fn time(&self, kind: CollectiveKind, payload_bytes: u64, n: u64) -> f64 {
        let steps = Self::ring_steps(kind, n) as f64;
        let wire = kind.ring_wire_bytes(payload_bytes, n) as f64;
        steps * self.alpha_s + wire / self.beta_bytes_per_s
    }

    /// Convenience: all-reduce seconds.
    pub fn all_reduce(&self, payload_bytes: u64, n: u64) -> f64 {
        self.time(CollectiveKind::AllReduce, payload_bytes, n)
    }

    /// Convenience: all-gather seconds.
    pub fn all_gather(&self, payload_bytes: u64, n: u64) -> f64 {
        self.time(CollectiveKind::AllGather, payload_bytes, n)
    }

    /// Convenience: reduce-scatter seconds.
    pub fn reduce_scatter(&self, payload_bytes: u64, n: u64) -> f64 {
        self.time(CollectiveKind::ReduceScatter, payload_bytes, n)
    }

    /// Convenience: point-to-point seconds (pipeline stage boundary).
    pub fn send_recv(&self, payload_bytes: u64) -> f64 {
        self.time(CollectiveKind::SendRecv, payload_bytes, 2)
    }
}

/// Two-level (hierarchical) collective cost: intra-node ring over the fast
/// fabric, inter-node ring over the slow one — how NCCL actually runs an
/// all-reduce that spans DGX nodes.
///
/// `all_reduce(B)` over `n = k·m` ranks (`k` per node, `m` nodes) is priced
/// as intra-node reduce-scatter of `B`, inter-node all-reduce of `B/k`, and
/// intra-node all-gather of `B` — the standard decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalCostModel {
    /// Fast intra-node fabric (NVLink).
    pub intra: CommCostModel,
    /// Slow inter-node fabric (InfiniBand).
    pub inter: CommCostModel,
    /// Ranks per node (`k`).
    pub ranks_per_node: u64,
}

impl HierarchicalCostModel {
    /// The paper's platform: 8×A100 DGX nodes on HDR InfiniBand.
    pub fn dgx_a100() -> Self {
        HierarchicalCostModel {
            intra: CommCostModel::nvlink_dgx_a100(),
            inter: CommCostModel::infiniband_hdr(),
            ranks_per_node: 8,
        }
    }

    /// Seconds for a hierarchical all-reduce of `payload_bytes` over
    /// `total_ranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `total_ranks` is not a multiple of `ranks_per_node` (and
    /// not smaller than it — a single-node group uses the intra fabric
    /// alone).
    pub fn all_reduce(&self, payload_bytes: u64, total_ranks: u64) -> f64 {
        let k = self.ranks_per_node;
        if total_ranks <= k {
            return self.intra.all_reduce(payload_bytes, total_ranks);
        }
        assert_eq!(
            total_ranks % k,
            0,
            "total ranks {total_ranks} must be a multiple of ranks/node {k}"
        );
        let nodes = total_ranks / k;
        self.intra.reduce_scatter(payload_bytes, k)
            + self.inter.all_reduce(payload_bytes / k, nodes)
            + self.intra.all_gather(payload_bytes, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_beats_flat_inter_node_ring() {
        // Pushing the whole payload around a flat IB ring is slower than
        // reducing within nodes first.
        let h = HierarchicalCostModel::dgx_a100();
        let bytes = 1 << 30; // 1 GiB of gradients
        let flat = h.inter.all_reduce(bytes, 64);
        let hier = h.all_reduce(bytes, 64);
        assert!(hier < flat, "hierarchical {hier} vs flat {flat}");
    }

    #[test]
    fn single_node_degenerates_to_nvlink() {
        let h = HierarchicalCostModel::dgx_a100();
        let bytes = 100 << 20;
        assert_eq!(h.all_reduce(bytes, 8), h.intra.all_reduce(bytes, 8));
        assert_eq!(h.all_reduce(bytes, 4), h.intra.all_reduce(bytes, 4));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_partial_nodes() {
        let _ = HierarchicalCostModel::dgx_a100().all_reduce(1 << 20, 12);
    }

    #[test]
    fn bandwidth_identity_holds_in_time_up_to_latency() {
        // Section 4.2.2: an all-reduce and the RS+AG pair move the same
        // bytes. The α terms also agree for ring algorithms (2(n-1) steps
        // either way), so the *times* are equal too.
        let m = CommCostModel::nvlink_dgx_a100();
        for n in [2, 4, 8] {
            let b = 100 << 20;
            let ar = m.all_reduce(b, n);
            let pair = m.reduce_scatter(b, n) + m.all_gather(b, n);
            assert!((ar - pair).abs() < 1e-12, "n={n}: {ar} vs {pair}");
        }
    }

    #[test]
    fn bigger_payloads_take_longer() {
        let m = CommCostModel::nvlink_dgx_a100();
        assert!(m.all_reduce(200 << 20, 8) > m.all_reduce(100 << 20, 8));
    }

    #[test]
    fn single_rank_is_free() {
        let m = CommCostModel::nvlink_dgx_a100();
        assert_eq!(m.all_reduce(1 << 20, 1), 0.0);
    }

    #[test]
    fn sane_magnitude_for_paper_scale() {
        // 22B config: all-reduce of s·b·h fp16 elements = 2048·4·6144·2 bytes
        // ≈ 100 MB over 8 NVLink ranks should land in the hundreds of µs.
        let m = CommCostModel::nvlink_dgx_a100();
        let bytes = 2048 * 4 * 6144 * 2;
        let t = m.all_reduce(bytes, 8);
        assert!(t > 100e-6 && t < 2e-3, "all-reduce time {t}s out of expected range");
    }
}
