//! Error types for the hardened collectives runtime.

use std::fmt;
use std::time::Duration;

/// Identity of one collective call, used to detect SPMD misuse: every rank
/// of a round must issue the same operation with the same shape and root.
///
/// The tag is deposited by the first rank to arrive at the rendezvous and
/// compared by every later rank, so a mismatched-collective bug (one rank
/// in `all_reduce`, another in `all_gather`; or mismatched shapes) surfaces
/// as [`CollectiveError::SpmdMismatch`] in release builds instead of a
/// silent deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallTag {
    /// Operation name (`"all_reduce"`, `"all_gather"`, ...). Distinguishes
    /// ops that share a [`CollectiveKind`](crate::CollectiveKind), e.g.
    /// `all_reduce` vs `all_reduce_max`.
    pub op: &'static str,
    /// Shape of the tensor each rank contributes.
    pub shape: Vec<usize>,
    /// Root rank, for rooted collectives (`broadcast`).
    pub root: Option<usize>,
    /// Sub-rendezvous coordinate `(index, count)` for chunked collectives.
    /// `None` for whole-tensor rounds. Each chunk of a chunked collective is
    /// its own rendezvous, so a rank issuing chunk 2 while a peer issues
    /// chunk 3 of the same op is an SPMD mismatch, not a silent reorder.
    pub chunk: Option<(usize, usize)>,
    /// World-formation epoch the call belongs to. A fresh world is epoch 0;
    /// every elastic re-formation after a rank death bumps it. A straggler
    /// rank still replaying the old epoch that wanders into a re-formed
    /// world's round therefore surfaces as
    /// [`CollectiveError::SpmdMismatch`] naming both epochs, instead of a
    /// silent deadlock or a cross-epoch data mixup.
    pub epoch: u64,
}

impl fmt::Display for CallTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(shape={:?}", self.op, self.shape)?;
        if let Some(root) = self.root {
            write!(f, ", root={root}")?;
        }
        if let Some((j, c)) = self.chunk {
            write!(f, ", chunk={j}/{c}")?;
        }
        if self.epoch != 0 {
            write!(f, ", epoch={}", self.epoch)?;
        }
        write!(f, ")")
    }
}

/// Why a collective or point-to-point operation failed.
///
/// Returned by the `try_*` methods on [`Communicator`](crate::Communicator);
/// the infallible methods raise the same error as a panic payload, which
/// [`World::run_fallible`](crate::World::run_fallible) catches and converts
/// back into an `Err`, so no caller ever hangs on a lost rank.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveError {
    /// The rendezvous deadline elapsed before every rank arrived.
    Timeout {
        /// Rank that observed the timeout.
        rank: usize,
        /// Operation that timed out.
        op: &'static str,
        /// How long the rank waited.
        waited: Duration,
    },
    /// A participating rank died (panicked); the operation can never
    /// complete.
    RankDead {
        /// Rank that observed the failure.
        rank: usize,
        /// The rank that is known dead.
        dead_rank: usize,
    },
    /// Two ranks issued different collectives (or the same collective with
    /// different shapes/roots) into the same round — an SPMD bug.
    SpmdMismatch {
        /// Rank that observed the mismatch.
        rank: usize,
        /// Tag deposited by the first rank of the round. Boxed to keep the
        /// error (and every `Result` carrying it) pointer-sized-ish; the
        /// mismatch path is already the slow path.
        expected: Box<CallTag>,
        /// Tag this rank (or the mismatching rank) brought.
        found: Box<CallTag>,
    },
    /// A point-to-point peer's channel endpoint is gone.
    PeerDisconnected {
        /// Rank that observed the failure.
        rank: usize,
        /// The peer whose endpoint hung up.
        peer: usize,
    },
    /// A transient failure injected by the world's fault plan. Retrying the
    /// same call succeeds.
    InjectedTransient {
        /// Rank the fault was injected on.
        rank: usize,
        /// The rank's collective sequence number the fault targeted.
        seq: u64,
    },
}

impl CollectiveError {
    /// Short machine-readable label (`"timeout"`, `"rank_dead"`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            CollectiveError::Timeout { .. } => "timeout",
            CollectiveError::RankDead { .. } => "rank_dead",
            CollectiveError::SpmdMismatch { .. } => "spmd_mismatch",
            CollectiveError::PeerDisconnected { .. } => "peer_disconnected",
            CollectiveError::InjectedTransient { .. } => "injected_transient",
        }
    }
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::Timeout { rank, op, waited } => {
                write!(f, "rank {rank}: {op} timed out after {waited:?} waiting for peers")
            }
            CollectiveError::RankDead { rank, dead_rank } => {
                write!(f, "rank {rank}: collective aborted, rank {dead_rank} is dead")
            }
            CollectiveError::SpmdMismatch { rank, expected, found } => {
                write!(f, "rank {rank}: SPMD mismatch, round started as {expected} but got {found}")
            }
            CollectiveError::PeerDisconnected { rank, peer } => {
                write!(f, "rank {rank}: peer {peer} disconnected")
            }
            CollectiveError::InjectedTransient { rank, seq } => {
                write!(f, "rank {rank}: injected transient failure at collective #{seq}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_coordinates() {
        let e = CollectiveError::SpmdMismatch {
            rank: 1,
            expected: Box::new(CallTag {
                op: "all_reduce",
                shape: vec![2, 3],
                root: None,
                chunk: None,
                epoch: 0,
            }),
            found: Box::new(CallTag {
                op: "broadcast",
                shape: vec![2, 3],
                root: Some(0),
                chunk: None,
                epoch: 0,
            }),
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(msg.contains("all_reduce(shape=[2, 3])"), "{msg}");
        assert!(msg.contains("broadcast(shape=[2, 3], root=0)"), "{msg}");
        assert_eq!(e.label(), "spmd_mismatch");
    }

    #[test]
    fn display_names_the_chunk_coordinate() {
        let t = CallTag {
            op: "all_gather",
            shape: vec![4, 8],
            root: None,
            chunk: Some((1, 4)),
            epoch: 0,
        };
        assert_eq!(t.to_string(), "all_gather(shape=[4, 8], chunk=1/4)");
    }

    #[test]
    fn display_names_the_epoch_after_a_reform() {
        // Epoch 0 (a never-reformed world) stays out of the rendering so
        // ordinary mismatch messages keep their familiar shape.
        let t = CallTag { op: "barrier", shape: vec![], root: None, chunk: None, epoch: 2 };
        assert_eq!(t.to_string(), "barrier(shape=[], epoch=2)");
    }
}
