//! Two-dimensional process grids: tensor-parallel groups inside
//! pipeline-parallel stages, the layout the paper's Table 3 configurations
//! use (`t = 8` ranks per stage × `p` stages).

use crate::group::{Communicator, World};

/// A rank's view of a `tp × pp` grid: a collective communicator over its
/// tensor-parallel group (its pipeline stage) and a point-to-point
/// communicator spanning the whole grid for stage-boundary transfers.
pub struct GridComm {
    /// Pipeline stage index in `0..pp`.
    pub stage: usize,
    /// Rank within the stage's tensor-parallel group, `0..tp`.
    pub tp_rank: usize,
    /// Collectives within this stage (size `tp`).
    pub tp: Communicator,
    /// Point-to-point across the whole grid (size `tp·pp`); global rank is
    /// `stage · tp + tp_rank`.
    pub grid: Communicator,
}

impl std::fmt::Debug for GridComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridComm")
            .field("stage", &self.stage)
            .field("tp_rank", &self.tp_rank)
            .finish()
    }
}

impl GridComm {
    /// Pipeline depth of the grid.
    pub fn pp(&self) -> usize {
        self.grid.size() / self.tp.size()
    }

    /// Global rank of the same tensor-parallel position one stage later, if
    /// any.
    pub fn next_stage_rank(&self) -> Option<usize> {
        (self.stage + 1 < self.pp()).then(|| (self.stage + 1) * self.tp.size() + self.tp_rank)
    }

    /// Global rank of the same tensor-parallel position one stage earlier,
    /// if any.
    pub fn prev_stage_rank(&self) -> Option<usize> {
        (self.stage > 0).then(|| (self.stage - 1) * self.tp.size() + self.tp_rank)
    }

    /// Global rank of the same tensor-parallel position on an arbitrary
    /// stage.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= pp`.
    pub fn peer_on_stage(&self, stage: usize) -> usize {
        assert!(stage < self.pp(), "stage {stage} out of range");
        stage * self.tp.size() + self.tp_rank
    }
}

/// Spawns a `tp × pp` grid of rank threads and runs `f` on each, returning
/// results in global-rank order (stage-major: all of stage 0's tensor ranks
/// first).
///
/// # Panics
///
/// Panics if `tp == 0` or `pp == 0`, or propagates a rank panic.
pub fn run_grid<T, F>(tp: usize, pp: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(GridComm) -> T + Sync,
{
    assert!(tp > 0 && pp > 0, "grid dimensions must be positive");
    let mut grid_world = World::new(tp * pp);
    let mut stage_worlds: Vec<World> = (0..pp).map(|_| World::new(tp)).collect();
    let mut comms = Vec::with_capacity(tp * pp);
    #[allow(clippy::needless_range_loop)] // stage indexes two parallel world vectors
    for stage in 0..pp {
        for tp_rank in 0..tp {
            comms.push(GridComm {
                stage,
                tp_rank,
                tp: stage_worlds[stage].communicator(tp_rank),
                grid: grid_world.communicator(stage * tp + tp_rank),
            });
        }
    }
    mt_sync::thread::scope(|scope| {
        let handles: Vec<_> = comms.into_iter().map(|c| scope.spawn(|| f(c))).collect();
        handles.into_iter().map(|h| h.join().expect("grid rank panicked")).collect()
    })
}

/// A rank's view of a three-dimensional `dp × pp × tp` grid: data-parallel
/// replicas of a pipeline of tensor-parallel stages — the full layout of the
/// paper's Section 6.3 extension (530B at `t = 8, p = 35, dp = 8` on 2240
/// GPUs).
pub struct Grid3Comm {
    /// Data-parallel replica index in `0..dp`.
    pub dp_rank: usize,
    /// Collectives across the data-parallel replicas holding the *same*
    /// model shard (size `dp`) — the gradient all-reduce group.
    pub dp: Communicator,
    /// This rank's view of its replica's `tp × pp` grid.
    pub replica: GridComm,
}

impl std::fmt::Debug for Grid3Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grid3Comm")
            .field("dp_rank", &self.dp_rank)
            .field("stage", &self.replica.stage)
            .field("tp_rank", &self.replica.tp_rank)
            .finish()
    }
}

/// Spawns a `dp × pp × tp` grid and runs `f` on every rank, returning
/// results in `(dp, stage, tp)`-major order.
///
/// # Panics
///
/// Panics if any dimension is zero, or propagates a rank panic.
pub fn run_grid3<T, F>(dp: usize, tp: usize, pp: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Grid3Comm) -> T + Sync,
{
    assert!(dp > 0 && tp > 0 && pp > 0, "grid dimensions must be positive");
    let mut replica_worlds: Vec<World> = (0..dp).map(|_| World::new(tp * pp)).collect();
    let mut stage_worlds: Vec<Vec<World>> =
        (0..dp).map(|_| (0..pp).map(|_| World::new(tp)).collect()).collect();
    // One dp-group per (stage, tp_rank) position.
    let mut dp_worlds: Vec<World> = (0..pp * tp).map(|_| World::new(dp)).collect();
    let mut comms = Vec::with_capacity(dp * tp * pp);
    for d in 0..dp {
        for stage in 0..pp {
            for tp_rank in 0..tp {
                comms.push(Grid3Comm {
                    dp_rank: d,
                    dp: dp_worlds[stage * tp + tp_rank].communicator(d),
                    replica: GridComm {
                        stage,
                        tp_rank,
                        tp: stage_worlds[d][stage].communicator(tp_rank),
                        grid: replica_worlds[d].communicator(stage * tp + tp_rank),
                    },
                });
            }
        }
    }
    mt_sync::thread::scope(|scope| {
        let handles: Vec<_> = comms.into_iter().map(|c| scope.spawn(|| f(c))).collect();
        handles.into_iter().map(|h| h.join().expect("grid rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_tensor::Tensor;

    #[test]
    fn stage_collectives_are_isolated() {
        // Each stage all-reduces its own tp_rank values; stages must not
        // interfere.
        let out = run_grid(2, 3, |g| {
            let x = Tensor::full(&[1], (g.stage * 10 + g.tp_rank) as f32);
            g.tp.all_reduce(&x).data()[0]
        });
        // Stage s sum = (10s) + (10s + 1) = 20s + 1.
        assert_eq!(out, vec![1., 1., 21., 21., 41., 41.]);
    }

    #[test]
    fn p2p_crosses_stage_boundaries() {
        let out = run_grid(2, 2, |g| {
            if g.stage == 0 {
                let x = Tensor::full(&[2], g.tp_rank as f32 + 1.0);
                g.grid.send(g.next_stage_rank().unwrap(), &x);
                0.0
            } else {
                g.grid.recv(g.prev_stage_rank().unwrap()).data()[0]
            }
        });
        assert_eq!(out, vec![0., 0., 1., 2.]);
    }

    #[test]
    fn neighbour_ranks_are_consistent() {
        let out =
            run_grid(3, 4, |g| (g.stage, g.tp_rank, g.prev_stage_rank(), g.next_stage_rank()));
        for (stage, tp_rank, prev, next) in out {
            if stage == 0 {
                assert_eq!(prev, None);
            } else {
                assert_eq!(prev, Some((stage - 1) * 3 + tp_rank));
            }
            if stage == 3 {
                assert_eq!(next, None);
            } else {
                assert_eq!(next, Some((stage + 1) * 3 + tp_rank));
            }
        }
    }

    #[test]
    fn peer_on_stage_addresses_any_stage() {
        let out = run_grid(2, 3, |g| g.peer_on_stage(2));
        // Everyone's stage-2 peer keeps their tp_rank.
        assert_eq!(out, vec![4, 5, 4, 5, 4, 5]);
    }

    #[test]
    fn grid3_dp_groups_cross_replicas_only() {
        // Each dp group spans the replicas holding the same (stage, tp_rank)
        // shard; its all-reduce must not mix different shards.
        let out = run_grid3(2, 2, 2, |g| {
            // Contribute a value encoding the shard position; the dp sum
            // doubles it (both replicas hold the same position).
            let shard_id = (g.replica.stage * 10 + g.replica.tp_rank) as f32;
            let sum = g.dp.all_reduce(&Tensor::full(&[1], shard_id)).data()[0];
            (g.dp_rank, shard_id, sum)
        });
        for (_, shard_id, sum) in out {
            assert_eq!(sum, 2.0 * shard_id);
        }
    }

    #[test]
    fn grid3_replica_pipelines_are_isolated() {
        // p2p inside replica 0 must not be visible to replica 1.
        let out = run_grid3(2, 1, 2, |g| {
            if g.replica.stage == 0 {
                let payload = 100.0 * (g.dp_rank as f32 + 1.0);
                g.replica
                    .grid
                    .send(g.replica.next_stage_rank().unwrap(), &Tensor::full(&[1], payload));
                0.0
            } else {
                g.replica.grid.recv(g.replica.prev_stage_rank().unwrap()).data()[0]
            }
        });
        // Order: (dp0 s0), (dp0 s1), (dp1 s0), (dp1 s1).
        assert_eq!(out, vec![0.0, 100.0, 0.0, 200.0]);
    }

    #[test]
    fn grid3_composes_tp_and_dp_collectives() {
        let out = run_grid3(3, 2, 1, |g| {
            // tp all-reduce inside the replica, then dp all-reduce across.
            let x = Tensor::full(&[1], (g.replica.tp_rank + 1) as f32);
            let tp_sum = g.replica.tp.all_reduce(&x); // 1 + 2 = 3
            g.dp.all_reduce(&tp_sum).data()[0] // × 3 replicas = 9
        });
        assert!(out.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn first_and_last_stage_can_exchange_embedding_grads() {
        // The Megatron tied-embedding pattern: last stage sends the head's
        // table gradient to stage 0, which sums it with its own.
        let out = run_grid(2, 3, |g| {
            let pp = g.pp();
            if g.stage == pp - 1 {
                g.grid.send(g.peer_on_stage(0), &Tensor::full(&[2], 5.0));
                None
            } else if g.stage == 0 {
                let mut own = Tensor::full(&[2], 1.0);
                let head = g.grid.recv(g.peer_on_stage(pp - 1));
                own.add_assign(&head);
                Some(own.data()[0])
            } else {
                None
            }
        });
        assert_eq!(out[0], Some(6.0));
        assert_eq!(out[1], Some(6.0));
    }
}
