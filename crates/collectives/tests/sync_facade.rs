//! Regression coverage for the `mt-sync` facade contract the model checker
//! assumes: every condvar wait site re-checks its predicate (spurious
//! wakeups are harmless), and epoch-bearing call tags fence cross-epoch
//! stragglers at *every* rendezvous entry point — deterministically, as
//! `SpmdMismatch`, never as a timeout or a hang.
//!
//! The spurious wakeups here are injected through the shim itself: the
//! `spurious-inject` dev-feature of `mt-sync` swaps the real condvar for a
//! wrapper whose next N waits return immediately without a notification,
//! so the exact code paths the checker explores virtually are exercised
//! once more against the real primitives.

#![cfg(not(mt_check))]

use mt_collectives::{CallTag, CollectiveError, Communicator, World};
use mt_tensor::Tensor;
use proptest::prelude::*;
use std::time::Duration;

type Entry = (&'static str, fn(&Communicator) -> Result<(), CollectiveError>);

/// Every rendezvous entry point, as a uniform closure over one
/// communicator. Point-to-point send/recv is excluded: it is not a
/// rendezvous (no tag deposit), so epoch fencing happens at the collective
/// layer above it.
fn rendezvous_entry_points() -> Vec<Entry> {
    vec![
        ("try_all_reduce", |c| c.try_all_reduce(&Tensor::full(&[2], 1.0)).map(|_| ())),
        ("try_all_reduce_max", |c| c.try_all_reduce_max(&Tensor::full(&[2], 1.0)).map(|_| ())),
        ("try_all_gather", |c| c.try_all_gather(&Tensor::full(&[2], 1.0)).map(|_| ())),
        ("try_all_gather_chunked", |c| {
            c.try_all_gather_chunked(&Tensor::full(&[2, 2], 1.0), 2).map(|_| ())
        }),
        ("try_all_gather_chunk", |c| {
            c.try_all_gather_chunk(&Tensor::full(&[2, 2], 1.0), 0, 2).map(|_| ())
        }),
        ("try_reduce_scatter", |c| c.try_reduce_scatter(&Tensor::full(&[2, 2], 1.0)).map(|_| ())),
        ("try_reduce_scatter_chunked", |c| {
            c.try_reduce_scatter_chunked(&Tensor::full(&[2, 2], 1.0), 2).map(|_| ())
        }),
        ("try_reduce_scatter_chunk", |c| {
            c.try_reduce_scatter_chunk(&Tensor::full(&[2, 2], 1.0), 0, 2).map(|_| ())
        }),
        ("try_broadcast", |c| c.try_broadcast(&Tensor::full(&[2], 1.0), 0).map(|_| ())),
        ("try_barrier", |c| c.try_barrier()),
    ]
}

/// A straggler communicator from the pre-reformation epoch meets the
/// re-formed world at each entry point: the round must fail fast as
/// `SpmdMismatch` naming both epochs. `Timeout` anywhere would mean the
/// epoch check was skipped and only the deadline saved us; a hang would be
/// the lost-wakeup bug the model checker exists to rule out.
#[test]
fn every_entry_point_fences_cross_epoch_stragglers() {
    for (name, call) in rendezvous_entry_points() {
        let mut world = World::new(2);
        world.set_collective_timeout(Duration::from_secs(10));
        let straggler = world.communicator(0);
        world.set_epoch(1);
        let reformed = world.communicator(1);
        let results = mt_sync::thread::scope(|scope| {
            let handles =
                [scope.spawn(move || call(&straggler)), scope.spawn(move || call(&reformed))];
            handles.map(|h| h.join().expect("try_* does not panic"))
        });
        assert!(
            results.iter().any(|r| matches!(
                r,
                Err(CollectiveError::SpmdMismatch { expected, found, .. })
                    if expected.epoch != found.epoch
            )),
            "{name}: no cross-epoch SpmdMismatch in {results:?}"
        );
        assert!(
            !results.iter().any(|r| matches!(r, Err(CollectiveError::Timeout { .. }))),
            "{name}: straggler fell through to the timeout path: {results:?}"
        );
    }
}

/// Rendezvous completes (with the right answer) when waits wake spuriously:
/// the predicate re-check loops in `group.rs` must absorb wakeups that
/// carry no state change. The injection budget deliberately exceeds the
/// number of waits a healthy round performs, so *every* wait site sees at
/// least one spurious wakeup.
#[test]
fn rendezvous_completes_despite_injected_spurious_wakeups() {
    mt_sync::spurious::inject(64);
    let out = World::run(3, |c| {
        let x = Tensor::full(&[4], (c.rank() + 1) as f32);
        c.all_reduce(&x).data().to_vec()
    });
    for data in out {
        assert_eq!(data, vec![6.0; 4]);
    }
}

/// Same, through the fallible chunked path (its per-chunk sub-rendezvous
/// multiplies the wait sites) plus a barrier.
#[test]
fn chunked_rendezvous_and_barrier_survive_spurious_wakeups() {
    mt_sync::spurious::inject(64);
    let mut world = World::new(2);
    let out = world.run_fallible(|c| {
        let shard = Tensor::full(&[4, 2], (c.rank() + 1) as f32);
        let gathered = c.try_all_gather_chunked(&shard, 2)?;
        c.try_barrier()?;
        Ok(gathered.data()[0])
    });
    for r in out {
        assert_eq!(r.expect("spurious wakeups must not fail a healthy round"), 1.0);
    }
}

proptest! {
    /// Call tags differing **only** in epoch never match: the straggler
    /// fence cannot be defeated by any combination of op/shape/root/chunk.
    /// (And with equal epochs the same fields compare equal — the fence
    /// adds no false mismatches.)
    #[test]
    fn tags_differing_only_in_epoch_never_match(
        op_idx in 0usize..4,
        shape in collection::vec(1usize..64, 0usize..3),
        root_raw in 0usize..9,
        chunk_j in 0usize..4,
        chunk_c in 0usize..5,
        epoch_a in 0u64..1_000,
        epoch_delta in 1u64..1_000,
    ) {
        let op = ["all_reduce", "all_gather", "reduce_scatter", "broadcast"][op_idx];
        // The vendored proptest has no option/tuple strategies; derive them.
        let root = root_raw.checked_sub(1);
        let chunk = chunk_c.checked_sub(1).map(|c| (chunk_j, c + 1));
        let tag = |epoch: u64| CallTag {
            op,
            shape: shape.clone(),
            root,
            chunk,
            epoch,
        };
        let epoch_b = epoch_a + epoch_delta;
        prop_assert_ne!(tag(epoch_a), tag(epoch_b));
        prop_assert_eq!(tag(epoch_a), tag(epoch_a));
        prop_assert_eq!(tag(epoch_b), tag(epoch_b));
    }
}
