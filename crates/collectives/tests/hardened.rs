//! Chaos-suite coverage for the hardened collectives runtime: bounded
//! timeouts, SPMD-misuse detection, dead-rank propagation, and fault
//! injection. Everything here must hold in **release** builds — none of
//! these guarantees may depend on `debug_assert!`.

use mt_collectives::cost::CommCostModel;
use mt_collectives::{CollectiveError, CollectiveKind, World};
use mt_fault::FaultPlan;
use mt_tensor::Tensor;
use mt_trace::Tracer;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deliberately absent rank yields `Timeout` in bounded time — the "no
/// collective can block indefinitely" acceptance criterion.
#[test]
fn absent_rank_times_out_in_bounded_time() {
    let deadline = Duration::from_millis(200);
    let mut world = World::new(2);
    world.set_collective_timeout(deadline);
    let start = Instant::now();
    let out = world.run_fallible(|c| {
        if c.rank() == 0 {
            // Rank 1 never shows up for this collective.
            c.try_all_reduce(&Tensor::full(&[2], 1.0)).map(|_| ())
        } else {
            Ok(())
        }
    });
    let elapsed = start.elapsed();
    assert!(matches!(out[0], Err(CollectiveError::Timeout { rank: 0, .. })), "{:?}", out[0]);
    assert!(out[1].is_ok());
    // Bounded: the deadline plus generous scheduling slack, not forever.
    assert!(elapsed < deadline + Duration::from_secs(5), "took {elapsed:?}");
}

/// Two ranks issuing *different* collectives surface `SpmdMismatch` within
/// the deadline — in release builds — instead of deadlocking.
#[test]
fn mismatched_collectives_fail_as_spmd_mismatch() {
    let mut world = World::new(2);
    world.set_collective_timeout(Duration::from_secs(10));
    let start = Instant::now();
    let out = world.run_fallible(|c| {
        let x = Tensor::full(&[2], 1.0);
        if c.rank() == 0 {
            c.try_all_reduce(&x).map(|_| ())
        } else {
            c.try_all_gather(&x).map(|_| ())
        }
    });
    for r in &out {
        match r {
            Err(CollectiveError::SpmdMismatch { expected, found, .. }) => {
                let ops = [expected.op, found.op];
                assert!(ops.contains(&"all_reduce") && ops.contains(&"all_gather"), "{ops:?}");
            }
            other => panic!("expected SpmdMismatch, got {other:?}"),
        }
    }
    // Detection is immediate (the second depositor sees the first's tag),
    // not a timeout.
    assert!(start.elapsed() < Duration::from_secs(5));
}

/// The same collective with mismatched shapes is also an SPMD bug.
#[test]
fn mismatched_shapes_fail_as_spmd_mismatch() {
    let mut world = World::new(2);
    let out = world.run_fallible(|c| {
        let x = Tensor::full(&[2 + c.rank()], 1.0);
        c.try_all_reduce(&x).map(|_| ())
    });
    for r in &out {
        match r {
            Err(CollectiveError::SpmdMismatch { expected, found, .. }) => {
                let shapes = [expected.shape.clone(), found.shape.clone()];
                assert!(shapes.contains(&vec![2]) && shapes.contains(&vec![3]), "{shapes:?}");
            }
            other => panic!("expected SpmdMismatch, got {other:?}"),
        }
    }
}

/// A panicking rank is marked dead; survivors blocked in a collective are
/// woken with `RankDead` instead of hanging, and `run_fallible` returns
/// instead of unwinding.
#[test]
fn dead_rank_unblocks_survivors() {
    let mut world = World::new(4);
    world.set_collective_timeout(Duration::from_secs(30));
    let start = Instant::now();
    let out = world.run_fallible(|c| {
        if c.rank() == 2 {
            panic!("simulated hard failure");
        }
        c.try_all_reduce(&Tensor::full(&[3], 1.0)).map(|_| ())
    });
    for (rank, r) in out.iter().enumerate() {
        match r {
            Err(CollectiveError::RankDead { dead_rank: 2, .. }) => {}
            other => panic!("rank {rank}: expected RankDead {{dead_rank: 2}}, got {other:?}"),
        }
    }
    // Survivors were woken by the death notification, not their deadline.
    assert!(start.elapsed() < Duration::from_secs(10));
}

/// A `recv` whose sender dies fails with `RankDead` rather than waiting
/// out the full deadline.
#[test]
fn recv_from_dead_sender_fails_early() {
    let mut world = World::new(2);
    world.set_collective_timeout(Duration::from_secs(30));
    let start = Instant::now();
    let out = world.run_fallible(|c| {
        if c.rank() == 0 {
            panic!("sender dies before sending");
        }
        c.try_recv(0).map(|_| ())
    });
    assert!(matches!(out[1], Err(CollectiveError::RankDead { dead_rank: 0, .. })), "{:?}", out[1]);
    assert!(start.elapsed() < Duration::from_secs(10));
}

/// An injected transient failure surfaces as `InjectedTransient` once; the
/// retry at the same coordinate succeeds, and the tracer shows both the
/// injection and the recovery.
#[test]
fn transient_fault_recovers_on_retry() {
    let plan = Arc::new(FaultPlan::builder().transient_at_collective(1, 0).build());
    let tracer = Tracer::enabled();
    let mut world = World::new(2);
    world.set_tracer(tracer.clone());
    world.set_fault_plan(Arc::clone(&plan));
    let out = world.run_fallible(|c| {
        let x = Tensor::full(&[2], (c.rank() + 1) as f32);
        let sum = match c.try_all_reduce(&x) {
            Err(CollectiveError::InjectedTransient { .. }) => c.try_all_reduce(&x)?,
            other => other?,
        };
        Ok(sum.data()[0])
    });
    for r in out {
        assert_eq!(r.expect("retry succeeds"), 3.0);
    }
    assert_eq!(plan.fired_count(), 1);
    let events = tracer.events();
    assert!(
        events.iter().any(|e| e.name.as_ref() == "fault_injected"),
        "no fault_injected instant"
    );
    assert!(
        events.iter().any(|e| e.name.as_ref() == "fault_recovered"),
        "no fault_recovered instant"
    );
}

/// An injected straggler delay — calibrated from the α–β cost model —
/// stalls the rank but leaves the result untouched.
#[test]
fn straggler_delay_preserves_results() {
    // Stall rank 0 by 100× the modeled time of this all-reduce on a DGX
    // A100: a calibrated "slow NIC" scenario rather than an arbitrary sleep.
    let payload_bytes = 4 * 2; // 4 elements, fp16 accounting
    let modeled_s =
        CommCostModel::nvlink_dgx_a100().time(CollectiveKind::AllReduce, payload_bytes, 2);
    let micros = (modeled_s * 1e6 * 100.0).ceil() as u64;
    let plan = Arc::new(FaultPlan::builder().delay_collective(0, 0, micros).build());
    let mut world = World::new(2);
    world.set_fault_plan(Arc::clone(&plan));
    let out = world.run_fallible(|c| {
        let x = Tensor::from_fn(&[4], |i| (c.rank() * 4 + i) as f32);
        Ok(c.try_all_reduce(&x)?.data().to_vec())
    });
    for r in out {
        assert_eq!(r.expect("delay is not a failure"), vec![4., 6., 8., 10.]);
    }
    assert_eq!(plan.fired_count(), 1);
}

/// An injected rank panic behaves exactly like a real one: `RankDead`
/// everywhere, no hang.
#[test]
fn injected_panic_is_reported_as_rank_dead() {
    let plan = Arc::new(FaultPlan::builder().panic_at_collective(1, 2).build());
    let mut world = World::new(2);
    world.set_fault_plan(plan);
    let out = world.run_fallible(|c| {
        let mut acc = 0.0;
        for _ in 0..4 {
            acc += c.try_all_reduce(&Tensor::full(&[1], 1.0))?.data()[0];
        }
        Ok(acc)
    });
    assert!(out.iter().all(|r| matches!(r, Err(CollectiveError::RankDead { .. }))), "{out:?}");
}

/// After an error the infallible wrappers raise the typed error as a panic
/// payload, which `run_fallible` recovers — so even "infallible" call
/// sites deep in model code cannot hang a fallible world.
#[test]
fn infallible_wrappers_raise_recoverable_errors() {
    let mut world = World::new(2);
    world.set_collective_timeout(Duration::from_millis(100));
    let out = world.run_fallible(|c| {
        if c.rank() == 0 {
            // Infallible spelling: times out, panics with the typed error...
            let _ = c.all_reduce(&Tensor::full(&[1], 1.0));
        }
        Ok(())
    });
    // ...and run_fallible hands it back as the original Timeout.
    assert!(matches!(out[0], Err(CollectiveError::Timeout { .. })), "{:?}", out[0]);
}

/// Traces from faulted runs stay balanced: a span open on a rank thread
/// when the rank panics still records its close event (`SpanGuard::drop`
/// runs during unwinding), annotated `panicked = true`, so chaos-test
/// traces are complete rather than truncated.
#[test]
fn panicking_span_under_run_fallible_keeps_the_trace_balanced() {
    let tracer = Tracer::enabled();
    let mut world = World::new(2);
    world.set_tracer(tracer.clone());
    world.set_collective_timeout(Duration::from_secs(10));
    let out = world.run_fallible(|c| {
        let _step = mt_trace::current().span("step");
        let _inner = mt_trace::current().span("doomed_region");
        if c.rank() == 1 {
            panic!("injected fault under an open span");
        }
        Ok(c.rank())
    });
    assert!(out[0].is_ok());
    assert!(matches!(out[1], Err(CollectiveError::RankDead { rank: 1, .. })), "{:?}", out[1]);

    // Balanced: every opened span on every rank closed into exactly one
    // Complete event — the panicking rank loses nothing.
    for rank in 0..2u32 {
        for name in ["step", "doomed_region"] {
            let matching: Vec<_> =
                tracer.events().into_iter().filter(|e| e.track == rank && e.name == name).collect();
            assert_eq!(matching.len(), 1, "rank {rank} span {name:?} must close exactly once");
            let ev = &matching[0];
            assert!(
                matches!(ev.kind, mt_trace::EventKind::Complete { dur_us } if dur_us >= 0.0),
                "{ev:?}"
            );
            let panicked = ev
                .args
                .iter()
                .any(|(k, v)| *k == "panicked" && *v == mt_trace::ArgValue::Bool(true));
            assert_eq!(panicked, rank == 1, "panic marker on rank {rank} span {name:?}: {ev:?}");
        }
    }
}
