//! # mt-perf
//!
//! A calibrated per-layer GPU timing model reproducing the execution-time
//! results of *"Reducing Activation Recomputation in Large Transformer
//! Models"* (Table 4, Figure 8) and feeding the pipeline simulator that
//! reproduces Table 5.
//!
//! The model prices one transformer layer as
//!
//! * **GEMM time** — FLOPs ÷ (peak · achievable efficiency),
//! * **element-wise time** — bytes moved ÷ HBM bandwidth, split into the
//!   replicated LayerNorm/dropout/residual region (which sequence
//!   parallelism divides by `t` — the source of the paper's 7.7 → 7.2 ms
//!   forward improvement), the attention core, and the sharded GEMM
//!   epilogues,
//! * **collective time** — α–β ring costs from `mt-collectives`, with the
//!   paper's backward-pass overlap optimization (all-reduce hidden behind
//!   weight-gradient GEMMs) applied.
//!
//! Calibration: the constants in [`GpuSpec::a100`] are chosen once so the
//! 22B configuration lands on Table 4's baseline row (7.7 ms forward /
//! 11.9 ms backward); every other number in Table 4, Figure 8, and Table 5
//! is then *predicted*. Tests pin the predictions to the paper's values
//! with explicit tolerances.

#![warn(missing_docs)]

mod aux_costs;
mod layer_time;
mod offload;

pub use aux_costs::AuxCostModel;
pub use layer_time::{LayerTimeModel, LayerTiming};
pub use offload::OffloadModel;

use mt_collectives::cost::CommCostModel;
use serde::{Deserialize, Serialize};

/// Hardware description used by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Peak dense fp16 FLOP/s (A100: 312e12).
    pub peak_flops: f64,
    /// Asymptotic fraction of peak that very large GEMMs achieve; see
    /// [`GpuSpec::effective_gemm_efficiency`] for the size-dependent value.
    pub gemm_efficiency: f64,
    /// Hidden size at which achieved efficiency is half the gap below the
    /// asymptote: `eff(h) = gemm_efficiency · h / (h + gemm_half_hidden)`.
    /// Larger GEMMs run closer to peak — the reason the paper's HFU climbs
    /// from 43.7% (22B) to 57.0% (1T).
    pub gemm_half_hidden: f64,
    /// HBM bandwidth, bytes/s (A100-80GB: ~2.0e12).
    pub hbm_bytes_per_s: f64,
    /// Intra-node interconnect for tensor-parallel collectives.
    pub nvlink: CommCostModel,
    /// Inter-node interconnect for pipeline point-to-point transfers.
    pub interconnect: CommCostModel,
    /// Fraction of backward-pass collective time hidden by overlapping with
    /// weight-gradient GEMMs (the Table 4 footnote optimization).
    pub backward_overlap: f64,
    /// Fraction of the sequence-parallel *extra* backward all-gather (the
    /// re-gather of the unsaved `Y`) that overlap hides (Section 4.2.2).
    pub sp_regather_overlap: f64,
}

impl GpuSpec {
    /// The paper's platform: NVIDIA A100-80GB in a DGX node (NVLink3) with
    /// HDR InfiniBand between nodes.
    ///
    /// The efficiency curve (asymptote 0.75, half-gap at h ≈ 1288) is
    /// calibrated so `h = 6144` (the 22B model) lands at 0.62, which puts
    /// that layer at Table 4's 7.7 ms forward / 11.9 ms backward baseline.
    pub fn a100() -> Self {
        GpuSpec {
            peak_flops: 312e12,
            gemm_efficiency: 0.75,
            gemm_half_hidden: 1288.0,
            hbm_bytes_per_s: 2.0e12,
            nvlink: CommCostModel::nvlink_dgx_a100(),
            interconnect: CommCostModel::infiniband_hdr(),
            backward_overlap: 1.0,
            sp_regather_overlap: 0.5,
        }
    }

    /// The CPU this repo's own `mt-kernels` GEMM actually runs on,
    /// calibrated from measured microkernel throughput rather than a
    /// datasheet: the packed AVX2 microkernel sustains ~50 GFLOP/s f32 per
    /// core on the CI-class Xeon (`kernel_bench`, 256³–512³), against a
    /// no-FMA vector peak of 16 FLOPs/cycle × ~3.0 GHz turbo ≈ 48–67
    /// GFLOP/s depending on clock — an asymptotic efficiency around 0.8 of
    /// the mul+add peak. The half-gap constant is small because the packed
    /// kernel reaches its asymptote by h ≈ 512 (cache blocking, not
    /// occupancy, is the limiter on CPU).
    ///
    /// This spec exists so measured-vs-analytical comparisons can price
    /// the *local* kernels with the same machinery used for the paper's
    /// A100 numbers; it models one core (the deterministic unit — threaded
    /// speedup multiplies it by the worker count).
    pub fn reference_cpu() -> Self {
        GpuSpec {
            peak_flops: 64e9,
            gemm_efficiency: 0.80,
            gemm_half_hidden: 96.0,
            hbm_bytes_per_s: 2.0e10,
            nvlink: CommCostModel::nvlink_dgx_a100(),
            interconnect: CommCostModel::infiniband_hdr(),
            backward_overlap: 1.0,
            sp_regather_overlap: 0.5,
        }
    }

    /// Size-dependent achieved GEMM efficiency:
    /// `gemm_efficiency · h / (h + gemm_half_hidden)`.
    pub fn effective_gemm_efficiency(&self, hidden: u64) -> f64 {
        let h = hidden as f64;
        self.gemm_efficiency * h / (h + self.gemm_half_hidden)
    }

    /// Achieved GEMM FLOP/s for a model of hidden size `hidden`.
    pub fn achieved_gemm_flops(&self, hidden: u64) -> f64 {
        self.peak_flops * self.effective_gemm_efficiency(hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_spec_is_sane() {
        let g = GpuSpec::a100();
        assert!(g.peak_flops > 1e14);
        assert!((0.0..=1.0).contains(&g.gemm_efficiency));
        assert!((0.0..=1.0).contains(&g.backward_overlap));
        assert!(g.nvlink.beta_bytes_per_s > g.interconnect.beta_bytes_per_s);
    }

    #[test]
    fn reference_cpu_matches_measured_kernel_throughput() {
        let c = GpuSpec::reference_cpu();
        assert!((0.0..=1.0).contains(&c.gemm_efficiency));
        // The spec must predict the benched band for the shapes
        // kernel_bench actually runs: ~45–55 GFLOP/s at h = 512 on the
        // packed AVX2 microkernel.
        let at_512 = c.achieved_gemm_flops(512);
        assert!(
            (40e9..60e9).contains(&at_512),
            "reference_cpu predicts {at_512:.3e} FLOP/s at h=512, outside the measured band"
        );
        // And it is a CPU: orders of magnitude below the A100 spec.
        assert!(c.peak_flops < GpuSpec::a100().peak_flops / 1000.0);
    }
}
