//! # mt-perf
//!
//! A calibrated per-layer GPU timing model reproducing the execution-time
//! results of *"Reducing Activation Recomputation in Large Transformer
//! Models"* (Table 4, Figure 8) and feeding the pipeline simulator that
//! reproduces Table 5.
//!
//! The model prices one transformer layer as
//!
//! * **GEMM time** — FLOPs ÷ (peak · achievable efficiency),
//! * **element-wise time** — bytes moved ÷ HBM bandwidth, split into the
//!   replicated LayerNorm/dropout/residual region (which sequence
//!   parallelism divides by `t` — the source of the paper's 7.7 → 7.2 ms
//!   forward improvement), the attention core, and the sharded GEMM
//!   epilogues,
//! * **collective time** — α–β ring costs from `mt-collectives`, with the
//!   paper's backward-pass overlap optimization (all-reduce hidden behind
//!   weight-gradient GEMMs) applied.
//!
//! Calibration: the constants in [`GpuSpec::a100`] are chosen once so the
//! 22B configuration lands on Table 4's baseline row (7.7 ms forward /
//! 11.9 ms backward); every other number in Table 4, Figure 8, and Table 5
//! is then *predicted*. Tests pin the predictions to the paper's values
//! with explicit tolerances.

#![warn(missing_docs)]

mod aux_costs;
mod layer_time;
mod offload;

pub use aux_costs::AuxCostModel;
pub use layer_time::{LayerTimeModel, LayerTiming};
pub use offload::OffloadModel;

use mt_collectives::cost::CommCostModel;
use serde::{Deserialize, Serialize};

/// Hardware description used by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Peak dense fp16 FLOP/s (A100: 312e12).
    pub peak_flops: f64,
    /// Asymptotic fraction of peak that very large GEMMs achieve; see
    /// [`GpuSpec::effective_gemm_efficiency`] for the size-dependent value.
    pub gemm_efficiency: f64,
    /// Hidden size at which achieved efficiency is half the gap below the
    /// asymptote: `eff(h) = gemm_efficiency · h / (h + gemm_half_hidden)`.
    /// Larger GEMMs run closer to peak — the reason the paper's HFU climbs
    /// from 43.7% (22B) to 57.0% (1T).
    pub gemm_half_hidden: f64,
    /// HBM bandwidth, bytes/s (A100-80GB: ~2.0e12).
    pub hbm_bytes_per_s: f64,
    /// Intra-node interconnect for tensor-parallel collectives.
    pub nvlink: CommCostModel,
    /// Inter-node interconnect for pipeline point-to-point transfers.
    pub interconnect: CommCostModel,
    /// Fraction of backward-pass collective time hidden by overlapping with
    /// weight-gradient GEMMs (the Table 4 footnote optimization).
    pub backward_overlap: f64,
    /// Fraction of the sequence-parallel *extra* backward all-gather (the
    /// re-gather of the unsaved `Y`) that overlap hides (Section 4.2.2).
    pub sp_regather_overlap: f64,
}

impl GpuSpec {
    /// The paper's platform: NVIDIA A100-80GB in a DGX node (NVLink3) with
    /// HDR InfiniBand between nodes.
    ///
    /// The efficiency curve (asymptote 0.75, half-gap at h ≈ 1288) is
    /// calibrated so `h = 6144` (the 22B model) lands at 0.62, which puts
    /// that layer at Table 4's 7.7 ms forward / 11.9 ms backward baseline.
    pub fn a100() -> Self {
        GpuSpec {
            peak_flops: 312e12,
            gemm_efficiency: 0.75,
            gemm_half_hidden: 1288.0,
            hbm_bytes_per_s: 2.0e12,
            nvlink: CommCostModel::nvlink_dgx_a100(),
            interconnect: CommCostModel::infiniband_hdr(),
            backward_overlap: 1.0,
            sp_regather_overlap: 0.5,
        }
    }

    /// Size-dependent achieved GEMM efficiency:
    /// `gemm_efficiency · h / (h + gemm_half_hidden)`.
    pub fn effective_gemm_efficiency(&self, hidden: u64) -> f64 {
        let h = hidden as f64;
        self.gemm_efficiency * h / (h + self.gemm_half_hidden)
    }

    /// Achieved GEMM FLOP/s for a model of hidden size `hidden`.
    pub fn achieved_gemm_flops(&self, hidden: u64) -> f64 {
        self.peak_flops * self.effective_gemm_efficiency(hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_spec_is_sane() {
        let g = GpuSpec::a100();
        assert!(g.peak_flops > 1e14);
        assert!((0.0..=1.0).contains(&g.gemm_efficiency));
        assert!((0.0..=1.0).contains(&g.backward_overlap));
        assert!(g.nvlink.beta_bytes_per_s > g.interconnect.beta_bytes_per_s);
    }
}
