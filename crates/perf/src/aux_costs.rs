//! Costs outside the transformer layers: embedding/logits head, optimizer
//! step, pipeline point-to-point transfers, and the data-parallel gradient
//! all-reduce of Section 6.3.

use crate::GpuSpec;
use mt_memory::ModelShape;
use serde::{Deserialize, Serialize};

/// Prices the per-iteration work that is not a transformer layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuxCostModel {
    /// Hardware model.
    pub gpu: GpuSpec,
    shape: ModelShape,
    tensor: u64,
}

impl AuxCostModel {
    /// Creates an auxiliary cost model.
    ///
    /// # Panics
    ///
    /// Panics if `tensor == 0`.
    pub fn new(gpu: GpuSpec, shape: ModelShape, tensor: u64) -> Self {
        assert!(tensor > 0, "tensor size must be positive");
        AuxCostModel { gpu, shape, tensor }
    }

    /// Forward+backward milliseconds of the logits head for one microbatch
    /// of size `b`: `3 · 2bshv / t` FLOPs (forward GEMM plus its double-cost
    /// backward), executed on the last pipeline stage.
    pub fn head_ms(&self, micro_batch: u64) -> f64 {
        let flops = 3.0
            * 2.0
            * micro_batch as f64
            * self.shape.seq as f64
            * self.shape.hidden as f64
            * self.shape.vocab as f64
            / self.tensor as f64;
        1e3 * flops / self.gpu.achieved_gemm_flops(self.shape.hidden)
    }

    /// Embedding lookup + dropout milliseconds for one microbatch — pure
    /// HBM traffic over `s·b·h` elements.
    pub fn embedding_ms(&self, micro_batch: u64) -> f64 {
        let bytes = 10.0 * (self.shape.seq * micro_batch * self.shape.hidden) as f64;
        1e3 * bytes / self.gpu.hbm_bytes_per_s
    }

    /// Optimizer (mixed-precision Adam) step milliseconds for
    /// `params_per_rank` parameters: reads fp16 grad + fp32 master + two
    /// fp32 moments, writes master/moments/fp16 param ≈ 30 bytes/param of
    /// HBM traffic.
    pub fn optimizer_ms(&self, params_per_rank: f64) -> f64 {
        1e3 * params_per_rank * 30.0 / self.gpu.hbm_bytes_per_s
    }

    /// Pipeline stage-boundary transfer milliseconds for one microbatch
    /// activation (`s·b·h` fp16 over the inter-node interconnect; under
    /// sequence parallelism the boundary tensor is the `1/t` shard).
    pub fn p2p_ms(&self, micro_batch: u64, sequence_parallel: bool) -> f64 {
        let mut bytes = self.shape.seq * micro_batch * self.shape.hidden * 2;
        if sequence_parallel {
            bytes /= self.tensor;
        }
        1e3 * self.gpu.interconnect.send_recv(bytes)
    }

    /// The data-parallel gradient all-reduce of Section 6.3 (unoverlapped,
    /// as the paper notes): all-reduce of the rank's fp32 gradients over the
    /// inter-node fabric.
    pub fn data_parallel_allreduce_ms(&self, params_per_rank: f64, dp: u64) -> f64 {
        if dp <= 1 {
            return 0.0;
        }
        let bytes = (params_per_rank * 4.0) as u64;
        1e3 * self.gpu.interconnect.all_reduce(bytes, dp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AuxCostModel {
        let shape = ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 };
        AuxCostModel::new(GpuSpec::a100(), shape, 8)
    }

    #[test]
    fn head_cost_scales_with_batch() {
        let m = model();
        assert!((m.head_ms(4) / m.head_ms(1) - 4.0).abs() < 1e-9);
        // 22B head at b=4 lands in single-digit milliseconds.
        assert!((1.0..20.0).contains(&m.head_ms(4)), "head {} ms", m.head_ms(4));
    }

    #[test]
    fn optimizer_cost_is_tens_of_ms_for_22b() {
        let m = model();
        let params_per_rank = 22e9 / 8.0;
        let ms = m.optimizer_ms(params_per_rank);
        assert!((10.0..100.0).contains(&ms), "optimizer {ms:.1} ms");
    }

    #[test]
    fn sequence_parallel_shrinks_p2p() {
        let m = model();
        assert!(m.p2p_ms(1, true) < m.p2p_ms(1, false));
    }

    #[test]
    fn dp_allreduce_zero_without_dp() {
        let m = model();
        assert_eq!(m.data_parallel_allreduce_ms(1e9, 1), 0.0);
        assert!(m.data_parallel_allreduce_ms(1e9, 8) > 0.0);
    }

    #[test]
    fn dp_overhead_magnitude_matches_section_6_3() {
        // 530B over 8-way DP: iteration grew 37.83 → 39.15 s (+1.32 s).
        // Our unoverlapped estimate should land in the same ballpark
        // (hundreds of ms to a couple of seconds).
        let shape = ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 };
        let m = AuxCostModel::new(GpuSpec::a100(), shape, 8);
        let params_per_rank = 530e9 / 280.0;
        let ms = m.data_parallel_allreduce_ms(params_per_rank, 8);
        assert!(
            (200.0..4000.0).contains(&ms),
            "DP all-reduce {ms:.0} ms (paper observed +1320 ms)"
        );
    }
}
