//! Activation offloading to host memory — the Related Work alternative
//! ("offloading data to CPU memory [14, 17]") priced against selective
//! recomputation, quantifying the paper's remark that such techniques have
//! "a larger impact on compute efficiency than the techniques presented in
//! this paper".
//!
//! Offloading removes the same activation bytes selective recomputation
//! does, but pays PCIe transfer time twice (out during forward, back during
//! backward) instead of a replay. The comparison is a pure bandwidth
//! argument: the attention core holds `5·as²b/t` bytes per layer but costs
//! only `4bs²h/t` FLOPs to replay — at A100 ratios the replay wins except
//! when PCIe is idle anyway (which per-layer execution does not allow).

use crate::{GpuSpec, LayerTimeModel};
use mt_memory::{ActivationMemoryModel, ModelShape, Strategy};
use serde::{Deserialize, Serialize};

/// Host-link description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadModel {
    /// Effective host-link bandwidth, bytes/s (PCIe 4.0 x16 ≈ 25 GB/s
    /// achievable per direction).
    pub pcie_bytes_per_s: f64,
    /// Fraction of the transfer hidden by overlap with compute (offload
    /// engines overlap well in the steady state; 1.0 would mean free).
    pub overlap: f64,
}

impl OffloadModel {
    /// PCIe 4.0 x16 with a typical 50% effective overlap.
    pub fn pcie_gen4() -> Self {
        OffloadModel { pcie_bytes_per_s: 25e9, overlap: 0.5 }
    }

    /// Visible milliseconds to offload **and** fetch back `bytes` of
    /// activations for one layer.
    pub fn round_trip_ms(&self, bytes: f64) -> f64 {
        1e3 * 2.0 * bytes / self.pcie_bytes_per_s * (1.0 - self.overlap)
    }

    /// Visible per-layer cost of offloading exactly the activation bytes
    /// selective recomputation would instead recompute (the `5as²b/t`
    /// attention-core tensors).
    pub fn attention_core_offload_ms(
        &self,
        shape: ModelShape,
        micro_batch: u64,
        tensor: u64,
    ) -> f64 {
        let act = ActivationMemoryModel::new(shape, micro_batch, tensor);
        let with = act.per_layer_bytes(Strategy::tp_sp());
        let without = act.per_layer_bytes(Strategy::tp_sp_selective());
        self.round_trip_ms(with - without)
    }

    /// Head-to-head per-layer comparison: `(offload ms, recompute ms)` for
    /// removing the same attention-core bytes.
    pub fn versus_selective_recompute(
        &self,
        gpu: GpuSpec,
        shape: ModelShape,
        micro_batch: u64,
        tensor: u64,
    ) -> (f64, f64) {
        let offload = self.attention_core_offload_ms(shape, micro_batch, tensor);
        let layer = LayerTimeModel::new(gpu, shape, micro_batch, tensor);
        let recompute = layer.recompute_ms(Strategy::tp_sp_selective());
        (offload, recompute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> [(ModelShape, u64); 3] {
        [
            (ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 }, 4),
            (ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 }, 1),
            (ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 }, 1),
        ]
    }

    #[test]
    fn recompute_beats_offload_for_the_paper_models() {
        // The paper's claim, quantified: replaying the attention core is
        // cheaper than shipping its bytes over PCIe for all Table 3 models.
        let off = OffloadModel::pcie_gen4();
        for (shape, b) in shapes() {
            let (o, r) = off.versus_selective_recompute(GpuSpec::a100(), shape, b, 8);
            assert!(r < o, "h={}: recompute {r:.2} ms should beat offload {o:.2} ms", shape.hidden);
        }
    }

    #[test]
    fn offload_cost_scales_with_bytes() {
        let off = OffloadModel::pcie_gen4();
        assert!(off.round_trip_ms(2e9) > off.round_trip_ms(1e9));
        assert_eq!(off.round_trip_ms(0.0), 0.0);
    }

    #[test]
    fn perfect_overlap_makes_offload_free() {
        let off = OffloadModel { pcie_bytes_per_s: 25e9, overlap: 1.0 };
        assert_eq!(off.round_trip_ms(1e9), 0.0);
    }

    #[test]
    fn offload_ships_exactly_the_selective_savings() {
        // Consistency with the memory model: the transferred bytes equal the
        // 5as²b/t attention-core term.
        let (shape, b) = shapes()[1];
        let t = 8;
        let act = ActivationMemoryModel::new(shape, b, t);
        let core_bytes = act.per_layer_bytes(Strategy::tp_sp())
            - act.per_layer_bytes(Strategy::tp_sp_selective());
        let sbh = (shape.seq * b * shape.hidden) as f64;
        // The Table 2 difference is the 5as/h coefficient over sbh/t bytes.
        let expect = shape.attention_coefficient() * sbh / t as f64;
        assert!((core_bytes - expect).abs() < 1.0, "{core_bytes} vs {expect}");
    }
}
