//! Per-layer forward / backward / recompute timing (Table 4, Figure 8).

use crate::GpuSpec;
use mt_collectives::stats::CollectiveKind;
use mt_memory::{ModelShape, Recompute, Strategy};
use serde::{Deserialize, Serialize};

/// HBM read/write traffic of the replicated (LayerNorm + dropout + residual)
/// region, bytes per `sbh` element: two LayerNorms (read+write ≈ 4 B/elem
/// each at fp16), two dropouts (read+write+mask ≈ 5 B/elem), two residual
/// adds (2 reads + 1 write ≈ 6 B/elem) — amortized to ~22 B per element.
const REPLICATED_REGION_BYTES_PER_ELEM: f64 = 22.0;

/// HBM traffic of the attention core's element-wise work (softmax
/// read/write, scale, dropout read/write/mask) per `as²b` element.
const ATTENTION_CORE_BYTES_PER_ELEM: f64 = 13.0;

/// HBM traffic of the sharded GEMM-region element-wise work (GeLU over the
/// `4h`-wide activation, bias adds) per `sbh` element (already divided by
/// `t` via the sharded tensor sizes).
const PARALLEL_REGION_BYTES_PER_ELEM: f64 = 26.0;

/// The backward pass moves more HBM traffic per op than the forward
/// (gradients in flight plus re-read saved activations); calibrated against
/// Table 4's 11.9 ms backward baseline.
const BACKWARD_ELEMWISE_FACTOR: f64 = 1.2;

/// Forward/backward/recompute milliseconds for one transformer layer on one
/// tensor-parallel rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Forward-pass milliseconds.
    pub forward_ms: f64,
    /// Backward-pass milliseconds, excluding recomputation.
    pub backward_ms: f64,
    /// Recomputation milliseconds (an extra partial/full forward pass
    /// executed inside the backward pass).
    pub recompute_ms: f64,
}

impl LayerTiming {
    /// Forward + backward + recompute.
    pub fn combined_ms(&self) -> f64 {
        self.forward_ms + self.backward_ms + self.recompute_ms
    }

    /// Backward as reported by the paper's Table 4, which folds the
    /// recompute time into the backward column.
    pub fn backward_with_recompute_ms(&self) -> f64 {
        self.backward_ms + self.recompute_ms
    }

    /// Percentage overhead of this timing versus a baseline (Table 4's
    /// rightmost column).
    pub fn overhead_pct(&self, baseline: &LayerTiming) -> f64 {
        100.0 * (self.combined_ms() / baseline.combined_ms() - 1.0)
    }
}

/// Prices one transformer layer of `shape` at microbatch `b` under `t`-way
/// tensor parallelism on `gpu`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTimeModel {
    /// Hardware model.
    pub gpu: GpuSpec,
    shape: ModelShape,
    micro_batch: u64,
    tensor: u64,
}

impl LayerTimeModel {
    /// Creates a layer timing model.
    ///
    /// # Panics
    ///
    /// Panics if `micro_batch` or `tensor` is zero.
    pub fn new(gpu: GpuSpec, shape: ModelShape, micro_batch: u64, tensor: u64) -> Self {
        assert!(micro_batch > 0 && tensor > 0, "batch and tensor size must be positive");
        LayerTimeModel { gpu, shape, micro_batch, tensor }
    }

    fn sbh(&self) -> f64 {
        (self.shape.seq * self.micro_batch * self.shape.hidden) as f64
    }

    fn as2b(&self) -> f64 {
        (self.shape.heads * self.shape.seq * self.shape.seq * self.micro_batch) as f64
    }

    /// Forward GEMM FLOPs per rank: `(24bsh² + 4bs²h)/t`.
    pub fn forward_gemm_flops(&self) -> f64 {
        let b = self.micro_batch as f64;
        let s = self.shape.seq as f64;
        let h = self.shape.hidden as f64;
        (24.0 * b * s * h * h + 4.0 * b * s * s * h) / self.tensor as f64
    }

    /// Attention-core GEMM FLOPs per rank (`QKᵀ` + `P·V`): `4bs²h/t` — what
    /// selective recomputation replays.
    pub fn attention_core_gemm_flops(&self) -> f64 {
        let b = self.micro_batch as f64;
        let s = self.shape.seq as f64;
        (4.0 * b * s * s * self.shape.hidden as f64) / self.tensor as f64
    }

    fn gemm_time_s(&self, flops: f64) -> f64 {
        flops / self.gpu.achieved_gemm_flops(self.shape.hidden)
    }

    fn hbm_time_s(&self, bytes: f64) -> f64 {
        bytes / self.gpu.hbm_bytes_per_s
    }

    /// Element-wise time of the LayerNorm/dropout/residual region. Sequence
    /// parallelism performs this work on `1/t` of the data — the paper's
    /// 6% forward speedup.
    fn replicated_region_time_s(&self, sequence_parallel: bool) -> f64 {
        let divisor = if sequence_parallel { self.tensor as f64 } else { 1.0 };
        self.hbm_time_s(REPLICATED_REGION_BYTES_PER_ELEM * self.sbh() / divisor)
    }

    fn attention_core_elemwise_time_s(&self) -> f64 {
        self.hbm_time_s(ATTENTION_CORE_BYTES_PER_ELEM * self.as2b() / self.tensor as f64)
    }

    fn parallel_region_elemwise_time_s(&self) -> f64 {
        self.hbm_time_s(PARALLEL_REGION_BYTES_PER_ELEM * self.sbh() / self.tensor as f64)
    }

    /// Logical payload of one `f`/`f̄`/`g`/`ḡ` collective: the full
    /// `[s, b, h]` activation at fp16.
    fn collective_payload_bytes(&self) -> u64 {
        self.shape.seq * self.micro_batch * self.shape.hidden * 2
    }

    /// Forward-pass collective time: 2 all-reduces for plain TP (Figure 4),
    /// 2 all-gathers + 2 reduce-scatters for TP+SP (Figure 5). The wire
    /// bytes are identical; only per-call latency differs (the paper notes
    /// the RS+AG pair executes slightly slower than a fused all-reduce).
    fn forward_comm_time_s(&self, sequence_parallel: bool) -> f64 {
        let bytes = self.collective_payload_bytes();
        let n = self.tensor;
        if n == 1 {
            return 0.0;
        }
        if sequence_parallel {
            2.0 * self.gpu.nvlink.time(CollectiveKind::AllGather, bytes, n)
                + 2.0 * self.gpu.nvlink.time(CollectiveKind::ReduceScatter, bytes, n)
        } else {
            2.0 * self.gpu.nvlink.time(CollectiveKind::AllReduce, bytes, n)
        }
    }

    /// Backward-pass visible collective time, after the overlap-with-dW
    /// optimization hides `backward_overlap` of the conjugate collectives
    /// and `sp_regather_overlap` of the extra Y re-gather.
    fn backward_comm_time_s(&self, sequence_parallel: bool) -> f64 {
        let n = self.tensor;
        if n == 1 {
            return 0.0;
        }
        let bytes = self.collective_payload_bytes();
        let visible = 1.0 - self.gpu.backward_overlap;
        let base = self.forward_comm_time_s(sequence_parallel) * visible;
        if sequence_parallel {
            let regather = 2.0 * self.gpu.nvlink.time(CollectiveKind::AllGather, bytes, n);
            base + regather * (1.0 - self.gpu.sp_regather_overlap)
        } else {
            base
        }
    }

    /// Forward-pass milliseconds per layer.
    pub fn forward_ms(&self, sequence_parallel: bool) -> f64 {
        1e3 * (self.gemm_time_s(self.forward_gemm_flops())
            + self.replicated_region_time_s(sequence_parallel)
            + self.attention_core_elemwise_time_s()
            + self.parallel_region_elemwise_time_s()
            + self.forward_comm_time_s(sequence_parallel))
    }

    /// Backward-pass milliseconds per layer, excluding recomputation.
    /// GEMMs cost 2× forward; element-wise traffic is comparable to forward.
    pub fn backward_ms(&self, sequence_parallel: bool) -> f64 {
        let elemwise = self.replicated_region_time_s(sequence_parallel)
            + self.attention_core_elemwise_time_s()
            + self.parallel_region_elemwise_time_s();
        1e3 * (self.gemm_time_s(2.0 * self.forward_gemm_flops())
            + BACKWARD_ELEMWISE_FACTOR * elemwise
            + self.backward_comm_time_s(sequence_parallel))
    }

    /// Recompute milliseconds per layer under a policy:
    /// `Full` replays the entire forward; `Selective` replays only the
    /// attention core (its small GEMMs plus its element-wise work).
    pub fn recompute_ms(&self, strategy: Strategy) -> f64 {
        match strategy.recompute {
            Recompute::None => 0.0,
            Recompute::Full => self.forward_ms(strategy.sequence_parallel),
            Recompute::Selective => {
                1e3 * (self.gemm_time_s(self.attention_core_gemm_flops())
                    + self.attention_core_elemwise_time_s())
            }
        }
    }

    /// The full Table 4 row for a strategy.
    pub fn times(&self, strategy: Strategy) -> LayerTiming {
        LayerTiming {
            forward_ms: self.forward_ms(strategy.sequence_parallel),
            backward_ms: self.backward_ms(strategy.sequence_parallel),
            recompute_ms: self.recompute_ms(strategy),
        }
    }

    /// Itemized forward-pass milliseconds: `(component, ms)` pairs that sum
    /// to [`LayerTimeModel::forward_ms`]. Useful for seeing *where* sequence
    /// parallelism's gain comes from (the replicated LayerNorm/dropout
    /// region) and what selective recomputation replays (the attention
    /// core).
    pub fn forward_breakdown(&self, sequence_parallel: bool) -> Vec<(&'static str, f64)> {
        let attn_core_gemm = self.gemm_time_s(self.attention_core_gemm_flops());
        let dense_gemm = self.gemm_time_s(self.forward_gemm_flops()) - attn_core_gemm;
        vec![
            ("dense GEMMs (QKV, proj, MLP)", 1e3 * dense_gemm),
            ("attention-core GEMMs (QKᵀ, P·V)", 1e3 * attn_core_gemm),
            ("attention-core element-wise", 1e3 * self.attention_core_elemwise_time_s()),
            (
                "LayerNorm/dropout/residual region",
                1e3 * self.replicated_region_time_s(sequence_parallel),
            ),
            ("GEMM-region element-wise (GeLU, bias)", 1e3 * self.parallel_region_elemwise_time_s()),
            ("collectives (f̄/ḡ, f/g)", 1e3 * self.forward_comm_time_s(sequence_parallel)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3's 22B configuration, on which Table 4 was measured.
    fn model_22b() -> LayerTimeModel {
        let shape = ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 };
        LayerTimeModel::new(GpuSpec::a100(), shape, 4, 8)
    }

    fn pct_close(ours: f64, paper: f64, tol_pct: f64, what: &str) {
        let rel = 100.0 * (ours - paper).abs() / paper;
        assert!(rel < tol_pct, "{what}: ours {ours:.2} vs paper {paper:.2} ({rel:.1}% off)");
    }

    #[test]
    fn table4_baseline_row() {
        // Baseline no recompute: 7.7 ms fwd / 11.9 ms bwd / 19.6 combined.
        let t = model_22b().times(Strategy::tp());
        pct_close(t.forward_ms, 7.7, 8.0, "baseline forward");
        pct_close(t.backward_ms, 11.9, 8.0, "baseline backward");
        pct_close(t.combined_ms(), 19.6, 8.0, "baseline combined");
    }

    #[test]
    fn table4_sequence_parallel_row() {
        // Sequence parallelism: 7.2 / 11.8 / 19.0, about -3% overall.
        let m = model_22b();
        let t = m.times(Strategy::tp_sp());
        pct_close(t.forward_ms, 7.2, 8.0, "sp forward");
        pct_close(t.backward_ms, 11.8, 8.0, "sp backward");
        let base = m.times(Strategy::tp());
        let overhead = t.overhead_pct(&base);
        assert!((-6.0..-1.0).contains(&overhead), "sp overhead {overhead:.1}% (paper -3%)");
    }

    #[test]
    fn table4_full_recompute_row() {
        // Baseline with recompute: 7.7 / 19.5 / 27.2, ~39% overhead.
        let m = model_22b();
        let t = m.times(Strategy::full_recompute());
        pct_close(t.backward_with_recompute_ms(), 19.5, 8.0, "full-recompute backward");
        pct_close(t.combined_ms(), 27.2, 8.0, "full-recompute combined");
        let overhead = t.overhead_pct(&m.times(Strategy::tp()));
        assert!((30.0..48.0).contains(&overhead), "full overhead {overhead:.1}% (paper 39%)");
    }

    #[test]
    fn table4_selective_row() {
        // Selective recompute: 7.7 / 13.2 / 20.9, ~7% overhead.
        let m = model_22b();
        let t = m.times(Strategy::tp_selective());
        pct_close(t.backward_with_recompute_ms(), 13.2, 10.0, "selective backward");
        let overhead = t.overhead_pct(&m.times(Strategy::tp()));
        assert!((3.0..11.0).contains(&overhead), "selective overhead {overhead:.1}% (paper 7%)");
    }

    #[test]
    fn table4_selective_plus_sequence_row() {
        // Selective + sequence: 7.2 / 13.1 / 20.3, ~4% overhead.
        let m = model_22b();
        let t = m.times(Strategy::tp_sp_selective());
        pct_close(t.combined_ms(), 20.3, 8.0, "present-work combined");
        let overhead = t.overhead_pct(&m.times(Strategy::tp()));
        assert!((0.0..8.0).contains(&overhead), "present-work overhead {overhead:.1}% (paper 4%)");
    }

    #[test]
    fn figure8_overhead_shrinks_with_model_size() {
        // Figure 8: "as the model size grows, the reduction in overhead also
        // increases" — for 530B and 1T, selective+SP overhead is ~2% while
        // full recompute stays ~36%.
        let configs = [
            (ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 }, 1),
            (ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 }, 1),
            (ModelShape { heads: 160, hidden: 25600, layers: 128, seq: 2048, vocab: 51200 }, 1),
        ];
        let mut prev_overhead = f64::INFINITY;
        for (shape, b) in configs {
            let m = LayerTimeModel::new(GpuSpec::a100(), shape, b, 8);
            let base = m.times(Strategy::tp());
            let present = m.times(Strategy::tp_sp_selective());
            let full = m.times(Strategy::full_recompute());
            let overhead = present.overhead_pct(&base);
            assert!(overhead < prev_overhead + 0.5, "overhead should shrink: {overhead:.2}%");
            assert!(
                full.overhead_pct(&base) > 30.0,
                "full recompute stays expensive: {:.1}%",
                full.overhead_pct(&base)
            );
            prev_overhead = overhead;
        }
        // Largest models land near the paper's 2%.
        assert!(prev_overhead < 4.0, "1T present-work overhead {prev_overhead:.1}% (paper 2%)");
    }

    #[test]
    fn selective_recompute_is_much_cheaper_than_full() {
        let m = model_22b();
        let sel = m.recompute_ms(Strategy::tp_selective());
        let full = m.recompute_ms(Strategy::full_recompute());
        assert!(sel < full / 4.0, "selective {sel:.2} ms vs full {full:.2} ms");
    }

    #[test]
    fn breakdown_sums_to_the_forward_time() {
        let m = model_22b();
        for sp in [false, true] {
            let total: f64 = m.forward_breakdown(sp).iter().map(|(_, ms)| ms).sum();
            assert!(
                (total - m.forward_ms(sp)).abs() < 1e-9,
                "sp={sp}: breakdown {total} vs forward {}",
                m.forward_ms(sp)
            );
        }
    }

    #[test]
    fn breakdown_locates_the_sequence_parallel_gain() {
        // The only component SP changes is the replicated region.
        let m = model_22b();
        let tp = m.forward_breakdown(false);
        let sp = m.forward_breakdown(true);
        for ((name, a), (_, b)) in tp.iter().zip(&sp) {
            if *name == "LayerNorm/dropout/residual region" {
                assert!(a > b, "{name}: {a} vs {b}");
            } else if name.contains("collectives") {
                // Identical wire bytes; per-step latency may differ slightly.
                assert!((a - b).abs() / a < 0.2, "{name}");
            } else {
                assert!((a - b).abs() < 1e-12, "{name} should be unchanged");
            }
        }
    }

    #[test]
    fn t_equals_one_has_no_comm() {
        let shape = ModelShape { heads: 8, hidden: 1024, layers: 4, seq: 512, vocab: 1000 };
        let m = LayerTimeModel::new(GpuSpec::a100(), shape, 1, 1);
        let tp = m.times(Strategy::tp());
        let sp = m.times(Strategy::tp_sp());
        // Without a group, TP and TP+SP degenerate to the same serial time.
        assert!((tp.combined_ms() - sp.combined_ms()).abs() < 1e-12);
    }
}
