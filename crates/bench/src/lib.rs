//! # mt-bench
//!
//! Regenerates every table and figure of *"Reducing Activation Recomputation
//! in Large Transformer Models"* from the workspace's models, as typed rows
//! (for JSON emission and tests) and formatted text (for the `report`
//! binary). Criterion benchmarks of the *executing* system live in
//! `benches/`.

#![warn(missing_docs)]

pub mod reports;
