//! Typed regeneration of every paper table and figure.
//!
//! Each artifact gets a `*_rows()` function returning serializable rows (the
//! machine-readable record EXPERIMENTS.md is built from) and a `render_*`
//! function producing the human-readable table the `report` binary prints.

use mt_core::{Estimator, ModelZoo, PaperModel, TrainingPlanner};
use mt_flops::FlopsModel;
use mt_memory::{
    ActivationMemoryModel, PipelineMemoryProfile, Recompute, Strategy, A100_80GB_BYTES, GIB,
};
use serde::Serialize;

/// The five execution strategies every comparison sweeps.
pub fn strategies() -> [Strategy; 5] {
    [
        Strategy::tp(),
        Strategy::tp_sp(),
        Strategy::tp_selective(),
        Strategy::tp_sp_selective(),
        Strategy::full_recompute(),
    ]
}

// ---------------------------------------------------------------------------
// Table 2 — per-layer activation memory formulas
// ---------------------------------------------------------------------------

/// One Table 2 row, evaluated for a concrete model.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Technique label (paper wording).
    pub technique: String,
    /// Closed-form expression.
    pub formula: &'static str,
    /// Evaluated bytes per layer per rank.
    pub bytes_per_layer: f64,
}

/// Evaluates Table 2 for one model.
pub fn table2_rows(model: &PaperModel) -> Vec<Table2Row> {
    let act = ActivationMemoryModel::new(model.shape, model.batch.micro, model.parallel.tensor);
    let mut rows = vec![Table2Row {
        technique: "no parallelism".into(),
        formula: "sbh(34 + 5as/h)",
        bytes_per_layer: act.per_layer_bytes_serial(),
    }];
    let formulas =
        ["sbh(10 + 24/t + 5as/ht)", "sbh(34/t + 5as/ht)", "sbh(10 + 24/t)", "sbh(34/t)", "sbh(2)"];
    for (s, f) in strategies().into_iter().zip(formulas) {
        rows.push(Table2Row {
            technique: s.label().into(),
            formula: f,
            bytes_per_layer: act.per_layer_bytes(s),
        });
    }
    rows
}

/// Renders Table 2 as text.
pub fn render_table2(model: &PaperModel) -> String {
    let mut out = format!(
        "Table 2 — activation memory per transformer layer ({})\n{:<55} {:>28} {:>12}\n",
        model.name, "technique", "formula", "MB/layer"
    );
    for r in table2_rows(model) {
        out.push_str(&format!(
            "{:<55} {:>28} {:>12.1}\n",
            r.technique,
            r.formula,
            r.bytes_per_layer / 1e6
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 1 — memory vs the 80 GB line
// ---------------------------------------------------------------------------

/// One Figure 1 bar group.
#[derive(Debug, Clone, Serialize)]
pub struct Figure1Row {
    /// Model name.
    pub model: String,
    /// Parameters + optimizer state per GPU, GB.
    pub model_state_gb: f64,
    /// Activation memory (TP baseline), GB.
    pub baseline_activations_gb: f64,
    /// Activation memory (present work), GB.
    pub present_activations_gb: f64,
    /// Baseline total exceeds 80 GB?
    pub baseline_fits: bool,
    /// Present-work total fits 80 GB?
    pub present_fits: bool,
}

/// Evaluates Figure 1 across the Table 3 zoo.
pub fn figure1_rows() -> Vec<Figure1Row> {
    ModelZoo::all()
        .iter()
        .map(|m| {
            let est = Estimator::for_paper_model(m);
            let base = est.memory_report(Strategy::tp());
            let present = est.memory_report(Strategy::tp_sp_selective());
            Figure1Row {
                model: m.name.into(),
                model_state_gb: base.model_state_bytes / 1e9,
                baseline_activations_gb: base.activation_bytes / 1e9,
                present_activations_gb: present.activation_bytes / 1e9,
                baseline_fits: base.fits_a100_80gb,
                present_fits: present.fits_a100_80gb,
            }
        })
        .collect()
}

/// Renders Figure 1 as text.
pub fn render_figure1() -> String {
    let mut out = format!(
        "Figure 1 — per-GPU memory vs the A100 80 GB line\n{:<15} {:>10} {:>14} {:>14} {:>10} {:>10}\n",
        "model", "state GB", "acts base GB", "acts ours GB", "base fits", "ours fits"
    );
    for r in figure1_rows() {
        out.push_str(&format!(
            "{:<15} {:>10.1} {:>14.1} {:>14.1} {:>10} {:>10}\n",
            r.model,
            r.model_state_gb,
            r.baseline_activations_gb,
            r.present_activations_gb,
            r.baseline_fits,
            r.present_fits
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 7 — percentage of the TP baseline
// ---------------------------------------------------------------------------

/// One Figure 7 bar group.
#[derive(Debug, Clone, Serialize)]
pub struct Figure7Row {
    /// Model name.
    pub model: String,
    /// Sequence-parallel only, % of baseline.
    pub sequence_parallel_pct: f64,
    /// Selective recompute only, % of baseline.
    pub selective_pct: f64,
    /// Both combined, % of baseline.
    pub combined_pct: f64,
    /// Full recompute, % of baseline.
    pub full_recompute_pct: f64,
}

/// Evaluates Figure 7 across the zoo.
pub fn figure7_rows() -> Vec<Figure7Row> {
    ModelZoo::all()
        .iter()
        .map(|m| {
            let act = ActivationMemoryModel::new(m.shape, m.batch.micro, m.parallel.tensor);
            Figure7Row {
                model: m.name.into(),
                sequence_parallel_pct: act.percent_of_tp_baseline(Strategy::tp_sp()),
                selective_pct: act.percent_of_tp_baseline(Strategy::tp_selective()),
                combined_pct: act.percent_of_tp_baseline(Strategy::tp_sp_selective()),
                full_recompute_pct: act.percent_of_tp_baseline(Strategy::full_recompute()),
            }
        })
        .collect()
}

/// Renders Figure 7 as text.
pub fn render_figure7() -> String {
    let mut out = format!(
        "Figure 7 — activation memory as % of the tensor-parallel baseline\n{:<15} {:>10} {:>12} {:>10} {:>12}\n",
        "model", "seq-par %", "selective %", "both %", "full rec %"
    );
    for r in figure7_rows() {
        out.push_str(&format!(
            "{:<15} {:>10.1} {:>12.1} {:>10.1} {:>12.1}\n",
            r.model, r.sequence_parallel_pct, r.selective_pct, r.combined_pct, r.full_recompute_pct
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Table 4 — 22B per-layer times
// ---------------------------------------------------------------------------

/// One Table 4 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Experiment label (paper wording).
    pub experiment: &'static str,
    /// Forward milliseconds.
    pub forward_ms: f64,
    /// Backward milliseconds (including recompute, as the paper reports).
    pub backward_ms: f64,
    /// Combined milliseconds.
    pub combined_ms: f64,
    /// Overhead percent vs the no-recompute baseline (None for baseline).
    pub overhead_pct: Option<f64>,
}

/// Evaluates Table 4 (the 22B model's per-layer times).
pub fn table4_rows() -> Vec<Table4Row> {
    let m = ModelZoo::gpt_22b();
    let layer = mt_perf::LayerTimeModel::new(
        mt_perf::GpuSpec::a100(),
        m.shape,
        m.batch.micro,
        m.parallel.tensor,
    );
    let base = layer.times(Strategy::tp());
    let experiments: [(&'static str, Strategy); 5] = [
        ("Baseline no recompute", Strategy::tp()),
        ("Sequence Parallelism", Strategy::tp_sp()),
        ("Baseline with recompute", Strategy::full_recompute()),
        ("Selective Recompute", Strategy::tp_selective()),
        ("Selective + Sequence", Strategy::tp_sp_selective()),
    ];
    experiments
        .into_iter()
        .map(|(label, s)| {
            let t = layer.times(s);
            Table4Row {
                experiment: label,
                forward_ms: t.forward_ms,
                backward_ms: t.backward_with_recompute_ms(),
                combined_ms: t.combined_ms(),
                overhead_pct: (label != "Baseline no recompute").then(|| t.overhead_pct(&base)),
            }
        })
        .collect()
}

/// Renders Table 4 as text.
pub fn render_table4() -> String {
    let mut out = format!(
        "Table 4 — single-layer times, 22B model\n{:<26} {:>12} {:>13} {:>13} {:>12}\n",
        "experiment", "forward ms", "backward ms", "combined ms", "overhead %"
    );
    for r in table4_rows() {
        out.push_str(&format!(
            "{:<26} {:>12.1} {:>13.1} {:>13.1} {:>12}\n",
            r.experiment,
            r.forward_ms,
            r.backward_ms,
            r.combined_ms,
            r.overhead_pct.map_or("-".into(), |o| format!("{o:+.0}%"))
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 8 — per-layer breakdown across models
// ---------------------------------------------------------------------------

/// One Figure 8 bar: forward/backward/recompute per strategy per model.
#[derive(Debug, Clone, Serialize)]
pub struct Figure8Row {
    /// Model name.
    pub model: String,
    /// Strategy label.
    pub strategy: String,
    /// Forward milliseconds.
    pub forward_ms: f64,
    /// Backward milliseconds (without recompute).
    pub backward_ms: f64,
    /// Recompute milliseconds.
    pub recompute_ms: f64,
    /// Overhead vs baseline, percent.
    pub overhead_pct: f64,
}

/// Evaluates Figure 8 across the zoo.
pub fn figure8_rows() -> Vec<Figure8Row> {
    let mut rows = Vec::new();
    for m in ModelZoo::all() {
        let layer = mt_perf::LayerTimeModel::new(
            mt_perf::GpuSpec::a100(),
            m.shape,
            m.batch.micro,
            m.parallel.tensor,
        );
        let base = layer.times(Strategy::tp());
        for (label, s) in [
            ("baseline", Strategy::tp()),
            ("full recompute", Strategy::full_recompute()),
            ("selective", Strategy::tp_selective()),
            ("present work", Strategy::tp_sp_selective()),
        ] {
            let t = layer.times(s);
            rows.push(Figure8Row {
                model: m.name.into(),
                strategy: label.into(),
                forward_ms: t.forward_ms,
                backward_ms: t.backward_ms,
                recompute_ms: t.recompute_ms,
                overhead_pct: t.overhead_pct(&base),
            });
        }
    }
    rows
}

/// Renders Figure 8 as text.
pub fn render_figure8() -> String {
    let mut out = format!(
        "Figure 8 — per-layer forward/backward/recompute breakdown\n{:<15} {:<16} {:>9} {:>9} {:>11} {:>11}\n",
        "model", "strategy", "fwd ms", "bwd ms", "recomp ms", "overhead %"
    );
    for r in figure8_rows() {
        out.push_str(&format!(
            "{:<15} {:<16} {:>9.1} {:>9.1} {:>11.1} {:>+11.1}\n",
            r.model, r.strategy, r.forward_ms, r.backward_ms, r.recompute_ms, r.overhead_pct
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Table 5 — end-to-end iteration time
// ---------------------------------------------------------------------------

/// One Table 5 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Model name.
    pub model: String,
    /// Iteration seconds under full recomputation.
    pub full_recompute_s: f64,
    /// Iteration seconds under the present work (TP+SP+selective).
    pub present_work_s: f64,
    /// Throughput increase percent.
    pub throughput_increase_pct: f64,
    /// Model FLOPs utilization of the present work.
    pub mfu: f64,
    /// Hardware FLOPs utilization of the present work.
    pub hfu: f64,
}

/// Evaluates Table 5 across the zoo.
pub fn table5_rows() -> Vec<Table5Row> {
    ModelZoo::all()
        .iter()
        .map(|m| {
            let est = Estimator::for_paper_model(m);
            let full = est.time_report(Strategy::full_recompute());
            let present = est.time_report(Strategy::tp_sp_selective());
            Table5Row {
                model: m.name.into(),
                full_recompute_s: full.iteration_s,
                present_work_s: present.iteration_s,
                throughput_increase_pct: 100.0 * (full.iteration_s / present.iteration_s - 1.0),
                mfu: present.mfu,
                hfu: present.hfu,
            }
        })
        .collect()
}

/// The Section 6.3 data-parallel extension for the 530B model:
/// `(iteration_s at DP=8, MFU at DP=8)`.
pub fn table5_dp_extension() -> (f64, f64) {
    let m = ModelZoo::mtnlg_530b();
    let est = Estimator::for_paper_model(&m);
    let report = est.data_parallel_report(Strategy::tp_sp_selective(), 8);
    (report.iteration_s, report.mfu)
}

/// Renders Table 5 as text.
pub fn render_table5() -> String {
    let mut out = format!(
        "Table 5 — end-to-end iteration time\n{:<15} {:>14} {:>14} {:>12} {:>8} {:>8}\n",
        "model", "full rec s", "present s", "increase %", "MFU %", "HFU %"
    );
    for r in table5_rows() {
        out.push_str(&format!(
            "{:<15} {:>14.2} {:>14.2} {:>12.1} {:>8.1} {:>8.1}\n",
            r.model,
            r.full_recompute_s,
            r.present_work_s,
            r.throughput_increase_pct,
            100.0 * r.mfu,
            100.0 * r.hfu
        ));
    }
    let (dp_iter, dp_mfu) = table5_dp_extension();
    out.push_str(&format!(
        "530B + 8-way DP (2240 GPUs): iteration {dp_iter:.2} s, MFU {:.1}% (paper: 39.15 s, 54.2%)\n",
        100.0 * dp_mfu
    ));
    out
}

// ---------------------------------------------------------------------------
// Figure 9 — pipeline-rank memory profile
// ---------------------------------------------------------------------------

/// One Figure 9 point.
#[derive(Debug, Clone, Serialize)]
pub struct Figure9Row {
    /// Pipeline rank.
    pub rank: u64,
    /// Activation GiB without output deallocation.
    pub unoptimized_gib: f64,
    /// Activation GiB with output deallocation.
    pub optimized_gib: f64,
}

/// Evaluates Figure 9 (530B model, per-pipeline-rank activation memory).
pub fn figure9_rows() -> Vec<Figure9Row> {
    let m = ModelZoo::mtnlg_530b();
    let act = ActivationMemoryModel::new(m.shape, m.batch.micro, m.parallel.tensor);
    let profile = PipelineMemoryProfile::new(act, m.parallel, m.batch.num_micro());
    let strategy = Strategy::tp_sp_selective();
    (0..m.parallel.pipeline)
        .map(|rank| Figure9Row {
            rank,
            unoptimized_gib: profile.activation_bytes(strategy, rank, false) / GIB,
            optimized_gib: profile.activation_bytes(strategy, rank, true) / GIB,
        })
        .collect()
}

/// Renders Figure 9 as text.
pub fn render_figure9() -> String {
    let mut out = format!(
        "Figure 9 — 530B activation memory per pipeline rank (GiB)\n{:<6} {:>14} {:>12}\n",
        "rank", "unoptimized", "optimized"
    );
    for r in figure9_rows() {
        out.push_str(&format!(
            "{:<6} {:>14.2} {:>12.2}\n",
            r.rank, r.unoptimized_gib, r.optimized_gib
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Appendix A — FLOPs
// ---------------------------------------------------------------------------

/// FLOPs summary per model.
#[derive(Debug, Clone, Serialize)]
pub struct FlopsRow {
    /// Model name.
    pub model: String,
    /// Equation 7 model PFLOPs per iteration.
    pub model_pflops: f64,
    /// Equation 8 hardware PFLOPs per iteration (selective recompute).
    pub hardware_pflops_selective: f64,
    /// Hardware PFLOPs under full recomputation.
    pub hardware_pflops_full: f64,
    /// `1 + s/6h` approximation of hardware/model.
    pub ratio_approx: f64,
}

/// Evaluates Appendix A across the zoo.
pub fn flops_rows() -> Vec<FlopsRow> {
    ModelZoo::all()
        .iter()
        .map(|m| {
            let f = FlopsModel::new(m.shape, m.batch.global);
            FlopsRow {
                model: m.name.into(),
                model_pflops: f.model_flops() / 1e15,
                hardware_pflops_selective: f.hardware_flops(Recompute::Selective) / 1e15,
                hardware_pflops_full: f.hardware_flops(Recompute::Full) / 1e15,
                ratio_approx: f.selective_ratio_approx(),
            }
        })
        .collect()
}

/// Renders Appendix A as text.
pub fn render_flops() -> String {
    let mut out = format!(
        "Appendix A — FLOPs per iteration\n{:<15} {:>12} {:>16} {:>13} {:>10}\n",
        "model", "model PF", "hw PF (sel)", "hw PF (full)", "1+s/6h"
    );
    for r in flops_rows() {
        out.push_str(&format!(
            "{:<15} {:>12.1} {:>16.1} {:>13.1} {:>10.4}\n",
            r.model,
            r.model_pflops,
            r.hardware_pflops_selective,
            r.hardware_pflops_full,
            r.ratio_approx
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Section 5 — selective recomputation savings
// ---------------------------------------------------------------------------

/// Section 5's quantified claims for one model.
#[derive(Debug, Clone, Serialize)]
pub struct SelectiveRow {
    /// Model name.
    pub model: String,
    /// The `5as/h` coefficient.
    pub attention_coefficient: f64,
    /// Fraction of activation memory saved by selective recomputation.
    pub memory_saved_pct: f64,
    /// FLOPs overhead percent (Equation 8 accounting).
    pub flops_overhead_pct: f64,
}

/// Evaluates the Section 5 claims (GPT-3: 70% / 2.7%; MT-NLG: 65% / 1.6%).
pub fn selective_rows() -> Vec<SelectiveRow> {
    ModelZoo::all()
        .iter()
        .map(|m| {
            let act = ActivationMemoryModel::new(m.shape, m.batch.micro, m.parallel.tensor);
            let f = FlopsModel::new(m.shape, m.batch.global);
            SelectiveRow {
                model: m.name.into(),
                attention_coefficient: m.shape.attention_coefficient(),
                memory_saved_pct: 100.0 * act.selective_savings_fraction(),
                flops_overhead_pct: 100.0 * f.selective_overhead_fraction(),
            }
        })
        .collect()
}

/// Renders the Section 5 summary as text.
pub fn render_selective() -> String {
    let mut out = format!(
        "Section 5 — selective recomputation tradeoff\n{:<15} {:>8} {:>14} {:>16}\n",
        "model", "5as/h", "mem saved %", "FLOPs overhead %"
    );
    for r in selective_rows() {
        out.push_str(&format!(
            "{:<15} {:>8.0} {:>14.1} {:>16.1}\n",
            r.model, r.attention_coefficient, r.memory_saved_pct, r.flops_overhead_pct
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Appendix C — microbatch-level recomputation
// ---------------------------------------------------------------------------

/// Appendix C outcome for one model.
#[derive(Debug, Clone, Serialize)]
pub struct AppendixCRow {
    /// Model name.
    pub model: String,
    /// Per-stage storage budgets at the 80 GB device limit.
    pub store_budgets: Vec<u64>,
    /// Baseline MFU (selective + SP, no microbatch-level storage).
    pub mfu_baseline: f64,
    /// MFU with microbatch-level storage.
    pub mfu_with_storage: f64,
}

/// Evaluates Appendix C for the pipelined models (175B and 530B, as in the
/// paper).
pub fn appendix_c_rows() -> Vec<AppendixCRow> {
    [ModelZoo::gpt3_175b(), ModelZoo::mtnlg_530b()]
        .iter()
        .map(|m| {
            let est = Estimator::for_paper_model(m);
            let strategy = Strategy::tp_sp_selective();
            let planner = TrainingPlanner::new(est, A100_80GB_BYTES);
            let budgets = planner.appendix_c_budgets(strategy);
            let base = est.time_report(strategy);
            let with_s = est.iteration_ms_with_storage(strategy, &budgets) / 1e3;
            let f = FlopsModel::new(m.shape, m.batch.global);
            AppendixCRow {
                model: m.name.into(),
                store_budgets: budgets,
                mfu_baseline: base.mfu,
                mfu_with_storage: f.mfu(with_s, m.gpus(), est.gpu.peak_flops),
            }
        })
        .collect()
}

/// Renders Appendix C as text.
pub fn render_appendix_c() -> String {
    let mut out = String::from("Appendix C — microbatch-level activation recomputation\n");
    for r in appendix_c_rows() {
        out.push_str(&format!(
            "{}: MFU {:.1}% -> {:.1}% (+{:.2} pts); stage budgets {:?}…\n",
            r.model,
            100.0 * r.mfu_baseline,
            100.0 * r.mfu_with_storage,
            100.0 * (r.mfu_with_storage - r.mfu_baseline),
            &r.store_budgets[..r.store_budgets.len().min(8)]
        ));
    }
    out.push_str("(paper: 175B 51.6% -> 52.3% (+0.7), 530B 56.0% -> 56.4% (+0.4))\n");
    out
}

// ---------------------------------------------------------------------------
// Ablation — per-layer checkpointing vs selective recomputation (Section 5)
// ---------------------------------------------------------------------------

/// One setting of the "checkpoint k of the device's layers" scheme.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Model name.
    pub model: String,
    /// Scheme label.
    pub scheme: String,
    /// Layers checkpointed per device (mixed scheme only).
    pub checkpointed_per_device: Option<u64>,
    /// First-stage activation GB.
    pub activation_gb: f64,
    /// Fits next to the model state in 80 GB?
    pub fits: bool,
    /// Estimated per-layer execution overhead vs the no-recompute baseline,
    /// percent.
    pub overhead_pct: f64,
}

/// Compares mixed per-layer checkpointing against selective recomputation
/// for the pipelined models — the quantified version of Section 5's
/// granularity argument.
pub fn ablation_rows() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for m in [ModelZoo::mtnlg_530b(), ModelZoo::gpt3_175b()] {
        let est = Estimator::for_paper_model(&m);
        let act = ActivationMemoryModel::new(m.shape, m.batch.micro, m.parallel.tensor);
        let state = mt_memory::ModelStateMemory::new(m.shape).bytes_per_gpu(m.parallel);
        let layer = mt_perf::LayerTimeModel::new(
            mt_perf::GpuSpec::a100(),
            m.shape,
            m.batch.micro,
            m.parallel.tensor,
        );
        let base = layer.times(Strategy::tp_sp());
        // Selective recomputation: one row.
        let sel_mem = est.memory_report(Strategy::tp_sp_selective());
        rows.push(AblationRow {
            model: m.name.into(),
            scheme: "selective recomputation".into(),
            checkpointed_per_device: None,
            activation_gb: sel_mem.activation_bytes / 1e9,
            fits: state + sel_mem.activation_bytes <= A100_80GB_BYTES,
            overhead_pct: layer.times(Strategy::tp_sp_selective()).overhead_pct(&base),
        });
        // Mixed checkpointing: every granularity step.
        let mixed = mt_memory::MixedLayerCheckpointing::new(act, m.parallel, true);
        for opt in mixed.options() {
            // Replaying `recompute_fraction` of the forward each backward.
            let replay_ms = opt.recompute_fraction * base.forward_ms;
            let overhead = 100.0 * replay_ms / base.combined_ms();
            rows.push(AblationRow {
                model: m.name.into(),
                scheme: "mixed layer checkpointing".into(),
                checkpointed_per_device: Some(opt.checkpointed_per_device),
                activation_gb: opt.first_stage_bytes / 1e9,
                fits: state + opt.first_stage_bytes <= A100_80GB_BYTES,
                overhead_pct: overhead,
            });
        }
    }
    rows
}

/// Renders the ablation as text.
pub fn render_ablation() -> String {
    let mut out = format!(
        "Ablation — selective recomputation vs per-layer checkpointing (Section 5)\n{:<15} {:<28} {:>7} {:>10} {:>6} {:>11}\n",
        "model", "scheme", "k", "acts GB", "fits", "overhead %"
    );
    for r in ablation_rows() {
        out.push_str(&format!(
            "{:<15} {:<28} {:>7} {:>10.1} {:>6} {:>11.1}\n",
            r.model,
            r.scheme,
            r.checkpointed_per_device.map_or("-".into(), |k| k.to_string()),
            r.activation_gb,
            if r.fits { "yes" } else { "no" },
            r.overhead_pct
        ));
    }
    out.push_str(
        "(the smallest fitting mixed setting replays a large fraction of the forward pass;\n selective recomputation fits with a small fraction of that overhead)\n",
    );
    out
}

// ---------------------------------------------------------------------------
// Related work, quantified (Section 2)
// ---------------------------------------------------------------------------

/// Renders the Related Work comparisons: ZeRO-1 optimizer-state sharding and
/// activation offloading vs selective recomputation.
pub fn render_related_work() -> String {
    let mut out = String::from(
        "Related work quantified (Section 2)\n\nZeRO-1 optimizer-state sharding (executing mini-implementation in mt-model::zero):\n",
    );
    out.push_str(&format!(
        "{:<15} {:>16} {:>18}\n",
        "model", "state GB (repl.)", "state GB (ZeRO-1, dp=8)"
    ));
    for m in ModelZoo::all() {
        let state = mt_memory::ModelStateMemory::new(m.shape);
        out.push_str(&format!(
            "{:<15} {:>16.1} {:>18.1}\n",
            m.name,
            state.bytes_per_gpu(m.parallel) / 1e9,
            state.bytes_per_gpu_zero1(m.parallel, 8) / 1e9
        ));
    }
    out.push_str(
        "\nActivation offloading vs selective recomputation (per layer, attention-core bytes):\n",
    );
    out.push_str(&format!("{:<15} {:>16} {:>16}\n", "model", "offload ms", "recompute ms"));
    let off = mt_perf::OffloadModel::pcie_gen4();
    for m in ModelZoo::all() {
        let (o, r) = off.versus_selective_recompute(
            mt_perf::GpuSpec::a100(),
            m.shape,
            m.batch.micro,
            m.parallel.tensor,
        );
        out.push_str(&format!("{:<15} {:>16.2} {:>16.2}\n", m.name, o, r));
    }
    out.push_str(
        "(recomputation beats shipping the same bytes over PCIe for every Table 3 model —\n the paper's rationale for preferring model-parallel techniques)\n",
    );
    out
}

// ---------------------------------------------------------------------------
// Per-op forward breakdown
// ---------------------------------------------------------------------------

/// Renders the per-component forward-time breakdown for the 22B layer, TP vs
/// TP+SP — where Table 4's −0.5 ms forward gain lives.
pub fn render_breakdown() -> String {
    let m = ModelZoo::gpt_22b();
    let layer = mt_perf::LayerTimeModel::new(
        mt_perf::GpuSpec::a100(),
        m.shape,
        m.batch.micro,
        m.parallel.tensor,
    );
    let tp = layer.forward_breakdown(false);
    let sp = layer.forward_breakdown(true);
    let mut out = String::from(
        "Forward-pass breakdown, 22B layer (where sequence parallelism's speedup lives)\n",
    );
    out.push_str(&format!(
        "{:<40} {:>10} {:>10} {:>8}\n",
        "component", "TP ms", "TP+SP ms", "Δ ms"
    ));
    for ((name, a), (_, b)) in tp.iter().zip(&sp) {
        out.push_str(&format!("{:<40} {:>10.3} {:>10.3} {:>+8.3}\n", name, a, b, b - a));
    }
    let (ta, tb): (f64, f64) = (tp.iter().map(|x| x.1).sum(), sp.iter().map(|x| x.1).sum());
    out.push_str(&format!("{:<40} {:>10.3} {:>10.3} {:>+8.3}\n", "total", ta, tb, tb - ta));
    out
}

// ---------------------------------------------------------------------------
// First-stage relief frontier (the paper's conclusion / future work)
// ---------------------------------------------------------------------------

/// Renders the first-stage layer-assignment trade-off for the 1T model.
pub fn render_relief() -> String {
    let est = Estimator::for_paper_model(&ModelZoo::gpt_1t());
    let pts = mt_core::balance::first_stage_relief_frontier(&est, Strategy::tp_sp_selective());
    let mut out = String::from(
        "First-stage memory relief (1T model, plain 1F1B) — the conclusion's future-work lever\n",
    );
    out.push_str(&format!(
        "{:<18} {:>18} {:>14}\n",
        "stage-0 layers", "stage-0 acts GB", "iteration s"
    ));
    for p in &pts {
        out.push_str(&format!(
            "{:<18} {:>18.1} {:>14.2}\n",
            p.first_stage_layers,
            p.first_stage_activation_bytes / 1e9,
            p.iteration_s
        ));
    }
    out.push_str(
        "(halving stage 0's layers halves its activation memory for a ~1-3% iteration-time cost)\n",
    );
    out
}

// ---------------------------------------------------------------------------
// Fragmentation study (the paper's conclusion / future work)
// ---------------------------------------------------------------------------

/// One fragmentation-study row.
#[derive(Debug, Clone, Serialize)]
pub struct FragmentationRow {
    /// Scenario label.
    pub scenario: String,
    /// Peak live bytes (allocator-independent lower bound).
    pub peak_live: u64,
    /// Minimal best-fit arena that completes the trace.
    pub minimal_arena: u64,
    /// Fragmentation overhead fraction.
    pub overhead: f64,
}

/// Replays a 530B-like first-stage 1F1B allocation trace through the caching
/// allocator: uniform vs. variable microbatch sizes, with and without the
/// Appendix B output deallocation.
pub fn fragmentation_rows() -> Vec<FragmentationRow> {
    use mt_pipeline::{replay_stage_memory, PipelineSim, ReplayConfig, StageCosts};
    let p = 8;
    let n = 32u64;
    let sim = PipelineSim::uniform(StageCosts::new(45.0, 85.0, 2.0), p, n, 0.3);
    let (_, events) = sim.trace_1f1b(None);
    // Per-microbatch activation block: a 530B-flavoured first stage holds
    // ~178 MB per microbatch per layer-stack unit; scaled-down units here.
    let uniform: Vec<u64> = vec![1000; n as usize];
    let variable: Vec<u64> = (0..n).map(|m| 600 + (m * 397 + 31) % 801).collect();
    let mut rows = Vec::new();
    for (label, sizes, dealloc) in [
        ("uniform microbatches, outputs deallocated", uniform.clone(), true),
        ("uniform microbatches, outputs pinned", uniform, false),
        ("variable microbatches, outputs deallocated", variable.clone(), true),
        ("variable microbatches, outputs pinned", variable, false),
    ] {
        let cfg =
            ReplayConfig { activation_bytes: sizes, output_bytes: 40, deallocate_outputs: dealloc };
        let report = replay_stage_memory(&events, 0, &cfg);
        rows.push(FragmentationRow {
            scenario: label.into(),
            peak_live: report.peak_live_bytes,
            minimal_arena: report.minimal_arena_bytes,
            overhead: report.fragmentation_overhead(),
        });
    }
    rows
}

/// Renders the fragmentation study as text.
pub fn render_fragmentation() -> String {
    let mut out = String::from(
        "Fragmentation study — first-stage 1F1B allocation trace through a best-fit caching allocator\n(the \"memory fragmentation for large microbatches\" of the paper's conclusion)\n",
    );
    out.push_str(&format!(
        "{:<46} {:>10} {:>12} {:>10}\n",
        "scenario", "peak live", "min arena", "overhead"
    ));
    for r in fragmentation_rows() {
        out.push_str(&format!(
            "{:<46} {:>10} {:>12} {:>9.1}%\n",
            r.scenario,
            r.peak_live,
            r.minimal_arena,
            100.0 * r.overhead
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Design-space sweeps
// ---------------------------------------------------------------------------

/// Renders the sequence-length and tensor-parallel-size sweeps as text.
pub fn render_sweeps() -> String {
    let gpt3 = ModelZoo::gpt3_175b().shape;
    let mut out = String::from(
        "Sequence-length sweep (GPT-3 architecture) — why selective recomputation wins harder at long context\n",
    );
    out.push_str(&format!(
        "{:<8} {:>8} {:>16} {:>18}\n",
        "seq", "5as/h", "mem saved %", "FLOPs overhead %"
    ));
    for p in mt_core::sweeps::sequence_length_sweep(gpt3, &[512, 1024, 2048, 4096, 8192, 16384], 1)
    {
        out.push_str(&format!(
            "{:<8} {:>8.0} {:>16.1} {:>18.1}\n",
            p.seq,
            p.attention_coefficient,
            100.0 * p.selective_savings,
            100.0 * p.selective_flops_overhead
        ));
    }
    out.push_str(
        "\nTensor-parallel-size sweep (GPT-3) — the replicated 10·sbh share that motivates sequence parallelism\n",
    );
    out.push_str(&format!(
        "{:<6} {:>12} {:>14} {:>18} {:>12}\n",
        "t", "TP MB/layer", "TP+SP MB/layer", "replicated frac %", "fwd ms (SP)"
    ));
    for p in mt_core::sweeps::tensor_parallel_sweep(gpt3, 1, &[1, 2, 4, 8, 16]) {
        out.push_str(&format!(
            "{:<6} {:>12.1} {:>14.1} {:>18.1} {:>12.2}\n",
            p.tensor,
            p.tp_bytes / 1e6,
            p.tp_sp_bytes / 1e6,
            100.0 * p.replicated_fraction,
            p.forward_ms
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Aggregate JSON
// ---------------------------------------------------------------------------

/// Every artifact as one JSON value, for EXPERIMENTS.md regeneration.
pub fn all_reports_json() -> serde_json::Value {
    let (dp_iteration_s, dp_mfu) = table5_dp_extension();
    let table5_dp = serde_json::json!({
        "iteration_s": dp_iteration_s,
        "mfu": dp_mfu,
    });
    serde_json::json!({
        "table2_22b": table2_rows(&ModelZoo::gpt_22b()),
        "figure1": figure1_rows(),
        "figure7": figure7_rows(),
        "table4": table4_rows(),
        "figure8": figure8_rows(),
        "table5": table5_rows(),
        "table5_dp_extension": table5_dp,
        "figure9": figure9_rows(),
        "flops": flops_rows(),
        "selective": selective_rows(),
        "appendix_c": appendix_c_rows(),
        "ablation_mixed_checkpointing": ablation_rows(),
        "fragmentation": fragmentation_rows(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_rows_in_paper_order() {
        let rows = table2_rows(&ModelZoo::gpt3_175b());
        assert_eq!(rows.len(), 6);
        assert!(rows[0].bytes_per_layer > rows[5].bytes_per_layer);
    }

    #[test]
    fn figure1_shows_the_paper_contrast() {
        for r in figure1_rows() {
            assert!(!r.baseline_fits, "{}: baseline must exceed 80 GB", r.model);
            assert!(r.present_fits, "{}: present work must fit", r.model);
        }
    }

    #[test]
    fn figure7_combined_is_around_20_percent() {
        for r in figure7_rows() {
            assert!(
                (15.0..25.0).contains(&r.combined_pct),
                "{}: combined at {:.1}%",
                r.model,
                r.combined_pct
            );
        }
    }

    #[test]
    fn table4_overheads_are_ordered_like_the_paper() {
        let rows = table4_rows();
        let by_label = |l: &str| rows.iter().find(|r| r.experiment == l).unwrap();
        let sp = by_label("Sequence Parallelism").overhead_pct.unwrap();
        let full = by_label("Baseline with recompute").overhead_pct.unwrap();
        let sel = by_label("Selective Recompute").overhead_pct.unwrap();
        let both = by_label("Selective + Sequence").overhead_pct.unwrap();
        assert!(sp < 0.0, "SP is a speedup");
        assert!(full > 30.0, "full recompute is expensive");
        assert!(both < sel && sel < full, "ordering: {both} < {sel} < {full}");
    }

    #[test]
    fn table5_gains_match_paper_band() {
        for r in table5_rows() {
            assert!(
                (22.0..45.0).contains(&r.throughput_increase_pct),
                "{}: gain {:.1}%",
                r.model,
                r.throughput_increase_pct
            );
            assert!(r.hfu >= r.mfu);
        }
    }

    #[test]
    fn figure9_profile_shape() {
        let rows = figure9_rows();
        assert_eq!(rows.len(), 35);
        for r in &rows {
            assert!(r.optimized_gib < r.unoptimized_gib);
        }
        // Appendix B: rank-0 gap ≈ 2.73 GiB.
        let gap = rows[0].unoptimized_gib - rows[0].optimized_gib;
        assert!((gap - 2.73).abs() < 0.05, "rank-0 dealloc gap {gap:.2} GiB");
    }

    #[test]
    fn appendix_c_gives_small_positive_uplift() {
        for r in appendix_c_rows() {
            let delta = 100.0 * (r.mfu_with_storage - r.mfu_baseline);
            assert!(
                (0.0..2.5).contains(&delta),
                "{}: uplift {delta:.2} pts (paper +0.7/+0.4)",
                r.model
            );
        }
    }

    #[test]
    fn selective_rows_match_section5_quantities() {
        let rows = selective_rows();
        let gpt3 = rows.iter().find(|r| r.model.contains("175B")).unwrap();
        assert!((gpt3.memory_saved_pct - 70.0).abs() < 1.0);
        assert!((gpt3.flops_overhead_pct - 2.7).abs() < 0.3);
        let mtnlg = rows.iter().find(|r| r.model.contains("530B")).unwrap();
        assert!((mtnlg.memory_saved_pct - 65.0).abs() < 1.0);
        assert!((mtnlg.flops_overhead_pct - 1.6).abs() < 0.3);
    }

    #[test]
    fn ablation_shows_the_granularity_problem() {
        let rows = ablation_rows();
        let mtnlg: Vec<&AblationRow> = rows.iter().filter(|r| r.model.contains("530B")).collect();
        let selective = mtnlg.iter().find(|r| r.scheme.contains("selective")).unwrap();
        assert!(selective.fits, "selective must fit in 80 GB");
        // The cheapest *fitting* mixed setting must cost several times the
        // selective overhead — the Section 5 granularity argument.
        let cheapest_fitting_mixed = mtnlg
            .iter()
            .filter(|r| r.scheme.contains("mixed") && r.fits)
            .map(|r| r.overhead_pct)
            .fold(f64::INFINITY, f64::min);
        assert!(
            cheapest_fitting_mixed > 3.0 * selective.overhead_pct.max(1.0),
            "mixed {cheapest_fitting_mixed:.1}% vs selective {:.1}%",
            selective.overhead_pct
        );
    }

    #[test]
    fn fragmentation_study_shows_the_expected_ordering() {
        let rows = fragmentation_rows();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.minimal_arena >= r.peak_live, "{}", r.scenario);
        }
        // Uniform + deallocated outputs: no fragmentation at all.
        assert_eq!(rows[0].overhead, 0.0, "{}", rows[0].scenario);
        // Variable sizes with pinned outputs fragment the most.
        let worst = rows.iter().map(|r| r.overhead).fold(0.0, f64::max);
        assert!(
            (rows[3].overhead - worst).abs() < 1e-12 && worst > 0.0,
            "variable+pinned should be worst: {rows:?}"
        );
    }

    #[test]
    fn renders_are_nonempty_and_json_serializes() {
        for text in [
            render_table2(&ModelZoo::gpt_22b()),
            render_figure1(),
            render_figure7(),
            render_table4(),
            render_figure8(),
            render_table5(),
            render_figure9(),
            render_flops(),
            render_selective(),
            render_appendix_c(),
        ] {
            assert!(text.lines().count() >= 3, "render too short:\n{text}");
        }
        let json = all_reports_json();
        assert!(json.get("table5").is_some());
    }
}
