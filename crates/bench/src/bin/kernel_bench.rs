//! Micro-benchmarks for the `mt-kernels` compute kernels, written to
//! `reports/BENCH_kernels.json`.
//!
//! ```text
//! kernel_bench [--smoke] [--threads N]
//! ```
//!
//! For every kernel/shape the harness first checks that the threaded backend
//! is **bit-identical** to serial (the crate's determinism contract — a
//! benchmark of wrong results is worthless), then times both backends and
//! records the best-of-N wall time and derived GFLOP/s. `--smoke` shrinks
//! shapes and repetitions to a CI-friendly second while still exercising the
//! whole schema; `--threads` overrides the threaded worker count (default:
//! 4, the shape of the paper-style "one socket" comparison).
//!
//! Speedups shown are honest wall-clock for *this* machine: on a single-core
//! container the threaded backend ties or loses to serial (scoped-thread
//! overhead), and the JSON says so rather than extrapolating. `bench_gate`
//! conditions its parallel-speedup invariant on the recorded
//! `available_parallelism` for exactly that reason.
//!
//! ## Schema v2
//!
//! v2 (the packed-microkernel rewrite) adds:
//! * shapes big enough for threading to pay (512³ even in smoke mode) plus
//!   a GPT-layer-shaped NT/TN pair (attention/MLP backward shapes);
//! * a `packing_us` column on GEMM entries — the panel-packing time the
//!   kernel spends before its banded compute (best across reps);
//! * a top-level `simd` field naming the microkernel path the run used
//!   (`"avx2"` / `"scalar"`, from runtime feature detection).

use mt_kernels::{gemm, Backend};
use std::time::Instant;

const SCHEMA_VERSION: u64 = 2;

struct Entry {
    kernel: &'static str,
    kind: String,
    m: usize,
    n: usize,
    k: usize,
    backend: &'static str,
    threads: usize,
    reps: usize,
    best_ms: f64,
    gflops: f64,
    /// GEMM panel-packing microseconds (best across reps); `None` for
    /// kernels that don't pack.
    packing_us: Option<u64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut threads = 4usize;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        threads = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("--threads requires a positive integer");
            std::process::exit(2);
        });
    }
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            a.as_str() != "--smoke"
                && a.as_str() != "--threads"
                && !(*i > 0 && args[i - 1] == "--threads")
        })
        .map(|(_, a)| a)
    {
        eprintln!("unknown argument {bad}\nusage: kernel_bench [--smoke] [--threads N]");
        std::process::exit(2);
    }

    let reps = if smoke { 3 } else { 7 };
    // (m, n, k, kinds): `kinds` limits a shape to specific transpose pairs
    // (ALL = the three benched kinds). 512³ stays in the smoke set on
    // purpose — it is the shape the parallel-speedup gate reads, so even CI
    // smoke runs produce a judgeable number. The (512, 384, 1536) /
    // (1024, 1024, 4096) cases are GPT-layer-shaped NT/TN (activation- and
    // weight-gradient GEMMs of a hidden-384/1024 layer), the strided
    // layouts the packed microkernel exists to fix.
    type Kinds = &'static [(bool, bool)];
    const ALL: Kinds = &[(false, false), (false, true), (true, false)];
    const GPT: Kinds = &[(false, true), (true, false)];
    let gemm_cases: &[(usize, usize, usize, Kinds)] = if smoke {
        &[(64, 64, 64, ALL), (96, 48, 80, ALL), (512, 512, 512, ALL), (512, 384, 1536, GPT)]
    } else {
        &[
            (128, 128, 128, ALL),
            (256, 256, 256, ALL),
            (512, 512, 512, ALL),
            (512, 384, 1536, GPT),
            (1024, 1024, 4096, GPT),
        ]
    };
    let (rows, cols) = if smoke { (256, 64) } else { (4096, 512) };

    let mut results: Vec<Entry> = Vec::new();
    println!(
        "kernel_bench: {} mode, threaded = {threads} workers, best of {reps}",
        if smoke { "smoke" } else { "full" }
    );

    for &(m, n, k, kinds) in gemm_cases {
        for &(ta, tb) in kinds {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut serial_out = vec![0.0f32; m * n];
            let mut threaded_out = vec![0.0f32; m * n];
            gemm::gemm(Backend::Serial, ta, tb, m, n, k, &a, &b, &mut serial_out);
            gemm::gemm(Backend::Threaded { threads }, ta, tb, m, n, k, &a, &b, &mut threaded_out);
            assert!(
                serial_out.iter().zip(&threaded_out).all(|(s, t)| s.to_bits() == t.to_bits()),
                "determinism violation: gemm {} {m}x{n}x{k} threaded != serial",
                gemm::kind_label(ta, tb)
            );
            let flops = 2.0 * m as f64 * n as f64 * k as f64;
            for backend in [Backend::Serial, Backend::Threaded { threads }] {
                let mut packing_us = u64::MAX;
                let best_ms = best_of(reps, || {
                    let stats = gemm::gemm_stats(backend, ta, tb, m, n, k, &a, &b, &mut serial_out);
                    packing_us = packing_us.min(stats.packing_us);
                });
                push(
                    &mut results,
                    Entry {
                        kernel: "gemm",
                        kind: gemm::kind_label(ta, tb).to_string(),
                        m,
                        n,
                        k,
                        backend: backend.label(),
                        threads: backend.threads(),
                        reps,
                        best_ms,
                        gflops: flops / (best_ms / 1e3) / 1e9,
                        packing_us: Some(packing_us),
                    },
                );
            }
        }
    }

    // Row-wise kernels: one representative shape each. Approximate flop
    // counts per element (exp/tanh counted as one) keep the GFLOP/s column
    // comparable across runs, not across kernels.
    let x = fill(rows * cols, 3);
    let gamma = fill(cols, 4);
    let beta = fill(cols, 5);

    {
        let mut s = x.clone();
        mt_kernels::softmax_rows(Backend::Serial, rows, cols, true, &mut s);
        let mut t = x.clone();
        mt_kernels::softmax_rows(Backend::Threaded { threads }, rows, cols, true, &mut t);
        assert!(
            s.iter().zip(&t).all(|(a, b)| a.to_bits() == b.to_bits()),
            "determinism violation: softmax threaded != serial"
        );
        let flops = 5.0 * (rows * cols) as f64;
        for backend in [Backend::Serial, Backend::Threaded { threads }] {
            let mut buf = x.clone();
            let best_ms = best_of(reps, || {
                buf.copy_from_slice(&x);
                mt_kernels::softmax_rows(backend, rows, cols, true, &mut buf);
            });
            push(
                &mut results,
                Entry {
                    kernel: "softmax",
                    kind: "causal".to_string(),
                    m: rows,
                    n: cols,
                    k: 0,
                    backend: backend.label(),
                    threads: backend.threads(),
                    reps,
                    best_ms,
                    gflops: flops / (best_ms / 1e3) / 1e9,
                    packing_us: None,
                },
            );
        }
    }

    {
        let mut outs = [vec![0.0f32; rows * cols], vec![0.0f32; rows * cols]];
        let mut mean = vec![0.0f32; rows];
        let mut rstd = vec![0.0f32; rows];
        mt_kernels::layer_norm(
            Backend::Serial,
            rows,
            cols,
            1e-5,
            &x,
            &gamma,
            &beta,
            &mut outs[0],
            &mut mean,
            &mut rstd,
        );
        mt_kernels::layer_norm(
            Backend::Threaded { threads },
            rows,
            cols,
            1e-5,
            &x,
            &gamma,
            &beta,
            &mut outs[1],
            &mut mean,
            &mut rstd,
        );
        assert!(
            outs[0].iter().zip(&outs[1]).all(|(a, b)| a.to_bits() == b.to_bits()),
            "determinism violation: layer_norm threaded != serial"
        );
        let flops = 8.0 * (rows * cols) as f64;
        for backend in [Backend::Serial, Backend::Threaded { threads }] {
            let best_ms = best_of(reps, || {
                mt_kernels::layer_norm(
                    backend,
                    rows,
                    cols,
                    1e-5,
                    &x,
                    &gamma,
                    &beta,
                    &mut outs[0],
                    &mut mean,
                    &mut rstd,
                );
            });
            push(
                &mut results,
                Entry {
                    kernel: "layer_norm",
                    kind: "forward".to_string(),
                    m: rows,
                    n: cols,
                    k: 0,
                    backend: backend.label(),
                    threads: backend.threads(),
                    reps,
                    best_ms,
                    gflops: flops / (best_ms / 1e3) / 1e9,
                    packing_us: None,
                },
            );
        }
    }

    {
        let mut outs = [vec![0.0f32; rows * cols], vec![0.0f32; rows * cols]];
        mt_kernels::gelu(Backend::Serial, &x, &mut outs[0]);
        mt_kernels::gelu(Backend::Threaded { threads }, &x, &mut outs[1]);
        assert!(
            outs[0].iter().zip(&outs[1]).all(|(a, b)| a.to_bits() == b.to_bits()),
            "determinism violation: gelu threaded != serial"
        );
        let flops = 14.0 * (rows * cols) as f64;
        for backend in [Backend::Serial, Backend::Threaded { threads }] {
            let best_ms = best_of(reps, || {
                mt_kernels::gelu(backend, &x, &mut outs[0]);
            });
            push(
                &mut results,
                Entry {
                    kernel: "gelu",
                    kind: "forward".to_string(),
                    m: rows * cols,
                    n: 1,
                    k: 0,
                    backend: backend.label(),
                    threads: backend.threads(),
                    reps,
                    best_ms,
                    gflops: flops / (best_ms / 1e3) / 1e9,
                    packing_us: None,
                },
            );
        }
    }

    let result_values: Vec<serde_json::Value> = results
        .iter()
        .map(|e| {
            let mut v = serde_json::json!({
                "kernel": e.kernel,
                "kind": e.kind,
                "m": e.m,
                "n": e.n,
                "k": e.k,
                "backend": e.backend,
                "threads": e.threads,
                "reps": e.reps,
                "best_ms": e.best_ms,
                "gflops": e.gflops,
            });
            if let (Some(p), serde_json::Value::Object(fields)) = (e.packing_us, &mut v) {
                fields.push(("packing_us".to_string(), serde_json::json!(p)));
            }
            v
        })
        .collect();
    let doc = serde_json::json!({
        "schema_version": SCHEMA_VERSION,
        "generated_by": "kernel_bench",
        "smoke": smoke,
        "simd": gemm::simd_feature(),
        "threaded_workers": threads,
        "available_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "results": result_values,
    });
    std::fs::create_dir_all("reports").expect("create reports/");
    std::fs::write(
        "reports/BENCH_kernels.json",
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write reports/BENCH_kernels.json");
    println!("\nwrote reports/BENCH_kernels.json ({} entries)", results.len());
}

/// Best-of-`reps` wall time in milliseconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn push(results: &mut Vec<Entry>, e: Entry) {
    println!(
        "  {:<11} {:<7} {:>4}x{:<4}x{:<4} {:<8} t={:<3} {:>9.3} ms {:>8.2} GFLOP/s",
        e.kernel, e.kind, e.m, e.n, e.k, e.backend, e.threads, e.best_ms, e.gflops
    );
    results.push(e);
}

fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}
