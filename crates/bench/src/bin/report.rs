//! Regenerates the paper's tables and figures.
//!
//! ```text
//! report [--table2] [--table4] [--table5] [--figure1] [--figure7]
//!        [--figure8] [--figure9] [--flops] [--selective] [--appendixc]
//!        [--all] [--json PATH]
//! ```
//!
//! With no flags, `--all` is assumed. `--json PATH` additionally writes the
//! machine-readable record used to refresh EXPERIMENTS.md, and
//! `--trace PATH` writes a Chrome-tracing timeline of the 1T model's 1F1B
//! schedule (open in `chrome://tracing` or Perfetto).

use mt_bench::reports;
use mt_core::ModelZoo;
use std::process::ExitCode;

const USAGE: &str = "usage: report [--table2|--table4|--table5|--figure1|--figure7|--figure8|--figure9|--flops|--selective|--appendixc|--ablation|--sweeps|--fragmentation|--relief|--breakdown|--relatedwork|--all]* [--json PATH] [--trace PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sections: Vec<&str> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path.clone()),
                None => {
                    eprintln!("--json requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match iter.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => {
                    eprintln!("--trace requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--all" => sections.push("all"),
            "--table2" | "--table4" | "--table5" | "--figure1" | "--figure7" | "--figure8"
            | "--figure9" | "--flops" | "--selective" | "--appendixc" | "--ablation"
            | "--sweeps" | "--fragmentation" | "--relief" | "--breakdown" | "--relatedwork" => {
                sections.push(Box::leak(arg.trim_start_matches("--").to_owned().into_boxed_str()))
            }
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if sections.is_empty() {
        sections.push("all");
    }
    let want = |name: &str| sections.iter().any(|s| *s == name || *s == "all");

    println!("Reducing Activation Recomputation in Large Transformer Models — reproduction report");
    println!(
        "====================================================================================\n"
    );
    if want("table2") {
        println!("{}", reports::render_table2(&ModelZoo::gpt_22b()));
    }
    if want("figure1") {
        println!("{}", reports::render_figure1());
    }
    if want("figure7") {
        println!("{}", reports::render_figure7());
    }
    if want("table4") {
        println!("{}", reports::render_table4());
    }
    if want("figure8") {
        println!("{}", reports::render_figure8());
    }
    if want("table5") {
        println!("{}", reports::render_table5());
    }
    if want("figure9") {
        println!("{}", reports::render_figure9());
    }
    if want("flops") {
        println!("{}", reports::render_flops());
    }
    if want("selective") {
        println!("{}", reports::render_selective());
    }
    if want("appendixc") {
        println!("{}", reports::render_appendix_c());
    }
    if want("ablation") {
        println!("{}", reports::render_ablation());
    }
    if want("sweeps") {
        println!("{}", reports::render_sweeps());
    }
    if want("fragmentation") {
        println!("{}", reports::render_fragmentation());
    }
    if want("relief") {
        println!("{}", reports::render_relief());
    }
    if want("breakdown") {
        println!("{}", reports::render_breakdown());
    }
    if want("relatedwork") {
        println!("{}", reports::render_related_work());
    }
    if let Some(path) = trace_path {
        use mt_core::{Estimator, ModelZoo};
        use mt_memory::Strategy;
        let est = Estimator::for_paper_model(&ModelZoo::gpt_1t());
        let sim = est.pipeline_sim(Strategy::tp_sp_selective());
        let (_, events) = sim.trace_1f1b(None);
        let json = mt_pipeline::chrome_trace_json(&events);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("Chrome trace of the 1T 1F1B schedule written to {path}");
    }
    if let Some(path) = json_path {
        let json =
            serde_json::to_string_pretty(&reports::all_reports_json()).expect("reports serialize");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("machine-readable record written to {path}");
    }
    ExitCode::SUCCESS
}
