//! Synchronization-overhead microbench for the collectives rendezvous,
//! written to `reports/BENCH_sync.json`.
//!
//! ```text
//! sync_overhead_bench [--smoke]
//! ```
//!
//! Every scenario hammers the Mutex/Condvar rendezvous in
//! `mt-collectives` with a *tiny* payload, so the measured time is
//! dominated by synchronization (lock, deposit, notify, wake), not by
//! reduction arithmetic or memcpy. The checked-in baseline under
//! `reports/baselines/BENCH_sync.baseline.json` was generated from the
//! pre-`mt-sync` code (raw `parking_lot`/`crossbeam`), so `bench_gate
//! --sync` comparing a fresh run against it is a direct measurement of
//! what the `mt-sync` facade costs in real builds: the gate asserts the
//! answer stays "nothing measurable".
//!
//! Scenarios (keyed by `scenario`/`ranks`/`rounds` in the gate):
//!
//! * `barrier_storm` — back-to-back barriers, the purest rendezvous
//!   (zero payload, one lock + deposit + last-arriver notify per round).
//! * `all_reduce_small` — the infallible hot path with a 16-element
//!   tensor, via `World::run`.
//! * `try_all_reduce_small` — the hardened path (deadline bookkeeping +
//!   SPMD call tag) via `World::new` + `run_fallible`.
//!
//! Rounds are high enough that thread spawn/join is amortized noise;
//! `best_ms` is best-of-`reps` for the whole spawn+rounds+join block and
//! `per_op_us` is that best divided by the round count.

use mt_collectives::World;
use mt_tensor::Tensor;
use std::time::Instant;

const SCHEMA_VERSION: u64 = 1;
const ELEMS: usize = 16;

struct Entry {
    scenario: &'static str,
    ranks: usize,
    rounds: usize,
    reps: usize,
    best_ms: f64,
    per_op_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(bad) = args.iter().find(|a| a.as_str() != "--smoke") {
        eprintln!("unknown argument {bad}\nusage: sync_overhead_bench [--smoke]");
        std::process::exit(2);
    }

    let (rounds, reps) = if smoke { (64, 5) } else { (512, 9) };
    let mut results: Vec<Entry> = Vec::new();
    println!(
        "sync_overhead_bench: {} mode, {rounds} rounds, best of {reps}",
        if smoke { "smoke" } else { "full" }
    );

    for ranks in [2usize, 4] {
        {
            let best_ms = best_of(reps, || {
                World::run(ranks, |comm| {
                    for _ in 0..rounds {
                        comm.barrier();
                    }
                });
            });
            push(
                &mut results,
                Entry {
                    scenario: "barrier_storm",
                    ranks,
                    rounds,
                    reps,
                    best_ms,
                    per_op_us: best_ms * 1e3 / rounds as f64,
                },
            );
        }
        {
            let best_ms = best_of(reps, || {
                let out = World::run(ranks, |comm| {
                    let x = Tensor::full(&[ELEMS], (comm.rank() + 1) as f32);
                    let mut acc = 0.0f32;
                    for _ in 0..rounds {
                        acc += comm.all_reduce(&x).data()[0];
                    }
                    acc
                });
                assert!(out.iter().all(|&v| v > 0.0), "all_reduce produced zeros");
            });
            push(
                &mut results,
                Entry {
                    scenario: "all_reduce_small",
                    ranks,
                    rounds,
                    reps,
                    best_ms,
                    per_op_us: best_ms * 1e3 / rounds as f64,
                },
            );
        }
        {
            let best_ms = best_of(reps, || {
                let mut world = World::new(ranks);
                let out = world.run_fallible(|comm| {
                    let x = Tensor::full(&[ELEMS], (comm.rank() + 1) as f32);
                    let mut acc = 0.0f32;
                    for _ in 0..rounds {
                        acc += comm.try_all_reduce(&x)?.data()[0];
                    }
                    Ok(acc)
                });
                assert!(out.iter().all(|r| r.is_ok()), "hardened all_reduce failed: {out:?}");
            });
            push(
                &mut results,
                Entry {
                    scenario: "try_all_reduce_small",
                    ranks,
                    rounds,
                    reps,
                    best_ms,
                    per_op_us: best_ms * 1e3 / rounds as f64,
                },
            );
        }
    }

    let result_values: Vec<serde_json::Value> = results
        .iter()
        .map(|e| {
            serde_json::json!({
                "scenario": e.scenario,
                "ranks": e.ranks,
                "rounds": e.rounds,
                "reps": e.reps,
                "best_ms": e.best_ms,
                "per_op_us": e.per_op_us,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema_version": SCHEMA_VERSION,
        "generated_by": "sync_overhead_bench",
        "smoke": smoke,
        "elems": ELEMS,
        "available_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "results": result_values,
    });
    std::fs::create_dir_all("reports").expect("create reports/");
    std::fs::write(
        "reports/BENCH_sync.json",
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write reports/BENCH_sync.json");
    println!("\nwrote reports/BENCH_sync.json ({} entries)", results.len());
}

/// Best-of-`reps` wall time in milliseconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn push(results: &mut Vec<Entry>, e: Entry) {
    println!(
        "  {:<21} ranks={:<2} rounds={:<4} {:>9.3} ms {:>8.2} us/op",
        e.scenario, e.ranks, e.rounds, e.best_ms, e.per_op_us
    );
    results.push(e);
}
