//! Elastic-recovery benchmark: measures mean-time-to-recovery for rank
//! deaths under `train_elastic`, phase by phase, and writes
//! `reports/BENCH_recovery.json` for `bench_gate`.
//!
//! ```text
//! recovery_bench [--smoke] [--reps N]
//! ```
//!
//! Each scenario trains a small GPT at t=4 with a scripted rank death,
//! repeats the run `--reps` times, and reports the repetition with the
//! smallest total MTTR (best-of-N, like the other benches — the floor is
//! the machine's capability; the variance is scheduler noise). The four
//! phases are the elastic driver's own breakdown:
//!
//! * `detect_ms` — failed attempt's launch until its errors surface
//!   (includes the attempt's wasted compute),
//! * `consensus_ms` — the epoch-consensus barrier on the survivor world,
//! * `reshard_ms` — gathering t checkpoint shards and re-splitting to t′,
//! * `replay_ms` — re-running the lost segment at the new degree.
//!
//! Every scenario also re-proves the headline invariant before timing:
//! losses and final unsharded weights of the recovered run must be
//! `to_bits`-identical to a fault-free run taking the same degree changes
//! as planned resizes. The `bit_identical` flag lands in the JSON and
//! `bench_gate` fails if it is ever false — an MTTR number for a recovery
//! that corrupts training is not a benchmark, it is a bug report.

use mt_elastic::{train_elastic, unsharded_bits, ElasticConfig, PlannedResize};
use mt_fault::FaultPlan;
use mt_memory::Recompute;
use mt_model::gpt::Gpt;
use mt_model::trainer::TrainerConfig;
use mt_model::TransformerConfig;
use mt_tensor::rng::SplitMix64;
use std::sync::Arc;
use std::time::Duration;

const SCHEMA_VERSION: u64 = 1;

struct Scenario {
    name: &'static str,
    /// (rank, step) pairs that panic, in schedule order.
    deaths: &'static [(usize, u64)],
    total_steps: u64,
}

const SCENARIOS: &[Scenario] = &[
    Scenario { name: "death_t4_to_t2", deaths: &[(1, 4)], total_steps: 9 },
    Scenario { name: "double_death_t4_to_t1", deaths: &[(2, 4), (0, 7)], total_steps: 9 },
];

struct Entry {
    scenario: &'static str,
    reps: usize,
    reforms: usize,
    final_degree: usize,
    detect_ms: f64,
    consensus_ms: f64,
    reshard_ms: f64,
    replay_ms: f64,
    mttr_ms: f64,
    bit_identical: bool,
}

fn bench_cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 16,
        heads: 4,
        seq: 8,
        micro_batch: 2,
        layers: 2,
        vocab: 24,
        dropout_p: 0.1,
        causal: true,
    }
}

fn batch(c: &TransformerConfig, step: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(0xBE7C ^ step);
    let n = c.tokens();
    (
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
    )
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let mut reps = if smoke { 2usize } else { 5 };
    if let Some(i) = argv.iter().position(|a| a == "--reps") {
        reps = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("--reps requires a positive integer");
            std::process::exit(2);
        });
    }
    assert!(reps > 0, "--reps must be positive");

    let c = bench_cfg();
    let init = Gpt::init(c, Recompute::Selective, 2023);
    let data = |step: u64| batch(&c, step);
    let mut entries: Vec<Entry> = Vec::new();

    for scenario in SCENARIOS {
        let ec = ElasticConfig {
            total_steps: scenario.total_steps,
            checkpoint_every: 3,
            max_failures: scenario.deaths.len() as u32 + 1,
            collective_timeout: Duration::from_secs(10),
            planned: Vec::new(),
        };
        let make_plan = || {
            let mut b = FaultPlan::builder();
            for &(rank, step) in scenario.deaths {
                b = b.panic_at_step(rank, step);
            }
            b.build()
        };

        // Invariant first: the recovered run must be bit-identical to a
        // fault-free run planning the same degree schedule.
        let (models, report) = train_elastic(
            &init,
            4,
            Recompute::Selective,
            TrainerConfig::default(),
            &ec,
            Arc::new(make_plan()),
            data,
        )
        .expect("scripted recovery succeeds");
        let control_ec = ElasticConfig {
            planned: report
                .reforms
                .iter()
                .map(|r| PlannedResize { at_step: r.resume_step, degree: r.to_degree })
                .collect(),
            ..ec.clone()
        };
        let (control, control_report) = train_elastic(
            &init,
            4,
            Recompute::Selective,
            TrainerConfig::default(),
            &control_ec,
            Arc::new(FaultPlan::none()),
            data,
        )
        .expect("planned-resize control succeeds");
        let bit_identical = control_report.stats.len() == report.stats.len()
            && control_report
                .stats
                .iter()
                .zip(&report.stats)
                .all(|(a, b)| a.loss.to_bits() == b.loss.to_bits())
            && unsharded_bits(&control) == unsharded_bits(&models);

        // Best-of-N timing: keep the repetition with the smallest total
        // MTTR summed over its reforms.
        let mut best = report;
        for _ in 1..reps {
            let (_, rep) = train_elastic(
                &init,
                4,
                Recompute::Selective,
                TrainerConfig::default(),
                &ec,
                Arc::new(make_plan()),
                data,
            )
            .expect("scripted recovery succeeds");
            let total = |r: &mt_elastic::ElasticReport| -> Duration {
                r.reforms.iter().map(|f| f.mttr.total()).sum()
            };
            if total(&rep) < total(&best) {
                best = rep;
            }
        }

        let sum = |f: fn(&mt_elastic::MttrBreakdown) -> Duration| -> f64 {
            ms(best.reforms.iter().map(|r| f(&r.mttr)).sum())
        };
        let entry = Entry {
            scenario: scenario.name,
            reps,
            reforms: best.reforms.len(),
            final_degree: best.final_degree,
            detect_ms: sum(|m| m.detect),
            consensus_ms: sum(|m| m.consensus),
            reshard_ms: sum(|m| m.reshard),
            replay_ms: sum(|m| m.replay),
            mttr_ms: ms(best.reforms.iter().map(|r| r.mttr.total()).sum()),
            bit_identical,
        };
        println!(
            "{}: reforms={} final_t={} mttr={:.3} ms \
             (detect {:.3} + consensus {:.3} + reshard {:.3} + replay {:.3}) bit_identical={}",
            entry.scenario,
            entry.reforms,
            entry.final_degree,
            entry.mttr_ms,
            entry.detect_ms,
            entry.consensus_ms,
            entry.reshard_ms,
            entry.replay_ms,
            entry.bit_identical,
        );
        entries.push(entry);
    }

    let result_values: Vec<serde_json::Value> = entries
        .iter()
        .map(|e| {
            serde_json::json!({
                "scenario": e.scenario,
                "reps": e.reps,
                "reforms": e.reforms,
                "final_degree": e.final_degree,
                "detect_ms": e.detect_ms,
                "consensus_ms": e.consensus_ms,
                "reshard_ms": e.reshard_ms,
                "replay_ms": e.replay_ms,
                "mttr_ms": e.mttr_ms,
                "bit_identical": e.bit_identical,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema_version": SCHEMA_VERSION,
        "generated_by": "recovery_bench",
        "smoke": smoke,
        "t": 4,
        "hidden": c.hidden,
        "seq": c.seq,
        "micro_batch": c.micro_batch,
        "checkpoint_every": 3,
        "available_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "results": result_values,
    });
    std::fs::create_dir_all("reports").expect("create reports/");
    std::fs::write(
        "reports/BENCH_recovery.json",
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write reports/BENCH_recovery.json");
    println!("\nwrote reports/BENCH_recovery.json ({} entries)", entries.len());
}
