//! CI performance-regression gate: compares fresh `--smoke` benchmark JSON
//! against the checked-in baselines and fails loudly on regression.
//!
//! ```text
//! bench_gate --kernels reports/BENCH_kernels.json \
//!            --kernels-baseline reports/baselines/BENCH_kernels.baseline.json \
//!            --e2e reports/BENCH_e2e.json \
//!            --e2e-baseline reports/baselines/BENCH_e2e.baseline.json \
//!            [--recovery reports/BENCH_recovery.json] \
//!            [--recovery-baseline reports/baselines/BENCH_recovery.baseline.json] \
//!            [--sync reports/BENCH_sync.json] \
//!            [--sync-baseline reports/baselines/BENCH_sync.baseline.json] \
//!            [--profile reports/PROFILE_e2e.json] \
//!            [--profile-baseline reports/baselines/PROFILE_e2e.baseline.json] \
//!            [--max-slowdown 1.25] [--min-gflops-ratio 0.80] [--max-step-slowdown 1.5] \
//!            [--max-mttr-slowdown 3.0] [--max-sync-slowdown 1.5] \
//!            [--min-parallel-speedup 1.3]
//! ```
//!
//! When the gate fails and both profile documents (from
//! `e2e_step_bench --profile`) are readable, the failure is annotated with
//! an `mt-profile` attribution diff: a per-category narrative naming what
//! regressed (exposed comm? gemm? recompute?), on stdout and in the
//! `$GITHUB_STEP_SUMMARY`.
//!
//! Kernel entries are keyed by `(kernel, kind, m, n, k, backend, threads)`
//! and fail when `best_ms` regresses past `--max-slowdown` (default ×1.25)
//! or `gflops` drops below `--min-gflops-ratio` (default ×0.80) of the
//! baseline.
//!
//! The **parallel-speedup invariant** reads the *fresh* kernel report: for
//! every GEMM kind, at that kind's largest benched `m·n·k`, the threaded
//! backend's `best_ms` must beat serial by at least
//! `--min-parallel-speedup` (default ×1.3). A failure names the offending
//! shape on stdout and in `$GITHUB_STEP_SUMMARY`. The check is only
//! meaningful where threads can actually run in parallel, so it is
//! enforced when the fresh report's `available_parallelism` is ≥ 2 and
//! explicitly skipped (with a note) on single-core runners — a speedup
//! demand a single core cannot physically meet would gate nothing but the
//! host type.
//!
//! E2e entries are keyed by `(policy, chunks, threads)` and fail
//! when `step_ms` regresses past `--max-step-slowdown` (default ×1.5 —
//! end-to-end steps on shared CI runners are noisier than microbenches).
//! The gate also re-checks the overlap invariants on the *fresh* numbers:
//! every `overlapped` config with C ≥ 2 must show strictly less exposed
//! communication time than the `exposed` config, and every
//! `overlapped_recompute` config strictly less exposed recompute time than
//! the `exposed` config's inline replay.
//!
//! Recovery entries (from `recovery_bench`) are keyed by `scenario` and
//! fail when `mttr_ms` regresses past `--max-mttr-slowdown` (default ×3.0
//! — millisecond-scale recovery timings include thread spawn and are the
//! noisiest of the suite), when the reform count or final degree drift
//! from the baseline (the scenario changed shape, so the timing is not
//! comparable), or when `bit_identical` is false — an MTTR number for a
//! recovery that corrupts training gates nothing.
//!
//! Sync entries (from `sync_overhead_bench`) are keyed by
//! `scenario`/`ranks`/`rounds` and fail when `best_ms` regresses past
//! `--max-sync-slowdown` (default ×1.5). The checked-in baseline was
//! generated from the pre-`mt-sync` rendezvous (raw `parking_lot` /
//! `crossbeam`), so this section *is* the facade's zero-overhead claim:
//! real builds routing every lock, wait, and channel op through `mt-sync`
//! must stay within noise of the raw primitives.
//!
//! A key present in the baseline but missing from the fresh run (or vice
//! versa) is a failure: silently dropping a benchmark is how regressions
//! hide. A per-entry delta table is printed to stdout and appended to
//! `$GITHUB_STEP_SUMMARY` when that variable is set (GitHub renders it as a
//! Markdown table in the job summary).

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

struct GateArgs {
    kernels: String,
    kernels_baseline: String,
    e2e: String,
    e2e_baseline: String,
    recovery: String,
    recovery_baseline: String,
    sync: String,
    sync_baseline: String,
    profile: String,
    profile_baseline: String,
    max_slowdown: f64,
    min_gflops_ratio: f64,
    max_step_slowdown: f64,
    max_mttr_slowdown: f64,
    max_sync_slowdown: f64,
    min_parallel_speedup: f64,
}

fn parse_args() -> GateArgs {
    let mut args = GateArgs {
        kernels: "reports/BENCH_kernels.json".to_string(),
        kernels_baseline: "reports/baselines/BENCH_kernels.baseline.json".to_string(),
        e2e: "reports/BENCH_e2e.json".to_string(),
        e2e_baseline: "reports/baselines/BENCH_e2e.baseline.json".to_string(),
        recovery: "reports/BENCH_recovery.json".to_string(),
        recovery_baseline: "reports/baselines/BENCH_recovery.baseline.json".to_string(),
        sync: "reports/BENCH_sync.json".to_string(),
        sync_baseline: "reports/baselines/BENCH_sync.baseline.json".to_string(),
        profile: "reports/PROFILE_e2e.json".to_string(),
        profile_baseline: "reports/baselines/PROFILE_e2e.baseline.json".to_string(),
        max_slowdown: 1.25,
        min_gflops_ratio: 0.80,
        max_step_slowdown: 1.5,
        max_mttr_slowdown: 3.0,
        max_sync_slowdown: 1.5,
        min_parallel_speedup: 1.3,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let Some(value) = argv.get(i + 1) else {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        };
        match flag {
            "--kernels" => args.kernels = value.clone(),
            "--kernels-baseline" => args.kernels_baseline = value.clone(),
            "--e2e" => args.e2e = value.clone(),
            "--e2e-baseline" => args.e2e_baseline = value.clone(),
            "--recovery" => args.recovery = value.clone(),
            "--recovery-baseline" => args.recovery_baseline = value.clone(),
            "--sync" => args.sync = value.clone(),
            "--sync-baseline" => args.sync_baseline = value.clone(),
            "--profile" => args.profile = value.clone(),
            "--profile-baseline" => args.profile_baseline = value.clone(),
            "--max-slowdown" => args.max_slowdown = parse_f64(flag, value),
            "--min-gflops-ratio" => args.min_gflops_ratio = parse_f64(flag, value),
            "--max-step-slowdown" => args.max_step_slowdown = parse_f64(flag, value),
            "--max-mttr-slowdown" => args.max_mttr_slowdown = parse_f64(flag, value),
            "--max-sync-slowdown" => args.max_sync_slowdown = parse_f64(flag, value),
            "--min-parallel-speedup" => args.min_parallel_speedup = parse_f64(flag, value),
            _ => {
                eprintln!("unknown argument {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    args
}

fn parse_f64(flag: &str, value: &str) -> f64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires a number, got {value:?}");
        std::process::exit(2);
    })
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

/// `results` array of a bench JSON, keyed by the given fields.
fn index_results(doc: &Value, path: &str, key_fields: &[&str]) -> BTreeMap<String, Value> {
    let results = doc["results"].as_array().unwrap_or_else(|| {
        eprintln!("bench_gate: {path} has no results array");
        std::process::exit(2);
    });
    let mut map = BTreeMap::new();
    for r in results {
        let key: Vec<String> = key_fields.iter().map(|f| r[*f].to_string()).collect();
        map.insert(key.join("/"), r.clone());
    }
    map
}

fn f(v: &Value, field: &str) -> f64 {
    v[field].as_f64().unwrap_or(f64::NAN)
}

fn main() {
    let args = parse_args();
    let mut failures: Vec<String> = Vec::new();
    let mut table = String::new();
    writeln!(table, "| bench | key | baseline | fresh | ratio | verdict |").unwrap();
    writeln!(table, "|---|---|---:|---:|---:|---|").unwrap();

    // --- kernel microbenches ---
    let fresh_kernels_doc = load(&args.kernels);
    let fresh = index_results(
        &fresh_kernels_doc,
        &args.kernels,
        &["kernel", "kind", "m", "n", "k", "backend", "threads"],
    );
    let base = index_results(
        &load(&args.kernels_baseline),
        &args.kernels_baseline,
        &["kernel", "kind", "m", "n", "k", "backend", "threads"],
    );
    compare_keys(&fresh, &base, "kernels", &mut failures);
    for (key, b) in &base {
        let Some(n) = fresh.get(key) else { continue };
        let (b_ms, n_ms) = (f(b, "best_ms"), f(n, "best_ms"));
        let (b_gf, n_gf) = (f(b, "gflops"), f(n, "gflops"));
        let ms_ratio = n_ms / b_ms;
        let gf_ratio = n_gf / b_gf;
        let mut verdict = "ok";
        if ms_ratio.is_nan() || ms_ratio > args.max_slowdown {
            verdict = "FAIL";
            failures.push(format!(
                "kernels {key}: best_ms {n_ms:.3} vs baseline {b_ms:.3} (×{ms_ratio:.2} > ×{})",
                args.max_slowdown
            ));
        }
        if gf_ratio.is_nan() || gf_ratio < args.min_gflops_ratio {
            verdict = "FAIL";
            failures.push(format!(
                "kernels {key}: gflops {n_gf:.2} vs baseline {b_gf:.2} (×{gf_ratio:.2} < ×{})",
                args.min_gflops_ratio
            ));
        }
        writeln!(
            table,
            "| kernels | {key} | {b_ms:.3} ms | {n_ms:.3} ms | ×{ms_ratio:.2} | {verdict} |"
        )
        .unwrap();
    }

    // --- parallel-speedup invariant on the fresh kernel run ---
    // Threading that loses to serial at the biggest benched shapes is a
    // regression even if every per-entry ratio is within its band. Judged
    // only where parallelism physically exists: a single-core runner
    // cannot beat serial with threads, and the report says which kind of
    // host produced it.
    let avail = fresh_kernels_doc["available_parallelism"].as_u64().unwrap_or(1);
    if avail >= 2 {
        let gemm_entries: Vec<&Value> = fresh.values().filter(|r| r["kernel"] == "gemm").collect();
        let dim = |r: &Value, d: &str| r[d].as_u64().unwrap_or(0);
        let mut kinds: Vec<String> =
            gemm_entries.iter().filter_map(|r| r["kind"].as_str().map(String::from)).collect();
        kinds.sort();
        kinds.dedup();
        for kind in kinds {
            let of_kind =
                || gemm_entries.iter().filter(|r| r["kind"].as_str() == Some(kind.as_str()));
            let Some(&largest) = of_kind().max_by_key(|r| dim(r, "m") * dim(r, "n") * dim(r, "k"))
            else {
                continue;
            };
            let (m, n, k) = (dim(largest, "m"), dim(largest, "n"), dim(largest, "k"));
            let at_shape = |backend: &str| {
                of_kind().find(|r| {
                    dim(r, "m") == m
                        && dim(r, "n") == n
                        && dim(r, "k") == k
                        && r["backend"].as_str() == Some(backend)
                })
            };
            let (Some(serial), Some(threaded)) = (at_shape("serial"), at_shape("threaded")) else {
                failures.push(format!(
                    "kernels parallel-speedup: gemm {kind} {m}x{n}x{k} lacks a serial/threaded \
                     entry pair in the fresh run"
                ));
                continue;
            };
            let (s_ms, t_ms) = (f(serial, "best_ms"), f(threaded, "best_ms"));
            let speedup = s_ms / t_ms;
            let verdict =
                if speedup.is_nan() || speedup < args.min_parallel_speedup { "FAIL" } else { "ok" };
            if verdict == "FAIL" {
                // Named on stdout (and via the table in the step summary)
                // so the offending shape is visible without digging through
                // stderr logs.
                println!(
                    "parallel-speedup FAIL: gemm {kind} {m}x{n}x{k}: threaded best_ms {t_ms:.3} \
                     vs serial {s_ms:.3} (×{speedup:.2} < ×{})",
                    args.min_parallel_speedup
                );
                failures.push(format!(
                    "kernels parallel-speedup: gemm {kind} {m}x{n}x{k} threaded ×{speedup:.2} \
                     < required ×{} (serial {s_ms:.3} ms, threaded {t_ms:.3} ms)",
                    args.min_parallel_speedup
                ));
            }
            writeln!(
                table,
                "| kernels parallel | gemm {kind} {m}x{n}x{k} speedup | serial {s_ms:.3} ms | \
                 threaded {t_ms:.3} ms | ×{speedup:.2} | {verdict} |"
            )
            .unwrap();
        }
    } else {
        println!(
            "parallel-speedup check skipped: fresh report ran with available_parallelism = \
             {avail} (single-core host cannot beat serial with threads)"
        );
        writeln!(
            table,
            "| kernels parallel | all kinds | — | — | — | skipped (available_parallelism = \
             {avail}) |"
        )
        .unwrap();
    }

    // --- e2e step bench ---
    let fresh_doc = load(&args.e2e);
    let fresh = index_results(&fresh_doc, &args.e2e, &["policy", "chunks", "threads"]);
    let base = index_results(
        &load(&args.e2e_baseline),
        &args.e2e_baseline,
        &["policy", "chunks", "threads"],
    );
    compare_keys(&fresh, &base, "e2e", &mut failures);
    for (key, b) in &base {
        let Some(n) = fresh.get(key) else { continue };
        let (b_ms, n_ms) = (f(b, "step_ms"), f(n, "step_ms"));
        let ratio = n_ms / b_ms;
        let mut verdict = "ok";
        if ratio.is_nan() || ratio > args.max_step_slowdown {
            verdict = "FAIL";
            failures.push(format!(
                "e2e {key}: step_ms {n_ms:.3} vs baseline {b_ms:.3} (×{ratio:.2} > ×{})",
                args.max_step_slowdown
            ));
        }
        writeln!(table, "| e2e | {key} | {b_ms:.3} ms | {n_ms:.3} ms | ×{ratio:.2} | {verdict} |")
            .unwrap();
    }

    // --- elastic recovery MTTR ---
    let fresh_recovery = index_results(&load(&args.recovery), &args.recovery, &["scenario"]);
    let base_recovery =
        index_results(&load(&args.recovery_baseline), &args.recovery_baseline, &["scenario"]);
    compare_keys(&fresh_recovery, &base_recovery, "recovery", &mut failures);
    for (key, b) in &base_recovery {
        let Some(n) = fresh_recovery.get(key) else { continue };
        let (b_ms, n_ms) = (f(b, "mttr_ms"), f(n, "mttr_ms"));
        let ratio = n_ms / b_ms;
        let mut verdict = "ok";
        if ratio.is_nan() || ratio > args.max_mttr_slowdown {
            verdict = "FAIL";
            failures.push(format!(
                "recovery {key}: mttr_ms {n_ms:.3} vs baseline {b_ms:.3} (×{ratio:.2} > ×{})",
                args.max_mttr_slowdown
            ));
        }
        // The scenario must keep its shape, or the timing compares apples
        // to oranges.
        for field in ["reforms", "final_degree"] {
            if n[field] != b[field] {
                verdict = "FAIL";
                failures.push(format!(
                    "recovery {key}: {field} changed {} -> {} (scenario shape drifted)",
                    b[field], n[field]
                ));
            }
        }
        // Bit identity is the headline invariant: a fast recovery that
        // perturbs training is not a win.
        if n["bit_identical"] != Value::Bool(true) {
            verdict = "FAIL";
            failures.push(format!(
                "recovery {key}: recovered run is not bit-identical to its planned-resize control"
            ));
        }
        writeln!(
            table,
            "| recovery | {key} mttr | {b_ms:.3} ms | {n_ms:.3} ms | ×{ratio:.2} | {verdict} |"
        )
        .unwrap();
    }

    // --- mt-sync facade overhead ---
    // The baseline predates the facade (raw parking_lot/crossbeam
    // rendezvous), so this ratio is the facade's real-build cost.
    let fresh_sync = index_results(&load(&args.sync), &args.sync, &["scenario", "ranks", "rounds"]);
    let base_sync = index_results(
        &load(&args.sync_baseline),
        &args.sync_baseline,
        &["scenario", "ranks", "rounds"],
    );
    compare_keys(&fresh_sync, &base_sync, "sync", &mut failures);
    for (key, b) in &base_sync {
        let Some(n) = fresh_sync.get(key) else { continue };
        let (b_ms, n_ms) = (f(b, "best_ms"), f(n, "best_ms"));
        let ratio = n_ms / b_ms;
        let mut verdict = "ok";
        if ratio.is_nan() || ratio > args.max_sync_slowdown {
            verdict = "FAIL";
            failures.push(format!(
                "sync {key}: best_ms {n_ms:.3} vs pre-facade baseline {b_ms:.3} \
                 (×{ratio:.2} > ×{} — the mt-sync facade is no longer free)",
                args.max_sync_slowdown
            ));
        }
        writeln!(table, "| sync | {key} | {b_ms:.3} ms | {n_ms:.3} ms | ×{ratio:.2} | {verdict} |")
            .unwrap();
    }

    // Overlap invariant on the fresh run: chunked+overlapped must expose
    // strictly less communication than the exposed policy.
    let exposed_ms =
        fresh.values().find(|r| r["policy"] == "exposed").map(|r| f(r, "exposed_comm_ms"));
    match exposed_ms {
        None => failures.push("e2e: fresh run has no exposed config".to_string()),
        Some(exposed_ms) => {
            for r in fresh.values() {
                // `overlapped_recompute` layers the recompute prefetch on
                // top of the same chunked collectives, so it owes the same
                // exposed-comm win.
                let chunked = r["policy"] == "overlapped" || r["policy"] == "overlapped_recompute";
                if !chunked || r["chunks"].as_u64().unwrap_or(0) < 2 {
                    continue;
                }
                let overlapped_ms = f(r, "exposed_comm_ms");
                let verdict = if overlapped_ms < exposed_ms { "ok" } else { "FAIL" };
                if verdict == "FAIL" {
                    failures.push(format!(
                        "e2e overlap invariant: overlapped C={} exposes {overlapped_ms:.3} ms, \
                         not below exposed policy's {exposed_ms:.3} ms",
                        r["chunks"]
                    ));
                }
                writeln!(
                    table,
                    "| e2e overlap | {} C={} exposed comm | {exposed_ms:.3} ms | \
                     {overlapped_ms:.3} ms | ×{:.2} | {verdict} |",
                    r["policy"].as_str().unwrap_or("?"),
                    r["chunks"],
                    overlapped_ms / exposed_ms
                )
                .unwrap();
            }
        }
    }

    // Recompute-overlap invariant on the fresh run: prefetching the replay
    // under the backward GEMMs must expose strictly less recompute time
    // than the exposed policy's inline replay.
    let inline_ms =
        fresh.values().find(|r| r["policy"] == "exposed").map(|r| f(r, "exposed_recompute_ms"));
    if let Some(inline_ms) = inline_ms {
        for r in fresh.values() {
            if r["policy"] != "overlapped_recompute" {
                continue;
            }
            let prefetched_ms = f(r, "exposed_recompute_ms");
            let verdict = if prefetched_ms < inline_ms { "ok" } else { "FAIL" };
            if verdict == "FAIL" {
                failures.push(format!(
                    "e2e recompute-overlap invariant: overlapped_recompute C={} exposes \
                     {prefetched_ms:.3} ms of recompute, not below exposed policy's \
                     {inline_ms:.3} ms",
                    r["chunks"]
                ));
            }
            writeln!(
                table,
                "| e2e recompute-overlap | C={} exposed recompute | {inline_ms:.3} ms | \
                 {prefetched_ms:.3} ms | ×{:.2} | {verdict} |",
                r["chunks"],
                prefetched_ms / inline_ms
            )
            .unwrap();
        }
    }

    // On failure, explain the regression: diff the fresh attribution
    // profile against the checked-in baseline and name the category that
    // moved, instead of leaving CI with a bare ratio.
    let mut diff_text = String::new();
    if !failures.is_empty() {
        diff_text = attribution_diff(&args.profile_baseline, &args.profile);
    }

    println!("{table}");
    if !diff_text.is_empty() {
        println!("attribution diff (baseline → fresh):\n{diff_text}");
    }
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(summary) {
            let _ = writeln!(file, "## bench gate\n\n{table}");
            if !diff_text.is_empty() {
                let _ = writeln!(file, "### attribution diff\n\n```\n{diff_text}```");
            }
        }
    }
    if failures.is_empty() {
        println!("bench_gate: all checks passed");
    } else {
        eprintln!("bench_gate: {} failure(s):", failures.len());
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}

/// Per-category profile-diff narrative for the failure path. Missing or
/// malformed profile files degrade to an explanatory note — the gate has
/// already failed; this only affects how much context the failure carries.
fn attribution_diff(baseline_path: &str, fresh_path: &str) -> String {
    let base = match mt_profile::load_profiles(baseline_path) {
        Ok(p) => p,
        Err(e) => return format!("(no baseline attribution profile: {e})\n"),
    };
    let fresh = match mt_profile::load_profiles(fresh_path) {
        Ok(p) => p,
        Err(e) => return format!("(no fresh attribution profile: {e})\n"),
    };
    mt_profile::diff_documents(&base, &fresh)
}

/// Both directions of key coverage: a benchmark that disappears (or a
/// baseline that was never regenerated) is itself a failure.
fn compare_keys(
    fresh: &BTreeMap<String, Value>,
    base: &BTreeMap<String, Value>,
    what: &str,
    failures: &mut Vec<String>,
) {
    for key in base.keys() {
        if !fresh.contains_key(key) {
            failures.push(format!("{what}: baseline key {key} missing from fresh run"));
        }
    }
    for key in fresh.keys() {
        if !base.contains_key(key) {
            failures.push(format!("{what}: fresh key {key} missing from baseline (regenerate it)"));
        }
    }
}
