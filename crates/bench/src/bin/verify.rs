//! Self-check: runs the reproduction's headline *executing-system*
//! verifications in one command and prints a pass/fail matrix. This is the
//! quick trust-builder for a new user — every row is also covered (in more
//! depth) by `cargo test --workspace`.
//!
//! ```text
//! cargo run -p mt-bench --bin verify
//! ```

use mt_collectives::{run_grid, CollectiveKind, World};
use mt_memory::{ActivationMemoryModel, Recompute, Strategy};
use mt_model::gpt::Gpt;
use mt_model::pipeline_exec::{run_1f1b_iteration, run_interleaved_iteration, StageModel};
use mt_model::weights::LayerWeights;
use mt_model::{ActivationLedger, ExecMode, TransformerConfig};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use std::process::ExitCode;

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 1,
        layers: 4,
        vocab: 32,
        dropout_p: 0.1,
        causal: true,
    }
}

fn data(c: &TransformerConfig, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = SplitMix64::new(99);
    (0..n)
        .map(|_| {
            (
                (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
                (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
            )
        })
        .collect()
}

fn serial_loss(gpt: &Gpt, data: &[(Vec<usize>, Vec<usize>)]) -> f32 {
    let n = data.len();
    let mut loss = 0.0_f64;
    for (mb, (tokens, targets)) in data.iter().enumerate() {
        let mut ledger = ActivationLedger::new();
        loss +=
            gpt.loss_and_grads(tokens, targets, mb as u64, ExecMode::Serial, &mut ledger).0 as f64;
    }
    (loss / n as f64) as f32
}

struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn main() -> ExitCode {
    let c = cfg();
    let d = data(&c, 4);
    let gpt = Gpt::init(c, Recompute::None, 7);
    let reference = serial_loss(&gpt, &d);
    let mut checks: Vec<Check> = Vec::new();

    // 1. Tensor parallelism reproduces the serial loss.
    {
        let losses = World::run(4, |comm| {
            let sharded = gpt.shard(4, comm.rank(), Recompute::None);
            let mut total = 0.0_f64;
            for (mb, (tokens, targets)) in d.iter().enumerate() {
                let mut ledger = ActivationLedger::new();
                total += sharded
                    .loss_and_grads(
                        tokens,
                        targets,
                        mb as u64,
                        ExecMode::TensorParallel(&comm),
                        &mut ledger,
                    )
                    .0 as f64;
            }
            (total / d.len() as f64) as f32
        });
        let dev = losses.iter().map(|l| (l - reference).abs()).fold(0.0_f32, f32::max);
        checks.push(Check {
            name: "tensor parallel (t=4) == serial",
            pass: dev < 1e-4,
            detail: format!("max loss deviation {dev:.2e}"),
        });
    }

    // 2. Sequence parallelism reproduces the serial loss.
    {
        let losses = World::run(4, |comm| {
            let sharded = gpt.shard(4, comm.rank(), Recompute::Selective);
            let mut ledger = ActivationLedger::new();
            sharded
                .loss_and_grads(
                    &d[0].0,
                    &d[0].1,
                    0,
                    ExecMode::TensorSequenceParallel(&comm),
                    &mut ledger,
                )
                .0
        });
        let mut ledger = ActivationLedger::new();
        let serial0 = gpt.loss_and_grads(&d[0].0, &d[0].1, 0, ExecMode::Serial, &mut ledger).0;
        let dev = losses.iter().map(|l| (l - serial0).abs()).fold(0.0_f32, f32::max);
        checks.push(Check {
            name: "tensor+sequence parallel (t=4, selective) == serial",
            pass: dev < 1e-4,
            detail: format!("max loss deviation {dev:.2e}"),
        });
    }

    // 3. Recompute policies are bit-identical (layer level).
    {
        let mut rng = SplitMix64::new(3);
        let w = LayerWeights::init(&c, &mut rng);
        let x = Tensor::rand_uniform(&[c.tokens(), c.hidden], -1.0, 1.0, &mut rng);
        let outs: Vec<Tensor> = [Recompute::None, Recompute::Selective, Recompute::Full]
            .into_iter()
            .map(|p| {
                let layer = mt_model::TransformerLayer::new(c, w.clone(), 0, p, CounterRng::new(5));
                let mut ledger = ActivationLedger::new();
                let (y, st) = layer.forward(&x, 0, ExecMode::Serial, &mut ledger);
                let (dx, _) = layer.backward(&y, st, ExecMode::Serial);
                dx
            })
            .collect();
        let pass = outs[0] == outs[1] && outs[0] == outs[2];
        checks.push(Check {
            name: "recompute policies bit-identical",
            pass,
            detail: "store-all vs selective vs full".into(),
        });
    }

    // 4. Ledger equals Table 2 (Equation 2, t=4).
    {
        let mut rng = SplitMix64::new(4);
        let w = LayerWeights::init(&c, &mut rng);
        let x = Tensor::rand_uniform(&[c.tokens(), c.hidden], -1.0, 1.0, &mut rng);
        let measured = World::run(4, |comm| {
            let layer = mt_model::TransformerLayer::new(
                c,
                w.shard(4, comm.rank()),
                0,
                Recompute::None,
                CounterRng::new(5),
            );
            let mut ledger = ActivationLedger::new();
            let _ = layer.forward(&x, 0, ExecMode::TensorParallel(&comm), &mut ledger);
            ledger.paper_bytes()
        })[0];
        let analytical = ActivationMemoryModel::new(c.to_shape(), c.micro_batch as u64, 4)
            .per_layer_bytes(Strategy::tp());
        checks.push(Check {
            name: "measured ledger == Equation 2",
            pass: measured as f64 == analytical,
            detail: format!("{measured} bytes measured, {analytical} analytical"),
        });
    }

    // 5. Wire-byte identity (Section 4.2.2).
    {
        let mut rng = SplitMix64::new(5);
        let w = LayerWeights::init(&c, &mut rng);
        let x = Tensor::rand_uniform(&[c.tokens(), c.hidden], -1.0, 1.0, &mut rng);
        let wire = |sp: bool| {
            World::run(4, |comm| {
                let layer = mt_model::TransformerLayer::new(
                    c,
                    w.shard(4, comm.rank()),
                    0,
                    Recompute::None,
                    CounterRng::new(5),
                );
                let mode = if sp {
                    ExecMode::TensorSequenceParallel(&comm)
                } else {
                    ExecMode::TensorParallel(&comm)
                };
                let x_local =
                    if sp { x.chunk_axis0(4).unwrap()[comm.rank()].clone() } else { x.clone() };
                let mut ledger = ActivationLedger::new();
                let _ = layer.forward(&x_local, 0, mode, &mut ledger);
                let s = comm.stats();
                s.kind(CollectiveKind::AllReduce).wire_bytes
                    + s.kind(CollectiveKind::AllGather).wire_bytes
                    + s.kind(CollectiveKind::ReduceScatter).wire_bytes
            })[0]
        };
        let (tp, sp) = (wire(false), wire(true));
        checks.push(Check {
            name: "forward wire bytes: TP == TP+SP",
            pass: tp == sp,
            detail: format!("{tp} vs {sp} bytes"),
        });
    }

    // 6. Real 1F1B pipeline reproduces the serial loss.
    {
        let losses = run_grid(1, 2, |g| {
            let model = StageModel::from_gpt(&gpt, 2, g.stage, 1, 0, Recompute::Selective);
            run_1f1b_iteration(&model, &g, false, &d, 0).mean_loss
        });
        let dev = losses.iter().map(|l| (l - reference).abs()).fold(0.0_f32, f32::max);
        checks.push(Check {
            name: "1F1B pipeline (p=2, selective) == serial",
            pass: dev < 1e-4,
            detail: format!("max loss deviation {dev:.2e}"),
        });
    }

    // 7. Interleaved schedule reproduces the serial loss.
    {
        let losses = run_grid(1, 2, |g| {
            let chunks: Vec<StageModel> = (0..2)
                .map(|v| StageModel::from_gpt(&gpt, 4, v * 2 + g.stage, 1, 0, Recompute::None))
                .collect();
            run_interleaved_iteration(&chunks, &g, false, &d, 0).0
        });
        let dev = losses.iter().map(|l| (l - reference).abs()).fold(0.0_f32, f32::max);
        checks.push(Check {
            name: "interleaved pipeline (p=2, m=2) == serial",
            pass: dev < 1e-4,
            detail: format!("max loss deviation {dev:.2e}"),
        });
    }

    println!("Reproduction self-check — executing-system verification matrix");
    println!("================================================================");
    let mut all = true;
    for check in &checks {
        println!(
            "[{}] {:<52} ({})",
            if check.pass { "PASS" } else { "FAIL" },
            check.name,
            check.detail
        );
        all &= check.pass;
    }
    if all {
        println!("\nall {} checks passed", checks.len());
        ExitCode::SUCCESS
    } else {
        println!("\nSOME CHECKS FAILED");
        ExitCode::FAILURE
    }
}
