//! End-to-end step benchmark for the communication-overlap tentpole,
//! written to `reports/BENCH_e2e.json`.
//!
//! ```text
//! e2e_step_bench [--smoke] [--profile] [--threads N]
//! ```
//!
//! With `--profile`, each config's best rep is traced and profiled with
//! `mt-profile`: the step-time attribution, cross-rank critical path, and
//! latency histograms land in `reports/PROFILE_e2e.json`, and the run
//! asserts the three-way identities — profiled span args == `StepTiming`
//! ledger == the `exposed_comm_ms` / `exposed_recompute_ms` written to
//! `reports/BENCH_e2e.json` — exactly.
//!
//! Runs one TP+SP transformer layer (forward + backward with selective
//! recompute) on a 2-rank [`World`] with a simulated interconnect
//! ([`World::set_link_cost`]: every collective sleeps its α–β ring time,
//! concurrently on all ranks, exactly as a DMA engine would occupy the
//! wire) and measures, per policy:
//!
//! * `step_ms` — best-of-N wall time for the whole step,
//! * `comm_ms` — time spent inside collectives (hidden or not),
//! * `exposed_comm_ms` — the portion no dependent compute could cover; the
//!   quantity the paper's §4.2.2 overlap is meant to shrink,
//! * `recompute_ms` — time spent replaying checkpointed activations,
//! * `exposed_recompute_ms` — the replay time serialized into the backward
//!   (inline replays, or the join wait the covering GEMMs failed to hide).
//!
//! Configs: `exposed` (whole-tensor collectives, inline recompute) vs
//! `overlapped` comm at C = 4 and C = 8 chunks vs `overlapped_recompute`
//! (chunked comm **plus** the recompute-prefetch driver) at the same chunk
//! counts. Before timing, the harness asserts all five configs produce
//! **bit-identical** outputs and input gradients — both overlaps are pure
//! scheduling changes. The link is sized so compute and communication are
//! the same order of magnitude; on any machine with a few cores the
//! overlapped exposed-comm time must come out strictly below the exposed
//! policy's — and the prefetched exposed-recompute time strictly below the
//! inline replay's — which `bench_gate` enforces against the checked-in
//! baseline.

use mt_collectives::cost::CommCostModel;
use mt_collectives::World;
use mt_kernels::{set_default_backend, Backend};
use mt_memory::Recompute;
use mt_model::weights::LayerWeights;
use mt_model::{
    take_step_timing, ActivationLedger, ExecMode, ExecPolicy, OverlapPolicy, StepTiming,
    TransformerConfig, TransformerLayer,
};
use mt_perf::GpuSpec;
use mt_profile::{analyze, AnalyzeOptions, ExpectedTiming, ProfileDocument, ProfileReport};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use mt_trace::{TraceEvent, Tracer};
use std::collections::BTreeMap;
use std::time::Instant;

/// v2: adds the `overlapped_recompute` configs and the per-config
/// `recompute_ms` / `exposed_recompute_ms` columns.
const SCHEMA_VERSION: u64 = 2;
const T: usize = 2;

struct Entry {
    policy: &'static str,
    chunks: usize,
    threads: usize,
    reps: usize,
    step_ms: f64,
    comm_ms: f64,
    exposed_comm_ms: f64,
    recompute_ms: f64,
    exposed_recompute_ms: f64,
}

/// One measured config: best-of-`reps` step time plus the step ledger of
/// the best rep (max over ranks — the critical path), and the output bits
/// for the cross-config identity check.
struct Measured {
    step_ms: f64,
    comm_ms: f64,
    exposed_comm_ms: f64,
    recompute_ms: f64,
    exposed_recompute_ms: f64,
    bits: Vec<Vec<u32>>,
    /// Per-rank `StepTiming` of the selected rep (for `--profile`).
    timings: Vec<StepTiming>,
    /// Trace of the selected rep; empty unless `--profile`.
    events: Vec<TraceEvent>,
}

fn run_config(
    cfg: TransformerConfig,
    overlap: OverlapPolicy,
    threads: usize,
    reps: usize,
    link: CommCostModel,
    profile: bool,
) -> Measured {
    set_default_backend(Backend::Threaded { threads });
    let mut rng = SplitMix64::new(17);
    let full = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let mut world = World::new(T);
        world.set_link_cost(link);
        let tracer = profile.then(Tracer::enabled);
        if let Some(t) = &tracer {
            world.set_tracer(t.clone());
        }
        let per_rank = world.run_fallible(|comm| {
            let layer = TransformerLayer::new(
                cfg,
                full.shard(T, comm.rank()),
                0,
                Recompute::Selective,
                CounterRng::new(5),
            );
            let policy = ExecPolicy::builder()
                .backend(ExecMode::TensorSequenceParallel(&comm))
                .overlap(overlap)
                .build()
                .expect("valid overlap policy");
            let x_local = x.chunk_axis0(T).unwrap()[comm.rank()].clone();
            let dy_local = dy.chunk_axis0(T).unwrap()[comm.rank()].clone();
            let _ = take_step_timing(); // reset this rank thread's ledger
            let t0 = Instant::now();
            let mut ledger = ActivationLedger::new();
            let (y, state) = layer.forward(&x_local, 0, policy, &mut ledger);
            let (dx, _grads) = layer.backward(&dy_local, state, policy);
            let step_us = t0.elapsed().as_secs_f64() * 1e6;
            let timing = take_step_timing();
            let bits: Vec<u32> =
                y.data().iter().chain(dx.data().iter()).map(|v| v.to_bits()).collect();
            Ok((step_us, timing, bits))
        });
        let per_rank: Vec<_> =
            per_rank.into_iter().map(|r| r.expect("bench step failed")).collect();
        let max_ms = |f: &dyn Fn(&StepTiming) -> u64| {
            per_rank.iter().map(|(_, t, _)| f(t) as f64).fold(0.0, f64::max) / 1e3
        };
        let step_ms = per_rank.iter().map(|(us, _, _)| *us).fold(0.0, f64::max) / 1e3;
        let comm_ms = max_ms(&|t| t.comm_us);
        let exposed_ms = max_ms(&|t| t.exposed_us);
        let recompute_ms = max_ms(&|t| t.recompute_us);
        let exposed_recompute_ms = max_ms(&|t| t.exposed_recompute_us);
        let timings: Vec<StepTiming> = per_rank.iter().map(|(_, t, _)| *t).collect();
        let bits: Vec<Vec<u32>> = per_rank.into_iter().map(|(_, _, b)| b).collect();
        // Select by the gated metric — total exposure (comm + recompute):
        // the benchmark reports the best exposure the schedule achieved,
        // not the exposure of the rep that happened to have the fastest
        // wall clock (scheduler noise on an oversubscribed host makes
        // those different reps).
        let exposure = exposed_ms + exposed_recompute_ms;
        if best.as_ref().is_none_or(|b| exposure < b.exposed_comm_ms + b.exposed_recompute_ms) {
            best = Some(Measured {
                step_ms,
                comm_ms,
                exposed_comm_ms: exposed_ms,
                recompute_ms,
                exposed_recompute_ms,
                bits,
                timings,
                events: tracer.map(|t| t.events()).unwrap_or_default(),
            });
        }
    }
    best.expect("at least one rep")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let profile = args.iter().any(|a| a == "--profile");
    // Two kernel workers per rank by default: the harness already runs
    // `T = 2` rank threads (plus a prefetch helper in the
    // overlapped_recompute configs), so higher worker counts oversubscribe
    // small CI hosts badly enough that rendezvous skew — each rank thread
    // waiting to be rescheduled among the other rank's workers — eats the
    // overlap win the bench exists to measure.
    let mut threads = 2usize;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        threads = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("--threads requires a positive integer");
            std::process::exit(2);
        });
    }
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            a.as_str() != "--smoke"
                && a.as_str() != "--profile"
                && a.as_str() != "--threads"
                && !(*i > 0 && args[i - 1] == "--threads")
        })
        .map(|(_, a)| a)
    {
        eprintln!(
            "unknown argument {bad}\nusage: e2e_step_bench [--smoke] [--profile] [--threads N]"
        );
        std::process::exit(2);
    }

    let reps = 5usize;
    // Sized so the TP GEMMs that consume each gathered activation run for
    // ~15–20 ms with the packed SIMD microkernel: the overlap driver can
    // only hide a chunk fetch behind the bands the previous chunk
    // unlocked, so the consuming GEMM must dwarf the ~1 ms scheduler
    // wakeup quantum each extra chunk rendezvous costs on a contended
    // host, or the chunking overhead eats the win.
    let cfg = if smoke {
        TransformerConfig {
            hidden: 512,
            heads: 8,
            seq: 512,
            micro_batch: 2,
            layers: 1,
            vocab: 64,
            dropout_p: 0.1,
            causal: true,
        }
    } else {
        TransformerConfig {
            hidden: 640,
            heads: 10,
            seq: 640,
            micro_batch: 2,
            layers: 1,
            vocab: 64,
            dropout_p: 0.1,
            causal: true,
        }
    };
    // A deliberately slow link so each gather's wire time is the same
    // order as the GEMM that consumes it — the regime where overlap
    // matters and where the exposed-vs-overlapped gap is measurable. The
    // bandwidth is calibrated to the *current* kernels: when the packed
    // SIMD microkernel made the GEMMs ~3× faster, the original 8 MB/s
    // left far more communication than any schedule could hide behind the
    // remaining compute, so the link scales with the kernels (a 2 MB
    // gather at 100 MB/s ≈ 20 ms, against ~16–21 ms consuming GEMMs).
    let link = CommCostModel { alpha_s: 5e-6, beta_bytes_per_s: 100e6 };

    println!(
        "e2e_step_bench: {} mode, t={T}, threads={threads}, best of {reps}, \
         link α={}s β={} B/s",
        if smoke { "smoke" } else { "full" },
        link.alpha_s,
        link.beta_bytes_per_s,
    );

    let configs: [(&'static str, OverlapPolicy); 5] = [
        ("exposed", OverlapPolicy::Exposed),
        ("overlapped", OverlapPolicy::Overlapped { chunks: 4 }),
        ("overlapped", OverlapPolicy::Overlapped { chunks: 8 }),
        ("overlapped_recompute", OverlapPolicy::OverlappedRecompute { chunks: 4 }),
        ("overlapped_recompute", OverlapPolicy::OverlappedRecompute { chunks: 8 }),
    ];
    let mut entries: Vec<Entry> = Vec::new();
    let mut reference_bits: Option<Vec<Vec<u32>>> = None;
    let mut profiles: BTreeMap<String, ProfileReport> = BTreeMap::new();
    for (label, overlap) in configs {
        let m = run_config(cfg, overlap, threads, reps, link, profile);
        match &reference_bits {
            None => reference_bits = Some(m.bits.clone()),
            Some(reference) => assert_eq!(
                reference,
                &m.bits,
                "{label} C={} is not bit-identical to the exposed reference",
                overlap.chunks()
            ),
        }
        println!(
            "  {:<20} C={} step {:>9.3} ms  comm {:>9.3} ms  exposed {:>9.3} ms  \
             recompute {:>9.3} ms  exposed recompute {:>9.3} ms",
            label,
            overlap.chunks(),
            m.step_ms,
            m.comm_ms,
            m.exposed_comm_ms,
            m.recompute_ms,
            m.exposed_recompute_ms
        );
        entries.push(Entry {
            policy: label,
            chunks: overlap.chunks(),
            threads,
            reps,
            step_ms: m.step_ms,
            comm_ms: m.comm_ms,
            exposed_comm_ms: m.exposed_comm_ms,
            recompute_ms: m.recompute_ms,
            exposed_recompute_ms: m.exposed_recompute_ms,
        });

        if profile {
            // Profile the exact rep the benchmark reports: the analysis
            // enforces attribution==wall, ledger equality, and the
            // critical-path telescope; on top, assert the three-way
            // identities — trace span args == StepTiming ledger == the
            // exposed_comm_ms / exposed_recompute_ms written to
            // BENCH_e2e.json.
            let profile_label = match overlap {
                OverlapPolicy::Exposed => "exposed".to_string(),
                OverlapPolicy::Overlapped { chunks } => format!("overlapped_c{chunks}"),
                OverlapPolicy::OverlappedRecompute { chunks } => {
                    format!("overlapped_recompute_c{chunks}")
                }
            };
            let opts = AnalyzeOptions {
                label: profile_label.clone(),
                link: Some(link),
                gpu: Some(GpuSpec::a100()),
                hidden: cfg.hidden as u64,
                expected_ledger: m
                    .timings
                    .iter()
                    .enumerate()
                    .map(|(rank, t)| {
                        (
                            rank as u32,
                            ExpectedTiming {
                                comm_us: t.comm_us,
                                exposed_us: t.exposed_us,
                                recompute_us: t.recompute_us,
                                exposed_recompute_us: t.exposed_recompute_us,
                            },
                        )
                    })
                    .collect(),
            };
            let report = analyze(&m.events, &opts).expect("profile analysis of the best rep");
            assert_eq!(
                report.max_wrapped_exposed_us() as f64 / 1e3,
                m.exposed_comm_ms,
                "{profile_label}: profiled exposed comm must equal the benched exposed_comm_ms"
            );
            assert_eq!(
                report.max_wrapped_comm_us() as f64 / 1e3,
                m.comm_ms,
                "{profile_label}: profiled total comm must equal the benched comm_ms"
            );
            assert_eq!(
                report.max_wrapped_recompute_us() as f64 / 1e3,
                m.recompute_ms,
                "{profile_label}: profiled recompute must equal the benched recompute_ms"
            );
            assert_eq!(
                report.max_wrapped_exposed_recompute_us() as f64 / 1e3,
                m.exposed_recompute_ms,
                "{profile_label}: profiled exposed recompute must equal the benched \
                 exposed_recompute_ms"
            );
            profiles.insert(profile_label, report);
        }
    }

    // The tentpole's win condition: prefetching the replay under the
    // backward GEMMs must leave strictly less recompute exposed than
    // running it inline, config for config.
    let inline_exposed = entries
        .iter()
        .find(|e| e.policy == "exposed")
        .expect("exposed config present")
        .exposed_recompute_ms;
    for e in entries.iter().filter(|e| e.policy == "overlapped_recompute") {
        assert!(
            e.exposed_recompute_ms < inline_exposed,
            "overlapped_recompute C={} exposes {:.3} ms of recompute, not below the inline \
             replay's {:.3} ms",
            e.chunks,
            e.exposed_recompute_ms,
            inline_exposed
        );
    }

    let result_values: Vec<serde_json::Value> = entries
        .iter()
        .map(|e| {
            serde_json::json!({
                "policy": e.policy,
                "chunks": e.chunks,
                "threads": e.threads,
                "reps": e.reps,
                "step_ms": e.step_ms,
                "comm_ms": e.comm_ms,
                "exposed_comm_ms": e.exposed_comm_ms,
                "recompute_ms": e.recompute_ms,
                "exposed_recompute_ms": e.exposed_recompute_ms,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema_version": SCHEMA_VERSION,
        "generated_by": "e2e_step_bench",
        "smoke": smoke,
        "t": T,
        "threads": threads,
        "hidden": cfg.hidden,
        "seq": cfg.seq,
        "micro_batch": cfg.micro_batch,
        "link_alpha_s": link.alpha_s,
        "link_beta_bytes_per_s": link.beta_bytes_per_s,
        "available_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "results": result_values,
    });
    std::fs::create_dir_all("reports").expect("create reports/");
    std::fs::write(
        "reports/BENCH_e2e.json",
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write reports/BENCH_e2e.json");
    println!("\nwrote reports/BENCH_e2e.json ({} entries)", entries.len());

    if profile {
        let doc = ProfileDocument::new(profiles);
        std::fs::write("reports/PROFILE_e2e.json", doc.to_json())
            .expect("write reports/PROFILE_e2e.json");
        println!(
            "wrote reports/PROFILE_e2e.json ({} profiles, exposed-comm identity checked)",
            doc.profiles.len()
        );
    }
}
