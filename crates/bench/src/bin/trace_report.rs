//! `trace-report`: runs a small tensor+sequence-parallel training config
//! with selective recomputation under an enabled tracer, cross-checks the
//! traced counters against the analytical models, and writes
//!
//! * `reports/trace.json` — Chrome `trace_event` JSON (load in Perfetto or
//!   `chrome://tracing`),
//! * `reports/trace_metrics.json` — the flat metrics-registry dump,
//!
//! plus an ASCII timeline and a summary table on stdout.
//!
//! The cross-checks are **exact** (integer equality), in the same spirit as
//! `tests/measured_vs_analytical.rs`:
//!
//! 1. every collective span's `wire_bytes` arg equals
//!    `CollectiveKind::ring_wire_bytes` recomputed from its own
//!    `payload_bytes`/`group_size` args;
//! 2. per rank, the span-arg wire-byte total equals that rank's `CommStats`
//!    ledger, and the world aggregate equals the per-rank sum;
//! 3. the measured per-layer activation ledger equals the paper's Table 2
//!    closed form (`ActivationMemoryModel::per_layer_bytes`) — the same
//!    formula `mt_core::Estimator` composes its memory reports from.
//!
//! ```text
//! cargo run -p mt-bench --bin trace-report
//! ```

use mt_collectives::{CollectiveKind, CommStats, World};
use mt_core::Estimator;
use mt_memory::{ActivationMemoryModel, Batch, CachingAllocator, Parallelism, Recompute, Strategy};
use mt_model::gpt::Gpt;
use mt_model::trainer::{Trainer, TrainerConfig};
use mt_model::weights::LayerWeights;
use mt_model::{ActivationLedger, ExecMode, TransformerConfig, TransformerLayer};
use mt_perf::GpuSpec;
use mt_pipeline::{InterleavedSim, StageCosts};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use mt_trace::{export, ArgValue, MetricsRegistry, Tracer};
use std::path::Path;

const STEPS: usize = 4;
const SEED: u64 = 1234;
const TP: usize = 4;

/// The tiny-GPT config the repo's examples train for real.
fn config() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 16,
        micro_batch: 2,
        layers: 2,
        vocab: 64,
        dropout_p: 0.1,
        causal: true,
    }
}

fn data(cfg: &TransformerConfig) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(99);
    let n = cfg.tokens();
    let tokens: Vec<usize> = (0..n).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect();
    let mut targets = tokens.clone();
    targets.rotate_left(cfg.micro_batch);
    (tokens, targets)
}

/// Extracts a `u64` span arg.
fn arg_u64(args: &[(&'static str, ArgValue)], key: &str) -> Option<u64> {
    args.iter().find(|(k, _)| *k == key).map(|(_, v)| match v {
        ArgValue::U64(b) => *b,
        other => panic!("arg {key} should be U64, got {other:?}"),
    })
}

fn main() {
    let cfg = config();
    let policy = Recompute::Selective;
    let strategy = Strategy { sequence_parallel: true, recompute: policy };
    let tracer = Tracer::enabled();
    let registry = MetricsRegistry::new();

    println!("trace-report: tiny GPT (h=32 a=4 s=16 b=2 L=2 v=64), TP+SP t={TP}, selective recompute, {STEPS} steps\n");

    // ---- 1. Traced TP+SP training run -----------------------------------
    let template = Gpt::init(cfg, policy, SEED);
    let (tokens, targets) = data(&cfg);
    let per_rank: Vec<(CommStats, ActivationLedger)> = World::run_traced(TP, &tracer, |comm| {
        let mut trainer =
            Trainer::new(template.shard(TP, comm.rank(), policy), TrainerConfig::default());
        let mode = ExecMode::TensorSequenceParallel(&comm);
        let mut ledger = ActivationLedger::new();
        for _ in 0..STEPS {
            ledger = trainer.step_with_ledger(&tokens, &targets, mode).1;
        }
        (comm.stats(), ledger)
    });

    // ---- 2. Cross-check: span args vs CommStats vs ring formula ---------
    let events = tracer.events();
    let mut per_rank_span_wire = [0u64; TP];
    let mut comm_spans = 0usize;
    for e in &events {
        let Some(wire) = arg_u64(&e.args, "wire_bytes") else { continue };
        let payload = arg_u64(&e.args, "payload_bytes").expect("payload arg");
        let n = arg_u64(&e.args, "group_size").expect("group_size arg");
        let kind = match e.name.as_ref() {
            "all_reduce" => CollectiveKind::AllReduce,
            "all_gather" => CollectiveKind::AllGather,
            "reduce_scatter" => CollectiveKind::ReduceScatter,
            "broadcast" => CollectiveKind::Broadcast,
            "send_recv" => CollectiveKind::SendRecv,
            "barrier" => CollectiveKind::Barrier,
            other => panic!("unexpected collective span {other}"),
        };
        assert_eq!(
            wire,
            kind.ring_wire_bytes(payload, n),
            "span {} wire_bytes arg disagrees with the ring formula",
            e.name
        );
        per_rank_span_wire[e.track as usize] += wire;
        comm_spans += 1;
    }
    for (rank, stats_ledger) in per_rank.iter().enumerate() {
        assert_eq!(
            per_rank_span_wire[rank],
            stats_ledger.0.total_wire_bytes(),
            "rank {rank}: traced span wire bytes must equal the CommStats ledger"
        );
    }
    let world = CommStats::aggregate(per_rank.iter().map(|(s, _)| s));
    assert_eq!(
        world.total_wire_bytes(),
        per_rank_span_wire.iter().sum::<u64>(),
        "world aggregate must equal the per-rank sum"
    );
    println!("checked {comm_spans} collective spans: span args == CommStats == ring_wire_bytes ✓");

    // ---- 3. Cross-check: measured ledger vs Table 2 / estimator ---------
    // One layer forward under the same strategy, the exact-equality contract
    // of tests/measured_vs_analytical.rs.
    let mut rng = SplitMix64::new(7);
    let full = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let layer_ledgers = World::run(TP, |comm| {
        let layer =
            TransformerLayer::new(cfg, full.shard(TP, comm.rank()), 0, policy, CounterRng::new(3));
        let mode = ExecMode::TensorSequenceParallel(&comm);
        let x_local = x.chunk_axis0(TP).unwrap()[comm.rank()].clone();
        let mut ledger = ActivationLedger::new();
        let _ = layer.forward(&x_local, 0, mode, &mut ledger);
        ledger
    });
    let analytical_layer =
        ActivationMemoryModel::new(cfg.to_shape(), cfg.micro_batch as u64, TP as u64)
            .per_layer_bytes(strategy);
    let measured_layer = layer_ledgers[0].paper_bytes();
    assert_eq!(
        measured_layer as f64, analytical_layer,
        "measured per-layer activation bytes must equal Table 2 exactly"
    );
    // The estimator composes the same activation model; its first-stage
    // total for p=1 is per-layer × L + the Section 4.3 input extras.
    let estimator = Estimator::new(
        cfg.to_shape(),
        Parallelism { tensor: TP as u64, pipeline: 1, interleave: None },
        Batch { micro: cfg.micro_batch as u64, global: cfg.micro_batch as u64 },
        GpuSpec::a100(),
    );
    let est_activation = estimator.memory_report(strategy).activation_bytes;
    println!(
        "checked per-layer activation bytes: measured {measured_layer} == Table 2 {analytical_layer} ✓"
    );

    // ---- 4. Allocator watermarks on a dedicated track -------------------
    // Replay pipeline-like interleaved lifetimes through the caching
    // allocator with the tracer attached, so the watermark counters land in
    // the trace and the stats in the registry.
    let alloc_track = TP as u32;
    let mut alloc = CachingAllocator::new(16 * measured_layer);
    alloc.set_tracer(tracer.with_track(alloc_track));
    let mut live = Vec::new();
    for _ in 0..4 {
        live.push(alloc.malloc(measured_layer).unwrap());
        live.push(alloc.malloc(measured_layer / 8).unwrap());
    }
    for id in live.drain(..).step_by(2).collect::<Vec<_>>() {
        alloc.free(id);
    }
    alloc.stats().publish(&registry, "alloc");

    // ---- 5. Interleaved pipeline schedule on offset tracks --------------
    let sim = InterleavedSim {
        chunk_costs: StageCosts::new(1.0, 2.0, 0.3),
        devices: 4,
        chunks: 2,
        num_micro: 8,
        p2p_ms: 0.05,
    };
    let pp_tracer = Tracer::enabled();
    let sim_result = sim.simulate_traced(&pp_tracer);
    let pp_track_base = alloc_track + 1;
    // Re-snapshot: the allocator's counter events landed on `tracer` after
    // the cross-check snapshot above.
    let mut all_events = tracer.events();
    all_events.extend(pp_tracer.events().into_iter().map(|mut e| {
        e.track += pp_track_base;
        e
    }));
    registry.gauge_set("pipeline.makespan_ms", sim_result.makespan_ms);
    registry.high_water("pipeline.first_device_in_flight", sim_result.peak_in_flight[0]);

    // ---- 6. Publish, export, validate -----------------------------------
    for (rank, (stats, ledger)) in per_rank.iter().enumerate() {
        stats.publish(&registry, &format!("rank{rank}.comm"));
        ledger.publish(&registry, &format!("rank{rank}.act"));
    }
    world.publish(&registry, "world.comm");

    let chrome = export::chrome_trace(&all_events);
    export::validate_chrome_trace(&chrome).expect("exported trace must validate");
    std::fs::create_dir_all("reports").expect("create reports/");
    std::fs::write(Path::new("reports/trace.json"), export::chrome_trace_string(&all_events))
        .expect("write reports/trace.json");
    let snapshot = registry.snapshot();
    std::fs::write(
        Path::new("reports/trace_metrics.json"),
        serde_json::to_string_pretty(&snapshot.flat_json()).expect("serialize metrics"),
    )
    .expect("write reports/trace_metrics.json");

    // ---- 7. Human-readable output ---------------------------------------
    println!("\nper-rank timeline (training run):");
    println!("{}", export::ascii_timeline(&events, 100));

    println!("summary (traced vs analytical):");
    println!("  {:<44} {:>16} {:>16}", "quantity", "traced", "analytical");
    println!(
        "  {:<44} {:>16} {:>16}",
        "rank-0 wire bytes (span args vs ledger)",
        per_rank_span_wire[0],
        per_rank[0].0.total_wire_bytes()
    );
    println!(
        "  {:<44} {:>16} {:>16}",
        "world wire bytes",
        per_rank_span_wire.iter().sum::<u64>(),
        world.total_wire_bytes()
    );
    println!(
        "  {:<44} {:>16} {:>16}",
        "per-layer activation bytes (selective, SP)", measured_layer, analytical_layer
    );
    println!(
        "  {:<44} {:>16} {:>16.0}",
        "L layers of activations (estimator context)",
        cfg.layers as u64 * measured_layer,
        est_activation
    );
    println!(
        "  {:<44} {:>16} {:>16}",
        "allocator peak footprint / peak allocated",
        alloc.stats().peak_footprint,
        alloc.stats().peak_allocated
    );
    println!(
        "  {:<44} {:>16.2} {:>16.2}",
        "interleaved makespan (sim ms vs analytic)",
        sim_result.makespan_ms,
        sim.analytic_ms()
    );

    println!(
        "\nwrote reports/trace.json ({} events) and reports/trace_metrics.json",
        all_events.len()
    );
    println!("all exact cross-checks passed");
}
