//! Measures the thread-rank collectives — in particular that a
//! reduce-scatter + all-gather pair is comparable to one all-reduce (the
//! paper's "sequence parallelism costs no extra communication" identity).

use criterion::{criterion_group, criterion_main, Criterion};
use mt_collectives::World;
use mt_tensor::Tensor;
use std::hint::black_box;

const RANKS: usize = 4;
const ELEMS: usize = 64 * 1024;

fn collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_t4_64k");
    group.sample_size(20);
    group.bench_function("all_reduce", |b| {
        b.iter(|| {
            let out = World::run(RANKS, |comm| {
                let x = Tensor::full(&[ELEMS], comm.rank() as f32);
                comm.all_reduce(&x).data()[0]
            });
            black_box(out)
        })
    });
    group.bench_function("reduce_scatter_then_all_gather", |b| {
        b.iter(|| {
            let out = World::run(RANKS, |comm| {
                let x = Tensor::full(&[ELEMS, 1], comm.rank() as f32);
                let shard = comm.reduce_scatter(&x);
                comm.all_gather(&shard).data()[0]
            });
            black_box(out)
        })
    });
    group.bench_function("broadcast", |b| {
        b.iter(|| {
            let out = World::run(RANKS, |comm| {
                let x = Tensor::full(&[ELEMS], comm.rank() as f32);
                comm.broadcast(&x, 0).data()[0]
            });
            black_box(out)
        })
    });
    // The hardened path: same rendezvous plus the deadline bookkeeping and
    // SPMD call tag. Compare with `all_reduce` above — the hardening must
    // stay in the noise.
    group.bench_function("try_all_reduce_fallible_world", |b| {
        b.iter(|| {
            let mut world = World::new(RANKS);
            let out = world.run_fallible(|comm| {
                let x = Tensor::full(&[ELEMS], comm.rank() as f32);
                Ok(comm.try_all_reduce(&x)?.data()[0])
            });
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, collectives);
criterion_main!(benches);
