//! Throughput of the analytical layer: memory model, FLOPs model, the
//! end-to-end estimator, the planner, and full report generation.

use criterion::{criterion_group, criterion_main, Criterion};
use mt_bench::reports;
use mt_core::{Estimator, ModelZoo, TrainingPlanner};
use mt_flops::FlopsModel;
use mt_memory::{ActivationMemoryModel, Recompute, Strategy, A100_80GB_BYTES};
use std::hint::black_box;

fn analytical(c: &mut Criterion) {
    let model = ModelZoo::mtnlg_530b();
    c.bench_function("memory_model_per_layer", |b| {
        let act = ActivationMemoryModel::new(model.shape, model.batch.micro, 8);
        b.iter(|| black_box(act.per_layer_bytes(black_box(Strategy::tp_sp_selective()))))
    });
    c.bench_function("flops_model_eq7_eq8", |b| {
        let f = FlopsModel::new(model.shape, model.batch.global);
        b.iter(|| black_box(f.hardware_flops(black_box(Recompute::Selective))))
    });
    c.bench_function("estimator_table5_row", |b| {
        let est = Estimator::for_paper_model(&model);
        b.iter(|| black_box(est.time_report(black_box(Strategy::tp_sp_selective()))))
    });
    c.bench_function("planner_plan_530b", |b| {
        let planner = TrainingPlanner::new(Estimator::for_paper_model(&model), A100_80GB_BYTES);
        b.iter(|| black_box(planner.plan()))
    });
    c.bench_function("full_report_json", |b| b.iter(|| black_box(reports::all_reports_json())));
}

criterion_group!(benches, analytical);
criterion_main!(benches);
