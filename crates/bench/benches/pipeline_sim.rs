//! Throughput of the discrete-event 1F1B simulator at paper scale
//! (p = 64, n = 512 is the 1T configuration) and with Appendix C budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use mt_pipeline::{PipelineSim, StageCosts};
use std::hint::black_box;

fn pipeline(c: &mut Criterion) {
    let costs = StageCosts::new(46.0, 85.0, 1.6);
    c.bench_function("sim_1f1b_p8_n64", |b| {
        let sim = PipelineSim::uniform(costs, 8, 64, 0.25);
        b.iter(|| black_box(sim.simulate_1f1b(None)))
    });
    c.bench_function("sim_1f1b_p64_n512", |b| {
        let sim = PipelineSim::uniform(costs, 64, 512, 0.25);
        b.iter(|| black_box(sim.simulate_1f1b(None)))
    });
    c.bench_function("sim_1f1b_p64_n512_appendix_c", |b| {
        let sim = PipelineSim::uniform(costs, 64, 512, 0.25);
        let budget: Vec<u64> = (0..64).map(|i| i / 8).collect();
        b.iter(|| black_box(sim.simulate_1f1b(Some(black_box(&budget)))))
    });
    c.bench_function("interleaved_pricing_p35_m3", |b| {
        let sim = PipelineSim::uniform(costs, 35, 280, 0.25);
        b.iter(|| black_box(sim.interleaved_ms(3)))
    });
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
