//! Tracing-overhead benchmarks: the disabled-tracer path must be near-free
//! (one `Option` check, no allocation), so instrumented hot paths cost the
//! same as before the instrumentation existed.

use criterion::{criterion_group, criterion_main, Criterion};
use mt_trace::{ArgValue, Tracer};

fn bench_disabled_span(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    let disabled = Tracer::disabled();
    g.bench_function("disabled_span", |b| {
        b.iter(|| {
            let _span = disabled.span("hot");
        })
    });
    g.bench_function("disabled_span_args", |b| {
        // The args closure must not run on the disabled path; this measures
        // exactly the cost an instrumented collective pays with no tracer.
        b.iter(|| {
            let _span = disabled.span_args("hot", || {
                vec![("bytes", ArgValue::U64(1 << 20)), ("n", ArgValue::U64(8))]
            });
        })
    });
    g.bench_function("disabled_counter", |b| {
        b.iter(|| disabled.counter("alloc.allocated_bytes", 42.0))
    });
    let enabled = Tracer::enabled();
    g.bench_function("enabled_span_args", |b| {
        b.iter(|| {
            let _span = enabled.span_args("hot", || {
                vec![("bytes", ArgValue::U64(1 << 20)), ("n", ArgValue::U64(8))]
            });
        })
    });
    g.finish();
}

criterion_group!(benches, bench_disabled_span);
criterion_main!(benches);
