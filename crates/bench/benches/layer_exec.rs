//! Measures the *executing* transformer layer under each recomputation
//! policy — the real-silicon analogue of the paper's Table 4: recomputation
//! shows up as backward-pass time, selective recomputation much less so than
//! full.

use criterion::{criterion_group, criterion_main, Criterion};
use mt_collectives::World;
use mt_memory::Recompute;
use mt_model::weights::LayerWeights;
use mt_model::{ActivationLedger, ExecMode, TransformerConfig, TransformerLayer};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use std::hint::black_box;

fn bench_cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 128,
        heads: 8,
        seq: 64,
        micro_batch: 2,
        layers: 1,
        vocab: 256,
        dropout_p: 0.1,
        causal: true,
    }
}

fn layer_forward_backward(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut rng = SplitMix64::new(1);
    let weights = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("layer_fwd_bwd_serial");
    for (name, policy) in [
        ("store_all", Recompute::None),
        ("selective", Recompute::Selective),
        ("full_recompute", Recompute::Full),
    ] {
        let layer = TransformerLayer::new(cfg, weights.clone(), 0, policy, CounterRng::new(2));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ledger = ActivationLedger::new();
                let (y, st) = layer.forward(black_box(&x), 0, ExecMode::Serial, &mut ledger);
                let (dx, grads) = layer.backward(black_box(&dy), st, ExecMode::Serial);
                black_box((y, dx, grads))
            })
        });
    }
    group.finish();
}

fn layer_tensor_parallel(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut rng = SplitMix64::new(3);
    let weights = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("layer_fwd_bwd_parallel_t2");
    group.sample_size(20);
    for (name, sp) in [("tensor_parallel", false), ("tensor_sequence_parallel", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = World::run(2, |comm| {
                    let layer = TransformerLayer::new(
                        cfg,
                        weights.shard(2, comm.rank()),
                        0,
                        Recompute::Selective,
                        CounterRng::new(2),
                    );
                    let mode = if sp {
                        ExecMode::TensorSequenceParallel(&comm)
                    } else {
                        ExecMode::TensorParallel(&comm)
                    };
                    let (x_local, dy_local) = if sp {
                        (
                            x.chunk_axis0(2).unwrap()[comm.rank()].clone(),
                            dy.chunk_axis0(2).unwrap()[comm.rank()].clone(),
                        )
                    } else {
                        (x.clone(), dy.clone())
                    };
                    let mut ledger = ActivationLedger::new();
                    let (_, st) = layer.forward(&x_local, 0, mode, &mut ledger);
                    layer.backward(&dy_local, st, mode).0
                });
                black_box(out)
            })
        });
    }
    group.finish();
}

fn gpt_training_step(c: &mut Criterion) {
    use mt_model::gpt::Gpt;
    use mt_model::optim::Adam;
    let cfg = TransformerConfig {
        hidden: 64,
        heads: 4,
        seq: 32,
        micro_batch: 2,
        layers: 2,
        vocab: 128,
        dropout_p: 0.1,
        causal: true,
    };
    let mut rng = SplitMix64::new(5);
    let tokens: Vec<usize> =
        (0..cfg.tokens()).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect();
    let targets: Vec<usize> =
        (0..cfg.tokens()).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect();

    let mut group = c.benchmark_group("gpt_training_step");
    group.sample_size(20);
    for (name, policy) in [
        ("store_all", Recompute::None),
        ("selective", Recompute::Selective),
        ("full_recompute", Recompute::Full),
    ] {
        group.bench_function(name, |b| {
            let mut gpt = Gpt::init(cfg, policy, 6);
            let mut adam = Adam::new(1e-3);
            b.iter(|| {
                let mut ledger = ActivationLedger::new();
                let (loss, grads) = gpt.loss_and_grads(
                    black_box(&tokens),
                    black_box(&targets),
                    0,
                    ExecMode::Serial,
                    &mut ledger,
                );
                adam.update(gpt.param_tensors_mut(), &grads.tensors());
                black_box(loss)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, layer_forward_backward, layer_tensor_parallel, gpt_training_step);
criterion_main!(benches);
