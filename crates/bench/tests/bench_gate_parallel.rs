//! Forced-regression contract of `bench_gate`'s `--min-parallel-speedup`
//! invariant: a fresh kernel report from a multi-core host where threaded
//! loses to serial at the largest GEMM shape must fail the gate and name
//! the offending shape on stdout and in `$GITHUB_STEP_SUMMARY`; a report
//! from a single-core host must skip the check (with a visible note)
//! instead of demanding a physically impossible speedup.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A kernel-bench v2 document with one GEMM kind at two shapes. The small
/// 64³ pair is healthy either way; `t512_ms` decides whether threading
/// wins (`< s512_ms / 1.3`) or regresses at the 512³ shape the invariant
/// reads.
fn kernels_doc(avail: u64, s512_ms: f64, t512_ms: f64) -> String {
    let entry = |m: u64, n: u64, k: u64, backend: &str, threads: u64, best_ms: f64| {
        format!(
            r#"{{"kernel": "gemm", "kind": "nn", "m": {m}, "n": {n}, "k": {k},
                "backend": "{backend}", "threads": {threads}, "reps": 3,
                "best_ms": {best_ms}, "gflops": 10.0, "packing_us": 40}}"#
        )
    };
    format!(
        r#"{{"schema_version": 2, "generated_by": "kernel_bench", "smoke": true,
            "simd": "avx2", "threaded_workers": 4, "available_parallelism": {avail},
            "results": [{}, {}, {}, {}]}}"#,
        entry(64, 64, 64, "serial", 1, 0.02),
        entry(64, 64, 64, "threaded", 4, 0.02),
        entry(512, 512, 512, "serial", 1, s512_ms),
        entry(512, 512, 512, "threaded", 4, t512_ms),
    )
}

/// Minimal healthy companion documents so only the kernel section can trip
/// the gate. The e2e doc satisfies both overlap invariants.
fn e2e_doc() -> String {
    r#"{"results": [
        {"policy": "exposed", "chunks": 1, "threads": 4,
         "step_ms": 100.0, "comm_ms": 50.0, "exposed_comm_ms": 50.0,
         "recompute_ms": 30.0, "exposed_recompute_ms": 30.0},
        {"policy": "overlapped", "chunks": 2, "threads": 4,
         "step_ms": 90.0, "comm_ms": 55.0, "exposed_comm_ms": 40.0,
         "recompute_ms": 30.0, "exposed_recompute_ms": 30.0},
        {"policy": "overlapped_recompute", "chunks": 2, "threads": 4,
         "step_ms": 85.0, "comm_ms": 55.0, "exposed_comm_ms": 40.0,
         "recompute_ms": 30.0, "exposed_recompute_ms": 5.0}
    ]}"#
    .to_string()
}

fn recovery_doc() -> String {
    r#"{"results": [{"scenario": "death_t4_to_t2", "reps": 2, "reforms": 1,
        "final_degree": 2, "mttr_ms": 2.9, "bit_identical": true}]}"#
        .to_string()
}

fn sync_doc() -> String {
    r#"{"results": [{"scenario": "all_reduce", "ranks": 4, "rounds": 64,
        "reps": 3, "best_ms": 1.0}]}"#
        .to_string()
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("bench_gate_parallel_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        Fixture { dir }
    }

    fn write(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.dir.join(name);
        std::fs::write(&p, contents).expect("write fixture file");
        p
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Runs the gate with identical fresh/baseline kernel docs (so per-entry
/// ratios are all ×1.00) plus healthy companions: only the fresh-run
/// parallel-speedup invariant differs across cases.
fn run_gate(fx: &Fixture, kernels_json: &str) -> (std::process::Output, String) {
    let kernels = fx.write("kernels.json", kernels_json);
    let kernels_base = fx.write("kernels_base.json", kernels_json);
    let e2e = fx.write("e2e.json", &e2e_doc());
    let e2e_base = fx.write("e2e_base.json", &e2e_doc());
    let recovery = fx.write("recovery.json", &recovery_doc());
    let recovery_base = fx.write("recovery_base.json", &recovery_doc());
    let sync = fx.write("sync.json", &sync_doc());
    let sync_base = fx.write("sync_base.json", &sync_doc());
    let summary = fx.dir.join("summary.md");
    let arg = |p: &Path| p.to_str().unwrap().to_string();
    let output = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args([
            "--kernels".to_string(),
            arg(&kernels),
            "--kernels-baseline".to_string(),
            arg(&kernels_base),
            "--e2e".to_string(),
            arg(&e2e),
            "--e2e-baseline".to_string(),
            arg(&e2e_base),
            "--recovery".to_string(),
            arg(&recovery),
            "--recovery-baseline".to_string(),
            arg(&recovery_base),
            "--sync".to_string(),
            arg(&sync),
            "--sync-baseline".to_string(),
            arg(&sync_base),
            "--min-parallel-speedup".to_string(),
            "1.3".to_string(),
        ])
        .env("GITHUB_STEP_SUMMARY", &summary)
        .output()
        .expect("run bench_gate");
    let summary_text = std::fs::read_to_string(&summary).unwrap_or_default();
    (output, summary_text)
}

#[test]
fn threaded_losing_at_the_largest_shape_fails_and_names_it() {
    let fx = Fixture::new("regress");
    // 8-way host, but threaded 512³ is *slower* than serial (×0.83):
    // exactly the regression the invariant exists to catch.
    let (output, summary) = run_gate(&fx, &kernels_doc(8, 10.0, 12.0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    assert_eq!(output.status.code(), Some(1), "gate must fail\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("parallel-speedup FAIL: gemm nn 512x512x512"),
        "stdout must name the offending shape:\n{stdout}"
    );
    assert!(
        summary.contains("gemm nn 512x512x512 speedup") && summary.contains("FAIL"),
        "GITHUB_STEP_SUMMARY must carry the failed shape row:\n{summary}"
    );
    assert!(stderr.contains("kernels parallel-speedup"), "{stderr}");
}

#[test]
fn threaded_winning_at_the_largest_shape_passes() {
    let fx = Fixture::new("pass");
    // ×2.5 threaded speedup at 512³: comfortably past the ×1.3 bar. The
    // small 64³ shape ties serial/threaded, which must NOT trip the gate —
    // only the largest shape per kind is judged.
    let (output, summary) = run_gate(&fx, &kernels_doc(8, 10.0, 4.0));
    let stdout = String::from_utf8_lossy(&output.stdout);

    assert_eq!(output.status.code(), Some(0), "gate must pass\n{stdout}");
    assert!(stdout.contains("all checks passed"), "{stdout}");
    assert!(
        summary.contains("gemm nn 512x512x512 speedup") && summary.contains("×2.50"),
        "summary must show the measured speedup:\n{summary}"
    );
}

#[test]
fn single_core_host_skips_the_check_with_a_note() {
    let fx = Fixture::new("skip");
    // Same losing numbers as the failing case — but recorded on a
    // single-core host, where threads cannot beat serial by construction.
    let (output, summary) = run_gate(&fx, &kernels_doc(1, 10.0, 12.0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    assert_eq!(output.status.code(), Some(0), "gate must skip, not fail\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("parallel-speedup check skipped")
            && stdout.contains("available_parallelism = 1"),
        "skip must be visible on stdout:\n{stdout}"
    );
    assert!(
        summary.contains("skipped (available_parallelism = 1)"),
        "summary must record the skip:\n{summary}"
    );
}
