//! Forced-regression contract of `bench_gate`: a fresh run that blows the
//! step budget must exit nonzero AND carry an `mt-profile` attribution
//! diff naming the regressed category, on stdout and in the
//! `$GITHUB_STEP_SUMMARY` file.

use mt_profile::{analyze, AnalyzeOptions, ProfileDocument, ProfileReport};
use mt_trace::Tracer;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A minimal valid profile: one gemm span, one all-reduce, and one inline
/// recompute replay of the given lengths — so a fresh-vs-base pair with a
/// longer all-reduce diffs to an `exposed_comm` regression and one with a
/// longer replay to an `exposed_recompute` regression.
fn synthetic_profile(label: &str, comm_us: f64, recompute_us: f64) -> ProfileReport {
    let t = Tracer::enabled();
    t.complete_at("kernel_gemm", 0, 0.0, 40.0, Vec::new());
    t.complete_at("all_reduce", 0, 40.0, comm_us, Vec::new());
    t.complete_at("recompute_layer", 0, 100.0, recompute_us, Vec::new());
    analyze(&t.events(), &AnalyzeOptions { label: label.to_string(), ..Default::default() })
        .expect("synthetic profile analyzes")
}

fn write_profile_doc(path: &Path, label: &str, comm_us: f64, recompute_us: f64) {
    let doc = ProfileDocument::new(BTreeMap::from([(
        label.to_string(),
        synthetic_profile(label, comm_us, recompute_us),
    )]));
    std::fs::write(path, doc.to_json()).expect("write profile doc");
}

/// One kernel-bench document with a single healthy entry.
fn kernels_doc(best_ms: f64) -> String {
    format!(
        r#"{{"results": [{{"kernel": "gemm", "kind": "ff1", "m": 64, "n": 64, "k": 64,
            "backend": "threaded", "threads": 4, "best_ms": {best_ms}, "gflops": 10.0}}]}}"#
    )
}

/// One e2e document. The overlap invariants (overlapped exposes less comm
/// than exposed; overlapped_recompute exposes less recompute than the
/// inline replay) hold in both, so only the step-time ratio can trip the
/// gate.
fn e2e_doc(exposed_step_ms: f64) -> String {
    format!(
        r#"{{"results": [
            {{"policy": "exposed", "chunks": 1, "threads": 4,
              "step_ms": {exposed_step_ms}, "comm_ms": 50.0, "exposed_comm_ms": 50.0,
              "recompute_ms": 30.0, "exposed_recompute_ms": 30.0}},
            {{"policy": "overlapped", "chunks": 2, "threads": 4,
              "step_ms": 90.0, "comm_ms": 55.0, "exposed_comm_ms": 40.0,
              "recompute_ms": 30.0, "exposed_recompute_ms": 30.0}},
            {{"policy": "overlapped_recompute", "chunks": 2, "threads": 4,
              "step_ms": 85.0, "comm_ms": 55.0, "exposed_comm_ms": 40.0,
              "recompute_ms": 30.0, "exposed_recompute_ms": 5.0}}
        ]}}"#
    )
}

/// One sync-overhead document with a single healthy scenario.
fn sync_doc(best_ms: f64) -> String {
    format!(
        r#"{{"results": [{{"scenario": "all_reduce", "ranks": 4, "rounds": 64,
            "reps": 3, "best_ms": {best_ms}}}]}}"#
    )
}

/// One recovery document with a single healthy, bit-identical scenario.
fn recovery_doc(mttr_ms: f64) -> String {
    format!(
        r#"{{"results": [{{"scenario": "death_t4_to_t2", "reps": 2, "reforms": 1,
            "final_degree": 2, "detect_ms": 1.0, "consensus_ms": 0.1, "reshard_ms": 0.3,
            "replay_ms": 1.5, "mttr_ms": {mttr_ms}, "bit_identical": true}}]}}"#
    )
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("bench_gate_diff_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        Fixture { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn write(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.path(name);
        std::fs::write(&p, contents).expect("write fixture file");
        p
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// `(base, fresh)` (comm_us, recompute_us) pairs for the profile fixtures:
/// which category the fresh profile regresses decides what the diff names.
fn run_gate(
    fx: &Fixture,
    fresh_step_ms: f64,
    base_profile: (f64, f64),
    fresh_profile: (f64, f64),
) -> (std::process::Output, String) {
    let kernels = fx.write("kernels.json", &kernels_doc(1.0));
    let kernels_base = fx.write("kernels_base.json", &kernels_doc(1.0));
    let e2e = fx.write("e2e.json", &e2e_doc(fresh_step_ms));
    let e2e_base = fx.write("e2e_base.json", &e2e_doc(100.0));
    let recovery = fx.write("recovery.json", &recovery_doc(2.9));
    let recovery_base = fx.write("recovery_base.json", &recovery_doc(2.9));
    let sync = fx.write("sync.json", &sync_doc(1.0));
    let sync_base = fx.write("sync_base.json", &sync_doc(1.0));
    let profile = fx.path("profile.json");
    let profile_base = fx.path("profile_base.json");
    write_profile_doc(&profile_base, "exposed", base_profile.0, base_profile.1);
    write_profile_doc(&profile, "exposed", fresh_profile.0, fresh_profile.1);
    let summary = fx.path("summary.md");
    let output = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args([
            "--kernels",
            kernels.to_str().unwrap(),
            "--kernels-baseline",
            kernels_base.to_str().unwrap(),
            "--e2e",
            e2e.to_str().unwrap(),
            "--e2e-baseline",
            e2e_base.to_str().unwrap(),
            "--recovery",
            recovery.to_str().unwrap(),
            "--recovery-baseline",
            recovery_base.to_str().unwrap(),
            "--sync",
            sync.to_str().unwrap(),
            "--sync-baseline",
            sync_base.to_str().unwrap(),
            "--profile",
            profile.to_str().unwrap(),
            "--profile-baseline",
            profile_base.to_str().unwrap(),
        ])
        .env("GITHUB_STEP_SUMMARY", &summary)
        .output()
        .expect("run bench_gate");
    let summary_text = std::fs::read_to_string(&summary).unwrap_or_default();
    (output, summary_text)
}

#[test]
fn forced_regression_fails_with_an_attribution_narrative() {
    let fx = Fixture::new("regress");
    // ×2.0 step slowdown on the exposed config: past the ×1.5 gate. The
    // fresh profile's all-reduce is much longer: the diff must pin the
    // regression on exposed_comm.
    let (output, summary) = run_gate(&fx, 200.0, (10.0, 5.0), (35.0, 5.0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    assert_eq!(output.status.code(), Some(1), "gate must fail\n{stdout}\n{stderr}");
    assert!(stderr.contains("step_ms 200.000 vs baseline 100.000"), "{stderr}");
    assert!(stdout.contains("attribution diff"), "failure must carry the profile diff:\n{stdout}");
    assert!(
        stdout.contains("largest regression: exposed_comm"),
        "diff must name the regressed category:\n{stdout}"
    );
    assert!(
        summary.contains("### attribution diff")
            && summary.contains("largest regression: exposed_comm"),
        "GITHUB_STEP_SUMMARY must carry the narrative too:\n{summary}"
    );
}

#[test]
fn forced_recompute_regression_names_exposed_recompute() {
    let fx = Fixture::new("recompute");
    // Same ×2.0 step slowdown, but this time the fresh profile's inline
    // replay is what grew: the narrative must name exposed_recompute.
    let (output, summary) = run_gate(&fx, 200.0, (10.0, 5.0), (10.0, 40.0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    assert_eq!(output.status.code(), Some(1), "gate must fail\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("largest regression: exposed_recompute"),
        "diff must name the regressed recompute category:\n{stdout}"
    );
    assert!(
        summary.contains("largest regression: exposed_recompute"),
        "GITHUB_STEP_SUMMARY must carry the recompute narrative too:\n{summary}"
    );
}

#[test]
fn healthy_run_passes_without_a_diff() {
    let fx = Fixture::new("healthy");
    let (output, summary) = run_gate(&fx, 100.0, (10.0, 5.0), (10.0, 5.0));
    let stdout = String::from_utf8_lossy(&output.stdout);

    assert_eq!(output.status.code(), Some(0), "gate must pass\n{stdout}");
    assert!(stdout.contains("all checks passed"), "{stdout}");
    assert!(!stdout.contains("attribution diff"), "no diff on the happy path:\n{stdout}");
    assert!(!summary.contains("attribution diff"), "{summary}");
}
