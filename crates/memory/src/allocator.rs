//! A caching-allocator simulator, for studying the **memory fragmentation**
//! the paper's conclusion singles out as future work: "we plan to further
//! reduce the activation memory by resolving the issues arising from memory
//! fragmentation for large microbatches".
//!
//! The model is a simplified PyTorch-style caching allocator: a fixed
//! reserved arena, best-fit placement with block splitting, and coalescing
//! of adjacent free blocks. Because activations allocated by a pipeline
//! schedule have *interleaved lifetimes* (microbatch `m+p`'s forward
//! allocations land between microbatch `m`'s not-yet-freed blocks), a
//! request can fail even though enough total bytes are free — the
//! fragmentation failure mode this type makes observable and testable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// Not enough free bytes in total: a genuine out-of-memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Total free bytes at the time.
        free: u64,
    },
    /// Enough free bytes in total, but no contiguous block fits: the
    /// fragmentation failure the paper's future work targets.
    Fragmented {
        /// Bytes requested.
        requested: u64,
        /// Total free bytes at the time.
        free: u64,
        /// Largest contiguous free block.
        largest_free: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested} with only {free} free")
            }
            AllocError::Fragmented { requested, free, largest_free } => write!(
                f,
                "fragmented: requested {requested}, {free} free in total but largest block is {largest_free}"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocId(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    offset: u64,
    size: u64,
    free: bool,
}

/// Usage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocatorStats {
    /// Bytes currently allocated.
    pub allocated: u64,
    /// High-water mark of allocated bytes.
    pub peak_allocated: u64,
    /// High-water mark of the arena **footprint**: the largest end-offset any
    /// live block has ever reached. Fragmentation shows up as the gap between
    /// this and `peak_allocated` — holes between live blocks push later
    /// placements towards the end of the arena even when the sum of live
    /// bytes is small.
    pub peak_footprint: u64,
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
    /// Number of failures attributable to fragmentation.
    pub fragmentation_failures: u64,
}

impl AllocatorStats {
    /// Publishes the snapshot into a metrics registry under
    /// `{prefix}.{allocated,peak_allocated,peak_footprint,allocs,frees,fragmentation_failures}`.
    /// Peaks go in as high-water marks, so repeated publishes (or publishes
    /// from several allocators under one prefix) keep the maximum.
    pub fn publish(&self, registry: &mt_trace::MetricsRegistry, prefix: &str) {
        registry.gauge_set(&format!("{prefix}.allocated"), self.allocated as f64);
        registry.high_water(&format!("{prefix}.peak_allocated"), self.peak_allocated);
        registry.high_water(&format!("{prefix}.peak_footprint"), self.peak_footprint);
        registry.counter_add(&format!("{prefix}.allocs"), self.allocs);
        registry.counter_add(&format!("{prefix}.frees"), self.frees);
        registry
            .counter_add(&format!("{prefix}.fragmentation_failures"), self.fragmentation_failures);
    }
}

/// A fixed-capacity best-fit allocator with splitting and coalescing.
#[derive(Debug, Clone)]
pub struct CachingAllocator {
    capacity: u64,
    blocks: Vec<Block>, // sorted by offset, covering [0, capacity)
    stats: AllocatorStats,
    tracer: mt_trace::Tracer,
}

impl CachingAllocator {
    /// Creates an allocator over `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CachingAllocator {
            capacity,
            blocks: vec![Block { offset: 0, size: capacity, free: true }],
            stats: AllocatorStats::default(),
            tracer: mt_trace::Tracer::disabled(),
        }
    }

    /// Attaches a tracer: every successful `malloc`/`free` then emits
    /// `alloc.allocated_bytes` and `alloc.footprint_bytes` counter samples,
    /// which render as the allocator watermark curves in a Chrome trace.
    pub fn set_tracer(&mut self, tracer: mt_trace::Tracer) {
        self.tracer = tracer;
    }

    /// Arena capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current arena footprint: the end offset of the highest live block
    /// (0 when nothing is allocated).
    pub fn footprint(&self) -> u64 {
        self.blocks.iter().filter(|b| !b.free).map(|b| b.offset + b.size).max().unwrap_or(0)
    }

    fn emit_watermarks(&self) {
        if self.tracer.is_enabled() {
            self.tracer.counter("alloc.allocated_bytes", self.stats.allocated as f64);
            self.tracer.counter("alloc.footprint_bytes", self.footprint() as f64);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.blocks.iter().filter(|b| b.free).map(|b| b.size).sum()
    }

    /// Largest contiguous free block.
    pub fn largest_free_block(&self) -> u64 {
        self.blocks.iter().filter(|b| b.free).map(|b| b.size).max().unwrap_or(0)
    }

    /// Fraction of free memory unusable for a request of the largest-block
    /// size: `1 − largest_free/free` (0 when unfragmented or full).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_block() as f64 / free as f64
    }

    /// Allocates `size` bytes (best fit).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if total free bytes are insufficient;
    /// [`AllocError::Fragmented`] if they would suffice but no contiguous
    /// block does.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn malloc(&mut self, size: u64) -> Result<AllocId, AllocError> {
        assert!(size > 0, "zero-size allocation");
        let mut best: Option<usize> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.free && b.size >= size {
                let better = match best {
                    None => true,
                    Some(j) => b.size < self.blocks[j].size,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let Some(i) = best else {
            let free = self.free_bytes();
            return Err(if free >= size {
                self.stats.fragmentation_failures += 1;
                AllocError::Fragmented {
                    requested: size,
                    free,
                    largest_free: self.largest_free_block(),
                }
            } else {
                AllocError::OutOfMemory { requested: size, free }
            });
        };
        let offset = self.blocks[i].offset;
        if self.blocks[i].size > size {
            // Split: the tail stays free.
            let tail =
                Block { offset: offset + size, size: self.blocks[i].size - size, free: true };
            self.blocks[i].size = size;
            self.blocks.insert(i + 1, tail);
        }
        self.blocks[i].free = false;
        self.stats.allocated += size;
        self.stats.peak_allocated = self.stats.peak_allocated.max(self.stats.allocated);
        // The live footprint only grows when a placement ends past it, so the
        // high-water mark needs just the new block's end.
        self.stats.peak_footprint = self.stats.peak_footprint.max(offset + size);
        self.stats.allocs += 1;
        self.emit_watermarks();
        Ok(AllocId(offset))
    }

    /// Frees an allocation, coalescing with free neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live allocation (double free or bogus id).
    pub fn free(&mut self, id: AllocId) {
        let i = self
            .blocks
            .iter()
            .position(|b| b.offset == id.0 && !b.free)
            .expect("free of unknown or already-freed allocation");
        self.blocks[i].free = true;
        self.stats.allocated -= self.blocks[i].size;
        self.stats.frees += 1;
        // Coalesce with the next block, then with the previous.
        if i + 1 < self.blocks.len() && self.blocks[i + 1].free {
            self.blocks[i].size += self.blocks[i + 1].size;
            self.blocks.remove(i + 1);
        }
        if i > 0 && self.blocks[i - 1].free {
            self.blocks[i - 1].size += self.blocks[i].size;
            self.blocks.remove(i);
        }
        self.emit_watermarks();
    }

    /// Internal consistency check: blocks tile `[0, capacity)` exactly.
    /// Exposed for tests.
    pub fn check_invariants(&self) {
        let mut cursor = 0;
        for b in &self.blocks {
            assert_eq!(b.offset, cursor, "blocks must tile without gaps/overlap");
            assert!(b.size > 0, "no empty blocks");
            cursor += b.size;
        }
        assert_eq!(cursor, self.capacity, "blocks must cover the arena");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_free_roundtrip_restores_capacity() {
        let mut a = CachingAllocator::new(100);
        let x = a.malloc(30).unwrap();
        let y = a.malloc(50).unwrap();
        a.check_invariants();
        assert_eq!(a.free_bytes(), 20);
        a.free(x);
        a.free(y);
        a.check_invariants();
        assert_eq!(a.free_bytes(), 100);
        assert_eq!(a.largest_free_block(), 100, "coalescing must restore one block");
    }

    #[test]
    fn coalescing_merges_across_a_middle_free() {
        let mut a = CachingAllocator::new(90);
        let x = a.malloc(30).unwrap();
        let y = a.malloc(30).unwrap();
        let z = a.malloc(30).unwrap();
        a.free(x);
        a.free(z);
        assert_eq!(a.largest_free_block(), 30, "two separated 30-byte holes");
        a.free(y);
        assert_eq!(a.largest_free_block(), 90, "freeing the middle merges all three");
        a.check_invariants();
    }

    #[test]
    fn fragmentation_failure_is_distinguished_from_oom() {
        let mut a = CachingAllocator::new(100);
        let x = a.malloc(40).unwrap();
        let _y = a.malloc(20).unwrap();
        let _z = a.malloc(40).unwrap();
        a.free(x); // free: 40 at the front
                   // 40 free bytes... and a 60-byte request: genuine OOM.
        assert!(matches!(a.malloc(60), Err(AllocError::OutOfMemory { .. })));
        // Free the tail too: 80 free in two 40-byte pieces.
        a.free(_z);
        match a.malloc(60) {
            Err(AllocError::Fragmented { requested, free, largest_free }) => {
                assert_eq!((requested, free, largest_free), (60, 80, 40));
            }
            other => panic!("expected fragmentation failure, got {other:?}"),
        }
        assert_eq!(a.stats().fragmentation_failures, 1);
        assert!(a.fragmentation() > 0.4);
    }

    #[test]
    fn best_fit_prefers_the_tightest_hole() {
        let mut a = CachingAllocator::new(100);
        let x = a.malloc(10).unwrap();
        let _y = a.malloc(30).unwrap();
        let z = a.malloc(20).unwrap();
        let _w = a.malloc(40).unwrap();
        a.free(x); // 10-byte hole at 0
        a.free(z); // 20-byte hole at 40
                   // A 10-byte request must take the 10-byte hole, not split the 20.
        let r = a.malloc(10).unwrap();
        assert_eq!(r, AllocId(0));
        assert_eq!(a.largest_free_block(), 20);
    }

    #[test]
    fn stats_track_peaks() {
        let mut a = CachingAllocator::new(100);
        let x = a.malloc(60).unwrap();
        a.free(x);
        let _ = a.malloc(30).unwrap();
        let s = a.stats();
        assert_eq!(s.allocated, 30);
        assert_eq!(s.peak_allocated, 60);
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn peak_footprint_tracks_highest_live_end_offset() {
        // Hand-walked sequence. Best fit places into the lowest-offset
        // tightest hole, so offsets are deterministic.
        let mut a = CachingAllocator::new(100);
        let x = a.malloc(30).unwrap(); // [0,30)            footprint 30
        let y = a.malloc(20).unwrap(); // [30,50)           footprint 50
        assert_eq!(a.footprint(), 50);
        assert_eq!(a.stats().peak_footprint, 50);
        a.free(x); // live: [30,50)                          footprint 50
        assert_eq!(a.footprint(), 50);
        // 40 doesn't fit the 30-byte front hole: placed at [50,90).
        let z = a.malloc(40).unwrap();
        assert_eq!(a.footprint(), 90);
        assert_eq!(a.stats().peak_footprint, 90);
        // Even though only 60 bytes are live, fragmentation pushed the
        // footprint high-water past the allocated high-water.
        assert_eq!(a.stats().allocated, 60);
        assert!(a.stats().peak_footprint > a.stats().peak_allocated);
        a.free(y);
        a.free(z);
        assert_eq!(a.footprint(), 0, "no live blocks");
        assert_eq!(a.stats().peak_footprint, 90, "peak is a high-water mark");
        // Re-filling from the front does not raise the peak.
        let _ = a.malloc(10).unwrap();
        assert_eq!(a.stats().peak_footprint, 90);
    }

    #[test]
    fn publish_surfaces_stats_through_the_registry() {
        let mut a = CachingAllocator::new(100);
        let x = a.malloc(60).unwrap();
        a.free(x);
        let _ = a.malloc(30).unwrap();
        let reg = mt_trace::MetricsRegistry::new();
        a.stats().publish(&reg, "rank0.alloc");
        assert_eq!(reg.get("rank0.alloc.allocated").unwrap().as_f64(), 30.0);
        assert_eq!(reg.get("rank0.alloc.peak_allocated").unwrap().as_u64(), 60);
        assert_eq!(reg.get("rank0.alloc.peak_footprint").unwrap().as_u64(), 60);
        assert_eq!(reg.get("rank0.alloc.allocs").unwrap().as_u64(), 2);
        assert_eq!(reg.get("rank0.alloc.frees").unwrap().as_u64(), 1);
        // High-water marks survive a second publish from a smaller snapshot.
        let b = CachingAllocator::new(100);
        b.stats().publish(&reg, "rank0.alloc");
        assert_eq!(reg.get("rank0.alloc.peak_footprint").unwrap().as_u64(), 60);
    }

    #[test]
    fn traced_allocator_emits_watermark_counters() {
        let tracer = mt_trace::Tracer::enabled();
        let mut a = CachingAllocator::new(100);
        a.set_tracer(tracer.clone());
        let x = a.malloc(40).unwrap();
        a.free(x);
        let samples: Vec<f64> = tracer
            .events()
            .iter()
            .filter(|e| e.name == "alloc.allocated_bytes")
            .map(|e| match e.kind {
                mt_trace::EventKind::Counter { value } => value,
                _ => panic!("watermark must be a counter event"),
            })
            .collect();
        assert_eq!(samples, [40.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "already-freed")]
    fn double_free_panics() {
        let mut a = CachingAllocator::new(10);
        let x = a.malloc(5).unwrap();
        a.free(x);
        a.free(x);
    }

    #[test]
    fn pipeline_like_interleaved_lifetimes_fragment() {
        // Emulates the 1F1B first stage: p microbatches in flight, each
        // allocating a large activation block plus a small output tensor.
        // Without the Appendix B output deallocation the small blocks pin
        // positions between the large ones; after the large frees, a
        // new jumbo request fails fragmented.
        let act = 20u64;
        let out = 2u64;
        let p = 4usize;
        let mut a = CachingAllocator::new((act + out) * p as u64 + 10);
        let mut acts = Vec::new();
        let mut outs = Vec::new();
        for _ in 0..p {
            acts.push(a.malloc(act).unwrap());
            outs.push(a.malloc(out).unwrap());
        }
        // Backward frees the activation blocks but keeps the outputs.
        for id in acts {
            a.free(id);
        }
        let free = a.free_bytes();
        assert!(free >= 3 * act);
        // A request for 2 activations worth cannot be placed contiguously.
        match a.malloc(2 * act + 5) {
            Err(AllocError::Fragmented { .. }) => {}
            other => panic!("expected fragmentation, got {other:?}"),
        }
        // With the deallocation optimization (outputs freed too), it fits.
        for id in outs {
            a.free(id);
        }
        assert!(a.malloc(2 * act + 5).is_ok());
    }
}
