//! Per-layer (mixed) checkpointing — the coarse-grained alternative
//! Section 5 argues against: "A simple approach … is to only checkpoint
//! some of the transformer layers and store all the activations of other
//! layers. This approach does not scale very well to large models; for
//! example, when training MT-NLG there are only three layers per device,
//! limiting the granularity."
//!
//! This module quantifies that granularity problem so the ablation report
//! can compare it against selective recomputation.

use crate::activations::ActivationMemoryModel;
use crate::config::{Parallelism, Recompute, Strategy};
use serde::{Deserialize, Serialize};

/// One feasible mixed-checkpointing setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedOption {
    /// Layers checkpointed per device (0 ..= L/p).
    pub checkpointed_per_device: u64,
    /// First-pipeline-stage activation bytes.
    pub first_stage_bytes: f64,
    /// Fraction of the forward pass recomputed in the backward pass
    /// (`k / (L/p)` — the whole layer forward for each checkpointed layer).
    pub recompute_fraction: f64,
}

/// Evaluates mixed per-layer checkpointing for one model/parallel layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedLayerCheckpointing {
    act: ActivationMemoryModel,
    parallel: Parallelism,
    /// Whether sequence parallelism shards the stored activations.
    pub sequence_parallel: bool,
}

impl MixedLayerCheckpointing {
    /// Creates the evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the layer count is not divisible by the pipeline size.
    pub fn new(act: ActivationMemoryModel, parallel: Parallelism, sequence_parallel: bool) -> Self {
        assert_eq!(
            act.shape().layers % parallel.pipeline,
            0,
            "layers must divide by the pipeline size"
        );
        MixedLayerCheckpointing { act, parallel, sequence_parallel }
    }

    /// Layers per device (`L/p`) — the granularity of the technique.
    pub fn layers_per_device(&self) -> u64 {
        self.act.shape().layers / self.parallel.pipeline
    }

    fn store_all_per_layer(&self) -> f64 {
        self.act.per_layer_bytes(Strategy {
            sequence_parallel: self.sequence_parallel,
            recompute: Recompute::None,
        })
    }

    fn checkpoint_per_layer(&self) -> f64 {
        self.act.per_layer_bytes(Strategy {
            sequence_parallel: self.sequence_parallel,
            recompute: Recompute::Full,
        })
    }

    /// First-stage activation bytes with `k` of the device's `L/p` layers
    /// checkpointed. The first stage holds `L · first_stage_factor` layer
    /// instances; a `k/(L/p)` fraction of them become 2sbh checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `k > L/p`.
    pub fn first_stage_bytes(&self, k: u64) -> f64 {
        let per_device = self.layers_per_device();
        assert!(k <= per_device, "cannot checkpoint {k} of {per_device} layers");
        let instances = self.act.shape().layers as f64 * self.parallel.first_stage_factor();
        let frac = k as f64 / per_device as f64;
        instances * (frac * self.checkpoint_per_layer() + (1.0 - frac) * self.store_all_per_layer())
            + self.act.input_output_extra_bytes(self.parallel)
    }

    /// All `L/p + 1` settings, cheapest-recompute first.
    pub fn options(&self) -> Vec<MixedOption> {
        let per_device = self.layers_per_device();
        (0..=per_device)
            .map(|k| MixedOption {
                checkpointed_per_device: k,
                first_stage_bytes: self.first_stage_bytes(k),
                recompute_fraction: k as f64 / per_device as f64,
            })
            .collect()
    }

    /// The smallest `k` whose first-stage activations fit
    /// `activation_budget_bytes`, or `None` if even full checkpointing does
    /// not fit.
    pub fn min_checkpointed_to_fit(&self, activation_budget_bytes: f64) -> Option<u64> {
        self.options()
            .into_iter()
            .find(|o| o.first_stage_bytes <= activation_budget_bytes)
            .map(|o| o.checkpointed_per_device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelShape;

    /// The paper's MT-NLG example: 105 layers over 35 stages = 3 per device.
    fn mtnlg() -> MixedLayerCheckpointing {
        let shape = ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 };
        let act = ActivationMemoryModel::new(shape, 1, 8);
        let parallel = Parallelism { tensor: 8, pipeline: 35, interleave: Some(3) };
        MixedLayerCheckpointing::new(act, parallel, true)
    }

    #[test]
    fn mtnlg_has_only_four_settings() {
        let m = mtnlg();
        assert_eq!(m.layers_per_device(), 3);
        assert_eq!(m.options().len(), 4);
    }

    #[test]
    fn memory_decreases_monotonically_with_k() {
        let m = mtnlg();
        let opts = m.options();
        for w in opts.windows(2) {
            assert!(w[0].first_stage_bytes > w[1].first_stage_bytes);
        }
        // Extremes equal the uniform-policy formulas (modulo extras).
        let all = m.first_stage_bytes(0);
        let none = m.first_stage_bytes(3);
        assert!(all / none > 10.0, "checkpointing everything frees most memory");
    }

    #[test]
    fn granularity_jump_is_a_third_of_the_forward() {
        // The paper's complaint quantified: the smallest nonzero recompute
        // step for MT-NLG is replaying 1/3 of every device's forward pass —
        // versus selective recomputation's ~1.6% FLOPs.
        let m = mtnlg();
        let opts = m.options();
        assert_eq!(opts[1].checkpointed_per_device, 1);
        assert!((opts[1].recompute_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_k_to_fit_tracks_the_budget() {
        let m = mtnlg();
        let opts = m.options();
        // A budget between k=1 and k=2 picks k=2.
        let budget = (opts[1].first_stage_bytes + opts[2].first_stage_bytes) / 2.0;
        assert_eq!(m.min_checkpointed_to_fit(budget), Some(2));
        assert_eq!(m.min_checkpointed_to_fit(f64::INFINITY), Some(0));
        assert_eq!(m.min_checkpointed_to_fit(0.0), None);
    }

    #[test]
    #[should_panic(expected = "cannot checkpoint")]
    fn rejects_k_above_layers_per_device() {
        let _ = mtnlg().first_stage_bytes(4);
    }
}
