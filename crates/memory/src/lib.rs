//! # mt-memory
//!
//! The analytical memory model of *"Reducing Activation Recomputation in
//! Large Transformer Models"* (Section 4, Table 2, Appendix B).
//!
//! Everything here is closed-form arithmetic over the paper's variables
//! (Table 1): microbatch `b`, heads `a`, hidden `h`, layers `L`, sequence
//! `s`, tensor-parallel size `t`, pipeline-parallel size `p`, vocabulary `v`.
//! The headline result is the per-layer activation footprint
//!
//! ```text
//! no parallelism:            sbh · (34 + 5as/h)                  (Eq. 1)
//! tensor parallel:           sbh · (10 + 24/t + 5as/(ht))        (Eq. 2)
//! tensor + sequence:         sbh/t · (34 + 5as/h)                (Eq. 4)
//! tp + selective:            sbh · (10 + 24/t)
//! tp + sp + selective:       sbh · 34/t                          (Eq. 6)
//! full recomputation:        sbh · 2
//! ```
//!
//! and how pipeline parallelism scales it (first stage stores `L` layers
//! worth of activations under 1F1B, `L·(1+(p−1)/(pm))` when interleaved).
//!
//! The sibling `mt-model` crate *executes* a real transformer under each
//! strategy and checks that its measured activation ledger matches these
//! formulas byte-for-byte.
//!
//! ## Example
//!
//! ```
//! use mt_memory::{ActivationMemoryModel, ModelShape, Strategy};
//!
//! // The paper's GPT-3 line: a=96, s=2048, h=12288 gives 5as/h = 80, so
//! // selective recomputation alone saves 80/114 = 70% of activations.
//! let gpt3 = ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 };
//! let m = ActivationMemoryModel::new(gpt3, /*micro_batch*/ 1, /*tensor*/ 8);
//! let stored = m.per_layer_bytes(Strategy::tp_sp_selective());
//! let baseline = m.per_layer_bytes(Strategy::tp_sp());
//! assert!(stored < baseline);
//! ```

#![warn(missing_docs)]

mod activations;
pub mod allocator;
mod config;
mod mixed;
mod model_state;
mod pipeline_profile;

pub use activations::ActivationMemoryModel;
pub use allocator::{AllocError, AllocId, AllocatorStats, CachingAllocator};
pub use config::{Batch, ModelShape, Parallelism, Recompute, Strategy};
pub use mixed::{MixedLayerCheckpointing, MixedOption};
pub use model_state::{ModelStateMemory, ADAM_MIXED_PRECISION_BYTES_PER_PARAM};
pub use pipeline_profile::PipelineMemoryProfile;

/// An NVIDIA A100-80GB's usable HBM capacity in bytes, the dashed red line
/// of the paper's Figure 1.
pub const A100_80GB_BYTES: f64 = 80e9;

/// Bytes in one gibibyte; the paper quotes Appendix B savings in GiB
/// ("2.73 GB" is `sbhp · 2` bytes ÷ 2³⁰).
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
