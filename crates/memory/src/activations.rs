//! Per-layer and total activation memory (Equations 1–6 and Table 2).

use crate::config::{ModelShape, Parallelism, Recompute, Strategy};
use serde::{Deserialize, Serialize};

/// Evaluates the paper's activation-memory formulas for one
/// `(model shape, microbatch, tensor-parallel size)` triple.
///
/// All results are **bytes** under the paper's accounting: activations held
/// in 16-bit floats (2 bytes/element) except dropout masks (1 byte/element)
/// and fp32 logits (4 bytes/element).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationMemoryModel {
    shape: ModelShape,
    micro_batch: u64,
    tensor: u64,
}

impl ActivationMemoryModel {
    /// Creates a model for microbatch size `micro_batch` and tensor-parallel
    /// size `tensor`.
    ///
    /// # Panics
    ///
    /// Panics if `micro_batch` or `tensor` is zero.
    pub fn new(shape: ModelShape, micro_batch: u64, tensor: u64) -> Self {
        assert!(micro_batch > 0, "micro_batch must be positive");
        assert!(tensor > 0, "tensor-parallel size must be positive");
        ActivationMemoryModel { shape, micro_batch, tensor }
    }

    /// The model shape this instance evaluates.
    pub fn shape(&self) -> ModelShape {
        self.shape
    }

    /// `s·b·h` in elements — the unit every formula is expressed in.
    pub fn sbh(&self) -> f64 {
        (self.shape.seq * self.micro_batch * self.shape.hidden) as f64
    }

    /// Equation 1: per-layer activation bytes with **no parallelism**,
    /// `sbh·(34 + 5as/h)`.
    pub fn per_layer_bytes_serial(&self) -> f64 {
        self.sbh() * (34.0 + self.shape.attention_coefficient())
    }

    /// Per-layer activation bytes per rank for a [`Strategy`] (Table 2).
    pub fn per_layer_bytes(&self, strategy: Strategy) -> f64 {
        let t = self.tensor as f64;
        let attn = self.shape.attention_coefficient();
        let coeff = match (strategy.sequence_parallel, strategy.recompute) {
            // Eq. 2: LayerNorms + dropouts (10) replicated, GEMM-internal
            // activations (24) and attention core (5as/h) sharded.
            (false, Recompute::None) => 10.0 + 24.0 / t + attn / t,
            // Eq. 4: sequence parallelism shards the remaining 10 too.
            (true, Recompute::None) => (34.0 + attn) / t,
            // Table 2 row 4: selective recompute drops the 5as/(ht) term.
            (false, Recompute::Selective) => 10.0 + 24.0 / t,
            // Eq. 6.
            (true, Recompute::Selective) => 34.0 / t,
            // Full recompute stores only the layer input (2sbh), replicated
            // when sequence parallelism is off…
            (false, Recompute::Full) => 2.0,
            // …and sharded along `s` when it is on (the 2sbh/t variant the
            // paper mentions but does not adopt as its baseline).
            (true, Recompute::Full) => 2.0 / t,
        };
        self.sbh() * coeff
    }

    /// Equation 5 family: total activation bytes on the **first pipeline
    /// stage**, which must hold `L·first_stage_factor` layers worth of
    /// activations to keep a 1F1B/interleaved pipeline pressurized.
    pub fn first_stage_total_bytes(&self, strategy: Strategy, parallel: Parallelism) -> f64 {
        assert_eq!(
            parallel.tensor, self.tensor,
            "Parallelism.tensor must match the model's tensor-parallel size"
        );
        self.per_layer_bytes(strategy) * self.shape.layers as f64 * parallel.first_stage_factor()
            + self.input_output_extra_bytes(parallel)
    }

    /// Section 4.3 extras: embedding dropout mask, final LayerNorm, output
    /// projection input and fp32 logits. Negligible (<0.01% for 22B) but
    /// included for completeness; the last three only exist when `p = 1`
    /// (otherwise the last stage pays them, not the first).
    pub fn input_output_extra_bytes(&self, parallel: Parallelism) -> f64 {
        let sbh = self.sbh();
        let t = self.tensor as f64;
        let p = parallel.pipeline as f64;
        // Embedding dropout mask: 1 byte/element, sequence-parallel, held
        // for p in-flight microbatches.
        let embedding_dropout = sbh * p / t;
        let head = if parallel.pipeline == 1 {
            let v_over_h = self.shape.vocab as f64 / self.shape.hidden as f64;
            // 2sbh/t (final LayerNorm input) + 2sbh/t (output projection
            // input) + 4sbv/t (fp32 logits) = 4sbh/t · (1 + v/h).
            4.0 * sbh / t * (1.0 + v_over_h)
        } else {
            0.0
        };
        embedding_dropout + head
    }

    /// The paper's Figure 7 quantity: activation memory of `strategy` as a
    /// percentage of the tensor-parallel baseline (Equation 2).
    pub fn percent_of_tp_baseline(&self, strategy: Strategy) -> f64 {
        100.0 * self.per_layer_bytes(strategy) / self.per_layer_bytes(Strategy::tp())
    }

    /// Fraction of activations *saved* by selective recomputation relative
    /// to storing everything (Section 5's "70% for GPT-3, 65% for MT-NLG").
    pub fn selective_savings_fraction(&self) -> f64 {
        let attn = self.shape.attention_coefficient();
        attn / (34.0 + attn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_22b() -> ActivationMemoryModel {
        let shape = ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 };
        ActivationMemoryModel::new(shape, 4, 8)
    }

    fn gpt3_model() -> ActivationMemoryModel {
        let shape = ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 };
        ActivationMemoryModel::new(shape, 1, 8)
    }

    #[test]
    fn equation1_serial() {
        let m = model_22b();
        let attn = 5.0 * 64.0 * 2048.0 / 6144.0; // ≈ 106.7/16 … compute directly
        let expect = m.sbh() * (34.0 + attn);
        assert_eq!(m.per_layer_bytes_serial(), expect);
    }

    #[test]
    fn table2_orderings() {
        // For every realistic shape, the Table 2 rows must be ordered:
        // tp >= tp+sp >= tp+sp+selective >= full-recompute (for t ≥ 2 and
        // large h), and tp >= tp+selective >= tp+sp+selective.
        let m = gpt3_model();
        let tp = m.per_layer_bytes(Strategy::tp());
        let tpsp = m.per_layer_bytes(Strategy::tp_sp());
        let tpsel = m.per_layer_bytes(Strategy::tp_selective());
        let both = m.per_layer_bytes(Strategy::tp_sp_selective());
        let full = m.per_layer_bytes(Strategy::full_recompute());
        assert!(tp > tpsp, "sequence parallelism must save memory");
        assert!(tp > tpsel, "selective recompute must save memory");
        assert!(tpsp > both && tpsel > both);
        assert!(both > full, "full recompute is the floor");
    }

    #[test]
    fn sequence_parallel_is_exactly_serial_over_t() {
        // Equation 4 == Equation 1 / t.
        let m = gpt3_model();
        let tpsp = m.per_layer_bytes(Strategy::tp_sp());
        assert!((tpsp - m.per_layer_bytes_serial() / 8.0).abs() < 1e-6);
    }

    #[test]
    fn selective_savings_match_section5() {
        // GPT-3: 80/114 ≈ 70%; MT-NLG: 64/98 ≈ 65%.
        let gpt3 = gpt3_model();
        assert!((gpt3.selective_savings_fraction() - 0.70).abs() < 0.005);
        let mtnlg = ActivationMemoryModel::new(
            ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 },
            1,
            8,
        );
        assert!((mtnlg.selective_savings_fraction() - 0.653).abs() < 0.005);
    }

    #[test]
    fn figure7_five_x_reduction_for_large_models() {
        // Figure 7: combined techniques bring the requirement under 20% of
        // the TP baseline (≈5× reduction) for the large models.
        for (heads, hidden, layers) in
            [(96u64, 12288u64, 96u64), (128, 20480, 105), (160, 25600, 128)]
        {
            let m = ActivationMemoryModel::new(
                ModelShape { heads, hidden, layers, seq: 2048, vocab: 51200 },
                1,
                8,
            );
            let pct = m.percent_of_tp_baseline(Strategy::tp_sp_selective());
            assert!(pct < 21.0, "h={hidden}: {pct:.1}% of baseline");
            // And full recompute sits near 10%.
            let full = m.percent_of_tp_baseline(Strategy::full_recompute());
            assert!(full < 12.0, "full recompute {full:.1}%");
            assert!(pct < 2.5 * full, "present work should be ~2x of full recompute");
        }
    }

    #[test]
    fn individual_techniques_halve_memory() {
        // Figure 7: "Individually, both techniques cut the memory
        // requirement nearly in half" for the larger models.
        let m = gpt3_model();
        let sp = m.percent_of_tp_baseline(Strategy::tp_sp());
        let sel = m.percent_of_tp_baseline(Strategy::tp_selective());
        assert!((45.0..65.0).contains(&sp), "sp at {sp:.1}%");
        assert!((45.0..65.0).contains(&sel), "selective at {sel:.1}%");
    }

    #[test]
    fn first_stage_scales_with_interleaving() {
        let m = gpt3_model();
        let plain = Parallelism { tensor: 8, pipeline: 8, interleave: None };
        let inter = Parallelism { tensor: 8, pipeline: 8, interleave: Some(3) };
        let a = m.first_stage_total_bytes(Strategy::tp_sp_selective(), plain);
        let b = m.first_stage_total_bytes(Strategy::tp_sp_selective(), inter);
        assert!(b > a);
        let ratio =
            (b - m.input_output_extra_bytes(inter)) / (a - m.input_output_extra_bytes(plain));
        assert!((ratio - (1.0 + 7.0 / 24.0)).abs() < 1e-9);
    }

    #[test]
    fn extras_are_negligible_for_22b() {
        // Section 4.3: "less than 0.01%" — the paper's wording slightly
        // undersells it for p=1 (the logits term); we check < 2%.
        let m = model_22b();
        let p1 = Parallelism { tensor: 8, pipeline: 1, interleave: None };
        let extra = m.input_output_extra_bytes(p1);
        let total = m.first_stage_total_bytes(Strategy::tp(), p1);
        assert!(extra / total < 0.02, "extras fraction {}", extra / total);
    }

    #[test]
    fn head_extras_only_when_p_is_one() {
        let m = model_22b();
        let p1 = Parallelism { tensor: 8, pipeline: 1, interleave: None };
        let p4 = Parallelism { tensor: 8, pipeline: 4, interleave: None };
        // p=4 keeps the embedding-dropout term (scaled by p) but drops the
        // head terms, which dominate; with vocab >> h the p=1 extra is larger.
        assert!(m.input_output_extra_bytes(p1) > m.input_output_extra_bytes(p4));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn first_stage_rejects_inconsistent_tensor_size() {
        let m = model_22b();
        let bad = Parallelism { tensor: 4, pipeline: 1, interleave: None };
        let _ = m.first_stage_total_bytes(Strategy::tp(), bad);
    }
}
