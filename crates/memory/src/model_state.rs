//! Parameter, gradient, and optimizer-state memory (the non-activation bars
//! of the paper's Figure 1).

use crate::config::{ModelShape, Parallelism};
use serde::{Deserialize, Serialize};

/// Bytes per parameter for Megatron-style mixed-precision Adam:
/// fp16 parameter (2) + fp16 gradient (2) + fp32 master copy (4) +
/// fp32 momentum (4) + fp32 variance (4).
pub const ADAM_MIXED_PRECISION_BYTES_PER_PARAM: f64 = 16.0;

/// Computes per-GPU memory for parameters + gradients + optimizer state.
///
/// Model parallelism divides parameters across the `t·p` model-parallel
/// ranks (tensor parallelism shards within layers, pipeline parallelism
/// assigns whole layers), so the per-GPU footprint is simply
/// `parameters / (t·p) · bytes_per_param`. This is what Figure 1 stacks
/// beneath the activation bars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelStateMemory {
    shape: ModelShape,
    /// Bytes of state per parameter; defaults to
    /// [`ADAM_MIXED_PRECISION_BYTES_PER_PARAM`].
    pub bytes_per_param: f64,
}

impl ModelStateMemory {
    /// Creates a model-state calculator with the Megatron mixed-precision
    /// Adam footprint.
    pub fn new(shape: ModelShape) -> Self {
        ModelStateMemory { shape, bytes_per_param: ADAM_MIXED_PRECISION_BYTES_PER_PARAM }
    }

    /// Overrides the per-parameter byte cost (e.g. 18 with fp32 gradient
    /// accumulation, 12 for SGD).
    pub fn with_bytes_per_param(mut self, bytes: f64) -> Self {
        self.bytes_per_param = bytes;
        self
    }

    /// Total parameters of the shape.
    pub fn parameters(&self) -> u64 {
        self.shape.parameters()
    }

    /// Per-GPU parameter count under the given model parallelism.
    pub fn parameters_per_gpu(&self, parallel: Parallelism) -> f64 {
        self.shape.parameters() as f64 / parallel.gpus() as f64
    }

    /// Per-GPU bytes of parameters + gradients + optimizer state.
    pub fn bytes_per_gpu(&self, parallel: Parallelism) -> f64 {
        self.parameters_per_gpu(parallel) * self.bytes_per_param
    }

    /// Per-GPU bytes under ZeRO stage 1 across `dp` data-parallel replicas
    /// (the Related Work alternative): fp16 parameters + fp16 gradients stay
    /// replicated (4 B/param) while the fp32 master copy and Adam moments
    /// (12 B/param) are sharded across the DP group.
    ///
    /// # Panics
    ///
    /// Panics if `dp == 0`.
    pub fn bytes_per_gpu_zero1(&self, parallel: Parallelism, dp: u64) -> f64 {
        assert!(dp > 0, "dp must be positive");
        let per_gpu = self.parameters_per_gpu(parallel);
        let replicated = 4.0; // fp16 params + fp16 grads
        let sharded = (self.bytes_per_param - replicated).max(0.0);
        per_gpu * (replicated + sharded / dp as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_22b() -> ModelShape {
        ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 }
    }

    #[test]
    fn per_gpu_divides_by_model_parallel_size() {
        let m = ModelStateMemory::new(shape_22b());
        let p1 = Parallelism { tensor: 8, pipeline: 1, interleave: None };
        let p2 = Parallelism { tensor: 8, pipeline: 2, interleave: None };
        assert!((m.bytes_per_gpu(p1) / m.bytes_per_gpu(p2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn state_alone_fits_but_is_substantial_for_22b() {
        // 22B over 8 GPUs at 16 B/param ≈ 44 GB — over half an A100,
        // which is why activations are what break the memory budget.
        let m = ModelStateMemory::new(shape_22b());
        let p = Parallelism { tensor: 8, pipeline: 1, interleave: None };
        let gb = m.bytes_per_gpu(p) / 1e9;
        assert!((40.0..50.0).contains(&gb), "22B state/GPU = {gb:.1} GB");
    }

    #[test]
    fn zero1_shards_only_the_optimizer_state() {
        let m = ModelStateMemory::new(shape_22b());
        let p = Parallelism { tensor: 8, pipeline: 1, interleave: None };
        // dp = 1 equals the replicated footprint.
        assert_eq!(m.bytes_per_gpu_zero1(p, 1), m.bytes_per_gpu(p));
        // Large dp approaches the 4 B/param floor.
        let huge = m.bytes_per_gpu_zero1(p, 1024);
        let floor = m.parameters_per_gpu(p) * 4.0;
        assert!((huge - floor) / floor < 0.01);
        // dp = 8 cuts total state memory by ~2.9x (16 -> 5.5 B/param).
        let dp8 = m.bytes_per_gpu_zero1(p, 8);
        let ratio = m.bytes_per_gpu(p) / dp8;
        assert!((2.5..3.2).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn bytes_per_param_override() {
        let m = ModelStateMemory::new(shape_22b()).with_bytes_per_param(18.0);
        let p = Parallelism { tensor: 8, pipeline: 1, interleave: None };
        let base = ModelStateMemory::new(shape_22b());
        assert!(m.bytes_per_gpu(p) > base.bytes_per_gpu(p));
    }
}
