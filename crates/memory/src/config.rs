//! Shared configuration types: the paper's Table 1 variables.

use serde::{Deserialize, Serialize};

/// Architectural shape of a single-stack GPT transformer (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelShape {
    /// `a` — number of attention heads.
    pub heads: u64,
    /// `h` — hidden dimension size.
    pub hidden: u64,
    /// `L` — number of transformer layers.
    pub layers: u64,
    /// `s` — sequence length.
    pub seq: u64,
    /// `v` — vocabulary size.
    pub vocab: u64,
}

impl ModelShape {
    /// Total parameter count: `L·(12h² + 13h) + vh + sh + 2h`
    /// (QKV + projection + MLP + LayerNorm parameters per layer, plus the
    /// shared word embedding, position embedding, and final LayerNorm).
    pub fn parameters(&self) -> u64 {
        let h = self.hidden;
        self.layers * (12 * h * h + 13 * h) + self.vocab * h + self.seq * h + 2 * h
    }

    /// The paper's attention-to-MLP memory ratio `5as/h` (Section 5): the
    /// per-layer coefficient contributed by the attention core that
    /// selective recomputation removes.
    pub fn attention_coefficient(&self) -> f64 {
        5.0 * self.heads as f64 * self.seq as f64 / self.hidden as f64
    }
}

/// Model-parallel layout (no data parallelism; the paper's evaluations set
/// data-parallel size to 1 and note DP composes independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// `t` — tensor-parallel size.
    pub tensor: u64,
    /// `p` — pipeline-parallel size.
    pub pipeline: u64,
    /// `m` — interleaved-schedule virtual stages per rank; `None` means the
    /// plain (non-interleaved) 1F1B schedule.
    pub interleave: Option<u64>,
}

impl Parallelism {
    /// Total GPUs: `t · p`.
    pub fn gpus(&self) -> u64 {
        self.tensor * self.pipeline
    }

    /// The activation multiplier pipeline scheduling applies to the first
    /// stage: 1F1B stores exactly `L` layers worth (factor 1); the
    /// interleaved schedule stores `L·(1 + (p−1)/(p·m))` (Section 4.2.3).
    pub fn first_stage_factor(&self) -> f64 {
        match self.interleave {
            None => 1.0,
            Some(m) => {
                let p = self.pipeline as f64;
                1.0 + (p - 1.0) / (p * m as f64)
            }
        }
    }
}

/// Batch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Batch {
    /// `b` — microbatch size.
    pub micro: u64,
    /// Global batch size (equals the number of in-flight sequences across
    /// microbatches when data parallelism is 1).
    pub global: u64,
}

impl Batch {
    /// Number of microbatches per iteration (data parallelism 1).
    ///
    /// # Panics
    ///
    /// Panics if `global` is not a multiple of `micro`.
    pub fn num_micro(&self) -> u64 {
        assert!(
            self.micro > 0 && self.global.is_multiple_of(self.micro),
            "global batch {} not divisible by microbatch {}",
            self.global,
            self.micro
        );
        self.global / self.micro
    }
}

/// What gets recomputed in the backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Recompute {
    /// Store every activation; recompute nothing.
    #[default]
    None,
    /// Selective activation recomputation (Section 5): store everything
    /// except the attention core (QKᵀ, softmax, softmax dropout, attention
    /// over V) and recompute that region from the stored Q, K, V.
    Selective,
    /// Full activation recomputation: store only each layer's input and
    /// replay the whole layer forward during back-propagation.
    Full,
}

/// A memory/compute strategy: whether sequence parallelism augments tensor
/// parallelism, and which recomputation policy applies. The six Table 2 rows
/// are the cross product of these plus the degenerate no-parallelism case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Strategy {
    /// Partition the LayerNorm/dropout regions along the sequence dimension
    /// (Section 4.2.2).
    pub sequence_parallel: bool,
    /// Recomputation policy.
    pub recompute: Recompute,
}

impl Strategy {
    /// Tensor parallelism only — the paper's baseline.
    pub fn tp() -> Self {
        Strategy { sequence_parallel: false, recompute: Recompute::None }
    }

    /// Tensor + sequence parallelism.
    pub fn tp_sp() -> Self {
        Strategy { sequence_parallel: true, recompute: Recompute::None }
    }

    /// Tensor parallelism + selective recomputation.
    pub fn tp_selective() -> Self {
        Strategy { sequence_parallel: false, recompute: Recompute::Selective }
    }

    /// Tensor + sequence parallelism + selective recomputation — the
    /// paper's "present work".
    pub fn tp_sp_selective() -> Self {
        Strategy { sequence_parallel: true, recompute: Recompute::Selective }
    }

    /// Full activation recomputation (sequence parallelism is irrelevant to
    /// its footprint but still affects execution time).
    pub fn full_recompute() -> Self {
        Strategy { sequence_parallel: false, recompute: Recompute::Full }
    }

    /// Human-readable label matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match (self.sequence_parallel, self.recompute) {
            (false, Recompute::None) => "tensor parallel (baseline)",
            (true, Recompute::None) => "tensor + sequence parallel",
            (false, Recompute::Selective) => "tensor parallel + selective recompute",
            (true, Recompute::Selective) => "tensor + sequence parallel + selective recompute",
            (false, Recompute::Full) => "full activation recompute",
            (true, Recompute::Full) => "full activation recompute + sequence parallel",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> ModelShape {
        ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 }
    }

    #[test]
    fn parameter_counts_match_paper_names() {
        // Table 3 model sizes, to within naming slack (<4%).
        let cases = [
            (ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 }, 22e9),
            (gpt3(), 175e9),
            (ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 }, 530e9),
            (
                ModelShape { heads: 160, hidden: 25600, layers: 128, seq: 2048, vocab: 51200 },
                1000e9,
            ),
        ];
        for (shape, nominal) in cases {
            let n = shape.parameters() as f64;
            let rel = (n - nominal).abs() / nominal;
            assert!(rel < 0.04, "shape {shape:?}: {n:.3e} vs nominal {nominal:.3e}");
        }
    }

    #[test]
    fn attention_coefficient_matches_section5() {
        // GPT-3: 5as/h = 80. MT-NLG: 64.
        assert_eq!(gpt3().attention_coefficient(), 80.0);
        let mtnlg = ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 };
        assert_eq!(mtnlg.attention_coefficient(), 64.0);
    }

    #[test]
    fn first_stage_factor() {
        let plain = Parallelism { tensor: 8, pipeline: 8, interleave: None };
        assert_eq!(plain.first_stage_factor(), 1.0);
        let inter = Parallelism { tensor: 8, pipeline: 8, interleave: Some(3) };
        assert!((inter.first_stage_factor() - (1.0 + 7.0 / 24.0)).abs() < 1e-12);
        // p = 1 degenerates to 1 even when interleaved.
        let single = Parallelism { tensor: 8, pipeline: 1, interleave: Some(3) };
        assert_eq!(single.first_stage_factor(), 1.0);
    }

    #[test]
    fn batch_micro_count() {
        let b = Batch { micro: 1, global: 64 };
        assert_eq!(b.num_micro(), 64);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn batch_rejects_uneven_split() {
        let _ = Batch { micro: 3, global: 64 }.num_micro();
    }

    #[test]
    fn strategy_labels_are_distinct() {
        let all = [
            Strategy::tp(),
            Strategy::tp_sp(),
            Strategy::tp_selective(),
            Strategy::tp_sp_selective(),
            Strategy::full_recompute(),
        ];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x.label(), y.label());
            }
        }
    }
}
