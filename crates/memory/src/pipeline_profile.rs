//! Per-pipeline-rank activation memory (Appendix B, Figure 9).

use crate::activations::ActivationMemoryModel;
use crate::config::{Parallelism, Strategy};
use serde::{Deserialize, Serialize};

/// Computes the activation memory held by each pipeline rank under 1F1B or
/// interleaved scheduling, with or without the output-tensor-deallocation
/// optimization of Appendix B.
///
/// The driving quantity is how many microbatches are *in flight* on a rank:
/// schedules that minimize the pipeline bubble keep `p − rank` microbatches
/// outstanding on rank `rank` (Appendix C: `max(0, p − S)`), producing the
/// linearly decreasing memory profile of Figure 9, with an extra
/// embedding-dropout spike on rank 0 (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineMemoryProfile {
    model: ActivationMemoryModel,
    parallel: Parallelism,
    num_micro: u64,
}

impl PipelineMemoryProfile {
    /// Creates a profile for the given activation model, parallel layout,
    /// and number of microbatches per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `num_micro == 0` or layers are not divisible by the
    /// pipeline (× interleave) size.
    pub fn new(model: ActivationMemoryModel, parallel: Parallelism, num_micro: u64) -> Self {
        assert!(num_micro > 0, "need at least one microbatch");
        let chunks = parallel.pipeline * parallel.interleave.unwrap_or(1);
        assert_eq!(
            model.shape().layers % chunks,
            0,
            "layers {} not divisible by pipeline×interleave {}",
            model.shape().layers,
            chunks
        );
        PipelineMemoryProfile { model, parallel, num_micro }
    }

    /// Microbatches in flight on `rank` under 1F1B: `min(p − rank, n_micro)`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= p`.
    pub fn in_flight_microbatches(&self, rank: u64) -> u64 {
        assert!(rank < self.parallel.pipeline, "rank out of range");
        (self.parallel.pipeline - rank).min(self.num_micro)
    }

    /// Layers worth of activations held on `rank`.
    ///
    /// * Plain 1F1B: `(p − rank) · L/p` — rank 0 holds a full `L`.
    /// * Interleaved (m chunks/rank): warmup analysis gives
    ///   `w = 2(p − rank − 1) + (m−1)·p + 1` in-flight *chunks* of
    ///   `L/(p·m)` layers each; rank 0 recovers the paper's
    ///   `L·(1 + (p−1)/(p·m))` factor.
    pub fn layers_worth(&self, rank: u64) -> f64 {
        let p = self.parallel.pipeline;
        assert!(rank < p, "rank out of range");
        let l = self.model.shape().layers as f64;
        match self.parallel.interleave {
            None => {
                let per_stage = l / p as f64;
                self.in_flight_microbatches(rank) as f64 * per_stage
            }
            Some(m) => {
                let chunk_layers = l / (p * m) as f64;
                let warmup_chunks = 2 * (p - rank - 1) + (m - 1) * p + 1;
                let in_flight = warmup_chunks.min(self.num_micro * m);
                in_flight as f64 * chunk_layers
            }
        }
    }

    /// Bytes saved on `rank` by deallocating each microbatch's output tensor
    /// after its forward pass (Appendix B): `2·sbh` per in-flight
    /// microbatch, peaking at `2·sbh·p` on rank 0.
    pub fn dealloc_savings_bytes(&self, rank: u64) -> f64 {
        2.0 * self.model.sbh() * self.in_flight_microbatches(rank) as f64
    }

    /// Activation bytes held on `rank` under `strategy`.
    ///
    /// `deallocate_outputs` applies the Appendix B optimization (the paper
    /// uses it everywhere outside Figure 9's blue line).
    pub fn activation_bytes(&self, strategy: Strategy, rank: u64, deallocate_outputs: bool) -> f64 {
        let per_layer = self.model.per_layer_bytes(strategy);
        let mut total = self.layers_worth(rank) * per_layer;
        if !deallocate_outputs {
            total += self.dealloc_savings_bytes(rank);
        }
        if rank == 0 {
            // Embedding dropout mask, sequence-parallel, p microbatches.
            total += self.model.sbh() * self.parallel.pipeline as f64 / self.parallel.tensor as f64;
        }
        if rank == self.parallel.pipeline - 1 && self.parallel.pipeline > 1 {
            // Final LayerNorm + output projection + fp32 logits live on the
            // last stage (one microbatch in flight there).
            let v_over_h = self.model.shape().vocab as f64 / self.model.shape().hidden as f64;
            total += 4.0 * self.model.sbh() / self.parallel.tensor as f64 * (1.0 + v_over_h);
        }
        total
    }

    /// The full Figure 9 series: activation bytes for every rank.
    pub fn profile(&self, strategy: Strategy, deallocate_outputs: bool) -> Vec<f64> {
        (0..self.parallel.pipeline)
            .map(|r| self.activation_bytes(strategy, r, deallocate_outputs))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelShape;
    use crate::GIB;

    /// The paper's 530B / MT-NLG configuration (Table 3).
    fn profile_530b(interleave: Option<u64>) -> PipelineMemoryProfile {
        let shape = ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 };
        let model = ActivationMemoryModel::new(shape, 1, 8);
        let parallel = Parallelism { tensor: 8, pipeline: 35, interleave };
        PipelineMemoryProfile::new(model, parallel, 280)
    }

    #[test]
    fn appendix_b_dealloc_saving_is_2_73_gib() {
        // "the theoretical savings for this optimization on the first
        // pipeline stage is sbhp = 2.73 GB" (×2 bytes/element).
        let prof = profile_530b(Some(3));
        let gib = prof.dealloc_savings_bytes(0) / GIB;
        assert!((gib - 2.73).abs() < 0.01, "saving {gib:.3} GiB");
    }

    #[test]
    fn rank0_holds_full_l_layers_under_plain_1f1b() {
        let prof = profile_530b(None);
        assert_eq!(prof.layers_worth(0), 105.0);
        // Last rank holds one stage worth.
        assert_eq!(prof.layers_worth(34), 3.0);
    }

    #[test]
    fn interleaved_rank0_matches_paper_factor() {
        let prof = profile_530b(Some(3));
        let expect = 105.0 * (1.0 + 34.0 / (35.0 * 3.0));
        assert!((prof.layers_worth(0) - expect).abs() < 1e-9);
    }

    #[test]
    fn profile_decreases_monotonically_past_rank0() {
        let prof = profile_530b(None);
        let series = prof.profile(Strategy::tp_sp_selective(), true);
        for w in series[..series.len() - 1].windows(2) {
            assert!(w[0] >= w[1], "profile must decrease: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn dealloc_lowers_every_rank() {
        let prof = profile_530b(Some(3));
        let on = prof.profile(Strategy::tp_sp_selective(), true);
        let off = prof.profile(Strategy::tp_sp_selective(), false);
        for (a, b) in on.iter().zip(&off) {
            assert!(a < b);
        }
        // Gap at rank 0 equals the 2.73 GiB saving plus nothing else.
        assert!(((off[0] - on[0]) - prof.dealloc_savings_bytes(0)).abs() < 1.0);
    }

    #[test]
    fn few_microbatches_cap_in_flight_count() {
        let shape = ModelShape { heads: 8, hidden: 512, layers: 8, seq: 128, vocab: 1000 };
        let model = ActivationMemoryModel::new(shape, 2, 2);
        let parallel = Parallelism { tensor: 2, pipeline: 4, interleave: None };
        let prof = PipelineMemoryProfile::new(model, parallel, 2);
        assert_eq!(prof.in_flight_microbatches(0), 2, "capped by num_micro");
        assert_eq!(prof.in_flight_microbatches(3), 1);
    }

    #[test]
    fn embedding_spike_on_rank0() {
        // With identical layer counts, rank 0 must exceed the pure linear
        // trend because of the embedding dropout term.
        let prof = profile_530b(None);
        let series = prof.profile(Strategy::tp_sp_selective(), true);
        let per_stage = series[1] / prof.layers_worth(1);
        let linear_rank0 = per_stage * prof.layers_worth(0);
        assert!(series[0] > linear_rank0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_uneven_layer_split() {
        let shape = ModelShape { heads: 8, hidden: 512, layers: 7, seq: 128, vocab: 1000 };
        let model = ActivationMemoryModel::new(shape, 1, 2);
        let parallel = Parallelism { tensor: 2, pipeline: 2, interleave: None };
        let _ = PipelineMemoryProfile::new(model, parallel, 4);
    }
}
