//! # mt-core
//!
//! The top-level API of the reproduction of *"Reducing Activation
//! Recomputation in Large Transformer Models"*: the paper's model zoo
//! (Table 3), an end-to-end [`Estimator`] that composes the memory model,
//! FLOPs model, layer-timing model, and pipeline simulator into per-strategy
//! memory/time/utilization reports (Figures 1 & 7, Tables 4 & 5, Appendix
//! B & C), and a [`TrainingPlanner`] that picks the fastest strategy fitting
//! a device memory budget — the decision procedure the paper's Section 5
//! describes informally.
//!
//! ## Example
//!
//! ```
//! use mt_core::{Estimator, ModelZoo};
//! use mt_memory::Strategy;
//!
//! let gpt3 = ModelZoo::gpt3_175b();
//! let est = Estimator::for_paper_model(&gpt3);
//! let full = est.time_report(Strategy::full_recompute());
//! let present = est.time_report(Strategy::tp_sp_selective());
//! // Table 5's headline: ~30% throughput increase over full recomputation.
//! assert!(full.iteration_s > present.iteration_s * 1.2);
//! ```

#![warn(missing_docs)]

pub mod balance;
mod estimator;
pub mod paper_map;
mod planner;
pub mod sweeps;
mod zoo;

pub use estimator::{Estimator, MemoryReport, TimeReport};
pub use planner::{PlanOutcome, TrainingPlanner};
pub use zoo::{ModelZoo, PaperModel};
