//! Strategy selection under a device-memory budget.
//!
//! Section 5's guidance, made executable: "it is ideal to only checkpoint
//! enough activations to allow a given model-parallel configuration to train
//! given the constraints of device memory." The planner ranks the Table 2
//! strategies by predicted iteration time and picks the fastest one whose
//! peak memory fits, optionally topping up with the Appendix C
//! microbatch-level budget.

use crate::estimator::Estimator;
use mt_memory::{ModelStateMemory, PipelineMemoryProfile, Strategy};
use serde::{Deserialize, Serialize};

/// The planner's decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// The chosen strategy, or `None` if nothing fits the budget.
    pub strategy: Option<Strategy>,
    /// Predicted iteration seconds of the choice.
    pub iteration_s: Option<f64>,
    /// Predicted peak per-GPU bytes of the choice.
    pub peak_bytes: Option<f64>,
    /// Every candidate considered: `(strategy, iteration_s, peak_bytes,
    /// fits)`, fastest first.
    pub candidates: Vec<(Strategy, f64, f64, bool)>,
}

/// Picks the fastest strategy that fits a per-GPU memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingPlanner {
    /// The configuration being planned.
    pub estimator: Estimator,
    /// Per-GPU memory budget in bytes (e.g. 80e9 for an A100).
    pub budget_bytes: f64,
}

impl TrainingPlanner {
    /// Creates a planner.
    pub fn new(estimator: Estimator, budget_bytes: f64) -> Self {
        TrainingPlanner { estimator, budget_bytes }
    }

    /// The five Table 2 strategies the paper compares.
    pub fn candidate_strategies() -> [Strategy; 5] {
        [
            Strategy::tp(),
            Strategy::tp_sp(),
            Strategy::tp_selective(),
            Strategy::tp_sp_selective(),
            Strategy::full_recompute(),
        ]
    }

    /// Ranks all candidates and picks the fastest fitting one.
    pub fn plan(&self) -> PlanOutcome {
        let est = &self.estimator;
        let mut candidates: Vec<(Strategy, f64, f64, bool)> = Self::candidate_strategies()
            .into_iter()
            .map(|s| {
                let mem = est.memory_report(s);
                let time = est.time_report(s);
                (s, time.iteration_s, mem.total_bytes(), mem.total_bytes() <= self.budget_bytes)
            })
            .collect();
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        let choice = candidates.iter().find(|c| c.3).copied();
        PlanOutcome {
            strategy: choice.map(|c| c.0),
            iteration_s: choice.map(|c| c.1),
            peak_bytes: choice.map(|c| c.2),
            candidates,
        }
    }

    /// Appendix C: per-pipeline-stage count of microbatches whose
    /// activations can be stored in full within the leftover budget, on top
    /// of `strategy`'s baseline footprint.
    ///
    /// A stage storing microbatch activations in full pays
    /// `(L/p)·(no-recompute per-layer bytes − strategy per-layer bytes)`
    /// extra per stored microbatch; the leftover budget divided by that is
    /// the window size.
    pub fn appendix_c_budgets(&self, strategy: Strategy) -> Vec<u64> {
        let est = &self.estimator;
        let state = ModelStateMemory::new(est.shape).bytes_per_gpu(est.parallel);
        let act =
            mt_memory::ActivationMemoryModel::new(est.shape, est.batch.micro, est.parallel.tensor);
        let profile = PipelineMemoryProfile::new(act, est.parallel, est.batch.num_micro());
        let store_all = Strategy {
            sequence_parallel: strategy.sequence_parallel,
            recompute: mt_memory::Recompute::None,
        };
        let layers_per_stage = est.shape.layers as f64 / est.parallel.pipeline as f64;
        let extra_per_micro =
            layers_per_stage * (act.per_layer_bytes(store_all) - act.per_layer_bytes(strategy));
        (0..est.parallel.pipeline)
            .map(|rank| {
                let baseline = state + profile.activation_bytes(strategy, rank, true);
                let free = (self.budget_bytes - baseline).max(0.0);
                if extra_per_micro <= 0.0 {
                    est.batch.num_micro()
                } else {
                    ((free / extra_per_micro) as u64).min(est.batch.num_micro())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelZoo;
    use mt_memory::{Recompute, A100_80GB_BYTES};

    fn planner(model: crate::zoo::PaperModel, budget: f64) -> TrainingPlanner {
        TrainingPlanner::new(Estimator::for_paper_model(&model), budget)
    }

    #[test]
    fn paper_models_choose_present_work_at_80gb() {
        // At the A100 budget, the fastest fitting strategy for the Table 3
        // models is the paper's: TP + SP + selective recomputation.
        for model in ModelZoo::all() {
            let name = model.name;
            let outcome = planner(model, A100_80GB_BYTES).plan();
            assert_eq!(
                outcome.strategy,
                Some(Strategy::tp_sp_selective()),
                "{name}: {:?}",
                outcome.candidates
            );
        }
    }

    #[test]
    fn huge_budget_chooses_no_recompute() {
        // With infinite memory, storing everything is fastest; sequence
        // parallelism is still a (small) win, so TP+SP wins overall.
        let outcome = planner(ModelZoo::gpt3_175b(), f64::INFINITY).plan();
        assert_eq!(outcome.strategy, Some(Strategy::tp_sp()));
    }

    #[test]
    fn tiny_budget_fits_nothing() {
        let outcome = planner(ModelZoo::gpt_1t(), 1e9).plan();
        assert_eq!(outcome.strategy, None);
        assert!(outcome.candidates.iter().all(|c| !c.3));
    }

    #[test]
    fn candidates_are_sorted_fastest_first() {
        let outcome = planner(ModelZoo::gpt_22b(), A100_80GB_BYTES).plan();
        for w in outcome.candidates.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Full recomputation is always the slowest candidate.
        assert_eq!(outcome.candidates.last().map(|c| c.0.recompute), Some(Recompute::Full));
    }

    #[test]
    fn appendix_c_budgets_grow_towards_later_stages() {
        // Later pipeline stages hold fewer in-flight microbatches, leaving
        // more headroom to store microbatches in full — the paper's
        // "many of later pipeline stages do not need any activation
        // recomputation".
        let p = planner(ModelZoo::mtnlg_530b(), A100_80GB_BYTES);
        let budgets = p.appendix_c_budgets(Strategy::tp_sp_selective());
        assert_eq!(budgets.len(), 35);
        assert!(budgets.last().unwrap() >= budgets.first().unwrap());
        assert!(budgets.iter().any(|&b| b > 0), "some stage should have headroom: {budgets:?}");
    }

    #[test]
    fn appendix_c_budget_shrinks_with_budget() {
        let a = planner(ModelZoo::mtnlg_530b(), A100_80GB_BYTES)
            .appendix_c_budgets(Strategy::tp_sp_selective());
        let b =
            planner(ModelZoo::mtnlg_530b(), 60e9).appendix_c_budgets(Strategy::tp_sp_selective());
        assert!(a.iter().sum::<u64>() >= b.iter().sum::<u64>());
    }
}
