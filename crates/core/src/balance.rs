//! Non-uniform layer-to-stage assignment — the paper's closing future-work
//! item ("we plan to work on methods that can reduce the memory pressure on
//! the first stage of the pipeline"), explored quantitatively.
//!
//! Under 1F1B the first stage holds `p` in-flight microbatches, so its
//! activation memory is `p · (layers on stage 0) · per-layer bytes`: giving
//! stage 0 *fewer* layers trades a slightly unbalanced pipeline for a large
//! first-stage memory reduction. [`first_stage_relief_frontier`] sweeps that
//! trade-off.

use crate::estimator::Estimator;
use mt_memory::{ActivationMemoryModel, Strategy};
use mt_pipeline::{PipelineSim, StageCosts};
use serde::{Deserialize, Serialize};

/// One point of the first-stage relief frontier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliefPoint {
    /// Layers assigned to stage 0 (the remaining layers are spread evenly
    /// over stages `1..p`).
    pub first_stage_layers: u64,
    /// Stage-0 peak activation bytes (`p` in-flight microbatches).
    pub first_stage_activation_bytes: f64,
    /// End-to-end iteration seconds under plain 1F1B.
    pub iteration_s: f64,
}

/// Sweeps stage-0 layer counts from 1 to twice the balanced share and prices
/// each assignment: first-stage activation memory vs 1F1B iteration time.
///
/// Uses the plain (non-interleaved) schedule — the analysis is about the
/// layer-count lever, which applies to either schedule.
///
/// # Panics
///
/// Panics if the configuration has fewer than 2 pipeline stages.
pub fn first_stage_relief_frontier(est: &Estimator, strategy: Strategy) -> Vec<ReliefPoint> {
    let p = est.parallel.pipeline;
    assert!(p >= 2, "relief analysis needs a pipeline (p >= 2)");
    let l = est.shape.layers;
    let balanced = l / p;
    let act = ActivationMemoryModel::new(est.shape, est.batch.micro, est.parallel.tensor);
    let per_layer = act.per_layer_bytes(strategy);
    let layer =
        mt_perf::LayerTimeModel::new(est.gpu, est.shape, est.batch.micro, est.parallel.tensor);
    let aux = mt_perf::AuxCostModel::new(est.gpu, est.shape, est.parallel.tensor);
    let t = layer.times(strategy);
    let head_ms = aux.head_ms(est.batch.micro);
    let embed_ms = aux.embedding_ms(est.batch.micro);
    let p2p = aux.p2p_ms(est.batch.micro, strategy.sequence_parallel);
    let optimizer_ms = aux.optimizer_ms(est.params_per_gpu());

    (1..=(2 * balanced).min(l - (p - 1)))
        .map(|k| {
            let rest = (l - k) as f64 / (p - 1) as f64;
            let stages: Vec<StageCosts> = (0..p as usize)
                .map(|s| {
                    let layers = if s == 0 { k as f64 } else { rest };
                    let mut f = layers * t.forward_ms;
                    let mut b = layers * t.backward_ms;
                    let r = layers * t.recompute_ms;
                    if s == 0 {
                        f += embed_ms;
                    }
                    if s == p as usize - 1 {
                        f += head_ms / 3.0;
                        b += head_ms * 2.0 / 3.0;
                    }
                    StageCosts::new(f, b, r)
                })
                .collect();
            let sim = PipelineSim { stages, p2p_ms: p2p, num_micro: est.batch.num_micro() };
            ReliefPoint {
                first_stage_layers: k,
                first_stage_activation_bytes: p as f64 * k as f64 * per_layer,
                iteration_s: (sim.simulate_1f1b(None).makespan_ms + optimizer_ms) / 1e3,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelZoo;

    fn frontier() -> Vec<ReliefPoint> {
        // The 1T model (p = 64, 2 layers/stage) on plain 1F1B.
        let est = Estimator::for_paper_model(&ModelZoo::gpt_1t());
        first_stage_relief_frontier(&est, Strategy::tp_sp_selective())
    }

    #[test]
    fn memory_grows_with_first_stage_layers() {
        let pts = frontier();
        for w in pts.windows(2) {
            assert!(w[1].first_stage_activation_bytes > w[0].first_stage_activation_bytes);
        }
    }

    #[test]
    fn balanced_assignment_is_near_the_time_minimum() {
        let pts = frontier();
        let best = pts.iter().map(|p| p.iteration_s).fold(f64::INFINITY, f64::min);
        let balanced = pts.iter().find(|p| p.first_stage_layers == 2).expect("k = L/p present");
        assert!(
            balanced.iteration_s <= best * 1.02,
            "balanced {} vs best {best}",
            balanced.iteration_s
        );
    }

    #[test]
    fn halving_first_stage_layers_halves_its_memory_cheaply() {
        // The paper's future-work lever, quantified for the 1T model: give
        // stage 0 one layer instead of two — first-stage activations halve,
        // iteration time grows by under 3%.
        let pts = frontier();
        let balanced = pts.iter().find(|p| p.first_stage_layers == 2).unwrap();
        let relieved = pts.iter().find(|p| p.first_stage_layers == 1).unwrap();
        let mem_ratio =
            relieved.first_stage_activation_bytes / balanced.first_stage_activation_bytes;
        assert!((mem_ratio - 0.5).abs() < 1e-9);
        let time_cost = relieved.iteration_s / balanced.iteration_s - 1.0;
        assert!(time_cost < 0.03, "time cost {:.3}", time_cost);
    }

    #[test]
    #[should_panic(expected = "needs a pipeline")]
    fn rejects_single_stage_configs() {
        let est = Estimator::for_paper_model(&ModelZoo::gpt_22b());
        let _ = first_stage_relief_frontier(&est, Strategy::tp_sp_selective());
    }
}
