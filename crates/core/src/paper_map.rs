//! # Paper-to-API map
//!
//! A navigation aid: every section, equation, table, and figure of
//! *"Reducing Activation Recomputation in Large Transformer Models"*
//! (Korthikanti et al., MLSys 2023), and where this workspace implements,
//! verifies, or regenerates it.
//!
//! | Paper artifact | Implementation | Verification / regeneration |
//! |---|---|---|
//! | §3 transformer architecture (Fig. 2) | `mt_model::gpt::Gpt`, `mt_model::TransformerLayer` | gradient checks vs finite differences |
//! | §4.1 Eq. 1, per-layer memory | `mt_memory::ActivationMemoryModel::per_layer_bytes_serial` | ledger equality test (serial) |
//! | §4.2.1 Eq. 2, tensor parallelism (Fig. 4) | `mt_model::ExecMode::TensorParallel` | `crates/model/tests/parallel_equivalence.rs` |
//! | §4.2.2 Eq. 3-4, sequence parallelism (Figs. 5-6) | `mt_model::ExecMode::TensorSequenceParallel` | ledger + wire-byte identity tests |
//! | §4.2.3 Eq. 5, pipeline memory | `mt_memory::PipelineMemoryProfile` | in-flight counts from executed schedules |
//! | §4.3 input/output extras | `mt_memory::ActivationMemoryModel::input_output_extra_bytes` | GPT-level ledger test |
//! | §5 selective recomputation (Fig. 3, Eq. 6) | `mt_memory::Recompute::Selective`, `mt_model::attention` | bit-identical recompute tests |
//! | §5 "checkpoint some layers" | `mt_memory::MixedLayerCheckpointing`, `Gpt::init_with_policies` | `report --ablation` |
//! | §6.1 Table 2 / Figures 1, 7 | `mt_memory` | `report --table2 --figure1 --figure7` |
//! | §6.2 Table 4 / Figure 8 | `mt_perf::LayerTimeModel` | `report --table4 --figure8 --breakdown` |
//! | §6.3 Table 5 + DP extension | `mt_core::Estimator`, `mt_pipeline` | `report --table5` |
//! | §2 related work (ZeRO, offload) | `mt_model::zero::ZeroAdam`, `mt_perf::OffloadModel` | `report --relatedwork` |
//! | App. A Eq. 7-9 | `mt_flops::FlopsModel` | `report --flops` + exact closed-form tests |
//! | App. B Figure 9, dealloc | `mt_memory::PipelineMemoryProfile` | `report --figure9` (2.73 GiB gap exact) |
//! | App. C Figure 10 | `mt_pipeline` storage budgets, `mt_model::pipeline_exec` | `report --appendixc`, ASCII Figure 10 in `schedule_explorer` |
//! | Conclusion: fragmentation | `mt_memory::allocator`, `mt_pipeline::replay_stage_memory` | `report --fragmentation` |
//! | Conclusion: first-stage pressure | `mt_core::balance` | `report --relief` |
//!
//! The two *executing* schedule drivers — `mt_model::pipeline_exec::run_1f1b_iteration`
//! and `run_interleaved_iteration` — are where the simulated and analytical
//! claims are grounded: the same schedules the simulators price are run for
//! real on thread ranks and shown to reproduce the serial model's gradients.

/// Number of distinct paper artifacts (tables, figures, equations with their
/// own row in the map above) this workspace reproduces. Kept as a constant
/// so the doc table and the test below stay in sync when rows are added.
pub const MAPPED_ARTIFACTS: usize = 17;

#[cfg(test)]
mod tests {
    #[test]
    fn the_map_counts_its_rows() {
        // The doc table above has MAPPED_ARTIFACTS data rows; this is a
        // tripwire for future edits (update both together).
        let doc = include_str!("paper_map.rs");
        let rows = doc
            .lines()
            .filter(|l| {
                l.starts_with("//! | ") && !l.contains("---") && !l.contains("Paper artifact")
            })
            .count();
        assert_eq!(rows, super::MAPPED_ARTIFACTS);
    }
}
