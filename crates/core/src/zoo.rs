//! The paper's Table 3 model configurations.

use mt_memory::{Batch, ModelShape, Parallelism};
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperModel {
    /// Display name ("22B", "175B (GPT-3)", …).
    pub name: &'static str,
    /// Architectural shape.
    pub shape: ModelShape,
    /// Model-parallel layout.
    pub parallel: Parallelism,
    /// Batch configuration.
    pub batch: Batch,
}

impl PaperModel {
    /// Total GPUs (`t·p`, data parallelism 1 as in the paper's evaluation).
    pub fn gpus(&self) -> u64 {
        self.parallel.gpus()
    }
}

/// Factory for the four Table 3 configurations.
///
/// All use `s = 2048`, `v = 51200`, tensor-parallel size 8, and no data
/// parallelism; the 175B and 530B runs use the interleaved schedule with
/// `m = 3`.
#[derive(Debug, Clone, Copy)]
pub struct ModelZoo;

impl ModelZoo {
    /// 22B: 64 heads, h=6144, 48 layers, p=1, 8 GPUs, batch 4 (micro 4).
    pub fn gpt_22b() -> PaperModel {
        PaperModel {
            name: "22B",
            shape: ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 },
            parallel: Parallelism { tensor: 8, pipeline: 1, interleave: None },
            batch: Batch { micro: 4, global: 4 },
        }
    }

    /// 175B (GPT-3): 96 heads, h=12288, 96 layers, p=8, m=3, 64 GPUs,
    /// batch 64 (micro 1).
    pub fn gpt3_175b() -> PaperModel {
        PaperModel {
            name: "175B (GPT-3)",
            shape: ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 },
            parallel: Parallelism { tensor: 8, pipeline: 8, interleave: Some(3) },
            batch: Batch { micro: 1, global: 64 },
        }
    }

    /// 530B (MT-NLG): 128 heads, h=20480, 105 layers, p=35, m=3, 280 GPUs,
    /// batch 280 (micro 1).
    pub fn mtnlg_530b() -> PaperModel {
        PaperModel {
            name: "530B (MT-NLG)",
            shape: ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 },
            parallel: Parallelism { tensor: 8, pipeline: 35, interleave: Some(3) },
            batch: Batch { micro: 1, global: 280 },
        }
    }

    /// 1T: 160 heads, h=25600, 128 layers, p=64, 512 GPUs, batch 512
    /// (micro 1), plain 1F1B.
    pub fn gpt_1t() -> PaperModel {
        PaperModel {
            name: "1T",
            shape: ModelShape { heads: 160, hidden: 25600, layers: 128, seq: 2048, vocab: 51200 },
            parallel: Parallelism { tensor: 8, pipeline: 64, interleave: None },
            batch: Batch { micro: 1, global: 512 },
        }
    }

    /// All four Table 3 rows, smallest first.
    pub fn all() -> Vec<PaperModel> {
        vec![Self::gpt_22b(), Self::gpt3_175b(), Self::mtnlg_530b(), Self::gpt_1t()]
    }

    /// Looks a model up by its display name.
    pub fn by_name(name: &str) -> Option<PaperModel> {
        Self::all().into_iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_gpu_counts() {
        assert_eq!(ModelZoo::gpt_22b().gpus(), 8);
        assert_eq!(ModelZoo::gpt3_175b().gpus(), 64);
        assert_eq!(ModelZoo::mtnlg_530b().gpus(), 280);
        assert_eq!(ModelZoo::gpt_1t().gpus(), 512);
    }

    #[test]
    fn table3_microbatch_counts() {
        // Global batch equals GPUs/t × something — with DP=1 the microbatch
        // count is global/micro.
        assert_eq!(ModelZoo::gpt_22b().batch.num_micro(), 1);
        assert_eq!(ModelZoo::gpt3_175b().batch.num_micro(), 64);
        assert_eq!(ModelZoo::mtnlg_530b().batch.num_micro(), 280);
        assert_eq!(ModelZoo::gpt_1t().batch.num_micro(), 512);
    }

    #[test]
    fn layer_counts_divide_by_pipeline_and_interleave() {
        for m in ModelZoo::all() {
            let chunks = m.parallel.pipeline * m.parallel.interleave.unwrap_or(1);
            assert_eq!(m.shape.layers % chunks, 0, "{}", m.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(ModelZoo::by_name("1T"), Some(ModelZoo::gpt_1t()));
        assert!(ModelZoo::by_name("nope").is_none());
    }

    #[test]
    fn parameter_counts_are_near_names() {
        let m = ModelZoo::mtnlg_530b();
        let params = m.shape.parameters() as f64;
        assert!((params - 530e9).abs() / 530e9 < 0.03);
    }
}
