//! End-to-end memory / time / utilization estimation for one model
//! configuration — the engine behind Figures 1 & 7 and Tables 4 & 5.

use crate::zoo::PaperModel;
use mt_flops::FlopsModel;
use mt_memory::{
    ActivationMemoryModel, Batch, ModelShape, ModelStateMemory, Parallelism, PipelineMemoryProfile,
    Strategy, A100_80GB_BYTES,
};
use mt_perf::{AuxCostModel, GpuSpec, LayerTimeModel};
use mt_pipeline::{PipelineSim, StageCosts};
use serde::{Deserialize, Serialize};

/// Per-GPU memory breakdown for one strategy (a Figure 1 bar).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Parameters + gradients + optimizer state, bytes.
    pub model_state_bytes: f64,
    /// Peak activation bytes (first pipeline stage).
    pub activation_bytes: f64,
    /// Activation memory as a percentage of the tensor-parallel baseline
    /// (the Figure 7 quantity).
    pub percent_of_tp_baseline: f64,
    /// Whether the total fits in an A100's 80 GB.
    pub fits_a100_80gb: bool,
}

impl MemoryReport {
    /// Total per-GPU bytes.
    pub fn total_bytes(&self) -> f64 {
        self.model_state_bytes + self.activation_bytes
    }
}

/// Per-iteration timing and utilization for one strategy (a Table 5 entry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeReport {
    /// End-to-end iteration seconds.
    pub iteration_s: f64,
    /// Model FLOPs utilization.
    pub mfu: f64,
    /// Hardware FLOPs utilization.
    pub hfu: f64,
}

/// Composes the analytical models into per-strategy reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimator {
    /// Model shape.
    pub shape: ModelShape,
    /// Parallel layout.
    pub parallel: Parallelism,
    /// Batch configuration.
    pub batch: Batch,
    /// Hardware model.
    pub gpu: GpuSpec,
}

impl Estimator {
    /// Creates an estimator.
    pub fn new(shape: ModelShape, parallel: Parallelism, batch: Batch, gpu: GpuSpec) -> Self {
        Estimator { shape, parallel, batch, gpu }
    }

    /// Convenience constructor for a Table 3 preset on A100 hardware.
    pub fn for_paper_model(model: &PaperModel) -> Self {
        Estimator::new(model.shape, model.parallel, model.batch, GpuSpec::a100())
    }

    fn activation_model(&self) -> ActivationMemoryModel {
        ActivationMemoryModel::new(self.shape, self.batch.micro, self.parallel.tensor)
    }

    fn layer_model(&self) -> LayerTimeModel {
        LayerTimeModel::new(self.gpu, self.shape, self.batch.micro, self.parallel.tensor)
    }

    fn aux_model(&self) -> AuxCostModel {
        AuxCostModel::new(self.gpu, self.shape, self.parallel.tensor)
    }

    /// Parameters per GPU under this layout.
    pub fn params_per_gpu(&self) -> f64 {
        ModelStateMemory::new(self.shape).parameters_per_gpu(self.parallel)
    }

    /// The Figure 1 bar for a strategy.
    pub fn memory_report(&self, strategy: Strategy) -> MemoryReport {
        let act = self.activation_model();
        let state = ModelStateMemory::new(self.shape).bytes_per_gpu(self.parallel);
        let activation = act.first_stage_total_bytes(strategy, self.parallel);
        MemoryReport {
            model_state_bytes: state,
            activation_bytes: activation,
            percent_of_tp_baseline: act.percent_of_tp_baseline(strategy),
            fits_a100_80gb: state + activation <= A100_80GB_BYTES,
        }
    }

    /// The Appendix B / Figure 9 per-rank activation profile.
    pub fn pipeline_memory_profile(
        &self,
        strategy: Strategy,
        deallocate_outputs: bool,
    ) -> Vec<f64> {
        PipelineMemoryProfile::new(self.activation_model(), self.parallel, self.batch.num_micro())
            .profile(strategy, deallocate_outputs)
    }

    /// Builds the per-stage pipeline costs for a strategy: `L/p` layers per
    /// stage, embedding on stage 0, the logits head on the last stage.
    fn stage_costs(&self, strategy: Strategy) -> Vec<StageCosts> {
        let layer = self.layer_model();
        let aux = self.aux_model();
        let t = layer.times(strategy);
        let p = self.parallel.pipeline as usize;
        let layers_per_stage = self.shape.layers as f64 / p as f64;
        let head_fwd = aux.head_ms(self.batch.micro) / 3.0;
        let head_bwd = aux.head_ms(self.batch.micro) * 2.0 / 3.0;
        (0..p)
            .map(|s| {
                let mut f = layers_per_stage * t.forward_ms;
                let mut b = layers_per_stage * t.backward_ms;
                let r = layers_per_stage * t.recompute_ms;
                if s == 0 {
                    f += aux.embedding_ms(self.batch.micro);
                }
                if s == p - 1 {
                    f += head_fwd;
                    b += head_bwd;
                }
                StageCosts::new(f, b, r)
            })
            .collect()
    }

    /// The pipeline simulation for a strategy: per-stage costs, transfer
    /// lag, and microbatch count, ready for 1F1B simulation or interleaved
    /// pricing.
    pub fn pipeline_sim(&self, strategy: Strategy) -> PipelineSim {
        let aux = self.aux_model();
        PipelineSim {
            stages: self.stage_costs(strategy),
            p2p_ms: if self.parallel.pipeline > 1 {
                aux.p2p_ms(self.batch.micro, strategy.sequence_parallel)
            } else {
                0.0
            },
            num_micro: self.batch.num_micro(),
        }
    }

    /// End-to-end iteration milliseconds for a strategy: pipeline schedule
    /// (simulated 1F1B or analytic interleaved) plus the optimizer step.
    pub fn iteration_ms(&self, strategy: Strategy) -> f64 {
        let sim = self.pipeline_sim(strategy);
        let schedule_ms = match self.parallel.interleave {
            Some(m) => sim.interleaved_ms(m),
            None => sim.simulate_1f1b(None).makespan_ms,
        };
        schedule_ms + self.aux_model().optimizer_ms(self.params_per_gpu())
    }

    /// Iteration milliseconds with an Appendix C per-stage storage budget:
    /// stages store up to `store_budget[stage]` in-flight microbatches in
    /// full and skip their recomputation. For interleaved schedules the
    /// 1F1B speedup ratio is applied to the interleaved iteration time.
    ///
    /// # Panics
    ///
    /// Panics if `store_budget.len() != p`.
    pub fn iteration_ms_with_storage(&self, strategy: Strategy, store_budget: &[u64]) -> f64 {
        let sim = self.pipeline_sim(strategy);
        let base = sim.simulate_1f1b(None).makespan_ms;
        let with = sim.simulate_1f1b(Some(store_budget)).makespan_ms;
        let schedule_ms = match self.parallel.interleave {
            Some(m) => sim.interleaved_ms(m) * (with / base),
            None => with,
        };
        schedule_ms + self.aux_model().optimizer_ms(self.params_per_gpu())
    }

    /// The Table 5 entry for a strategy.
    pub fn time_report(&self, strategy: Strategy) -> TimeReport {
        let iteration_s = self.iteration_ms(strategy) / 1e3;
        let flops = FlopsModel::new(self.shape, self.batch.global);
        let gpus = self.parallel.gpus();
        TimeReport {
            iteration_s,
            mfu: flops.mfu(iteration_s, gpus, self.gpu.peak_flops),
            hfu: flops.hfu(strategy.recompute, iteration_s, gpus, self.gpu.peak_flops),
        }
    }

    /// Section 6.3's data-parallel extension: extra seconds per iteration
    /// from an unoverlapped gradient all-reduce across `dp` replicas.
    pub fn data_parallel_overhead_s(&self, dp: u64) -> f64 {
        self.aux_model().data_parallel_allreduce_ms(self.params_per_gpu(), dp) / 1e3
    }

    /// The full Section 6.3 scaling: `dp` replicas with batch per replica
    /// held constant (global batch and GPU count both scale by `dp`), plus
    /// the unoverlapped gradient all-reduce. For the 530B model at `dp = 8`
    /// this is the paper's 2240-GPU run (37.83 s → 39.15 s, MFU 56.0% →
    /// 54.2%).
    pub fn data_parallel_report(&self, strategy: Strategy, dp: u64) -> TimeReport {
        let iteration_s = self.iteration_ms(strategy) / 1e3 + self.data_parallel_overhead_s(dp);
        // Model FLOPs scale by dp and so does the GPU count, so the MFU
        // denominator/numerator scaling cancels to the same formula on the
        // per-replica quantities with the new iteration time.
        let flops = FlopsModel::new(self.shape, self.batch.global);
        let gpus = self.parallel.gpus();
        TimeReport {
            iteration_s,
            mfu: flops.mfu(iteration_s, gpus, self.gpu.peak_flops),
            hfu: flops.hfu(strategy.recompute, iteration_s, gpus, self.gpu.peak_flops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelZoo;

    fn pct_close(ours: f64, paper: f64, tol_pct: f64, what: &str) {
        let rel = 100.0 * (ours - paper).abs() / paper;
        assert!(rel < tol_pct, "{what}: ours {ours:.3} vs paper {paper:.3} ({rel:.1}% off)");
    }

    #[test]
    fn table5_iteration_times() {
        // (model, paper full-recompute s, paper present-work s)
        let rows = [
            (ModelZoo::gpt_22b(), 1.42, 1.10),
            (ModelZoo::gpt3_175b(), 18.13, 13.75),
            (ModelZoo::mtnlg_530b(), 49.05, 37.83),
            (ModelZoo::gpt_1t(), 94.42, 71.49),
        ];
        for (model, paper_full, paper_present) in rows {
            let est = Estimator::for_paper_model(&model);
            let full = est.time_report(Strategy::full_recompute()).iteration_s;
            let present = est.time_report(Strategy::tp_sp_selective()).iteration_s;
            pct_close(full, paper_full, 13.0, &format!("{} full recompute", model.name));
            pct_close(present, paper_present, 13.0, &format!("{} present work", model.name));
            let gain = 100.0 * (full / present - 1.0);
            assert!(
                (22.0..45.0).contains(&gain),
                "{}: throughput increase {gain:.1}% (paper 29-32%)",
                model.name
            );
        }
    }

    #[test]
    fn table5_mfu_hfu() {
        let rows = [
            (ModelZoo::gpt_22b(), 0.415, 0.437),
            (ModelZoo::gpt3_175b(), 0.514, 0.528),
            (ModelZoo::mtnlg_530b(), 0.560, 0.570),
            (ModelZoo::gpt_1t(), 0.563, 0.570),
        ];
        for (model, paper_mfu, paper_hfu) in rows {
            let est = Estimator::for_paper_model(&model);
            let report = est.time_report(Strategy::tp_sp_selective());
            pct_close(report.mfu, paper_mfu, 13.0, &format!("{} MFU", model.name));
            pct_close(report.hfu, paper_hfu, 13.0, &format!("{} HFU", model.name));
            assert!(report.hfu > report.mfu, "HFU exceeds MFU when recomputing");
        }
    }

    #[test]
    fn mfu_improves_with_scale() {
        // Table 5: 41.5% → 51.4% → 56.0% → 56.3%.
        let mfus: Vec<f64> = ModelZoo::all()
            .iter()
            .map(|m| Estimator::for_paper_model(m).time_report(Strategy::tp_sp_selective()).mfu)
            .collect();
        assert!(mfus[0] < mfus[1] && mfus[1] < mfus[2], "MFU should grow with size: {mfus:?}");
    }

    #[test]
    fn figure1_baseline_exceeds_80gb_present_work_fits() {
        // Figure 1: all four baseline configurations exceed an A100's 80 GB;
        // the present work brings them under.
        for model in ModelZoo::all() {
            let est = Estimator::for_paper_model(&model);
            let baseline = est.memory_report(Strategy::tp());
            let present = est.memory_report(Strategy::tp_sp_selective());
            assert!(
                !baseline.fits_a100_80gb,
                "{}: baseline {:.0} GB should exceed 80 GB",
                model.name,
                baseline.total_bytes() / 1e9
            );
            assert!(
                present.fits_a100_80gb,
                "{}: present work {:.0} GB should fit",
                model.name,
                present.total_bytes() / 1e9
            );
            assert!(present.activation_bytes < baseline.activation_bytes / 4.0);
        }
    }

    #[test]
    fn section_6_3_data_parallel_extension() {
        // 530B at DP=8: 37.83 s → 39.15 s, MFU 56.0% → 54.2%.
        let model = ModelZoo::mtnlg_530b();
        let est = Estimator::for_paper_model(&model);
        let base = est.time_report(Strategy::tp_sp_selective());
        let dp_extra = est.data_parallel_overhead_s(8);
        let new_iter = base.iteration_s + dp_extra;
        // Keeping batch per replica constant: model FLOPs scale by 8 and so
        // does the GPU count, so MFU just scales by iteration time.
        let new_mfu = base.mfu * base.iteration_s / new_iter;
        assert!(dp_extra > 0.1 && dp_extra < 4.0, "DP overhead {dp_extra:.2} s (paper 1.32 s)");
        assert!(new_mfu < base.mfu);
        assert!(new_mfu > base.mfu - 0.05, "MFU drop should be modest (paper −1.8 pts)");
    }

    #[test]
    fn pipeline_profile_is_exposed() {
        let model = ModelZoo::mtnlg_530b();
        let est = Estimator::for_paper_model(&model);
        let on = est.pipeline_memory_profile(Strategy::tp_sp_selective(), true);
        let off = est.pipeline_memory_profile(Strategy::tp_sp_selective(), false);
        assert_eq!(on.len(), 35);
        assert!(on.iter().zip(&off).all(|(a, b)| a < b));
    }
}
