//! Parameter sweeps around the paper's design space: how the techniques'
//! benefits move with sequence length, tensor-parallel size, and microbatch
//! size. These are the "what if" questions a practitioner asks after reading
//! Section 5 — the module makes them one function call each.

use mt_flops::FlopsModel;
use mt_memory::{ActivationMemoryModel, ModelShape, Strategy};
use mt_perf::{GpuSpec, LayerTimeModel};
use serde::{Deserialize, Serialize};

/// One point of a sequence-length sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeqPoint {
    /// Sequence length `s`.
    pub seq: u64,
    /// The attention coefficient `5as/h`.
    pub attention_coefficient: f64,
    /// Fraction of per-layer activations that selective recomputation
    /// removes.
    pub selective_savings: f64,
    /// Equation 8 FLOPs overhead fraction of selective recomputation.
    pub selective_flops_overhead: f64,
}

/// Sweeps sequence length for a fixed architecture. The paper's Section 5
/// logic in motion: the attention core's `5as/h` share (and therefore the
/// value of recomputing it) grows linearly with `s`, while the FLOPs cost of
/// recomputing grows only as `s/6h`.
pub fn sequence_length_sweep(base: ModelShape, seqs: &[u64], batch: u64) -> Vec<SeqPoint> {
    seqs.iter()
        .map(|&seq| {
            let shape = ModelShape { seq, ..base };
            let act = ActivationMemoryModel::new(shape, batch, 1);
            let flops = FlopsModel::new(shape, batch);
            SeqPoint {
                seq,
                attention_coefficient: shape.attention_coefficient(),
                selective_savings: act.selective_savings_fraction(),
                selective_flops_overhead: flops.selective_overhead_fraction(),
            }
        })
        .collect()
}

/// One point of a tensor-parallel-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpPoint {
    /// Tensor-parallel size `t`.
    pub tensor: u64,
    /// Per-layer activation bytes, TP baseline (Equation 2).
    pub tp_bytes: f64,
    /// Per-layer activation bytes, TP + SP (Equation 4).
    pub tp_sp_bytes: f64,
    /// Per-layer forward milliseconds (TP + SP).
    pub forward_ms: f64,
    /// The non-shardable residue of plain TP: the `10·sbh` bytes Equation 2
    /// leaves replicated, as a fraction of the per-layer total.
    pub replicated_fraction: f64,
}

/// Sweeps tensor-parallel size for a fixed architecture: memory shrinks with
/// `t` but plain TP's replicated `10·sbh` share *grows* relatively — the
/// motivation for sequence parallelism (Section 4.2.2).
pub fn tensor_parallel_sweep(shape: ModelShape, batch: u64, ts: &[u64]) -> Vec<TpPoint> {
    ts.iter()
        .map(|&t| {
            let act = ActivationMemoryModel::new(shape, batch, t);
            let tp = act.per_layer_bytes(Strategy::tp());
            let replicated = 10.0 * act.sbh();
            let layer = LayerTimeModel::new(GpuSpec::a100(), shape, batch, t);
            TpPoint {
                tensor: t,
                tp_bytes: tp,
                tp_sp_bytes: act.per_layer_bytes(Strategy::tp_sp()),
                forward_ms: layer.forward_ms(true),
                replicated_fraction: replicated / tp,
            }
        })
        .collect()
}

/// One point of a microbatch-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicrobatchPoint {
    /// Microbatch size `b`.
    pub micro_batch: u64,
    /// Per-layer activation bytes under the present work (TP+SP+selective).
    pub present_bytes: f64,
    /// Per-layer forward milliseconds (TP+SP).
    pub forward_ms: f64,
    /// Forward milliseconds per sequence (throughput proxy; larger
    /// microbatches amortize fixed costs).
    pub forward_ms_per_sequence: f64,
}

/// Sweeps microbatch size: activation memory grows linearly with `b`
/// (every Table 2 formula carries the `b` factor) while per-sequence compute
/// time falls as collective latency and elementwise launch costs amortize —
/// the tension that makes the paper's memory savings valuable (larger `b`
/// becomes affordable).
pub fn microbatch_sweep(shape: ModelShape, tensor: u64, bs: &[u64]) -> Vec<MicrobatchPoint> {
    bs.iter()
        .map(|&b| {
            let act = ActivationMemoryModel::new(shape, b, tensor);
            let layer = LayerTimeModel::new(GpuSpec::a100(), shape, b, tensor);
            let fwd = layer.forward_ms(true);
            MicrobatchPoint {
                micro_batch: b,
                present_bytes: act.per_layer_bytes(Strategy::tp_sp_selective()),
                forward_ms: fwd,
                forward_ms_per_sequence: fwd / b as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> ModelShape {
        ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 }
    }

    #[test]
    fn selective_savings_grow_with_sequence_length() {
        let points = sequence_length_sweep(gpt3(), &[512, 1024, 2048, 4096, 8192], 1);
        for w in points.windows(2) {
            assert!(w[1].selective_savings > w[0].selective_savings);
            assert!(w[1].selective_flops_overhead > w[0].selective_flops_overhead);
        }
        // At s = 8192 the attention core dominates: >90% of activations
        // removable for ~11% FLOPs.
        let last = points.last().unwrap();
        assert!(last.selective_savings > 0.9);
        assert!(last.selective_flops_overhead < 0.15);
    }

    #[test]
    fn savings_always_dwarf_flops_cost() {
        // The asymmetry that makes selective recomputation a clear win at
        // every practical sequence length.
        for p in sequence_length_sweep(gpt3(), &[256, 1024, 4096, 16384], 1) {
            assert!(
                p.selective_savings > 4.0 * p.selective_flops_overhead,
                "s={}: {:.2} vs {:.2}",
                p.seq,
                p.selective_savings,
                p.selective_flops_overhead
            );
        }
    }

    #[test]
    fn replicated_share_grows_with_t() {
        // Equation 2's pathology: the un-sharded 10·sbh fraction of plain TP
        // grows with t, approaching 100% — sequence parallelism exists to
        // remove exactly this.
        let points = tensor_parallel_sweep(gpt3(), 1, &[1, 2, 4, 8, 16]);
        for w in points.windows(2) {
            assert!(w[1].replicated_fraction > w[0].replicated_fraction);
            assert!(w[1].tp_bytes < w[0].tp_bytes);
            assert!(w[1].tp_sp_bytes < w[0].tp_sp_bytes);
        }
        assert!(points.last().unwrap().replicated_fraction > 0.5);
    }

    #[test]
    fn microbatch_memory_is_linear_and_per_sequence_time_amortizes() {
        let points = microbatch_sweep(gpt3(), 8, &[1, 2, 4, 8]);
        let base = points[0].present_bytes;
        for p in &points {
            let expect = base * p.micro_batch as f64;
            assert!((p.present_bytes - expect).abs() < 1e-6 * expect, "memory linear in b");
        }
        for w in points.windows(2) {
            assert!(
                w[1].forward_ms_per_sequence <= w[0].forward_ms_per_sequence + 1e-12,
                "per-sequence time must not grow with b"
            );
        }
    }

    #[test]
    fn sp_memory_scales_perfectly_with_t() {
        let points = tensor_parallel_sweep(gpt3(), 1, &[1, 2, 4, 8]);
        let base = points[0].tp_sp_bytes;
        for p in &points {
            let expect = base / p.tensor as f64;
            assert!((p.tp_sp_bytes - expect).abs() < 1e-6 * base);
        }
    }
}
