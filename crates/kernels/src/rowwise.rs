//! Row-parallel kernels: softmax, LayerNorm, GeLU (forward + backward).
//!
//! Work units are fixed-size row blocks ([`ROW_BLOCK`] rows) or element
//! chunks ([`CHUNK`] elements, GeLU only) — never a function of the thread
//! count — and each unit is computed by exactly one worker. The only
//! cross-unit reduction in this module (LayerNorm's `dγ`/`dβ`) is written to
//! per-block partial buffers and combined on the calling thread in ascending
//! block order, so every backend/thread-count combination produces
//! bit-identical results (see the crate docs for the full contract).

use crate::backend::Backend;
use crate::pool;
use mt_trace::ArgValue;

/// Rows per work unit for the row-parallel kernels.
pub const ROW_BLOCK: usize = 64;

/// Elements per work unit for the element-parallel GeLU kernels.
pub const CHUNK: usize = 16 * 1024;

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

fn span(
    tracer: &mt_trace::Tracer,
    name: &'static str,
    rows: usize,
    cols: usize,
    units: usize,
    threads: usize,
) -> mt_trace::SpanGuard {
    tracer.span_args(name, move || {
        vec![
            ("rows", ArgValue::from(rows)),
            ("cols", ArgValue::from(cols)),
            ("tiles", ArgValue::from(units)),
            ("threads", ArgValue::from(threads)),
        ]
    })
}

/// Numerically-stable row softmax over `x` (`[rows, cols]`, in place), with
/// an optional causal mask.
///
/// Causal masking follows the convention of the tensor layer above: row `r`
/// attends to columns `0 ..= r % cols` (stacked square score matrices restart
/// the mask every `cols` rows), and masked entries become exactly `0.0`.
///
/// # Panics
///
/// Panics if `x.len() != rows * cols`.
pub fn softmax_rows(backend: Backend, rows: usize, cols: usize, causal: bool, x: &mut [f32]) {
    assert_eq!(x.len(), rows * cols, "softmax_rows: length vs rows*cols");
    if rows == 0 || cols == 0 {
        return;
    }
    let units = rows.div_ceil(ROW_BLOCK);
    let threads = backend.threads();
    let tracer = mt_trace::current();
    let _span = span(&tracer, "kernel_softmax", rows, cols, units, threads);
    let chunks: Vec<&mut [f32]> = x.chunks_mut(ROW_BLOCK * cols).collect();
    pool::run_indexed(threads, chunks, |block, chunk| {
        let row0 = block * ROW_BLOCK;
        for (i, row) in chunk.chunks_mut(cols).enumerate() {
            let limit = if causal { ((row0 + i) % cols) + 1 } else { cols };
            let max = row[..limit].iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0;
            for (j, v) in row.iter_mut().enumerate() {
                if j < limit {
                    *v = (*v - max).exp();
                    sum += *v;
                } else {
                    *v = 0.0;
                }
            }
            for v in row[..limit].iter_mut() {
                *v /= sum;
            }
        }
    });
}

/// Backward of [`softmax_rows`]: `dx = y ⊙ (dy − ⟨dy, y⟩_row)` into `out`.
///
/// Masked positions need no special handling: they have `y = 0`.
///
/// # Panics
///
/// Panics if any slice length differs from `rows * cols`.
pub fn softmax_rows_backward(
    backend: Backend,
    rows: usize,
    cols: usize,
    y: &[f32],
    dy: &[f32],
    out: &mut [f32],
) {
    assert_eq!(y.len(), rows * cols, "softmax_rows_backward: y length");
    assert_eq!(dy.len(), rows * cols, "softmax_rows_backward: dy length");
    assert_eq!(out.len(), rows * cols, "softmax_rows_backward: out length");
    if rows == 0 || cols == 0 {
        return;
    }
    let units = rows.div_ceil(ROW_BLOCK);
    let threads = backend.threads();
    let tracer = mt_trace::current();
    let _span = span(&tracer, "kernel_softmax_backward", rows, cols, units, threads);
    let chunks: Vec<&mut [f32]> = out.chunks_mut(ROW_BLOCK * cols).collect();
    pool::run_indexed(threads, chunks, |block, chunk| {
        let base = block * ROW_BLOCK * cols;
        for (i, orow) in chunk.chunks_mut(cols).enumerate() {
            let yrow = &y[base + i * cols..base + (i + 1) * cols];
            let drow = &dy[base + i * cols..base + (i + 1) * cols];
            let dot: f32 = yrow.iter().zip(drow).map(|(a, b)| a * b).sum();
            for ((o, &yv), &dv) in orow.iter_mut().zip(yrow).zip(drow) {
                *o = yv * (dv - dot);
            }
        }
    });
}

/// LayerNorm forward over the trailing axis:
/// `out = γ ⊙ (x − μ)/σ + β`, also filling per-row `mean` and `rstd`
/// (`1/√(var + eps)`) for the backward pass.
///
/// # Panics
///
/// Panics if slice lengths disagree with `rows`/`cols`.
#[allow(clippy::too_many_arguments)] // flat slice API; the Tensor wrapper is the ergonomic entry
pub fn layer_norm(
    backend: Backend,
    rows: usize,
    cols: usize,
    eps: f32,
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
) {
    assert_eq!(x.len(), rows * cols, "layer_norm: x length");
    assert_eq!(gamma.len(), cols, "layer_norm: gamma length");
    assert_eq!(beta.len(), cols, "layer_norm: beta length");
    assert_eq!(out.len(), rows * cols, "layer_norm: out length");
    assert_eq!(mean.len(), rows, "layer_norm: mean length");
    assert_eq!(rstd.len(), rows, "layer_norm: rstd length");
    if rows == 0 || cols == 0 {
        return;
    }
    let units = rows.div_ceil(ROW_BLOCK);
    let threads = backend.threads();
    let tracer = mt_trace::current();
    let _span = span(&tracer, "kernel_layer_norm", rows, cols, units, threads);
    let items: Vec<(&mut [f32], &mut [f32], &mut [f32])> = out
        .chunks_mut(ROW_BLOCK * cols)
        .zip(mean.chunks_mut(ROW_BLOCK))
        .zip(rstd.chunks_mut(ROW_BLOCK))
        .map(|((o, m), r)| (o, m, r))
        .collect();
    pool::run_indexed(threads, items, |block, (ochunk, mchunk, rchunk)| {
        let base = block * ROW_BLOCK * cols;
        for (i, orow) in ochunk.chunks_mut(cols).enumerate() {
            let xrow = &x[base + i * cols..base + (i + 1) * cols];
            let mu: f32 = xrow.iter().sum::<f32>() / cols as f32;
            let var: f32 = xrow.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / cols as f32;
            let rs = 1.0 / (var + eps).sqrt();
            mchunk[i] = mu;
            rchunk[i] = rs;
            for ((o, &xv), (&g, &b)) in orow.iter_mut().zip(xrow).zip(gamma.iter().zip(beta)) {
                *o = g * (xv - mu) * rs + b;
            }
        }
    });
}

/// LayerNorm backward: fills `dx` and **overwrites** `dgamma`/`dbeta` with
/// the row-summed parameter gradients.
///
/// `dγ`/`dβ` are reduced across rows via per-block partials combined in
/// ascending block order on the calling thread — the one cross-unit
/// reduction in this crate, ordered so the result is independent of the
/// thread count.
///
/// # Panics
///
/// Panics if slice lengths disagree with `rows`/`cols`.
#[allow(clippy::too_many_arguments)] // flat slice API; the Tensor wrapper is the ergonomic entry
pub fn layer_norm_backward(
    backend: Backend,
    rows: usize,
    cols: usize,
    x: &[f32],
    gamma: &[f32],
    mean: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    assert_eq!(x.len(), rows * cols, "layer_norm_backward: x length");
    assert_eq!(gamma.len(), cols, "layer_norm_backward: gamma length");
    assert_eq!(mean.len(), rows, "layer_norm_backward: mean length");
    assert_eq!(rstd.len(), rows, "layer_norm_backward: rstd length");
    assert_eq!(dy.len(), rows * cols, "layer_norm_backward: dy length");
    assert_eq!(dx.len(), rows * cols, "layer_norm_backward: dx length");
    assert_eq!(dgamma.len(), cols, "layer_norm_backward: dgamma length");
    assert_eq!(dbeta.len(), cols, "layer_norm_backward: dbeta length");
    dgamma.fill(0.0);
    dbeta.fill(0.0);
    if rows == 0 || cols == 0 {
        return;
    }
    let units = rows.div_ceil(ROW_BLOCK);
    let threads = backend.threads();
    let tracer = mt_trace::current();
    let _span = span(&tracer, "kernel_layer_norm_backward", rows, cols, units, threads);
    let mut partial_g = vec![0.0f32; units * cols];
    let mut partial_b = vec![0.0f32; units * cols];
    let items: Vec<(&mut [f32], &mut [f32], &mut [f32])> = dx
        .chunks_mut(ROW_BLOCK * cols)
        .zip(partial_g.chunks_mut(cols))
        .zip(partial_b.chunks_mut(cols))
        .map(|((d, g), b)| (d, g, b))
        .collect();
    pool::run_indexed(threads, items, |block, (dchunk, pg, pb)| {
        let row0 = block * ROW_BLOCK;
        for (i, dxrow) in dchunk.chunks_mut(cols).enumerate() {
            let r = row0 + i;
            let xrow = &x[r * cols..(r + 1) * cols];
            let drow = &dy[r * cols..(r + 1) * cols];
            let (mu, rs) = (mean[r], rstd[r]);
            // xhat_j = (x_j - mu) * rs
            // dx = rs * (dyg - mean(dyg) - xhat * mean(dyg * xhat))
            //   where dyg_j = dy_j * gamma_j
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xhat = 0.0f32;
            for j in 0..cols {
                let xhat = (xrow[j] - mu) * rs;
                let dyg = drow[j] * gamma[j];
                sum_dyg += dyg;
                sum_dyg_xhat += dyg * xhat;
                pg[j] += drow[j] * xhat;
                pb[j] += drow[j];
            }
            let inv_n = 1.0 / cols as f32;
            for j in 0..cols {
                let xhat = (xrow[j] - mu) * rs;
                let dyg = drow[j] * gamma[j];
                dxrow[j] = rs * (dyg - inv_n * sum_dyg - xhat * inv_n * sum_dyg_xhat);
            }
        }
    });
    // Cross-block reduction in ascending block order, on this thread.
    for block in 0..units {
        let pg = &partial_g[block * cols..(block + 1) * cols];
        let pb = &partial_b[block * cols..(block + 1) * cols];
        for j in 0..cols {
            dgamma[j] += pg[j];
            dbeta[j] += pb[j];
        }
    }
}

/// GeLU forward (tanh approximation): `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
///
/// # Panics
///
/// Panics if `out.len() != x.len()`.
pub fn gelu(backend: Backend, x: &[f32], out: &mut [f32]) {
    assert_eq!(out.len(), x.len(), "gelu: out length");
    let units = x.len().div_ceil(CHUNK).max(1);
    let threads = backend.threads();
    let tracer = mt_trace::current();
    let _span = span(&tracer, "kernel_gelu", x.len(), 1, units, threads);
    let chunks: Vec<&mut [f32]> = out.chunks_mut(CHUNK).collect();
    pool::run_indexed(threads, chunks, |ci, chunk| {
        let base = ci * CHUNK;
        for (i, o) in chunk.iter_mut().enumerate() {
            let v = x[base + i];
            *o = 0.5 * v * (1.0 + (SQRT_2_OVER_PI * (v + GELU_C * v * v * v)).tanh());
        }
    });
}

/// Backward of [`gelu`]: `dx = dy ⊙ gelu'(x)` into `out`.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn gelu_backward(backend: Backend, x: &[f32], dy: &[f32], out: &mut [f32]) {
    assert_eq!(dy.len(), x.len(), "gelu_backward: dy length");
    assert_eq!(out.len(), x.len(), "gelu_backward: out length");
    let units = x.len().div_ceil(CHUNK).max(1);
    let threads = backend.threads();
    let tracer = mt_trace::current();
    let _span = span(&tracer, "kernel_gelu_backward", x.len(), 1, units, threads);
    let chunks: Vec<&mut [f32]> = out.chunks_mut(CHUNK).collect();
    pool::run_indexed(threads, chunks, |ci, chunk| {
        let base = ci * CHUNK;
        for (i, o) in chunk.iter_mut().enumerate() {
            let xv = x[base + i];
            let dv = dy[base + i];
            let inner = SQRT_2_OVER_PI * (xv + GELU_C * xv * xv * xv);
            let t = inner.tanh();
            let sech2 = 1.0 - t * t;
            let dinner = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * xv * xv);
            *o = dv * (0.5 * (1.0 + t) + 0.5 * xv * sech2 * dinner);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn softmax_rows_sum_to_one_and_mask_holds() {
        let (rows, cols) = (130, 5); // 3 blocks, ragged tail
        let mut x = filled(rows * cols, 1);
        softmax_rows(Backend::Threaded { threads: 3 }, rows, cols, true, &mut x);
        for r in 0..rows {
            let row = &x[r * cols..(r + 1) * cols];
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            for (c, &v) in row.iter().enumerate() {
                if c > r % cols {
                    assert_eq!(v, 0.0, "unmasked future position ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn threaded_matches_serial_bitwise_across_kernels() {
        let (rows, cols) = (150, 17);
        let x = filled(rows * cols, 2);
        let dy = filled(rows * cols, 3);
        let gamma = filled(cols, 4);
        let beta = filled(cols, 5);
        for threads in [2, 5, 8] {
            let mt = Backend::Threaded { threads };

            let mut s = x.clone();
            softmax_rows(Backend::Serial, rows, cols, false, &mut s);
            let mut t = x.clone();
            softmax_rows(mt, rows, cols, false, &mut t);
            assert_eq!(bits(&s), bits(&t), "softmax threads={threads}");

            let (mut sb, mut tb) = (vec![0.0; rows * cols], vec![0.0; rows * cols]);
            softmax_rows_backward(Backend::Serial, rows, cols, &s, &dy, &mut sb);
            softmax_rows_backward(mt, rows, cols, &s, &dy, &mut tb);
            assert_eq!(bits(&sb), bits(&tb), "softmax_backward threads={threads}");

            let mut out = [vec![0.0; rows * cols], vec![0.0; rows * cols]];
            let mut mean = [vec![0.0; rows], vec![0.0; rows]];
            let mut rstd = [vec![0.0; rows], vec![0.0; rows]];
            for (i, b) in [Backend::Serial, mt].into_iter().enumerate() {
                layer_norm(
                    b,
                    rows,
                    cols,
                    1e-5,
                    &x,
                    &gamma,
                    &beta,
                    &mut out[i],
                    &mut mean[i],
                    &mut rstd[i],
                );
            }
            assert_eq!(bits(&out[0]), bits(&out[1]), "layer_norm threads={threads}");

            let mut dx = [vec![0.0; rows * cols], vec![0.0; rows * cols]];
            let mut dg = [vec![0.0; cols], vec![0.0; cols]];
            let mut db = [vec![0.0; cols], vec![0.0; cols]];
            for (i, b) in [Backend::Serial, mt].into_iter().enumerate() {
                layer_norm_backward(
                    b, rows, cols, &x, &gamma, &mean[0], &rstd[0], &dy, &mut dx[i], &mut dg[i],
                    &mut db[i],
                );
            }
            assert_eq!(bits(&dx[0]), bits(&dx[1]), "ln_backward dx threads={threads}");
            assert_eq!(bits(&dg[0]), bits(&dg[1]), "ln_backward dgamma threads={threads}");
            assert_eq!(bits(&db[0]), bits(&db[1]), "ln_backward dbeta threads={threads}");

            let (mut gs, mut gt) = (vec![0.0; rows * cols], vec![0.0; rows * cols]);
            gelu(Backend::Serial, &x, &mut gs);
            gelu(mt, &x, &mut gt);
            assert_eq!(bits(&gs), bits(&gt), "gelu threads={threads}");

            let (mut gbs, mut gbt) = (vec![0.0; rows * cols], vec![0.0; rows * cols]);
            gelu_backward(Backend::Serial, &x, &dy, &mut gbs);
            gelu_backward(mt, &x, &dy, &mut gbt);
            assert_eq!(bits(&gbs), bits(&gbt), "gelu_backward threads={threads}");
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn layer_norm_normalizes_with_unit_affine() {
        let (rows, cols) = (70, 32); // two blocks
        let x = filled(rows * cols, 7);
        let gamma = vec![1.0; cols];
        let beta = vec![0.0; cols];
        let (mut out, mut mean, mut rstd) =
            (vec![0.0; rows * cols], vec![0.0; rows], vec![0.0; rows]);
        layer_norm(
            Backend::Threaded { threads: 4 },
            rows,
            cols,
            1e-5,
            &x,
            &gamma,
            &beta,
            &mut out,
            &mut mean,
            &mut rstd,
        );
        for r in 0..rows {
            let row = &out[r * cols..(r + 1) * cols];
            let mu: f32 = row.iter().sum::<f32>() / cols as f32;
            assert!(mu.abs() < 1e-4, "row {r} mean {mu}");
        }
    }

    #[test]
    fn gelu_known_values() {
        let x = [-1.0f32, 0.0, 1.0];
        let mut y = [0.0f32; 3];
        gelu(Backend::Serial, &x, &mut y);
        assert!(y[1].abs() < 1e-7);
        assert!((y[2] - 0.841_192).abs() < 1e-3);
        assert!((y[0] + 0.158_808).abs() < 1e-3);
    }
}
