//! # mt-kernels
//!
//! Cache-blocked, multi-threaded CPU kernels for the workspace's hot
//! operators — the GEMM family (N/NT/TT/TN via a packed SIMD microkernel,
//! see [`gemm`]), row softmax, LayerNorm, and GeLU — behind a single
//! [`Backend`] selector.
//!
//! The crate operates on plain `&[f32]` slices so it sits *below*
//! `mt-tensor` (which wraps these kernels in shape-checked `Tensor` entry
//! points) and carries no dependency besides `mt-trace` for per-kernel
//! spans.
//!
//! ## Determinism contract
//!
//! Every kernel partitions its output into **fixed-size work units** (GEMM
//! row bands of [`gemm::TILE_M`] rows, row blocks of [`ROW_BLOCK`] rows,
//! element chunks of [`CHUNK`] elements). The unit size never depends on the
//! thread count, each unit is computed start-to-finish by exactly one
//! worker with a fixed internal reduction order (ascending `k` for GEMM,
//! ascending row for row reductions), and any cross-unit reduction
//! (LayerNorm's `dγ`/`dβ`) is combined on the calling thread in ascending
//! unit order. Consequently [`Backend::Threaded`] produces **bit-identical**
//! results to [`Backend::Serial`] at any thread count — the property that
//! lets the gradient-equivalence and Table-2 tests upstream keep their exact
//! assertions while the backend is swapped underneath them.
//!
//! The GEMM microkernel extends the contract to its SIMD dispatch: the
//! runtime-selected AVX2 path and the scalar fallback are the *same*
//! generic function instantiated at two feature levels, both computing
//! plain `mul`-then-`add` per element (FMA is never enabled), so feature
//! detection changes throughput only — never an output bit. See
//! [`gemm`]'s module docs for the packing/microkernel architecture.
//!
//! ## Tracing
//!
//! Each kernel entry opens an `mt-trace` span (`kernel_gemm`,
//! `kernel_softmax`, `kernel_layer_norm`, `kernel_gelu`, plus `_backward`
//! variants) annotated with the problem shape, work-unit count, and thread
//! count, so `trace-report` timelines show where compute time goes. With a
//! disabled tracer the span costs one `Option` check and allocates nothing.
//!
//! ## Example
//!
//! ```
//! use mt_kernels::{gemm, Backend};
//!
//! // C = A · B for A: [2, 3], B: [3, 2].
//! let a = [1., 2., 3., 4., 5., 6.];
//! let b = [7., 8., 9., 10., 11., 12.];
//! let mut c = [0.0f32; 4];
//! gemm::gemm(Backend::Serial, false, false, 2, 2, 3, &a, &b, &mut c);
//! assert_eq!(c, [58., 64., 139., 154.]);
//!
//! let mut c_mt = [0.0f32; 4];
//! gemm::gemm(Backend::Threaded { threads: 4 }, false, false, 2, 2, 3, &a, &b, &mut c_mt);
//! assert_eq!(c, c_mt); // bit-identical at any thread count
//! ```

#![warn(missing_docs)]

mod backend;
pub mod gemm;
pub mod overlap;
pub mod pool;
mod rowwise;

pub use backend::{default_backend, set_default_backend, Backend};
pub use overlap::{recompute_prefetch, RecomputeReport};
pub use rowwise::{
    gelu, gelu_backward, layer_norm, layer_norm_backward, softmax_rows, softmax_rows_backward,
    CHUNK, ROW_BLOCK,
};
