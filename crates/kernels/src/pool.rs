//! A minimal scoped worker pool: deal owned work items round-robin across
//! scoped threads.
//!
//! This is the workspace's vendored stand-in for a thread-pool registry
//! dependency (rayon et al.), in the same spirit as the `vendor/` crates:
//! the subset of behavior the kernels need, built on the `mt-sync` scoped
//! spawn (std's in real builds) so borrowed data (input slices, disjoint
//! `&mut` output chunks) flows into workers without `'static` bounds or
//! `unsafe`.
//!
//! Determinism: item `i` is always processed by worker `i % threads`, and a
//! single-worker run processes items in ascending order on the calling
//! thread. Since every item owns a *disjoint* piece of the output, the
//! result is independent of scheduling — the assignment only decides which
//! worker does the arithmetic, never the order of any floating-point
//! reduction (each reduction lives entirely inside one item, or is combined
//! by the caller in item order afterwards).

/// Runs `f(index, item)` for every item, fanned out over `threads` scoped
/// workers (the calling thread acts as worker 0).
///
/// With `threads <= 1` — or a single item — everything runs inline on the
/// calling thread with no spawning at all, which is the serial reference
/// path.
pub fn run_indexed<T, F>(threads: usize, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    // Deal items round-robin so worker w owns items w, w+threads, … .
    let mut per_worker: Vec<Vec<(usize, T)>> = (0..threads)
        .map(|w| Vec::with_capacity(n / threads + usize::from(w < n % threads)))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        per_worker[i % threads].push((i, item));
    }
    let f = &f;
    mt_sync::thread::scope(|scope| {
        let mut batches = per_worker.into_iter();
        let mine = batches.next().expect("threads >= 1");
        for batch in batches {
            scope.spawn(move || {
                for (i, item) in batch {
                    f(i, item);
                }
            });
        }
        for (i, item) in mine {
            f(i, item);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_item_runs_exactly_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut out = vec![0u32; 13];
            let chunks: Vec<&mut u32> = out.iter_mut().collect();
            run_indexed(threads, chunks, |i, slot| *slot = i as u32 + 1);
            let expect: Vec<u32> = (1..=13).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn zero_items_is_a_no_op() {
        let ran = AtomicUsize::new(0);
        run_indexed(4, Vec::<usize>::new(), |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn disjoint_mut_chunks_are_written_in_parallel() {
        let mut data = vec![0.0f32; 100];
        let chunks: Vec<&mut [f32]> = data.chunks_mut(7).collect();
        run_indexed(5, chunks, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, (j / 7) as f32);
        }
    }
}
