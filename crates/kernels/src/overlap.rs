//! Dependency-aware GEMM driver: overlap a chunked gather with the GEMM
//! that consumes it.
//!
//! The TP+SP layer's `g` region all-gathers the sequence shard and feeds it
//! to a row-parallel GEMM (`C = A·B` or `C = A·Bᵀ` with the gathered rows as
//! *output* rows). Because every output row depends on exactly one gathered
//! row, a row band of `C` can start as soon as the chunk carrying its `A`
//! rows has arrived — the remaining chunks are still in flight while compute
//! proceeds. [`gemm_gathered`] runs that pipeline: the calling thread (the
//! rank thread) fetches chunks in ascending order via a caller-supplied
//! closure, and `threads − 1` workers consume row bands as their chunks
//! land.
//!
//! ## Determinism
//!
//! The work units are the same [`TILE_M`]-row bands as the flat kernel,
//! running the same packed microkernel (`band_gemm`) with the same
//! ascending-`k` single-accumulator chain per output element; `B` is
//! packed into panels once, before any chunk is fetched, and shared
//! read-only by every band. Every `C[i][j]` is therefore the identical
//! float expression no matter how many threads run or in which order
//! chunks arrive, which keeps the overlapped path **bit-identical** to the
//! exposed (gather-everything-then-GEMM) path.
//! Contraction-side consumers (`Aᵀ·B`) have no such row decomposition and
//! must use the assembled tensor; [`gemm_gathered`] can fill one
//! (`assembled`) as chunks land so a downstream weight-gradient GEMM pays
//! no extra gather.

use crate::backend::Backend;
use crate::gemm::{band_gemm, simd_level, PackedB, TILE_M};
use mt_sync::{Condvar, Mutex, OnceCell};
use mt_trace::ArgValue;
use std::collections::VecDeque;
use std::sync::Arc;

/// One contiguous run of output rows delivered by a chunk. The chunk's
/// payload is the concatenation of its slabs' `A` rows in declaration
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSlab {
    /// First output row this slab covers.
    pub out_row0: usize,
    /// Number of rows.
    pub rows: usize,
}

/// Which output rows each fetched chunk delivers, in fetch order.
///
/// The slabs of all chunks together must cover every output row exactly
/// once (chunks may be empty). For an all-gather of an `r`-row shard over
/// `n` ranks split with `chunk_rows(r, C, j) = (a, b)`, chunk `j` has one
/// slab per rank: `ChunkSlab { out_row0: i·r + a, rows: b − a }`.
#[derive(Debug, Clone, Default)]
pub struct OverlapPlan {
    /// Per-chunk slab lists.
    pub chunks: Vec<Vec<ChunkSlab>>,
}

impl OverlapPlan {
    /// Total output rows covered by the plan.
    pub fn total_rows(&self) -> usize {
        self.chunks.iter().flatten().map(|s| s.rows).sum()
    }
}

/// What [`gemm_gathered`] measured, in microseconds of the shared process
/// clock ([`mt_trace::monotonic_us`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapReport {
    /// Total time the rank thread spent inside the fetch closure.
    pub comm_us: u64,
    /// Portion of `comm_us` during which no band was computing and none
    /// was ready — communication the pipeline failed to hide. The exposed
    /// path has `exposed_us == comm_us` by construction.
    pub exposed_us: u64,
    /// Number of row-band work units executed.
    pub bands: usize,
}

struct Ctl {
    ready: VecDeque<usize>,
    fetched: usize,
    busy: usize,
    in_comm: bool,
    exposed_since: Option<u64>,
    exposed_us: u64,
}

impl Ctl {
    /// Called with the lock held whenever compute or comm state changed:
    /// opens the exposed-time window iff comm is in flight and the compute
    /// side has gone idle with nothing queued.
    fn update_exposure(&mut self) {
        if self.in_comm && self.busy == 0 && self.ready.is_empty() {
            if self.exposed_since.is_none() {
                self.exposed_since = Some(mt_trace::monotonic_us());
            }
        } else if let Some(t0) = self.exposed_since.take() {
            self.exposed_us += mt_trace::monotonic_us().saturating_sub(t0);
        }
    }
}

/// A row band: `rows` output rows starting at `out_row0`, whose `A` rows
/// live at element offset `a_off + a_row0·k` of chunk `chunk`'s payload.
struct BandSpec {
    chunk: usize,
    a_off: usize,
    a_row0: usize,
    rows: usize,
    out_row0: usize,
}

/// `C = A·B` (or `A·Bᵀ` when `transpose_b`) where `A` arrives in chunks.
///
/// `fetch(j)` must return chunk `j`'s payload — the `A` rows of the chunk's
/// slabs, concatenated in slab order, `rows·k` elements. It is called on
/// the calling thread in ascending `j` order (collective chunks are SPMD
/// sub-rendezvous, so order is part of the protocol). `out` is `[m, n]`
/// row-major with `m = plan.total_rows()`; `assembled`, when given, is an
/// `[m, k]` buffer filled with the gathered `A` for contraction-side
/// consumers that need the whole tensor.
///
/// With `backend` threads `t`, the driver uses the calling thread for
/// fetching (it joins compute after the last fetch) and `t − 1` workers
/// for bands; `t = 1` degenerates to fetch-then-compute per chunk on one
/// thread. Results are bit-identical across all backends and chunk
/// counts — see the module docs.
///
/// # Panics
///
/// Panics if the plan does not cover `out` exactly, or a fetched payload
/// has the wrong length.
#[allow(clippy::too_many_arguments)] // mirrors the flat gemm() ABI
pub fn gemm_gathered(
    backend: Backend,
    transpose_b: bool,
    n: usize,
    k: usize,
    plan: &OverlapPlan,
    b: &[f32],
    out: &mut [f32],
    mut assembled: Option<&mut [f32]>,
    mut fetch: impl FnMut(usize) -> Vec<f32>,
) -> OverlapReport {
    let m = plan.total_rows();
    assert_eq!(out.len(), m * n, "gemm_gathered: C length vs m*n");
    assert_eq!(b.len(), k * n, "gemm_gathered: B length vs k*n");
    if let Some(a) = assembled.as_deref() {
        assert_eq!(a.len(), m * k, "gemm_gathered: assembled length vs m*k");
    }
    let total_chunks = plan.chunks.len();

    // Split every slab into TILE_M-row bands (the kernel's work unit) and
    // index them by ascending output row so `out` can be pre-split.
    let mut bands: Vec<BandSpec> = Vec::new();
    for (j, slabs) in plan.chunks.iter().enumerate() {
        let mut a_off = 0;
        for slab in slabs {
            let mut r0 = 0;
            while r0 < slab.rows {
                let rows = TILE_M.min(slab.rows - r0);
                bands.push(BandSpec {
                    chunk: j,
                    a_off,
                    a_row0: r0,
                    rows,
                    out_row0: slab.out_row0 + r0,
                });
                r0 += rows;
            }
            a_off += slab.rows * k;
        }
    }
    bands.sort_by_key(|s| s.out_row0);
    let mut covered = 0;
    for s in &bands {
        assert_eq!(s.out_row0, covered, "gemm_gathered: plan must cover rows exactly once");
        covered += s.rows;
    }
    assert_eq!(covered, m, "gemm_gathered: plan covers {covered} of {m} rows");

    let threads = backend.threads();
    // Pack B into panels once, before any chunk is in flight; every band on
    // every worker reads the same packed panels, so the packing cost is
    // paid once per GEMM instead of once per band.
    let pack_t0 = mt_trace::monotonic_us();
    let pb = PackedB::pack(transpose_b, n, k, b);
    let packing_us = mt_trace::monotonic_us().saturating_sub(pack_t0);
    let simd = simd_level();
    let tracer = mt_trace::current();
    let mut span = tracer.span_args("gemm_overlapped", || {
        vec![
            ("kind", ArgValue::from(if transpose_b { "nt" } else { "nn" })),
            ("m", ArgValue::from(m)),
            ("n", ArgValue::from(n)),
            ("k", ArgValue::from(k)),
            ("chunks", ArgValue::from(total_chunks)),
            ("tiles", ArgValue::from(bands.len())),
            ("threads", ArgValue::from(threads)),
        ]
    });

    // Band -> disjoint &mut window of `out`; each is taken exactly once.
    let mut slots: Vec<Mutex<Option<&mut [f32]>>> = Vec::with_capacity(bands.len());
    let mut rest = out;
    for s in &bands {
        let (band, tail) = rest.split_at_mut(s.rows * n);
        slots.push(Mutex::new(Some(band)));
        rest = tail;
    }
    let chunk_bands: Vec<Vec<usize>> = (0..total_chunks)
        .map(|j| (0..bands.len()).filter(|&i| bands[i].chunk == j).collect())
        .collect();

    let payloads: Vec<OnceCell<Arc<Vec<f32>>>> =
        (0..total_chunks).map(|_| OnceCell::new()).collect();
    let ctl = Mutex::new(Ctl {
        ready: VecDeque::new(),
        fetched: 0,
        busy: 0,
        in_comm: false,
        exposed_since: None,
        exposed_us: 0,
    });
    let cond = Condvar::new();

    // One band's compute, shared by workers and the rank thread.
    let run_band = |i: usize| {
        let spec = &bands[i];
        let payload = payloads[spec.chunk].get().expect("payload set before band queued").clone();
        let slot = slots[i].lock().take().expect("band taken once");
        let a_slab = &payload[spec.a_off..];
        band_gemm(simd, false, a_slab, k, spec.a_row0, spec.rows, n, k, &pb, slot);
    };
    // Pull bands until the queue is dry; `wait_for_more` decides whether a
    // dry queue before the last fetch means "park on the condvar" (workers)
    // or "go do something else" (the rank thread between fetches).
    let work_loop = |wait_for_more: bool| loop {
        let band = {
            let mut st = ctl.lock();
            loop {
                if let Some(i) = st.ready.pop_front() {
                    st.busy += 1;
                    st.update_exposure();
                    break Some(i);
                }
                if st.fetched == total_chunks || !wait_for_more {
                    break None;
                }
                cond.wait(&mut st);
            }
        };
        let Some(i) = band else { return };
        run_band(i);
        let mut st = ctl.lock();
        st.busy -= 1;
        st.update_exposure();
    };

    let workers = threads.saturating_sub(1).min(bands.len());
    let mut comm_us = 0u64;
    mt_sync::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| work_loop(true));
        }
        for j in 0..total_chunks {
            {
                let mut st = ctl.lock();
                st.in_comm = true;
                st.update_exposure();
            }
            let t0 = mt_trace::monotonic_us();
            let payload = fetch(j);
            comm_us += mt_trace::monotonic_us().saturating_sub(t0);
            let expect: usize = plan.chunks[j].iter().map(|s| s.rows * k).sum();
            assert_eq!(payload.len(), expect, "gemm_gathered: chunk {j} payload length");
            if let Some(dst) = assembled.as_deref_mut() {
                let mut off = 0;
                for slab in &plan.chunks[j] {
                    dst[slab.out_row0 * k..(slab.out_row0 + slab.rows) * k]
                        .copy_from_slice(&payload[off..off + slab.rows * k]);
                    off += slab.rows * k;
                }
            }
            payloads[j].set(Arc::new(payload)).expect("chunk fetched once");
            {
                let mut st = ctl.lock();
                st.in_comm = false;
                st.fetched += 1;
                st.ready.extend(chunk_bands[j].iter().copied());
                st.update_exposure();
            }
            cond.notify_all();
            if workers == 0 {
                // Single-threaded: drain what this chunk unlocked before
                // blocking on the next rendezvous.
                work_loop(false);
            }
        }
        // All chunks fetched; the rank thread becomes a worker.
        work_loop(true);
    });

    let st = ctl.into_inner();
    let report =
        OverlapReport { comm_us, exposed_us: st.exposed_us.min(comm_us), bands: bands.len() };
    // Close-time args mirror the exact integers the caller books into its
    // comm ledger, so profile attribution can cross-check them exactly.
    span.arg("comm_us", report.comm_us);
    span.arg("exposed_us", report.exposed_us);
    span.arg("packing_us", packing_us);
    drop(span);
    report
}

/// What [`recompute_prefetch`] measured, in microseconds of the shared
/// process clock ([`mt_trace::monotonic_us`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecomputeReport {
    /// Total time the helper thread spent inside the recompute closure.
    pub recompute_us: u64,
    /// Portion of `recompute_us` the main work failed to cover: the time
    /// the calling thread spent parked in the join after its own work was
    /// done. An inline (non-prefetched) recomputation has
    /// `exposed_us == recompute_us` by construction.
    pub exposed_us: u64,
}

/// Issues `prefetch` on a helper thread while `main` runs on the calling
/// thread, joining before returning — the recompute analogue of
/// [`gemm_gathered`].
///
/// Where [`gemm_gathered`] hides *communication* under dependent compute,
/// this driver hides *recomputation* under the backward work that does not
/// depend on it: the caller passes layer `k+1`'s checkpointed-region replay
/// as `prefetch` and layer `k`'s backward GEMMs (collectives included) as
/// `main`. The recompute closure must be collective-free — it runs off the
/// rank thread, so a rendezvous issued from it would race the rank thread's
/// own collective sequence and break the SPMD tag order.
///
/// ## Determinism
///
/// The prefetch closure executes the **same fixed work units** as the
/// inline path — [`TILE_M`]-row GEMM bands, `ROW_BLOCK` row-wise units, the
/// same ascending-`k` single-accumulator reduction chains — so moving it to
/// a helper thread changes *when* the values are produced, never *what*
/// they are. Overlapped recomputation is bit-identical to
/// recompute-then-backward, exactly like the overlapped gather.
///
/// ## Accounting
///
/// The whole issue-to-join window is wrapped in a `recompute_overlapped`
/// span whose close-time args (`recompute_us`, `exposed_us`) carry the very
/// integers of the returned [`RecomputeReport`] — the caller books them
/// into its step ledger, and `mt-profile` cross-checks span args against
/// ledger with exact integer equality. The join wait (recomputation the
/// pipeline failed to hide) is additionally marked by a nested
/// `recompute_wait` span so attribution can tile it as exposed-recompute
/// wall time.
pub fn recompute_prefetch<P, M, PR, MR>(prefetch: P, main: M) -> (PR, MR, RecomputeReport)
where
    P: FnOnce() -> PR + Send,
    M: FnOnce() -> MR,
    PR: Send,
{
    let tracer = mt_trace::current();
    let mut span = tracer.span("recompute_overlapped");
    let (pr, mr, report) = mt_sync::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let t0 = mt_trace::monotonic_us();
            let out = prefetch();
            (out, mt_trace::monotonic_us().saturating_sub(t0))
        });
        let mr = main();
        let main_done = mt_trace::monotonic_us();
        let wait_span = tracer.span("recompute_wait");
        let (pr, recompute_us) = handle.join().expect("recompute prefetch thread");
        let waited = mt_trace::monotonic_us().saturating_sub(main_done);
        drop(wait_span);
        (pr, mr, RecomputeReport { recompute_us, exposed_us: waited.min(recompute_us) })
    });
    // Close-time args mirror the exact integers the caller books into its
    // recompute ledger, so profile attribution can cross-check them exactly.
    span.arg("recompute_us", report.recompute_us);
    span.arg("exposed_us", report.exposed_us);
    drop(span);
    (pr, mr, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// The all-gather slab layout: `ranks` interleaved shards of
    /// `shard_rows` rows each, split into `chunks` pieces.
    fn gather_plan(ranks: usize, shard_rows: usize, chunks: usize) -> OverlapPlan {
        let mut plan = OverlapPlan::default();
        for j in 0..chunks {
            let (a, b) = (j * shard_rows / chunks, (j + 1) * shard_rows / chunks);
            plan.chunks.push(
                (0..ranks)
                    .map(|i| ChunkSlab { out_row0: i * shard_rows + a, rows: b - a })
                    .collect(),
            );
        }
        plan
    }

    /// Cuts the gathered `A` into the per-chunk payloads `fetch` returns.
    fn payload(a: &[f32], k: usize, plan: &OverlapPlan, j: usize) -> Vec<f32> {
        let mut p = Vec::new();
        for slab in &plan.chunks[j] {
            p.extend_from_slice(&a[slab.out_row0 * k..(slab.out_row0 + slab.rows) * k]);
        }
        p
    }

    #[test]
    fn overlapped_gemm_is_bit_identical_to_serial() {
        // Ragged everything: shard_rows 37 over chunks {1,2,4,7}, ragged
        // bands (TILE_M = 32), both NN and NT consumers.
        let (ranks, shard_rows, n, k) = (2, 37, 9, 33);
        let m = ranks * shard_rows;
        let a = filled(m * k, 7);
        for transpose_b in [false, true] {
            let b = filled(k * n, 8);
            let mut want = vec![0.0f32; m * n];
            gemm(Backend::Serial, false, transpose_b, m, n, k, &a, &b, &mut want);
            for chunks in [1usize, 2, 4, 7] {
                let plan = gather_plan(ranks, shard_rows, chunks);
                for threads in 1..=6 {
                    let mut got = vec![0.0f32; m * n];
                    let mut asm = vec![0.0f32; m * k];
                    let report = gemm_gathered(
                        Backend::Threaded { threads },
                        transpose_b,
                        n,
                        k,
                        &plan,
                        &b,
                        &mut got,
                        Some(&mut asm),
                        |j| payload(&a, k, &plan, j),
                    );
                    assert!(
                        want.iter().zip(&got).all(|(w, g)| w.to_bits() == g.to_bits()),
                        "tb={transpose_b} chunks={chunks} threads={threads}"
                    );
                    assert_eq!(asm, a, "assembled tensor mismatch");
                    let expect_bands: usize =
                        plan.chunks.iter().flatten().map(|s| s.rows.div_ceil(TILE_M)).sum();
                    assert_eq!(report.bands, expect_bands);
                }
            }
        }
    }

    #[test]
    fn empty_chunks_and_zero_rows_are_tolerated() {
        // chunks > shard_rows leaves some chunks empty; they must still be
        // fetched (they are rendezvous) but produce no bands.
        let (ranks, shard_rows, n, k) = (3, 2, 4, 5);
        let m = ranks * shard_rows;
        let a = filled(m * k, 1);
        let b = filled(k * n, 2);
        let plan = gather_plan(ranks, shard_rows, 5);
        let mut fetched = Vec::new();
        let mut got = vec![0.0f32; m * n];
        let report = gemm_gathered(Backend::Serial, false, n, k, &plan, &b, &mut got, None, |j| {
            fetched.push(j);
            payload(&a, k, &plan, j)
        });
        assert_eq!(fetched, vec![0, 1, 2, 3, 4], "every chunk rendezvous happens, in order");
        let mut want = vec![0.0f32; m * n];
        gemm(Backend::Serial, false, false, m, n, k, &a, &b, &mut want);
        assert_eq!(got, want);
        assert!(report.comm_us >= report.exposed_us);
    }

    #[test]
    fn recompute_prefetch_returns_both_results_bit_identically() {
        // The prefetch closure runs the same GEMM work unit either way;
        // the driver only changes placement.
        let (m, n, k) = (13, 7, 9);
        let a = filled(m * k, 3);
        let b = filled(k * n, 4);
        let mut inline = vec![0.0f32; m * n];
        gemm(Backend::Serial, false, false, m, n, k, &a, &b, &mut inline);
        let (prefetched, main_out, report) = recompute_prefetch(
            || {
                let mut out = vec![0.0f32; m * n];
                gemm(Backend::Serial, false, false, m, n, k, &a, &b, &mut out);
                out
            },
            || 42usize,
        );
        assert_eq!(main_out, 42);
        assert!(
            inline.iter().zip(&prefetched).all(|(x, y)| x.to_bits() == y.to_bits()),
            "prefetched recompute must be bit-identical to inline"
        );
        assert!(report.exposed_us <= report.recompute_us, "exposure is a portion of the total");
    }

    #[test]
    fn recompute_prefetch_hides_work_under_a_slow_main() {
        // A main closure much longer than the prefetch leaves (almost)
        // nothing exposed; the inverse leaves (almost) everything exposed.
        let spin = |us: u64| {
            let t0 = mt_trace::monotonic_us();
            while mt_trace::monotonic_us().saturating_sub(t0) < us {
                std::hint::spin_loop();
            }
        };
        let (_, _, hidden) = recompute_prefetch(|| spin(2_000), || spin(20_000));
        assert!(
            hidden.exposed_us < hidden.recompute_us / 2,
            "short recompute under long main must be mostly hidden: {hidden:?}"
        );
        let (_, _, exposed) = recompute_prefetch(|| spin(20_000), || spin(500));
        assert!(
            exposed.exposed_us > exposed.recompute_us / 2,
            "long recompute under short main must be mostly exposed: {exposed:?}"
        );
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_payload_length_is_rejected() {
        let plan = gather_plan(1, 4, 2);
        let b = vec![0.0f32; 6];
        let mut out = vec![0.0f32; 4 * 2];
        gemm_gathered(Backend::Serial, false, 2, 3, &plan, &b, &mut out, None, |_| vec![0.0; 1]);
    }
}
