//! The [`Backend`] selector and the process-wide default.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads; keeps a typo'd `MT_KERNEL_THREADS` from
/// spawning an absurd number of scoped workers.
const MAX_THREADS: usize = 256;

/// How kernels execute.
///
/// Both variants run the *same* tiled kernel code over the same fixed work
/// units, so they produce bit-identical results; `Threaded` merely fans the
/// units out over scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// All work units run on the calling thread, in unit order. The
    /// reference backend.
    Serial,
    /// Work units are dealt round-robin across `threads` scoped workers
    /// (the calling thread is worker 0).
    Threaded {
        /// Worker count; clamped to `1..=256`. `Threaded { threads: 1 }`
        /// executes like `Serial`.
        threads: usize,
    },
}

impl Backend {
    /// The worker count this backend runs with (1 for [`Backend::Serial`]).
    pub fn threads(&self) -> usize {
        match *self {
            Backend::Serial => 1,
            Backend::Threaded { threads } => threads.clamp(1, MAX_THREADS),
        }
    }

    /// Short label for reports and trace args (`"serial"` / `"threaded"`).
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Threaded { .. } => "threaded",
        }
    }

    /// Builds a backend from the environment:
    ///
    /// * `MT_KERNEL_BACKEND` — `serial` (default) or `threaded`;
    /// * `MT_KERNEL_THREADS` — worker count for `threaded`; defaults to
    ///   [`std::thread::available_parallelism`].
    ///
    /// Unrecognized values fall back to `Serial`, so a typo degrades to the
    /// reference backend rather than failing.
    pub fn from_env() -> Backend {
        let threaded = matches!(
            std::env::var("MT_KERNEL_BACKEND").as_deref(),
            Ok("threaded") | Ok("THREADED") | Ok("Threaded")
        );
        if !threaded {
            return Backend::Serial;
        }
        let threads = std::env::var("MT_KERNEL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Backend::Threaded { threads: threads.clamp(1, MAX_THREADS) }
    }
}

/// Process-wide default backend, encoded in one atomic:
/// `0` = not yet initialized, `1` = `Serial`, `t + 1` = `Threaded { t }`.
static DEFAULT: AtomicUsize = AtomicUsize::new(0);

fn encode(b: Backend) -> usize {
    match b {
        Backend::Serial => 1,
        Backend::Threaded { threads } => threads.clamp(1, MAX_THREADS) + 1,
    }
}

fn decode(v: usize) -> Backend {
    match v {
        0 | 1 => Backend::Serial,
        t => Backend::Threaded { threads: t - 1 },
    }
}

/// The backend kernels use when none is passed explicitly
/// (e.g. `mt-tensor`'s `Gemm::apply`).
///
/// First call resolves [`Backend::from_env`] and caches it; later calls are
/// a single atomic load. [`set_default_backend`] overrides it at any time.
pub fn default_backend() -> Backend {
    let v = DEFAULT.load(Ordering::Relaxed);
    if v != 0 {
        return decode(v);
    }
    let resolved = Backend::from_env();
    // Racing first calls may both read the env; they store the same value.
    DEFAULT.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Overrides the process-wide default backend (used by benches and tests;
/// normal configuration goes through the environment variables).
pub fn set_default_backend(backend: Backend) {
    DEFAULT.store(encode(backend), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_are_clamped() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert_eq!(Backend::Threaded { threads: 0 }.threads(), 1);
        assert_eq!(Backend::Threaded { threads: 4 }.threads(), 4);
        assert_eq!(Backend::Threaded { threads: 100_000 }.threads(), MAX_THREADS);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for b in
            [Backend::Serial, Backend::Threaded { threads: 1 }, Backend::Threaded { threads: 7 }]
        {
            let rt = decode(encode(b));
            assert_eq!(rt.threads(), b.threads());
        }
        // Threaded { 1 } and Serial intentionally decode to the same work
        // distribution (single worker).
        assert_eq!(
            decode(encode(Backend::Threaded { threads: 1 })),
            Backend::Threaded { threads: 1 }
        );
    }

    #[test]
    fn set_default_overrides() {
        set_default_backend(Backend::Threaded { threads: 3 });
        assert_eq!(default_backend(), Backend::Threaded { threads: 3 });
        set_default_backend(Backend::Serial);
        assert_eq!(default_backend(), Backend::Serial);
    }
}
