//! The [`Backend`] selector and the process-wide default.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads; keeps a typo'd `MT_KERNEL_THREADS` from
/// spawning an absurd number of scoped workers.
const MAX_THREADS: usize = 256;

/// FLOPs an extra scoped worker must bring along to repay its share of the
/// fan-out cost (spawn + join of a `thread::scope`, one wakeup per worker).
///
/// Calibrated against the packed microkernel: a scoped spawn/join round
/// trip costs on the order of 50–100 µs, and the microkernel retires
/// roughly 10–30 GFLOP/s per core, so a worker must carry a few million
/// FLOPs before the fan-out breaks even — below that, serial wins. 4 MFLOP
/// per worker puts the serial→parallel crossover between 96³ (1.7 MFLOP,
/// serial) and 128³ (4.2 MFLOP, two workers), matching the measured
/// crossover of the benched shapes; 512³ saturates an 8-thread backend.
const FLOPS_PER_WORKER: u64 = 4_000_000;

/// How kernels execute.
///
/// Both variants run the *same* tiled kernel code over the same fixed work
/// units, so they produce bit-identical results; `Threaded` merely fans the
/// units out over scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// All work units run on the calling thread, in unit order. The
    /// reference backend.
    Serial,
    /// Work units are dealt round-robin across `threads` scoped workers
    /// (the calling thread is worker 0).
    Threaded {
        /// Worker count; clamped to `1..=256`. `Threaded { threads: 1 }`
        /// executes like `Serial`.
        threads: usize,
    },
}

impl Backend {
    /// The worker count this backend runs with (1 for [`Backend::Serial`]).
    pub fn threads(&self) -> usize {
        match *self {
            Backend::Serial => 1,
            Backend::Threaded { threads } => threads.clamp(1, MAX_THREADS),
        }
    }

    /// Workers a problem of `flops` floating-point operations should fan
    /// out to: the backend's configured [`Backend::threads`] capped so
    /// every extra worker carries at least [`FLOPS_PER_WORKER`] of work.
    ///
    /// Small problems resolve to 1 (no scoped spawn at all), medium ones
    /// to a partial fan-out, and only problems big enough to amortize the
    /// pool wakeup use the full configured width. [`Backend::Serial`]
    /// always returns 1. Results are bit-identical at any worker count, so
    /// this is purely a latency policy — it decides *when* threading pays,
    /// never *what* is computed.
    pub fn threads_for_work(&self, flops: u64) -> usize {
        let configured = self.threads();
        let affordable = 1 + (flops / FLOPS_PER_WORKER) as usize;
        configured.min(affordable)
    }

    /// Short label for reports and trace args (`"serial"` / `"threaded"`).
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Threaded { .. } => "threaded",
        }
    }

    /// Builds a backend from the environment:
    ///
    /// * `MT_KERNEL_BACKEND` — `serial` (default) or `threaded`;
    /// * `MT_KERNEL_THREADS` — worker count for `threaded`; defaults to
    ///   [`std::thread::available_parallelism`].
    ///
    /// Unrecognized values fall back to `Serial`, so a typo degrades to the
    /// reference backend rather than failing.
    pub fn from_env() -> Backend {
        let threaded = matches!(
            std::env::var("MT_KERNEL_BACKEND").as_deref(),
            Ok("threaded") | Ok("THREADED") | Ok("Threaded")
        );
        if !threaded {
            return Backend::Serial;
        }
        let threads = std::env::var("MT_KERNEL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Backend::Threaded { threads: threads.clamp(1, MAX_THREADS) }
    }
}

/// Process-wide default backend, encoded in one atomic:
/// `0` = not yet initialized, `1` = `Serial`, `t + 1` = `Threaded { t }`.
static DEFAULT: AtomicUsize = AtomicUsize::new(0);

fn encode(b: Backend) -> usize {
    match b {
        Backend::Serial => 1,
        Backend::Threaded { threads } => threads.clamp(1, MAX_THREADS) + 1,
    }
}

fn decode(v: usize) -> Backend {
    match v {
        0 | 1 => Backend::Serial,
        t => Backend::Threaded { threads: t - 1 },
    }
}

/// The backend kernels use when none is passed explicitly
/// (e.g. `mt-tensor`'s `Gemm::apply`).
///
/// First call resolves [`Backend::from_env`] and caches it; later calls are
/// a single atomic load. [`set_default_backend`] overrides it at any time.
pub fn default_backend() -> Backend {
    let v = DEFAULT.load(Ordering::Relaxed);
    if v != 0 {
        return decode(v);
    }
    let resolved = Backend::from_env();
    // Racing first calls may both read the env; they store the same value.
    DEFAULT.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Overrides the process-wide default backend (used by benches and tests;
/// normal configuration goes through the environment variables).
pub fn set_default_backend(backend: Backend) {
    DEFAULT.store(encode(backend), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_are_clamped() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert_eq!(Backend::Threaded { threads: 0 }.threads(), 1);
        assert_eq!(Backend::Threaded { threads: 4 }.threads(), 4);
        assert_eq!(Backend::Threaded { threads: 100_000 }.threads(), MAX_THREADS);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for b in
            [Backend::Serial, Backend::Threaded { threads: 1 }, Backend::Threaded { threads: 7 }]
        {
            let rt = decode(encode(b));
            assert_eq!(rt.threads(), b.threads());
        }
        // Threaded { 1 } and Serial intentionally decode to the same work
        // distribution (single worker).
        assert_eq!(
            decode(encode(Backend::Threaded { threads: 1 })),
            Backend::Threaded { threads: 1 }
        );
    }

    #[test]
    fn work_sizing_caps_fanout() {
        // Serial never fans out, whatever the problem size.
        assert_eq!(Backend::Serial.threads_for_work(u64::MAX / 2), 1);
        let b = Backend::Threaded { threads: 8 };
        // Tiny problems run serial: no scoped spawn below one worker's
        // worth of FLOPs.
        assert_eq!(b.threads_for_work(0), 1);
        assert_eq!(b.threads_for_work(FLOPS_PER_WORKER - 1), 1);
        // Each additional FLOPS_PER_WORKER unlocks one more worker...
        assert_eq!(b.threads_for_work(FLOPS_PER_WORKER), 2);
        assert_eq!(b.threads_for_work(3 * FLOPS_PER_WORKER), 4);
        // ...up to the configured width.
        assert_eq!(b.threads_for_work(1000 * FLOPS_PER_WORKER), 8);
    }

    #[test]
    fn set_default_overrides() {
        set_default_backend(Backend::Threaded { threads: 3 });
        assert_eq!(default_backend(), Backend::Threaded { threads: 3 });
        set_default_backend(Backend::Serial);
        assert_eq!(default_backend(), Backend::Serial);
    }
}
