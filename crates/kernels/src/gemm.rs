//! The unified GEMM kernel: `C = op(A) · op(B)` with independent transpose
//! flags, built around a SIMD-friendly packed microkernel and threaded over
//! output row bands.
//!
//! One entry point ([`gemm`]) replaces the former `matmul` / `matmul_nt` /
//! `matmul_tn` triplication: the `(transpose_a, transpose_b)` pair selects
//! the operand layout and the kernel dispatches internally. The output is
//! always row-major `[m, n]`:
//!
//! | flags      | A layout | B layout | computes  |
//! |------------|----------|----------|-----------|
//! | `(f, f)`   | `[m, k]` | `[k, n]` | `A · B`   |
//! | `(f, t)`   | `[m, k]` | `[n, k]` | `A · Bᵀ`  |
//! | `(t, f)`   | `[k, m]` | `[k, n]` | `Aᵀ · B`  |
//! | `(t, t)`   | `[k, m]` | `[n, k]` | `Aᵀ · Bᵀ` |
//!
//! ## Architecture: pack once, then one inner loop for every layout
//!
//! The kernel is a two-stage pipeline:
//!
//! 1. **Packing.** `B` is copied once per call into [`PackedB`] — per
//!    [`NR`]-column *panels*, each panel laid out `[k][NR]` so the inner
//!    loop reads it as one forward stream. Each row band packs its `A` rows
//!    into [`MR`]-row *tiles* laid out `[k][MR]` (broadcast-friendly). The
//!    packing step is transpose-aware: a transposed operand is normalized
//!    into the *same* packed layout, so all four transpose kinds run the
//!    identical inner loop and NT/TN stop paying a strided-access tax.
//!    Ragged edges are zero-padded in the packed buffers; padded lanes are
//!    computed and discarded, never stored.
//!
//! 2. **Microkernel.** An `MR × NR` register-tile accumulator: for each
//!    `kk` the microkernel broadcasts `MR` values of `A` against an
//!    `NR`-wide row of the `B` panel and accumulates `MR·NR` products. The
//!    accumulator tile lives in registers for the whole `k` loop, so `C`
//!    is written exactly once. The loop is written over fixed-size arrays
//!    that the compiler lowers to SIMD; on x86-64 the same body is
//!    instantiated twice — once under `#[target_feature(enable = "avx2")]`
//!    (selected at runtime via `is_x86_feature_detected!`) and once at the
//!    baseline feature level as the scalar-codegen fallback. Both
//!    instantiations execute the identical `mul`-then-`add` expression per
//!    element (FMA is deliberately not enabled), so the selected path
//!    changes throughput only, never a single output bit.
//!
//! ## Blocking and determinism
//!
//! `C` is split into row bands of [`TILE_M`] rows (the last band may be
//! ragged); each band is one work unit, computed entirely by one worker.
//! Every `C[i][j]` is the sum `Σₖ a·b` taken in strictly ascending `k`
//! with a single accumulator chain — the microkernel's register tile holds
//! one independent chain per output element. Both properties are
//! independent of the thread count, the SIMD path, and the band
//! partitioning, which is what makes `Threaded` bit-identical to `Serial`
//! (see the crate docs) and the overlapped driver in [`crate::overlap`]
//! bit-identical to the flat kernel.
//!
//! ## Threading policy
//!
//! The worker count is sized to the problem via
//! [`Backend::threads_for_work`]: each extra scoped worker must bring
//! enough FLOPs to repay its spawn cost, so tiny GEMMs run serial (no
//! wakeup at all) and medium ones fan out to fewer workers than a big
//! one. `B` is packed once on the calling thread and shared read-only by
//! every band, so the packing cost is paid once regardless of the worker
//! count. Results are bit-identical at any worker count, so this is purely
//! a latency/throughput policy.

use crate::backend::Backend;
use crate::pool;
use mt_trace::ArgValue;

/// Rows of `C` per work unit (one band = one unit).
pub const TILE_M: usize = 32;

/// Rows per microkernel register tile: at each `kk` the inner loop
/// broadcasts `MR` packed `A` values against the `B` panel row.
pub const MR: usize = 8;

/// Columns per packed `B` panel — the SIMD accumulator width the
/// microkernel carries per output row (f32x8 on AVX2, two f32x4 at the
/// baseline feature level).
pub const NR: usize = 8;

/// What [`gemm_stats`] measured for one call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemmStats {
    /// Microseconds ([`mt_trace::monotonic_us`]) spent packing `B` into
    /// panels on the calling thread. Per-band `A`-tile packing rides
    /// inside the banded compute and is not separable from it.
    pub packing_us: u64,
    /// Workers the work-size policy actually ran with (≤ the backend's
    /// configured thread count; see [`Backend::threads_for_work`]).
    pub threads_used: usize,
}

/// `C = op(A) · op(B)` into `out` (`[m, n]`, row-major, fully overwritten).
///
/// `m`/`n` are the output dimensions and `k` the contraction length; the
/// operand layouts implied by the flags are listed in the module docs.
///
/// The backend's configured thread count is an upper bound: the kernel
/// sizes the actual worker fan-out to the problem's FLOPs
/// ([`Backend::threads_for_work`]), so small problems never pay a scoped
/// spawn. Results are bit-identical at any worker count.
///
/// # Panics
///
/// Panics if a slice length disagrees with its implied layout.
#[allow(clippy::too_many_arguments)] // flat slice ABI; mt-tensor's Gemm descriptor is the ergonomic entry
pub fn gemm(
    backend: Backend,
    transpose_a: bool,
    transpose_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    let _ = gemm_stats(backend, transpose_a, transpose_b, m, n, k, a, b, out);
}

/// [`gemm`], also returning what the call measured ([`GemmStats`]).
///
/// `kernel_bench` uses this to report the packing cost next to the compute
/// time; everything else calls [`gemm`].
///
/// # Panics
///
/// Panics if a slice length disagrees with its implied layout.
#[allow(clippy::too_many_arguments)] // flat slice ABI; mt-tensor's Gemm descriptor is the ergonomic entry
pub fn gemm_stats(
    backend: Backend,
    transpose_a: bool,
    transpose_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) -> GemmStats {
    assert_eq!(a.len(), m * k, "gemm: A length vs m*k");
    assert_eq!(b.len(), k * n, "gemm: B length vs k*n");
    assert_eq!(out.len(), m * n, "gemm: C length vs m*n");
    if m == 0 || n == 0 {
        return GemmStats::default();
    }
    let bands = m.div_ceil(TILE_M);
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let threads = backend.threads_for_work(flops).min(bands);
    let kind = kind_label(transpose_a, transpose_b);
    let tracer = mt_trace::current();
    let mut span = tracer.span_args("kernel_gemm", || {
        vec![
            ("kind", ArgValue::from(kind)),
            ("m", ArgValue::from(m)),
            ("n", ArgValue::from(n)),
            ("k", ArgValue::from(k)),
            ("tiles", ArgValue::from(bands)),
            ("threads", ArgValue::from(threads)),
        ]
    });
    let t0 = mt_trace::monotonic_us();
    let pb = PackedB::pack(transpose_b, n, k, b);
    let packing_us = mt_trace::monotonic_us().saturating_sub(t0);
    let simd = simd_level();
    // Stored-A row length: `a` is `[m, k]` row-major when not transposed,
    // `[k, m]` when transposed (op(A) row i lives in stored column i).
    let a_stride = if transpose_a { m } else { k };
    let chunks: Vec<&mut [f32]> = out.chunks_mut(TILE_M * n).collect();
    pool::run_indexed(threads, chunks, |band, c_band| {
        let row0 = band * TILE_M;
        let rows = c_band.len() / n;
        band_gemm(simd, transpose_a, a, a_stride, row0, rows, n, k, &pb, c_band);
    });
    span.arg("packing_us", packing_us);
    drop(span);
    GemmStats { packing_us, threads_used: threads }
}

/// Trace/report label for a transpose-flag pair (`"nn"`, `"nt"`, `"tn"`,
/// `"tt"`).
pub fn kind_label(transpose_a: bool, transpose_b: bool) -> &'static str {
    match (transpose_a, transpose_b) {
        (false, false) => "nn",
        (false, true) => "nt",
        (true, false) => "tn",
        (true, true) => "tt",
    }
}

// ---------------------------------------------------------------------------
// SIMD feature selection
// ---------------------------------------------------------------------------

/// Which microkernel instantiation to run. Both compute the identical
/// per-element float expression; the choice affects throughput only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Simd {
    /// Baseline-feature codegen (the portable fallback).
    Scalar,
    /// The `#[target_feature(enable = "avx2")]` instantiation; only
    /// constructed after `is_x86_feature_detected!("avx2")` succeeds.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

/// Runtime-detected SIMD level, resolved once and cached in an atomic.
pub(crate) fn simd_level() -> Simd {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        // 0 = undetected, 1 = scalar, 2 = avx2.
        static LEVEL: AtomicU8 = AtomicU8::new(0);
        match LEVEL.load(Ordering::Relaxed) {
            1 => Simd::Scalar,
            2 => Simd::Avx2,
            _ => {
                let detected = if std::arch::is_x86_feature_detected!("avx2") { 2u8 } else { 1u8 };
                // Racing first calls detect the same CPU; same value stored.
                LEVEL.store(detected, Ordering::Relaxed);
                if detected == 2 {
                    Simd::Avx2
                } else {
                    Simd::Scalar
                }
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Simd::Scalar
    }
}

/// Human-readable label of the microkernel path this process runs
/// (`"avx2"` or `"scalar"`), for benchmark reports and traces.
pub fn simd_feature() -> &'static str {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => "avx2",
        Simd::Scalar => "scalar",
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// `B` packed into [`NR`]-column panels, each laid out `[k][NR]` so the
/// microkernel streams it forward with unit stride.
///
/// The packing is transpose-aware: `pack` reads `B` either `[k, n]`
/// (normal) or `[n, k]` (transposed) and lands both in the identical
/// normalized layout — packing a transposed operand equals transposing it
/// first and then packing (asserted by the packing tests). The last panel
/// is zero-padded to `NR` columns; padded lanes are computed by the
/// microkernel and discarded on store.
///
/// A `PackedB` is immutable and `Sync`, so one pack is shared read-only by
/// every row band — both the flat kernel's worker pool and the overlapped
/// driver's chunk pipeline pack `B` exactly once per GEMM.
pub struct PackedB {
    data: Vec<f32>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Packs `b` (layout selected by `transpose_b`, see [`gemm`]'s table)
    /// into panels.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(transpose_b: bool, n: usize, k: usize, b: &[f32]) -> PackedB {
        assert_eq!(b.len(), k * n, "PackedB::pack: B length vs k*n");
        let panels = n.div_ceil(NR);
        let mut data = vec![0.0f32; panels * k * NR];
        for jp in 0..panels {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let dst = &mut data[jp * k * NR..(jp + 1) * k * NR];
            if !transpose_b {
                // b is [k, n]: per kk, copy a contiguous run of w columns.
                for kk in 0..k {
                    dst[kk * NR..kk * NR + w].copy_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
                }
            } else {
                // b is [n, k]: op(B)[kk][j] = b[j*k + kk] — read each
                // source row contiguously, scatter into the panel column.
                for c in 0..w {
                    let src = &b[(j0 + c) * k..(j0 + c + 1) * k];
                    for (kk, &v) in src.iter().enumerate() {
                        dst[kk * NR + c] = v;
                    }
                }
            }
        }
        PackedB { data, k, n }
    }

    /// Number of [`NR`]-column panels.
    pub fn panels(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// One panel's `[k][NR]` slab.
    fn panel(&self, jp: usize) -> &[f32] {
        &self.data[jp * self.k * NR..(jp + 1) * self.k * NR]
    }

    /// The raw packed buffer (panel-major `[panel][k][NR]`, zero-padded),
    /// for the packing-equivalence tests.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// Packs `rows` op(A) rows starting at `row0` into [`MR`]-row tiles laid
/// out `[k][MR]` (zero-padded), normalizing both stored layouts:
///
/// * `transpose_a == false`: `a` is row-major with row stride `a_stride
///   == k`; each tile is a small `MR × k` transpose.
/// * `transpose_a == true`: `a` is `[k, m]` with `a_stride == m`; op(A)
///   row `i` is stored column `i`, so each `kk` contributes `MR`
///   *contiguous* stored values — a straight copy.
///
/// `dst` must hold `rows.div_ceil(MR) * k * MR` elements and is fully
/// overwritten (padding lanes included).
fn pack_a_band(
    transpose_a: bool,
    a: &[f32],
    a_stride: usize,
    row0: usize,
    rows: usize,
    k: usize,
    dst: &mut [f32],
) {
    let tiles = rows.div_ceil(MR);
    debug_assert_eq!(dst.len(), tiles * k * MR);
    for t in 0..tiles {
        let r0 = t * MR;
        let h = MR.min(rows - r0);
        let tile = &mut dst[t * k * MR..(t + 1) * k * MR];
        if h < MR {
            tile.fill(0.0);
        }
        if !transpose_a {
            for r in 0..h {
                let src = &a[(row0 + r0 + r) * a_stride..(row0 + r0 + r) * a_stride + k];
                for (kk, &v) in src.iter().enumerate() {
                    tile[kk * MR + r] = v;
                }
            }
        } else {
            for kk in 0..k {
                let src = &a[kk * a_stride + row0 + r0..kk * a_stride + row0 + r0 + h];
                tile[kk * MR..kk * MR + h].copy_from_slice(src);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Microkernel
// ---------------------------------------------------------------------------

/// One band × one `B` panel: every [`MR`]-row tile of the band runs the
/// register-tile microkernel against the panel and stores its valid
/// `h × w` corner into `C`.
///
/// Per output element the accumulator is a single chain over ascending
/// `kk` of `mul`-then-`add` — the expression the determinism contract and
/// the naive-oracle tests pin down. Fixed-size `[[f32; NR]; MR]` arrays
/// keep the tile in registers; the surrounding `target_feature` wrapper
/// decides how wide the compiler lowers the arithmetic.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal hot loop; bundling would cost a struct per panel
fn band_panel_impl(
    k: usize,
    rows: usize,
    n: usize,
    j0: usize,
    w: usize,
    a_tiles: &[f32],
    panel: &[f32],
    c: &mut [f32],
) {
    let tiles = rows.div_ceil(MR);
    for t in 0..tiles {
        let ap = &a_tiles[t * k * MR..(t + 1) * k * MR];
        let mut acc = [[0.0f32; NR]; MR];
        for (av, bv) in ap.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
            for r in 0..MR {
                let a = av[r];
                let row = &mut acc[r];
                for (rc, &b) in row.iter_mut().zip(bv) {
                    *rc += a * b;
                }
            }
        }
        let h = MR.min(rows - t * MR);
        for (r, acc_row) in acc.iter().enumerate().take(h) {
            let out_row = t * MR + r;
            c[out_row * n + j0..out_row * n + j0 + w].copy_from_slice(&acc_row[..w]);
        }
    }
}

/// The AVX2 instantiation of [`band_panel_impl`]. Same source, same
/// `mul`+`add` expression — only the vector width differs, so outputs are
/// bit-identical to the scalar instantiation.
///
/// Callers must have verified `is_x86_feature_detected!("avx2")` (done
/// once in [`simd_level`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // mirrors band_panel_impl
fn band_panel_avx2(
    k: usize,
    rows: usize,
    n: usize,
    j0: usize,
    w: usize,
    a_tiles: &[f32],
    panel: &[f32],
    c: &mut [f32],
) {
    band_panel_impl(k, rows, n, j0, w, a_tiles, panel, c)
}

/// One row band of `C = op(A) · op(B)`: packs the band's `A` rows into
/// tiles, then sweeps every panel of the shared [`PackedB`].
///
/// `row0`/`rows` select op(A) rows (`row0` indexes `a`'s stored rows when
/// not transposed, stored columns when transposed); `c` is the band's
/// `rows × n` output window, fully overwritten. This is the single shared
/// inner path: the flat [`gemm`] and the overlapped driver
/// ([`crate::overlap::gemm_gathered`]) both run it over the same
/// [`TILE_M`] bands, which is what keeps them bit-identical.
#[allow(clippy::too_many_arguments)] // internal band ABI shared with overlap.rs
pub(crate) fn band_gemm(
    simd: Simd,
    transpose_a: bool,
    a: &[f32],
    a_stride: usize,
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    pb: &PackedB,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), rows * n);
    debug_assert_eq!(pb.k, k, "PackedB k mismatch");
    debug_assert_eq!(pb.n, n, "PackedB n mismatch");
    let tiles = rows.div_ceil(MR);
    let mut a_tiles = vec![0.0f32; tiles * k * MR];
    pack_a_band(transpose_a, a, a_stride, row0, rows, k, &mut a_tiles);
    for jp in 0..pb.panels() {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        match simd {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 variant is only constructed by simd_level()
            // after is_x86_feature_detected!("avx2") succeeded on this CPU.
            Simd::Avx2 => unsafe { band_panel_avx2(k, rows, n, j0, w, &a_tiles, pb.panel(jp), c) },
            Simd::Scalar => band_panel_impl(k, rows, n, j0, w, &a_tiles, pb.panel(jp), c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference with the same ascending-k per-element order.
    fn reference(
        ta: bool,
        tb: bool,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    let av = if ta { a[kk * m + i] } else { a[i * k + kk] };
                    let bv = if tb { b[j * k + kk] } else { b[kk * n + j] };
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn known_values_nn() {
        let a = [1., 2., 3., 4., 5., 6.];
        let b = [7., 8., 9., 10., 11., 12.];
        let mut c = [0.0f32; 4];
        gemm(Backend::Serial, false, false, 2, 2, 3, &a, &b, &mut c);
        assert_eq!(c, [58., 64., 139., 154.]);
    }

    #[test]
    fn all_kinds_match_reference_on_ragged_shapes() {
        // m = 33 and 70 force ragged final bands (TILE_M = 32) and ragged
        // microkernel tiles (MR = 8); n = 5/7/19 force ragged panels
        // (NR = 8); k = 65 exercises a long contraction chain.
        for &(m, n, k) in &[(1, 1, 1), (33, 5, 65), (70, 7, 3), (32, 64, 64), (40, 19, 65)] {
            let a_len = m * k;
            let b_len = k * n;
            for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
                let a = filled(a_len, 1);
                let b = filled(b_len, 2);
                let want = reference(ta, tb, m, n, k, &a, &b);
                let mut got = vec![0.0f32; m * n];
                gemm(Backend::Serial, ta, tb, m, n, k, &a, &b, &mut got);
                // The packed microkernel preserves the naive ascending-k
                // mul+add chain exactly, so this holds to the bit.
                assert!(
                    want.iter().zip(&got).all(|(w, g)| w.to_bits() == g.to_bits()),
                    "{} m={m} n={n} k={k}: not bit-identical to the naive oracle",
                    kind_label(ta, tb)
                );
            }
        }
    }

    #[test]
    fn threaded_is_bit_identical_to_serial() {
        let (m, n, k) = (70, 19, 65);
        let a = filled(m * k, 3);
        let b = filled(k * n, 4);
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut serial = vec![0.0f32; m * n];
            gemm(Backend::Serial, ta, tb, m, n, k, &a, &b, &mut serial);
            for threads in 1..=8 {
                let mut mt = vec![0.0f32; m * n];
                gemm(Backend::Threaded { threads }, ta, tb, m, n, k, &a, &b, &mut mt);
                assert!(
                    serial.iter().zip(&mt).all(|(s, t)| s.to_bits() == t.to_bits()),
                    "{} threads={threads}: not bit-identical",
                    kind_label(ta, tb)
                );
            }
        }
    }

    #[test]
    fn multi_worker_fanout_is_bit_identical_to_serial() {
        // Big enough that threads_for_work actually grants several
        // workers (the small-shape tests above exercise the policy's
        // serial cutoff instead).
        let (m, n, k) = (160, 96, 170);
        let a = filled(m * k, 5);
        let b = filled(k * n, 6);
        let mut serial = vec![0.0f32; m * n];
        gemm(Backend::Serial, false, false, m, n, k, &a, &b, &mut serial);
        let backend = Backend::Threaded { threads: 4 };
        assert!(
            backend.threads_for_work(2 * (m * n * k) as u64) > 1,
            "shape must be above the parallel cutoff for this test to mean anything"
        );
        let mut mt = vec![0.0f32; m * n];
        gemm(backend, false, false, m, n, k, &a, &b, &mut mt);
        assert!(serial.iter().zip(&mt).all(|(s, t)| s.to_bits() == t.to_bits()));
    }

    #[test]
    fn packing_a_transposed_panel_equals_transposing_then_packing() {
        let (n, k) = (19, 33);
        let b = filled(k * n, 9);
        // Explicit transpose: bt[[n, k]] with bt[j][kk] = b[kk][j].
        let mut bt = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let packed_direct = PackedB::pack(true, n, k, &bt);
        let packed_via_transpose = PackedB::pack(false, n, k, &b);
        assert_eq!(
            packed_direct.data(),
            packed_via_transpose.data(),
            "transpose-aware packing must normalize both layouts identically"
        );
    }

    #[test]
    fn packed_a_tiles_normalize_both_layouts_identically() {
        let (m, k) = (21, 13); // ragged tiles: 21 rows over MR = 8
        let a = filled(m * k, 10);
        // Explicit transpose: at[[k, m]] with at[kk][i] = a[i][kk].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let tiles = m.div_ceil(MR);
        let mut packed_n = vec![0.0f32; tiles * k * MR];
        let mut packed_t = vec![0.0f32; tiles * k * MR];
        pack_a_band(false, &a, k, 0, m, k, &mut packed_n);
        pack_a_band(true, &at, m, 0, m, k, &mut packed_t);
        assert_eq!(packed_n, packed_t);
    }

    #[test]
    fn output_is_overwritten_not_accumulated() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [1.0f32, 2.0, 3.0, 4.0];
        let mut c = [9.0f32; 4]; // stale garbage must be cleared
        gemm(Backend::Serial, false, false, 2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn zero_k_zeroes_the_output() {
        let mut c = [7.0f32; 6];
        gemm(Backend::Serial, false, false, 2, 3, 0, &[], &[], &mut c);
        assert_eq!(c, [0.0; 6]);
    }

    #[test]
    fn stats_report_packing_and_policy_threads() {
        let (m, n, k) = (64, 64, 64);
        let a = filled(m * k, 11);
        let b = filled(k * n, 12);
        let mut c = vec![0.0f32; m * n];
        // 64³ sits below the measured crossover: even an 8-thread backend
        // must run it serial.
        let stats =
            gemm_stats(Backend::Threaded { threads: 8 }, false, false, m, n, k, &a, &b, &mut c);
        assert_eq!(stats.threads_used, 1, "below-crossover problems run serial");
    }

    #[test]
    #[should_panic(expected = "A length")]
    fn rejects_bad_lengths() {
        let mut c = [0.0f32; 4];
        gemm(Backend::Serial, false, false, 2, 2, 3, &[0.0; 5], &[0.0; 6], &mut c);
    }
}
