//! The unified GEMM kernel: `C = op(A) · op(B)` with independent transpose
//! flags, cache-blocked and threaded over output row bands.
//!
//! One entry point ([`gemm`]) replaces the former `matmul` / `matmul_nt` /
//! `matmul_tn` triplication: the `(transpose_a, transpose_b)` pair selects
//! the operand layout and the kernel dispatches internally. The output is
//! always row-major `[m, n]`:
//!
//! | flags      | A layout | B layout | computes  |
//! |------------|----------|----------|-----------|
//! | `(f, f)`   | `[m, k]` | `[k, n]` | `A · B`   |
//! | `(f, t)`   | `[m, k]` | `[n, k]` | `A · Bᵀ`  |
//! | `(t, f)`   | `[k, m]` | `[k, n]` | `Aᵀ · B`  |
//! | `(t, t)`   | `[k, m]` | `[n, k]` | `Aᵀ · Bᵀ` |
//!
//! ## Blocking and determinism
//!
//! `C` is split into row bands of [`TILE_M`] rows (the last band may be
//! ragged); each band is one work unit, computed entirely by one worker.
//! Inside a band the contraction runs over `k` in [`BLOCK_K`]-sized blocks,
//! ascending, accumulating into the band — so every `C[i][j]` is the sum
//! `Σₖ a·b` taken in strictly ascending `k` with a single accumulator chain.
//! Both properties are independent of the thread count, which is what makes
//! `Threaded` bit-identical to `Serial` (see the crate docs).

use crate::backend::Backend;
use crate::pool;
use mt_trace::ArgValue;

/// Rows of `C` per work unit (one band = one unit).
pub const TILE_M: usize = 32;

/// Contraction-block length: `B` (or `A` for the `TN` case) is streamed in
/// `BLOCK_K`-row slabs so a slab stays cache-resident while the band's rows
/// reuse it.
pub const BLOCK_K: usize = 64;

/// `C = op(A) · op(B)` into `out` (`[m, n]`, row-major, fully overwritten).
///
/// `m`/`n` are the output dimensions and `k` the contraction length; the
/// operand layouts implied by the flags are listed in the module docs.
///
/// The requested thread count is honored exactly (capped only by the band
/// count); deciding whether a problem is big enough to be *worth* threads is
/// the caller's policy — `mt-tensor`'s `Gemm::apply` drops tiny problems to
/// one thread, and results are bit-identical either way.
///
/// # Panics
///
/// Panics if a slice length disagrees with its implied layout.
#[allow(clippy::too_many_arguments)] // flat slice ABI; mt-tensor's Gemm descriptor is the ergonomic entry
pub fn gemm(
    backend: Backend,
    transpose_a: bool,
    transpose_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm: A length vs m*k");
    assert_eq!(b.len(), k * n, "gemm: B length vs k*n");
    assert_eq!(out.len(), m * n, "gemm: C length vs m*n");
    if m == 0 || n == 0 {
        return;
    }
    let bands = m.div_ceil(TILE_M);
    let threads = backend.threads();
    let kind = kind_label(transpose_a, transpose_b);
    let tracer = mt_trace::current();
    let _span = tracer.span_args("kernel_gemm", || {
        vec![
            ("kind", ArgValue::from(kind)),
            ("m", ArgValue::from(m)),
            ("n", ArgValue::from(n)),
            ("k", ArgValue::from(k)),
            ("tiles", ArgValue::from(bands)),
            ("threads", ArgValue::from(threads)),
        ]
    });
    let chunks: Vec<&mut [f32]> = out.chunks_mut(TILE_M * n).collect();
    pool::run_indexed(threads, chunks, |band, c_band| {
        let row0 = band * TILE_M;
        let rows = c_band.len() / n;
        c_band.fill(0.0);
        match (transpose_a, transpose_b) {
            (false, false) => band_nn(row0, rows, n, k, a, b, c_band),
            (false, true) => band_nt(row0, rows, n, k, a, b, c_band),
            (true, false) => band_tn(row0, rows, m, n, k, a, b, c_band),
            (true, true) => band_tt(row0, rows, m, n, k, a, b, c_band),
        }
    });
}

/// Trace/report label for a transpose-flag pair (`"nn"`, `"nt"`, `"tn"`,
/// `"tt"`).
pub fn kind_label(transpose_a: bool, transpose_b: bool) -> &'static str {
    match (transpose_a, transpose_b) {
        (false, false) => "nn",
        (false, true) => "nt",
        (true, false) => "tn",
        (true, true) => "tt",
    }
}

/// `C[i][j] += A[i][kk] · B[kk][j]` — the k-blocked i-k-j order streams a
/// `BLOCK_K × n` slab of `B` across the band's rows.
pub(crate) fn band_nn(
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for k0 in (0..k).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(k);
        for i in 0..rows {
            let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let av = arow[kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `C[i][j] = Σ A[i][kk] · B[j][kk]` — row-row dot products; both operands
/// are streamed along their contiguous axis.
pub(crate) fn band_nt(
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for i in 0..rows {
        let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
}

/// `C[i][j] += A[kk][i] · B[kk][j]` — for each `kk` one row of `B` is
/// broadcast-accumulated into every band row, k-blocked like `nn`.
#[allow(clippy::too_many_arguments)]
fn band_tn(
    row0: usize,
    rows: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for k0 in (0..k).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(k);
        for kk in k0..k1 {
            let acol = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for i in 0..rows {
                let av = acol[row0 + i];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `C[i][j] = Σ A[kk][i] · B[j][kk]` — the doubly-strided case; kept for
/// descriptor completeness (no call site in the model uses it on a hot
/// path).
#[allow(clippy::too_many_arguments)]
fn band_tt(
    row0: usize,
    rows: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for i in 0..rows {
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (kk, &bv) in brow.iter().enumerate() {
                acc += a[kk * m + row0 + i] * bv;
            }
            *cv = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference with the same ascending-k per-element order.
    fn reference(
        ta: bool,
        tb: bool,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    let av = if ta { a[kk * m + i] } else { a[i * k + kk] };
                    let bv = if tb { b[j * k + kk] } else { b[kk * n + j] };
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn known_values_nn() {
        let a = [1., 2., 3., 4., 5., 6.];
        let b = [7., 8., 9., 10., 11., 12.];
        let mut c = [0.0f32; 4];
        gemm(Backend::Serial, false, false, 2, 2, 3, &a, &b, &mut c);
        assert_eq!(c, [58., 64., 139., 154.]);
    }

    #[test]
    fn all_kinds_match_reference_on_ragged_shapes() {
        // m = 33 and 70 force ragged final bands (TILE_M = 32); k = 65
        // forces a ragged final k-block (BLOCK_K = 64).
        for &(m, n, k) in &[(1, 1, 1), (33, 5, 65), (70, 7, 3), (32, 64, 64)] {
            let a_len = m * k;
            let b_len = k * n;
            for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
                let a = filled(a_len, 1);
                let b = filled(b_len, 2);
                let want = reference(ta, tb, m, n, k, &a, &b);
                let mut got = vec![0.0f32; m * n];
                gemm(Backend::Serial, ta, tb, m, n, k, &a, &b, &mut got);
                let max_diff =
                    want.iter().zip(&got).map(|(w, g)| (w - g).abs()).fold(0.0f32, f32::max);
                assert!(
                    max_diff <= 1e-4,
                    "{} m={m} n={n} k={k}: max diff {max_diff}",
                    kind_label(ta, tb)
                );
            }
        }
    }

    #[test]
    fn threaded_is_bit_identical_to_serial() {
        let (m, n, k) = (70, 19, 65);
        let a = filled(m * k, 3);
        let b = filled(k * n, 4);
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut serial = vec![0.0f32; m * n];
            gemm(Backend::Serial, ta, tb, m, n, k, &a, &b, &mut serial);
            for threads in 1..=8 {
                let mut mt = vec![0.0f32; m * n];
                gemm(Backend::Threaded { threads }, ta, tb, m, n, k, &a, &b, &mut mt);
                assert!(
                    serial.iter().zip(&mt).all(|(s, t)| s.to_bits() == t.to_bits()),
                    "{} threads={threads}: not bit-identical",
                    kind_label(ta, tb)
                );
            }
        }
    }

    #[test]
    fn output_is_overwritten_not_accumulated() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [1.0f32, 2.0, 3.0, 4.0];
        let mut c = [9.0f32; 4]; // stale garbage must be cleared
        gemm(Backend::Serial, false, false, 2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    #[should_panic(expected = "A length")]
    fn rejects_bad_lengths() {
        let mut c = [0.0f32; 4];
        gemm(Backend::Serial, false, false, 2, 2, 3, &[0.0; 5], &[0.0; 6], &mut c);
    }
}
