//! The determinism contract, property-tested: `Backend::Threaded` must be
//! **bit-identical** to `Backend::Serial` for every kernel, across random
//! shapes — including ragged ones where M/N/K (or the row count) are not
//! multiples of the tile constants — and thread counts 1–8.
//!
//! Exact `to_bits` equality, not tolerance: the whole point of the fixed
//! work-unit design is that threading never re-associates a floating-point
//! reduction.

use mt_kernels::{gemm, Backend};
use proptest::prelude::*;

fn values(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// All four GEMM kinds: threaded == serial, bit for bit. Shapes up to
    /// ~2.5 × TILE_M rows so ragged final bands and ragged k-blocks are
    /// exercised (TILE_M = 32, BLOCK_K = 64).
    #[test]
    fn gemm_threaded_is_bit_identical(
        m in 1usize..80,
        n in 1usize..20,
        k in 1usize..70,
        threads in 1usize..9,
        seed in 0u64..500,
    ) {
        let a = deterministic(m * k, seed);
        let b = deterministic(k * n, seed ^ 0xabcdef);
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut serial = vec![0.0f32; m * n];
            gemm::gemm(Backend::Serial, ta, tb, m, n, k, &a, &b, &mut serial);
            let mut mt = vec![0.0f32; m * n];
            gemm::gemm(Backend::Threaded { threads }, ta, tb, m, n, k, &a, &b, &mut mt);
            prop_assert_eq!(
                bits(&serial),
                bits(&mt),
                "gemm {} m={} n={} k={} threads={}",
                gemm::kind_label(ta, tb), m, n, k, threads
            );
        }
    }

    /// Softmax forward + backward: ragged row counts vs ROW_BLOCK = 64.
    #[test]
    fn softmax_threaded_is_bit_identical(
        rows in 1usize..200,
        cols in 1usize..12,
        causal_bit in 0usize..2,
        threads in 1usize..9,
        x in values(200 * 12),
    ) {
        let causal = causal_bit == 1;
        let x = &x[..rows * cols];
        let mut serial = x.to_vec();
        mt_kernels::softmax_rows(Backend::Serial, rows, cols, causal, &mut serial);
        let mut mt = x.to_vec();
        mt_kernels::softmax_rows(Backend::Threaded { threads }, rows, cols, causal, &mut mt);
        prop_assert_eq!(bits(&serial), bits(&mt), "softmax rows={} cols={} threads={}", rows, cols, threads);

        let dy = deterministic(rows * cols, (rows * 31 + cols) as u64);
        let mut ds = vec![0.0f32; rows * cols];
        mt_kernels::softmax_rows_backward(Backend::Serial, rows, cols, &serial, &dy, &mut ds);
        let mut dt = vec![0.0f32; rows * cols];
        mt_kernels::softmax_rows_backward(Backend::Threaded { threads }, rows, cols, &serial, &dy, &mut dt);
        prop_assert_eq!(bits(&ds), bits(&dt), "softmax_backward rows={} cols={} threads={}", rows, cols, threads);
    }

    /// LayerNorm forward + backward, including the cross-block dγ/dβ
    /// reduction — the one place where a naive parallelization would break
    /// bit-equality.
    #[test]
    fn layer_norm_threaded_is_bit_identical(
        rows in 1usize..200,
        cols in 1usize..12,
        threads in 1usize..9,
        seed in 0u64..500,
    ) {
        let x = deterministic(rows * cols, seed);
        let gamma = deterministic(cols, seed ^ 1);
        let beta = deterministic(cols, seed ^ 2);
        let dy = deterministic(rows * cols, seed ^ 3);

        let mut out = [vec![0.0f32; rows * cols], vec![0.0f32; rows * cols]];
        let mut mean = [vec![0.0f32; rows], vec![0.0f32; rows]];
        let mut rstd = [vec![0.0f32; rows], vec![0.0f32; rows]];
        for (i, b) in [Backend::Serial, Backend::Threaded { threads }].into_iter().enumerate() {
            mt_kernels::layer_norm(b, rows, cols, 1e-5, &x, &gamma, &beta, &mut out[i], &mut mean[i], &mut rstd[i]);
        }
        prop_assert_eq!(bits(&out[0]), bits(&out[1]), "layer_norm rows={} cols={} threads={}", rows, cols, threads);

        let mut dx = [vec![0.0f32; rows * cols], vec![0.0f32; rows * cols]];
        let mut dg = [vec![0.0f32; cols], vec![0.0f32; cols]];
        let mut db = [vec![0.0f32; cols], vec![0.0f32; cols]];
        for (i, b) in [Backend::Serial, Backend::Threaded { threads }].into_iter().enumerate() {
            mt_kernels::layer_norm_backward(
                b, rows, cols, &x, &gamma, &mean[0], &rstd[0], &dy, &mut dx[i], &mut dg[i], &mut db[i],
            );
        }
        prop_assert_eq!(bits(&dx[0]), bits(&dx[1]), "ln_backward dx rows={} cols={} threads={}", rows, cols, threads);
        prop_assert_eq!(bits(&dg[0]), bits(&dg[1]), "ln_backward dgamma rows={} cols={} threads={}", rows, cols, threads);
        prop_assert_eq!(bits(&db[0]), bits(&db[1]), "ln_backward dbeta rows={} cols={} threads={}", rows, cols, threads);
    }

    /// GeLU forward + backward (element-chunked rather than row-blocked).
    #[test]
    fn gelu_threaded_is_bit_identical(
        len in 1usize..3000,
        threads in 1usize..9,
        seed in 0u64..500,
    ) {
        let x = deterministic(len, seed);
        let dy = deterministic(len, seed ^ 7);

        let (mut s, mut t) = (vec![0.0f32; len], vec![0.0f32; len]);
        mt_kernels::gelu(Backend::Serial, &x, &mut s);
        mt_kernels::gelu(Backend::Threaded { threads }, &x, &mut t);
        prop_assert_eq!(bits(&s), bits(&t), "gelu len={} threads={}", len, threads);

        let (mut bs, mut bt) = (vec![0.0f32; len], vec![0.0f32; len]);
        mt_kernels::gelu_backward(Backend::Serial, &x, &dy, &mut bs);
        mt_kernels::gelu_backward(Backend::Threaded { threads }, &x, &dy, &mut bt);
        prop_assert_eq!(bits(&bs), bits(&bt), "gelu_backward len={} threads={}", len, threads);
    }
}

/// Deterministic pseudo-random fill (SplitMix-style), so shapes derived from
/// proptest indices don't need a second strategy parameter per operand.
fn deterministic(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}
