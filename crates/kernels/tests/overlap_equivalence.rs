//! The overlap tentpole's bit-identity contract, end to end: a TP+SP
//! transformer layer run with `OverlapPolicy::Overlapped` (chunked gathers
//! pipelined into the band driver) or `OverlapPolicy::OverlappedRecompute`
//! (the same chunked wire schedule plus a recompute-prefetch thread hiding
//! the checkpoint replay under backward GEMMs) produces outputs, input
//! gradients, and weight gradients **bit-identical** to the exposed policy
//! — on the serial backend, and on the threaded backend at any thread
//! count.
//!
//! This holds because every band is a fixed `TILE_M`-row work unit with an
//! ascending-`k` reduction, chunking only re-partitions *which* bands start
//! when, the chunked collectives reduce in the same ascending-rank order as
//! their whole-tensor forms, and the prefetched replay runs the exact same
//! work units as the inline one — just on a helper thread. The test drives
//! ragged `(seq, batch, hidden)` shapes so chunk boundaries fall mid-band,
//! chunk counts exceed shard rows (empty chunks), and dropout masks are
//! exercised.
//!
//! Kept as the only test in this binary: it flips the process-wide default
//! backend, which would race with any sibling test.

use mt_collectives::World;
use mt_kernels::{set_default_backend, Backend};
use mt_memory::Recompute;
use mt_model::weights::LayerWeights;
use mt_model::{
    ActivationLedger, ExecMode, ExecPolicy, OverlapPolicy, TransformerConfig, TransformerLayer,
};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use proptest::prelude::*;

const T: usize = 2;

/// One TP+SP step on `T` ranks under the given policy/backend; returns each
/// rank's (output bits, input-gradient bits, weight grads).
fn run_step(
    cfg: TransformerConfig,
    overlap: OverlapPolicy,
    backend: Backend,
) -> Vec<(Vec<u32>, Vec<u32>, mt_model::weights::LayerGrads)> {
    set_default_backend(backend);
    let mut rng = SplitMix64::new(41);
    let full = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    World::run(T, |comm| {
        let layer = TransformerLayer::new(
            cfg,
            full.shard(T, comm.rank()),
            0,
            Recompute::Selective,
            CounterRng::new(5),
        );
        let mode = ExecMode::TensorSequenceParallel(&comm);
        let policy =
            ExecPolicy::builder().backend(mode).overlap(overlap).build().expect("valid policy");
        let x_local = x.chunk_axis0(T).unwrap()[comm.rank()].clone();
        let dy_local = dy.chunk_axis0(T).unwrap()[comm.rank()].clone();
        let mut ledger = ActivationLedger::new();
        let (y, state) = layer.forward(&x_local, 0, policy, &mut ledger);
        let (dx, grads) = layer.backward(&dy_local, state, policy);
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        (bits(&y), bits(&dx), grads)
    })
}

proptest! {
    #[test]
    fn overlapped_layer_is_bit_identical_to_exposed(
        seq_half in 1usize..7,     // seq = 2·seq_half, ragged vs TILE_M
        micro_batch in 1usize..3,
        head_dim in 2usize..5,     // hidden = 2 heads · head_dim
        chunk_sel in 0usize..4,
        threads in 1usize..9,
    ) {
        let chunks = [1usize, 2, 4, 7][chunk_sel];
        let cfg = TransformerConfig {
            hidden: 2 * head_dim,
            heads: 2,
            seq: 2 * seq_half,
            micro_batch,
            layers: 1,
            vocab: 16,
            dropout_p: 0.1,
            causal: true,
        };
        let reference = run_step(cfg, OverlapPolicy::Exposed, Backend::Serial);
        let threaded_exposed =
            run_step(cfg, OverlapPolicy::Exposed, Backend::Threaded { threads });
        for rank in 0..T {
            prop_assert_eq!(
                &reference[rank].0, &threaded_exposed[rank].0,
                "rank {} output bits differ: threaded exposed (threads={})", rank, threads
            );
            prop_assert_eq!(
                &reference[rank].1, &threaded_exposed[rank].1,
                "rank {} input-grad bits differ: threaded exposed (threads={})", rank, threads
            );
            prop_assert_eq!(
                &reference[rank].2, &threaded_exposed[rank].2,
                "rank {} weight grads differ: threaded exposed (threads={})", rank, threads
            );
        }
        for overlap in [
            OverlapPolicy::Overlapped { chunks },
            OverlapPolicy::OverlappedRecompute { chunks },
        ] {
            let threaded = run_step(cfg, overlap, Backend::Threaded { threads });
            let serial = run_step(cfg, overlap, Backend::Serial);
            for (label, other) in [("threaded", &threaded), ("serial", &serial)] {
                for rank in 0..T {
                    prop_assert_eq!(
                        &reference[rank].0, &other[rank].0,
                        "rank {} output bits differ: {} {} (chunks={}, threads={})",
                        rank, label, overlap.label(), chunks, threads
                    );
                    prop_assert_eq!(
                        &reference[rank].1, &other[rank].1,
                        "rank {} input-grad bits differ: {} {} (chunks={}, threads={})",
                        rank, label, overlap.label(), chunks, threads
                    );
                    prop_assert_eq!(
                        &reference[rank].2, &other[rank].2,
                        "rank {} weight grads differ: {} {} (chunks={}, threads={})",
                        rank, label, overlap.label(), chunks, threads
                    );
                }
            }
        }
    }
}
