//! The packed microkernel, property-tested against a naive triple-loop
//! oracle: for every transpose kind, ragged shape, and thread count 1–8,
//! the SIMD-dispatched packed kernel must reproduce the textbook
//! `Σₖ a·b` ascending-`k` accumulation **bit for bit** — not within
//! tolerance. That equality is what licenses the packing/microkernel
//! rewrite to claim it changed throughput and nothing else.
//!
//! A second property pins the packing normalization itself: packing a
//! transposed operand must produce byte-identical panels to transposing
//! the operand first and packing it as untransposed.

use mt_kernels::gemm::{self, PackedB};
use mt_kernels::Backend;
use proptest::prelude::*;

/// The oracle: naive triple loop, one accumulator per output element,
/// strictly ascending `k`, plain `mul` then `add`. This is the exact
/// float expression the kernel contract promises for every `C[i][j]`.
fn naive_gemm(ta: bool, tb: bool, m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                let av = if ta { a[kk * m + i] } else { a[i * k + kk] };
                let bv = if tb { b[j * k + kk] } else { b[kk * n + j] };
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// Packed microkernel vs oracle: all four transpose kinds × ragged
    /// shapes (m/n/k deliberately not multiples of TILE_M = 32, MR = 8,
    /// NR = 8) × threads 1–8, exact to_bits equality.
    #[test]
    fn packed_kernel_matches_naive_oracle_bitwise(
        m in 1usize..80,
        n in 1usize..40,
        k in 1usize..70,
        threads in 1usize..9,
        seed in 0u64..500,
    ) {
        let a = deterministic(m * k, seed);
        let b = deterministic(k * n, seed ^ 0x5eed);
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let want = naive_gemm(ta, tb, m, n, k, &a, &b);
            let mut serial = vec![0.0f32; m * n];
            gemm::gemm(Backend::Serial, ta, tb, m, n, k, &a, &b, &mut serial);
            prop_assert_eq!(
                bits(&want),
                bits(&serial),
                "serial vs oracle: gemm {} m={} n={} k={}",
                gemm::kind_label(ta, tb), m, n, k
            );
            let mut mt = vec![0.0f32; m * n];
            gemm::gemm(Backend::Threaded { threads }, ta, tb, m, n, k, &a, &b, &mut mt);
            prop_assert_eq!(
                bits(&want),
                bits(&mt),
                "threaded vs oracle: gemm {} m={} n={} k={} threads={}",
                gemm::kind_label(ta, tb), m, n, k, threads
            );
        }
    }

    /// Transpose-aware packing is a normalization: packing `Bᵀ` directly
    /// must equal transposing `B` by hand and packing the result, padding
    /// included.
    #[test]
    fn packing_transposed_equals_transpose_then_pack(
        n in 1usize..40,
        k in 1usize..70,
        seed in 0u64..500,
    ) {
        // b: [k, n] row-major; bt: the explicit [n, k] transpose.
        let b = deterministic(k * n, seed);
        let mut bt = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let direct = PackedB::pack(true, n, k, &bt);
        let via_transpose = PackedB::pack(false, n, k, &b);
        prop_assert_eq!(
            bits(direct.data()),
            bits(via_transpose.data()),
            "n={} k={}: packed panels diverge between the two routes",
            n, k
        );
    }
}

/// Deterministic pseudo-random fill (SplitMix-style), so operands derive
/// from proptest shape indices without a second strategy per operand.
fn deterministic(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}
