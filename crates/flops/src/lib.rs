//! # mt-flops
//!
//! FLOPs accounting from Appendix A of *"Reducing Activation Recomputation
//! in Large Transformer Models"*, and the MFU/HFU definitions of Section 6.3.
//!
//! * **Model FLOPs** (Equation 7) — the arithmetic a single iteration
//!   fundamentally requires, independent of implementation:
//!   `72·B·L·s·h²·(1 + s/6h + v/12hL)`.
//! * **Hardware FLOPs** — what the implementation actually executes. With
//!   selective recomputation the attention core is replayed once
//!   (Equation 8, `s/6h → s/3h`); with full recomputation the entire layer
//!   forward is replayed (an extra `model/3` minus the never-recomputed
//!   logits head).
//! * **MFU / HFU** — model/hardware FLOPs per second divided by aggregate
//!   peak FLOPs (Section 6.3, following Chowdhery et al.).
//!
//! ## Example
//!
//! ```
//! use mt_flops::FlopsModel;
//! use mt_memory::{ModelShape, Recompute};
//!
//! let gpt3 = ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 };
//! let f = FlopsModel::new(gpt3, /*batch*/ 64);
//! // Appendix A: hardware/model ≈ 1 + s/6h for selective recomputation.
//! let ratio = f.hardware_flops(Recompute::Selective) / f.model_flops();
//! assert!((ratio - (1.0 + 2048.0 / (6.0 * 12288.0))).abs() < 0.01);
//! ```

#![warn(missing_docs)]

use mt_memory::{ModelShape, Recompute};
use serde::{Deserialize, Serialize};

/// Peak dense fp16 throughput of one NVIDIA A100, FLOP/s (Section 6.3
/// footnote: 312 teraFLOP/s).
pub const A100_PEAK_FLOPS: f64 = 312e12;

/// Evaluates Appendix A for one `(model shape, batch)` pair.
///
/// `batch` is the number of sequences processed per iteration on the model
/// replica (the paper's evaluations use global batch = microbatch ×
/// number-of-microbatches with no data parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlopsModel {
    shape: ModelShape,
    batch: u64,
}

impl FlopsModel {
    /// Creates a FLOPs model.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(shape: ModelShape, batch: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        FlopsModel { shape, batch }
    }

    /// The shape under evaluation.
    pub fn shape(&self) -> ModelShape {
        self.shape
    }

    /// Forward-pass FLOPs of the `L` transformer layers only:
    /// `L · (24·B·s·h² + 4·B·s²·h)`.
    pub fn forward_layer_flops(&self) -> f64 {
        let b = self.batch as f64;
        let s = self.shape.seq as f64;
        let h = self.shape.hidden as f64;
        let l = self.shape.layers as f64;
        l * (24.0 * b * s * h * h + 4.0 * b * s * s * h)
    }

    /// Forward-pass FLOPs of the logits head: `2·B·s·h·v`.
    pub fn forward_logits_flops(&self) -> f64 {
        let b = self.batch as f64;
        2.0 * b * self.shape.seq as f64 * self.shape.hidden as f64 * self.shape.vocab as f64
    }

    /// Forward FLOPs of the attention core alone (`QKᵀ` + attention over V):
    /// `L · 4·B·s²·h` — the physical cost of one selective-recompute replay.
    /// The `mt-perf` timing model prices the replay with this quantity.
    pub fn attention_core_flops(&self) -> f64 {
        let b = self.batch as f64;
        let s = self.shape.seq as f64;
        self.shape.layers as f64 * 4.0 * b * s * s * self.shape.hidden as f64
    }

    /// The recompute FLOPs Equation 8 adds on top of Equation 7:
    /// `72·B·L·s·h² · s/6h = 12·B·L·s²·h`.
    ///
    /// Note: the paper's Equation 8 (and its quoted 2.7%/1.6% overheads and
    /// the `1 + s/6h` hardware/model ratio) charges the attention-core
    /// replay at *three times* the single forward replay of
    /// [`FlopsModel::attention_core_flops`]. We follow the paper's accounting here so
    /// HFU numbers are comparable; the literal one-replay overhead would be
    /// `s/18h`.
    pub fn selective_recompute_flops_eq8(&self) -> f64 {
        3.0 * self.attention_core_flops()
    }

    /// Equation 7: model FLOPs per iteration,
    /// `72·B·L·s·h²·(1 + s/6h + v/12hL)` — i.e. 3× the forward pass
    /// (backward costs double the forward).
    pub fn model_flops(&self) -> f64 {
        3.0 * (self.forward_layer_flops() + self.forward_logits_flops())
    }

    /// Hardware FLOPs per iteration for a recomputation policy:
    ///
    /// * `None` — equals model FLOPs.
    /// * `Selective` — Equation 8: `72·B·L·s·h²·(1 + s/3h + v/12hL)`
    ///   (see [`FlopsModel::selective_recompute_flops_eq8`] for the
    ///   accounting convention).
    /// * `Full` — model FLOPs + one replay of every layer's forward pass
    ///   (the logits head is checkpoint-free and never replayed).
    pub fn hardware_flops(&self, recompute: Recompute) -> f64 {
        match recompute {
            Recompute::None => self.model_flops(),
            Recompute::Selective => self.model_flops() + self.selective_recompute_flops_eq8(),
            Recompute::Full => self.model_flops() + self.forward_layer_flops(),
        }
    }

    /// Appendix A's closing approximation: `hardware/model ≈ 1 + s/6h`
    /// for selective recomputation.
    pub fn selective_ratio_approx(&self) -> f64 {
        1.0 + self.shape.seq as f64 / (6.0 * self.shape.hidden as f64)
    }

    /// FLOPs overhead fraction of selective recomputation under the paper's
    /// Equation 8 accounting (Section 5: 2.7% for GPT-3, 1.6% for MT-NLG).
    pub fn selective_overhead_fraction(&self) -> f64 {
        self.selective_recompute_flops_eq8() / self.model_flops()
    }

    /// Model FLOPs utilization: model FLOPs ÷ iteration seconds ÷
    /// (GPUs × peak FLOP/s).
    pub fn mfu(&self, iteration_s: f64, gpus: u64, peak_flops: f64) -> f64 {
        self.model_flops() / iteration_s / (gpus as f64 * peak_flops)
    }

    /// Hardware FLOPs utilization (same denominator, hardware numerator).
    pub fn hfu(&self, recompute: Recompute, iteration_s: f64, gpus: u64, peak_flops: f64) -> f64 {
        self.hardware_flops(recompute) / iteration_s / (gpus as f64 * peak_flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> FlopsModel {
        let shape = ModelShape { heads: 96, hidden: 12288, layers: 96, seq: 2048, vocab: 51200 };
        FlopsModel::new(shape, 64)
    }

    fn mtnlg() -> FlopsModel {
        let shape = ModelShape { heads: 128, hidden: 20480, layers: 105, seq: 2048, vocab: 51200 };
        FlopsModel::new(shape, 280)
    }

    #[test]
    fn equation7_closed_form() {
        // model_flops must equal 72·B·L·s·h²·(1 + s/6h + v/12hL) exactly.
        let f = gpt3();
        let (b, l, s, h, v) = (64.0, 96.0, 2048.0, 12288.0, 51200.0);
        let closed = 72.0 * b * l * s * h * h * (1.0 + s / (6.0 * h) + v / (12.0 * h * l));
        let rel = (f.model_flops() - closed).abs() / closed;
        assert!(rel < 1e-12, "relative error {rel}");
    }

    #[test]
    fn equation8_closed_form() {
        let f = gpt3();
        let (b, l, s, h, v) = (64.0, 96.0, 2048.0, 12288.0, 51200.0);
        let closed = 72.0 * b * l * s * h * h * (1.0 + s / (3.0 * h) + v / (12.0 * h * l));
        let rel = (f.hardware_flops(Recompute::Selective) - closed).abs() / closed;
        assert!(rel < 1e-12, "relative error {rel}");
    }

    #[test]
    fn selective_overhead_matches_section5() {
        // "only 2.7% and 1.6% FLOPs overhead for these two models".
        assert!((gpt3().selective_overhead_fraction() - 0.027).abs() < 0.002);
        assert!((mtnlg().selective_overhead_fraction() - 0.016).abs() < 0.002);
    }

    #[test]
    fn ratio_approximation_is_tight() {
        let f = gpt3();
        let exact = f.hardware_flops(Recompute::Selective) / f.model_flops();
        assert!((exact - f.selective_ratio_approx()).abs() < 0.005);
    }

    #[test]
    fn full_recompute_is_about_a_third_more() {
        let f = gpt3();
        let ratio = f.hardware_flops(Recompute::Full) / f.model_flops();
        assert!((1.30..1.3334).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mfu_reproduces_table5_22b() {
        // Table 5, 22B row: iteration 1.10 s on 8 GPUs at batch 4 → 41.5% MFU.
        let shape = ModelShape { heads: 64, hidden: 6144, layers: 48, seq: 2048, vocab: 51200 };
        let f = FlopsModel::new(shape, 4);
        let mfu = f.mfu(1.10, 8, A100_PEAK_FLOPS);
        assert!((mfu - 0.415).abs() < 0.01, "22B MFU {mfu:.3}");
    }

    #[test]
    fn mfu_reproduces_table5_530b() {
        // Table 5, 530B row: iteration 37.83 s on 280 GPUs at batch 280 → 56.0%.
        let f = mtnlg();
        let mfu = f.mfu(37.83, 280, A100_PEAK_FLOPS);
        assert!((mfu - 0.560).abs() < 0.01, "530B MFU {mfu:.3}");
    }

    #[test]
    fn hfu_exceeds_mfu_exactly_when_recomputing() {
        let f = gpt3();
        let mfu = f.mfu(10.0, 64, A100_PEAK_FLOPS);
        assert_eq!(f.hfu(Recompute::None, 10.0, 64, A100_PEAK_FLOPS), mfu);
        assert!(f.hfu(Recompute::Selective, 10.0, 64, A100_PEAK_FLOPS) > mfu);
        assert!(
            f.hfu(Recompute::Full, 10.0, 64, A100_PEAK_FLOPS)
                > f.hfu(Recompute::Selective, 10.0, 64, A100_PEAK_FLOPS)
        );
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let shape = ModelShape { heads: 8, hidden: 512, layers: 4, seq: 128, vocab: 1000 };
        let f1 = FlopsModel::new(shape, 1).model_flops();
        let f4 = FlopsModel::new(shape, 4).model_flops();
        assert!((f4 / f1 - 4.0).abs() < 1e-9);
    }
}
