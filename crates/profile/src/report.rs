//! Profile assembly: attribution + critical path + ledger cross-checks +
//! divergence vs the analytical model, in one serializable report.

use crate::attrib::{self, is_collective, CategoryNs, TrackSegments, CATEGORIES};
use crate::critical::{self, CritSegment};
use crate::timeline::Timeline;
use mt_collectives::cost::CommCostModel;
use mt_collectives::CollectiveKind;
use mt_perf::GpuSpec;
use mt_trace::{MetricsRegistry, MetricsSnapshot, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Report format version (`reports/PROFILE_*.json`).
///
/// v2: `CategoryNs` splits `recompute` into `exposed_recompute` /
/// `overlapped_recompute`, and ranks carry the recompute ledger mirror.
pub const SCHEMA_VERSION: u64 = 2;

/// One rank's expected `StepTiming` ledger, in µs — what the trace's
/// close-time span args must reproduce **exactly**. A struct rather than
/// a tuple so call sites name the four integers they pin; mirrors
/// `mt_model::StepTiming` without depending on the model crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpectedTiming {
    /// Total ledger-wrapped collective time.
    pub comm_us: u64,
    /// Exposed (unhidden) collective time.
    pub exposed_us: u64,
    /// Total activation recompute time (inline + prefetched).
    pub recompute_us: u64,
    /// Recompute time the backward pass failed to hide.
    pub exposed_recompute_us: u64,
}

/// Inputs to [`analyze`] beyond the trace itself.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Report label (config name: `overlapped_c2`, …).
    pub label: String,
    /// α–β model of the profiled interconnect, for the measured-vs-
    /// predicted communication divergence entry.
    pub link: Option<CommCostModel>,
    /// GPU model for the GEMM-efficiency divergence entry.
    pub gpu: Option<GpuSpec>,
    /// Hidden size for [`GpuSpec::achieved_gemm_flops`] (ignored without
    /// `gpu`).
    pub hidden: u64,
    /// Per-rank `StepTiming` ledger the trace must reproduce **exactly**.
    /// Analysis fails on any mismatch.
    pub expected_ledger: BTreeMap<u32, ExpectedTiming>,
}

/// One rank's attribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankProfile {
    /// Rank / track id.
    pub track: u32,
    /// The rank's step wall time (the shared global window), ns.
    pub wall_ns: u64,
    /// Per-category ns; sums to `wall_ns` exactly.
    pub categories: CategoryNs,
    /// Σ `comm_us` close-args over ledger-wrapped comm spans
    /// (`comm_exposed`, `gemm_overlapped`) — the trace's mirror of the
    /// rank's `CommTiming::comm_us`.
    pub wrapped_comm_us: u64,
    /// Σ `exposed_us` close-args — mirror of `CommTiming::exposed_us`.
    pub wrapped_exposed_us: u64,
    /// Σ `recompute_us` close-args over ledger-wrapped recompute spans
    /// (`recompute_attention`, `recompute_layer`, `recompute_overlapped`)
    /// — the trace's mirror of the rank's `StepTiming::recompute_us`.
    pub wrapped_recompute_us: u64,
    /// Σ `exposed_us` close-args over the same recompute spans — mirror
    /// of `StepTiming::exposed_recompute_us`.
    pub wrapped_exposed_recompute_us: u64,
    /// Number of spans recorded on this rank.
    pub spans: u64,
}

/// The critical path, summarized for the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CritSummary {
    /// Path length, ns — equals `step_wall_ns` exactly.
    pub total_ns: u64,
    /// Cross-rank rendezvous handoffs along the path.
    pub rendezvous: u64,
    /// Per-category split of the path (each slice attributed via its
    /// rank's segments); sums to `total_ns` exactly.
    pub categories: CategoryNs,
    /// The path itself, forward order, contiguous.
    pub segments: Vec<CritSegment>,
}

/// One measured-vs-predicted comparison against the `mt-perf` models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Divergence {
    /// What is being compared (`comm`, `gemm`).
    pub phase: String,
    /// Measured from the trace, milliseconds (max over ranks).
    pub measured_ms: f64,
    /// Predicted by the analytical model, milliseconds.
    pub predicted_ms: f64,
    /// `measured / predicted` (NaN when the prediction is 0).
    pub ratio: f64,
}

/// One line of the aggregated top-down call tree (pre-order, aggregated
/// across ranks by span-name path).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeLine {
    /// Nesting depth of this name path.
    pub depth: u64,
    /// Span name.
    pub name: String,
    /// Occurrences across all ranks.
    pub calls: u64,
    /// Total ns across occurrences (children included).
    pub total_ns: u64,
    /// Self ns across occurrences (children excluded).
    pub self_ns: u64,
}

/// The full profile of one traced run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Format version.
    pub schema_version: u64,
    /// Config label this profile describes.
    pub label: String,
    /// Step wall time: the global trace window, ns.
    pub step_wall_ns: u64,
    /// Rank id (stringified for JSON) → attribution.
    pub ranks: BTreeMap<String, RankProfile>,
    /// Cross-rank critical path.
    pub critical_path: CritSummary,
    /// Measured-vs-predicted entries (empty without models in the
    /// options).
    pub divergence: Vec<Divergence>,
    /// Aggregated top-down call tree.
    pub top_down: Vec<TreeLine>,
    /// Per-collective latency and per-kernel duration distributions
    /// (exact-bucket histograms).
    pub histograms: MetricsSnapshot,
}

impl ProfileReport {
    /// Max over ranks of the ledger-mirrored exposed comm, µs.
    pub fn max_wrapped_exposed_us(&self) -> u64 {
        self.ranks.values().map(|r| r.wrapped_exposed_us).max().unwrap_or(0)
    }

    /// Max over ranks of the ledger-mirrored total comm, µs.
    pub fn max_wrapped_comm_us(&self) -> u64 {
        self.ranks.values().map(|r| r.wrapped_comm_us).max().unwrap_or(0)
    }

    /// Max over ranks of the ledger-mirrored total recompute, µs.
    pub fn max_wrapped_recompute_us(&self) -> u64 {
        self.ranks.values().map(|r| r.wrapped_recompute_us).max().unwrap_or(0)
    }

    /// Max over ranks of the ledger-mirrored exposed recompute, µs.
    pub fn max_wrapped_exposed_recompute_us(&self) -> u64 {
        self.ranks.values().map(|r| r.wrapped_exposed_recompute_us).max().unwrap_or(0)
    }

    /// Per-category max over ranks, ns (the conservative cross-rank
    /// aggregation used by diffs).
    pub fn max_categories(&self) -> CategoryNs {
        let mut out = CategoryNs::default();
        for cat in CATEGORIES {
            let v = self.ranks.values().map(|r| r.categories.get(cat)).max().unwrap_or(0);
            out.add(cat, v);
        }
        out
    }
}

/// Profiles a traced run: timeline reconstruction, attribution, critical
/// path, ledger cross-check, divergence, histograms — with every exact
/// invariant enforced before the report is returned.
pub fn analyze(events: &[TraceEvent], opts: &AnalyzeOptions) -> Result<ProfileReport, String> {
    let tl = Timeline::build(events)?;
    let wall_ns = tl.wall_ns();
    let segments = attrib::segment_timeline(&tl);
    let by_track: BTreeMap<u32, &TrackSegments> = segments.iter().map(|s| (s.track, s)).collect();

    // Per-rank attribution + the ledger mirror from close-time span args.
    let mut ranks = BTreeMap::new();
    for (id, track) in &tl.tracks {
        let categories = by_track[id].totals();
        if categories.total() != wall_ns {
            return Err(format!(
                "rank {id}: categories sum to {} ns but the window is {wall_ns} ns",
                categories.total()
            ));
        }
        let mut wrapped_comm_us = 0u64;
        let mut wrapped_exposed_us = 0u64;
        let mut wrapped_recompute_us = 0u64;
        let mut wrapped_exposed_recompute_us = 0u64;
        for span in &track.spans {
            if span.name == "comm_exposed" || span.name == "gemm_overlapped" {
                wrapped_comm_us += span.arg_u64("comm_us").unwrap_or(0);
                wrapped_exposed_us += span.arg_u64("exposed_us").unwrap_or(0);
            }
            if span.name == "recompute_attention"
                || span.name == "recompute_layer"
                || span.name == "recompute_overlapped"
            {
                wrapped_recompute_us += span.arg_u64("recompute_us").unwrap_or(0);
                wrapped_exposed_recompute_us += span.arg_u64("exposed_us").unwrap_or(0);
            }
        }
        ranks.insert(
            id.to_string(),
            RankProfile {
                track: *id,
                wall_ns,
                categories,
                wrapped_comm_us,
                wrapped_exposed_us,
                wrapped_recompute_us,
                wrapped_exposed_recompute_us,
                spans: track.spans.len() as u64,
            },
        );
    }

    // Exact ledger cross-check: the trace's wrapped-comm and wrapped-
    // recompute integers must reproduce the StepTiming ledger bit for bit.
    for (rank, expected) in &opts.expected_ledger {
        let Some(profile) = ranks.get(&rank.to_string()) else {
            return Err(format!("ledger check: rank {rank} missing from trace"));
        };
        let got = ExpectedTiming {
            comm_us: profile.wrapped_comm_us,
            exposed_us: profile.wrapped_exposed_us,
            recompute_us: profile.wrapped_recompute_us,
            exposed_recompute_us: profile.wrapped_exposed_recompute_us,
        };
        if got != *expected {
            return Err(format!(
                "ledger check failed on rank {rank}: trace wraps {got:?}, StepTiming ledger \
                 says {expected:?}"
            ));
        }
    }

    // Critical path, attributed slice by slice through each rank's own
    // segment tiling.
    let rounds = critical::collective_rounds(&tl)?;
    let path = critical::critical_path(&tl, &rounds);
    let mut path_categories = CategoryNs::default();
    for seg in &path.segments {
        path_categories.accumulate(&by_track[&seg.track].slice(seg.start_ns, seg.end_ns));
    }
    let critical_path = CritSummary {
        total_ns: path.total_ns(),
        rendezvous: path.rendezvous,
        categories: path_categories,
        segments: path.segments,
    };

    // Divergence vs the analytical models.
    let mut divergence = Vec::new();
    if let Some(link) = &opts.link {
        let predicted_s: f64 = rounds
            .iter()
            .filter_map(|round| {
                let (&id, &si) = round.spans.iter().next()?;
                let span = &tl.tracks[&id].spans[si];
                let kind = collective_kind(&span.name)?;
                let payload = span.arg_u64("payload_bytes")?;
                let n = span.arg_u64("group_size").unwrap_or(tl.tracks.len() as u64);
                Some(link.time(kind, payload, n))
            })
            .sum();
        let measured_ns = tl
            .tracks
            .values()
            .map(|t| {
                t.spans.iter().filter(|s| is_collective(&s.name)).map(|s| s.dur_ns()).sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        let measured_ms = measured_ns as f64 / 1e6;
        let predicted_ms = predicted_s * 1e3;
        divergence.push(Divergence {
            phase: "comm".to_string(),
            measured_ms,
            predicted_ms,
            ratio: measured_ms / predicted_ms,
        });
    }
    if let Some(gpu) = &opts.gpu {
        let per_rank_gemm = |track: &crate::timeline::Track| -> (u64, f64) {
            let mut ns = 0u64;
            let mut flops = 0.0f64;
            for s in &track.spans {
                if s.name == "kernel_gemm" || s.name == "gemm_overlapped" {
                    if s.name == "kernel_gemm" {
                        ns += s.dur_ns();
                    }
                    if let (Some(m), Some(n), Some(k)) =
                        (s.arg_u64("m"), s.arg_u64("n"), s.arg_u64("k"))
                    {
                        flops += 2.0 * m as f64 * n as f64 * k as f64;
                    }
                }
            }
            (ns, flops)
        };
        let (measured_ns, flops) =
            tl.tracks.values().map(per_rank_gemm).max_by(|a, b| a.0.cmp(&b.0)).unwrap_or((0, 0.0));
        let measured_ms = measured_ns as f64 / 1e6;
        let predicted_ms = flops / gpu.achieved_gemm_flops(opts.hidden.max(1)) * 1e3;
        divergence.push(Divergence {
            phase: "gemm".to_string(),
            measured_ms,
            predicted_ms,
            ratio: measured_ms / predicted_ms,
        });
    }

    // Duration distributions: per-collective latency and per-kernel
    // duration, in the exact-bucket histogram metric.
    let registry = MetricsRegistry::new();
    for track in tl.tracks.values() {
        for span in &track.spans {
            let dur_us = span.dur_ns() / 1_000;
            if is_collective(&span.name) {
                registry.histogram_record(&format!("comm.{}.latency_us", span.name), dur_us);
            } else if span.name.starts_with("kernel_") || span.name == "gemm_overlapped" {
                registry.histogram_record(&format!("kernel.{}.dur_us", span.name), dur_us);
            }
        }
    }

    let report = ProfileReport {
        schema_version: SCHEMA_VERSION,
        label: opts.label.clone(),
        step_wall_ns: wall_ns,
        ranks,
        critical_path,
        divergence,
        top_down: top_down(&tl),
        histograms: registry.snapshot(),
    };
    verify(&report)?;
    Ok(report)
}

/// Checks every exact invariant a well-formed report must satisfy.
/// Returns the first violation as an error — this is what the CI profile
/// smoke step runs against freshly generated JSON.
pub fn verify(report: &ProfileReport) -> Result<(), String> {
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != supported {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    if report.ranks.is_empty() {
        return Err("report has no ranks".to_string());
    }
    for (key, rank) in &report.ranks {
        if key != &rank.track.to_string() {
            return Err(format!("rank key {key:?} does not match track {}", rank.track));
        }
        if rank.wall_ns != report.step_wall_ns {
            return Err(format!(
                "rank {key}: wall {} ns != step wall {} ns",
                rank.wall_ns, report.step_wall_ns
            ));
        }
        if rank.categories.total() != rank.wall_ns {
            return Err(format!(
                "rank {key}: categories sum to {} ns, wall time is {} ns — attribution must \
                 be exact",
                rank.categories.total(),
                rank.wall_ns
            ));
        }
    }
    let cp = &report.critical_path;
    if cp.total_ns != report.step_wall_ns {
        return Err(format!(
            "critical path totals {} ns != step wall {} ns",
            cp.total_ns, report.step_wall_ns
        ));
    }
    if cp.categories.total() != cp.total_ns {
        return Err(format!(
            "critical-path categories sum to {} ns != path total {} ns",
            cp.categories.total(),
            cp.total_ns
        ));
    }
    let mut sum = 0u64;
    for (i, seg) in cp.segments.iter().enumerate() {
        if seg.end_ns < seg.start_ns {
            return Err(format!("critical-path segment {i} is inverted"));
        }
        if i > 0 && cp.segments[i - 1].end_ns != seg.start_ns {
            return Err(format!("critical-path segment {i} does not abut its predecessor"));
        }
        sum += seg.end_ns - seg.start_ns;
    }
    if sum != cp.total_ns {
        return Err(format!("critical-path segments sum to {sum} ns != total {} ns", cp.total_ns));
    }
    Ok(())
}

fn collective_kind(name: &str) -> Option<CollectiveKind> {
    Some(match name {
        "all_reduce" => CollectiveKind::AllReduce,
        "all_gather" => CollectiveKind::AllGather,
        "reduce_scatter" => CollectiveKind::ReduceScatter,
        "broadcast" => CollectiveKind::Broadcast,
        "barrier" => CollectiveKind::Barrier,
        "send_recv" => CollectiveKind::SendRecv,
        _ => return None,
    })
}

/// Aggregated top-down tree: spans merged by name path across all ranks.
fn top_down(tl: &Timeline) -> Vec<TreeLine> {
    #[derive(Default)]
    struct Node {
        calls: u64,
        total_ns: u64,
        self_ns: u64,
        children: BTreeMap<String, Node>,
    }
    fn add(node: &mut Node, track: &crate::timeline::Track, idx: usize) {
        let span = &track.spans[idx];
        let child_ns: u64 = span.children.iter().map(|&c| track.spans[c].dur_ns()).sum();
        node.calls += 1;
        node.total_ns += span.dur_ns();
        node.self_ns += span.dur_ns().saturating_sub(child_ns);
        for &c in &span.children {
            add(node.children.entry(track.spans[c].name.clone()).or_default(), track, c);
        }
    }
    let mut root = Node::default();
    for track in tl.tracks.values() {
        for &r in &track.roots {
            add(root.children.entry(track.spans[r].name.clone()).or_default(), track, r);
        }
    }
    fn flatten(children: &BTreeMap<String, Node>, depth: u64, out: &mut Vec<TreeLine>) {
        let mut ordered: Vec<(&String, &Node)> = children.iter().collect();
        ordered.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        for (name, node) in ordered {
            out.push(TreeLine {
                depth,
                name: name.clone(),
                calls: node.calls,
                total_ns: node.total_ns,
                self_ns: node.self_ns,
            });
            if depth < 8 {
                flatten(&node.children, depth + 1, out);
            }
        }
    }
    let mut out = Vec::new();
    flatten(&root.children, 0, &mut out);
    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the report as a terminal summary: per-rank attribution bars,
/// the critical-path split, divergence, latency distributions, and the
/// top-down tree.
pub fn render_ascii(report: &ProfileReport) -> String {
    let mut out = String::new();
    let wall = report.step_wall_ns.max(1);
    writeln!(
        out,
        "profile {:?}: step wall {:.3} ms, {} rank(s), critical path {} rendezvous handoff(s)",
        report.label,
        ms(report.step_wall_ns),
        report.ranks.len(),
        report.critical_path.rendezvous
    )
    .unwrap();

    writeln!(out, "\nper-rank attribution (each column sums to wall time exactly):").unwrap();
    for rank in report.ranks.values() {
        writeln!(out, "  rank {}:", rank.track).unwrap();
        for (label, ns) in rank.categories.entries() {
            if ns == 0 {
                continue;
            }
            let frac = ns as f64 / wall as f64;
            let bar = "#".repeat((frac * 32.0).round() as usize);
            writeln!(out, "    {label:<16} {:>9.3} ms  {:>5.1}%  |{bar}", ms(ns), frac * 100.0)
                .unwrap();
        }
        writeln!(
            out,
            "    ledger mirror: comm {} µs, exposed {} µs, recompute {} µs, exposed \
             recompute {} µs",
            rank.wrapped_comm_us,
            rank.wrapped_exposed_us,
            rank.wrapped_recompute_us,
            rank.wrapped_exposed_recompute_us
        )
        .unwrap();
    }

    writeln!(out, "\ncritical path ({:.3} ms, sums exactly):", ms(report.critical_path.total_ns))
        .unwrap();
    for (label, ns) in report.critical_path.categories.entries() {
        if ns > 0 {
            writeln!(out, "    {label:<16} {:>9.3} ms", ms(ns)).unwrap();
        }
    }

    if !report.divergence.is_empty() {
        writeln!(out, "\nmeasured vs predicted (mt-perf α–β / GEMM-efficiency):").unwrap();
        for d in &report.divergence {
            writeln!(
                out,
                "    {:<6} measured {:>9.3} ms  predicted {:>9.3} ms  ×{:.2}",
                d.phase, d.measured_ms, d.predicted_ms, d.ratio
            )
            .unwrap();
        }
    }

    let hist_lines: Vec<String> = report
        .histograms
        .metrics
        .iter()
        .filter_map(|(name, metric)| match metric {
            mt_trace::Metric::Histogram(h) => Some(format!(
                "    {name:<34} n={:<5} p50={:<7} p95={:<7} p99={:<7} max={} µs",
                h.count,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            )),
            _ => None,
        })
        .collect();
    if !hist_lines.is_empty() {
        writeln!(out, "\nduration distributions:").unwrap();
        for line in hist_lines {
            writeln!(out, "{line}").unwrap();
        }
    }

    writeln!(out, "\ntop-down (aggregated across ranks):").unwrap();
    for line in report.top_down.iter().take(40) {
        writeln!(
            out,
            "    {:indent$}{:<24} calls {:<6} total {:>9.3} ms  self {:>9.3} ms",
            "",
            line.name,
            line.calls,
            ms(line.total_ns),
            ms(line.self_ns),
            indent = (line.depth as usize) * 2
        )
        .unwrap();
    }
    out
}
