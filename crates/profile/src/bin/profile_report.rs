//! `profile-report`: the `mt-profile` driver.
//!
//! ```text
//! profile-report [--smoke] [--out DIR]   # trace a TP+SP step and profile it
//! profile-report --check <PROFILE.json>  # re-verify every exact invariant
//! profile-report --diff <base> <fresh>   # per-category delta narrative
//! ```
//!
//! The default (`--smoke`) mode runs three traced 2-rank workloads over a
//! simulated α–β link — a full trainer step (forward, backward with
//! selective recompute, optimizer) with exposed collectives, one
//! transformer layer under the chunked comm-overlap driver, and one under
//! the recompute-prefetch driver — profiles all three, and hard-asserts
//! the exact invariants before writing anything:
//!
//! * per rank, category nanoseconds sum to the step wall time;
//! * the trace's wrapped-comm and wrapped-recompute close-args equal the
//!   rank's `StepTiming` ledger integer for integer;
//! * the cross-rank critical path telescopes to the step wall exactly;
//! * the trainer profile shows nonzero exposed recompute and optimizer
//!   time, the overlapped profile nonzero overlapped comm, and the
//!   recompute-prefetch profile nonzero overlapped recompute — the
//!   categories the paper's accounting turns on.
//!
//! Outputs `DIR/PROFILE_step.json` (schema in [`ProfileDocument`]) and
//! `DIR/PROFILE_step.txt` (the ASCII rendering, also printed to stdout).
//! `--check` is the CI smoke gate: it deserializes a document and re-runs
//! [`mt_profile::verify`] on every profile. `--diff` prints the
//! [`mt_profile::narrative`] comparison `bench_gate` shows on failure.

use mt_collectives::cost::CommCostModel;
use mt_collectives::World;
use mt_kernels::{set_default_backend, Backend};
use mt_memory::Recompute;
use mt_model::gpt::Gpt;
use mt_model::trainer::{Trainer, TrainerConfig};
use mt_model::weights::LayerWeights;
use mt_model::{
    take_step_timing, ActivationLedger, ExecMode, ExecPolicy, OverlapPolicy, StepTiming,
    TransformerConfig, TransformerLayer,
};
use mt_perf::GpuSpec;
use mt_profile::{
    analyze, diff_documents, load_profiles, render_ascii, verify, AnalyzeOptions, ExpectedTiming,
    ProfileDocument, ProfileReport,
};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use mt_trace::Tracer;
use std::collections::BTreeMap;
use std::path::Path;

const T: usize = 2;
const SEED: u64 = 1234;

/// The tiny-GPT config the repo's traced examples train for real.
fn config() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 16,
        micro_batch: 2,
        layers: 2,
        vocab: 64,
        dropout_p: 0.1,
        causal: true,
    }
}

fn data(cfg: &TransformerConfig) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(99);
    let n = cfg.tokens();
    let tokens: Vec<usize> = (0..n).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect();
    let mut targets = tokens.clone();
    targets.rotate_left(cfg.micro_batch);
    (tokens, targets)
}

fn ledger_map(per_rank: &[StepTiming]) -> BTreeMap<u32, ExpectedTiming> {
    per_rank
        .iter()
        .enumerate()
        .map(|(rank, t)| {
            (
                rank as u32,
                ExpectedTiming {
                    comm_us: t.comm_us,
                    exposed_us: t.exposed_us,
                    recompute_us: t.recompute_us,
                    exposed_recompute_us: t.exposed_recompute_us,
                },
            )
        })
        .collect()
}

/// One traced trainer step (forward + selective-recompute backward +
/// optimizer) on a 2-rank TP+SP world over a slow link.
fn profile_trainer_step(label: &str, link: CommCostModel) -> ProfileReport {
    let cfg = config();
    let policy = Recompute::Selective;
    let tracer = Tracer::enabled();
    let template = Gpt::init(cfg, policy, SEED);
    let (tokens, targets) = data(&cfg);
    let mut world = World::new(T);
    world.set_link_cost(link);
    world.set_tracer(tracer.clone());
    let per_rank = world.run_fallible(|comm| {
        let mut trainer =
            Trainer::new(template.shard(T, comm.rank(), policy), TrainerConfig::default());
        let mode = ExecMode::TensorSequenceParallel(&comm);
        let (_, _, timing) = trainer.step_with_ledger(&tokens, &targets, mode);
        Ok(timing)
    });
    let timings: Vec<StepTiming> =
        per_rank.into_iter().map(|r| r.expect("trainer step failed")).collect();
    let opts = AnalyzeOptions {
        label: label.to_string(),
        link: Some(link),
        gpu: Some(GpuSpec::a100()),
        hidden: cfg.hidden as u64,
        expected_ledger: ledger_map(&timings),
    };
    analyze(&tracer.events(), &opts).expect("trainer-step profile analysis")
}

/// One traced layer forward+backward under an overlap policy — the
/// `e2e_step_bench` workload, profiled.
fn profile_layer_step(label: &str, overlap: OverlapPolicy, link: CommCostModel) -> ProfileReport {
    let cfg = config();
    let tracer = Tracer::enabled();
    let mut rng = SplitMix64::new(17);
    let full = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let mut world = World::new(T);
    world.set_link_cost(link);
    world.set_tracer(tracer.clone());
    let per_rank = world.run_fallible(|comm| {
        let layer = TransformerLayer::new(
            cfg,
            full.shard(T, comm.rank()),
            0,
            Recompute::Selective,
            CounterRng::new(5),
        );
        let policy = ExecPolicy::builder()
            .backend(ExecMode::TensorSequenceParallel(&comm))
            .overlap(overlap)
            .build()
            .expect("valid overlap policy");
        let x_local = x.chunk_axis0(T).unwrap()[comm.rank()].clone();
        let dy_local = dy.chunk_axis0(T).unwrap()[comm.rank()].clone();
        let _ = take_step_timing(); // reset this rank thread's ledger
        let mut ledger = ActivationLedger::new();
        let (_y, state) = layer.forward(&x_local, 0, policy, &mut ledger);
        let _ = layer.backward(&dy_local, state, policy);
        Ok(take_step_timing())
    });
    let timings: Vec<StepTiming> =
        per_rank.into_iter().map(|r| r.expect("layer step failed")).collect();
    let opts = AnalyzeOptions {
        label: label.to_string(),
        link: Some(link),
        gpu: Some(GpuSpec::a100()),
        hidden: cfg.hidden as u64,
        expected_ledger: ledger_map(&timings),
    };
    analyze(&tracer.events(), &opts).expect("layer-step profile analysis")
}

fn smoke(out_dir: &str) {
    set_default_backend(Backend::Threaded { threads: 4 });
    // The e2e bench's deliberately slow link: communication and compute the
    // same order of magnitude, so every category is visibly populated.
    let link = CommCostModel { alpha_s: 5e-6, beta_bytes_per_s: 8e6 };

    println!(
        "profile-report: tiny GPT (h=32 a=4 s=16 b=2 L=2 v=64), t={T}, \
         link α={}s β={} B/s\n",
        link.alpha_s, link.beta_bytes_per_s
    );

    let trainer = profile_trainer_step("trainer_step_exposed", link);
    let overlapped =
        profile_layer_step("layer_overlapped_c2", OverlapPolicy::Overlapped { chunks: 2 }, link);
    let prefetched = profile_layer_step(
        "layer_overlapped_recompute_c2",
        OverlapPolicy::overlapped_recompute(2).expect("nonzero chunks"),
        link,
    );

    // `analyze` already enforced attribution==wall, ledger equality, and
    // critical-path telescoping; assert the workloads actually exercised
    // the categories the smoke exists to cover.
    let cats = trainer.max_categories();
    assert!(cats.exposed_recompute > 0, "trainer profile must show exposed recompute: {cats:?}");
    assert!(cats.optimizer > 0, "trainer profile must show optimizer time: {cats:?}");
    assert!(cats.exposed_comm > 0, "trainer profile must show exposed comm: {cats:?}");
    assert!(
        trainer.max_wrapped_recompute_us() > 0,
        "selective recompute must mirror a nonzero recompute ledger"
    );
    let ocats = overlapped.max_categories();
    assert!(ocats.overlapped_comm > 0, "overlap profile must show overlapped comm: {ocats:?}");
    assert!(
        overlapped.max_wrapped_comm_us() > 0,
        "overlap profile must mirror a nonzero comm ledger"
    );
    let pcats = prefetched.max_categories();
    assert!(
        pcats.overlapped_recompute > 0,
        "recompute-prefetch profile must show driver time: {pcats:?}"
    );
    assert!(
        prefetched.max_wrapped_recompute_us() > 0,
        "recompute-prefetch profile must mirror a nonzero recompute ledger"
    );

    let mut text = String::new();
    let mut profiles = BTreeMap::new();
    for report in [trainer, overlapped, prefetched] {
        text.push_str(&render_ascii(&report));
        text.push('\n');
        profiles.insert(report.label.clone(), report);
    }
    print!("{text}");

    let doc = ProfileDocument::new(profiles);
    std::fs::create_dir_all(out_dir).expect("create reports dir");
    let json_path = Path::new(out_dir).join("PROFILE_step.json");
    let txt_path = Path::new(out_dir).join("PROFILE_step.txt");
    std::fs::write(&json_path, doc.to_json()).expect("write profile json");
    std::fs::write(&txt_path, &text).expect("write profile text");
    println!("wrote {} and {}", json_path.display(), txt_path.display());
}

fn check(path: &str) {
    let profiles = match load_profiles(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("profile-report --check: {e}");
            std::process::exit(1);
        }
    };
    if profiles.is_empty() {
        eprintln!("profile-report --check: {path} contains no profiles");
        std::process::exit(1);
    }
    for (label, report) in &profiles {
        if let Err(e) = verify(report) {
            eprintln!("profile-report --check: {path} profile {label:?}: {e}");
            std::process::exit(1);
        }
        println!(
            "{label}: {} rank(s), step {:.3} ms, attribution exact, critical path exact ✓",
            report.ranks.len(),
            report.step_wall_ns as f64 / 1e6
        );
    }
    println!("{path}: all {} profile(s) verified", profiles.len());
}

fn diff(base_path: &str, fresh_path: &str) {
    let base = load_profiles(base_path).unwrap_or_else(|e| {
        eprintln!("profile-report --diff: {e}");
        std::process::exit(1);
    });
    let fresh = load_profiles(fresh_path).unwrap_or_else(|e| {
        eprintln!("profile-report --diff: {e}");
        std::process::exit(1);
    });
    print!("{}", diff_documents(&base, &fresh));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: profile-report --check <PROFILE.json>");
                std::process::exit(2);
            };
            check(path);
        }
        Some("--diff") => {
            let (Some(base), Some(fresh)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: profile-report --diff <base.json> <fresh.json>");
                std::process::exit(2);
            };
            diff(base, fresh);
        }
        None | Some("--smoke") => {
            let mut out_dir = "reports".to_string();
            if let Some(i) = args.iter().position(|a| a == "--out") {
                out_dir = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                });
            }
            smoke(&out_dir);
        }
        Some(other) => {
            eprintln!(
                "unknown argument {other}\n\
                 usage: profile-report [--smoke] [--out DIR] | --check <json> | --diff <a> <b>"
            );
            std::process::exit(2);
        }
    }
}
